//! Crash recovery: checkpoint (snapshot) + write-ahead log replay must
//! reconstruct the working memory exactly, and a re-attached engine must
//! resume matching.

use ops5::ClassId;
use prodsys::{bootstrap, make_engine, EngineKind, ProductionDb};
use relstore::{recover, snapshot, tuple, Restriction};
use std::sync::Arc;

const SRC: &str = r#"
    (literalize Emp name dno)
    (literalize Dept dno)
    (p R (Emp ^dno <D>) (Dept ^dno <D>) --> (remove 1))
"#;

#[test]
fn wal_replay_after_checkpoint() {
    let rules = ops5::compile(SRC).unwrap();
    let pdb = ProductionDb::new(rules.clone()).unwrap();
    let wal = pdb.db().enable_wal();
    let mut engine = make_engine(EngineKind::Rete, pdb.clone());

    // Pre-checkpoint activity.
    engine.insert(ClassId(0), tuple!["Ann", 7]);
    engine.insert(ClassId(0), tuple!["Bob", 8]);

    // Checkpoint: snapshot + truncate the log.
    let checkpoint = snapshot::save(pdb.db()).unwrap();
    wal.truncate().unwrap();

    // Post-checkpoint activity ("lost" unless the WAL captures it).
    engine.insert(ClassId(1), tuple![7]);
    engine.remove(ClassId(0), &tuple!["Bob", 8]);
    engine.insert(ClassId(0), tuple!["Cid", 7]);
    let live_conflicts = engine.conflict_set().sorted();
    assert_eq!(live_conflicts.len(), 2, "Ann and Cid match dept 7");

    // "Crash": rebuild from checkpoint + log.
    let recovered = Arc::new(recover(Some(checkpoint), wal.bytes()).unwrap());
    let emp = recovered.rel_id("Emp").unwrap();
    let dept = recovered.rel_id("Dept").unwrap();
    assert_eq!(recovered.relation_len(emp), 2, "Ann + Cid");
    assert_eq!(recovered.relation_len(dept), 1);
    assert!(recovered
        .select(emp, &Restriction::default())
        .unwrap()
        .iter()
        .all(|(_, t)| t[0] != relstore::Value::str("Bob")));

    // Re-attach an engine and verify the conflict set is back.
    let pdb2 = ProductionDb::attach(recovered, rules).unwrap();
    let mut engine2 = make_engine(EngineKind::Cond, pdb2);
    bootstrap(engine2.as_mut());
    assert_eq!(engine2.conflict_set().sorted(), live_conflicts);
}

#[test]
fn recovery_without_checkpoint() {
    // A log alone reconstructs everything, including DDL.
    let db = relstore::Database::new();
    let wal = db.enable_wal();
    let rid = db
        .create_relation(relstore::Schema::new("R", ["a", "b"]))
        .unwrap();
    db.create_hash_index(rid, 0).unwrap();
    for i in 0..20i64 {
        db.insert(rid, tuple![i, i * 2]).unwrap();
    }
    db.delete_equal(rid, &tuple![5, 10]).unwrap();

    let recovered = recover(None, wal.bytes()).unwrap();
    let r2 = recovered.rel_id("R").unwrap();
    assert_eq!(recovered.relation_len(r2), 19);
    assert!(recovered.read(r2, |r| r.has_hash_index(0)).unwrap());
}

#[test]
fn transactional_aborts_leave_consistent_log() {
    // An aborted transaction's undo actions are logged as compensating
    // records: replay must land on the committed state.
    let db = relstore::Database::new();
    let wal = db.enable_wal();
    let rid = db
        .create_relation(relstore::Schema::new("R", ["a"]))
        .unwrap();
    db.insert(rid, tuple![1]).unwrap();

    {
        let mut txn = db.begin();
        txn.insert(rid, tuple![2]).unwrap();
        let rows = txn.select(rid, &Restriction::default()).unwrap();
        let victim = rows
            .iter()
            .find(|(_, t)| t[0] == relstore::Value::Int(1))
            .unwrap();
        txn.delete(rid, victim.0).unwrap();
        txn.abort();
    }
    assert_eq!(db.relation_len(rid), 1);

    let recovered = recover(None, wal.bytes()).unwrap();
    let r2 = recovered.rel_id("R").unwrap();
    assert_eq!(recovered.relation_len(r2), 1);
    let rows = recovered.select(r2, &Restriction::default()).unwrap();
    assert_eq!(rows[0].1, tuple![1], "abort fully compensated in the log");
}
