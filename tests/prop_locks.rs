//! Property test: the 2PL lock manager never grants incompatible locks
//! simultaneously, matching a shadow model, and always drains cleanly.

use proptest::prelude::*;
use relstore::{Database, LockMode, LockTarget, RelId, TupleId, TxnId};
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum LOp {
    /// try_acquire(txn % 4, target % 6, exclusive?)
    Try(u8, u8, bool),
    /// release_all(txn % 4)
    Release(u8),
}

fn op_strategy() -> impl Strategy<Value = LOp> {
    prop_oneof![
        4 => (0u8..4, 0u8..6, any::<bool>()).prop_map(|(t, g, x)| LOp::Try(t, g, x)),
        1 => (0u8..4).prop_map(LOp::Release),
    ]
}

fn target(g: u8) -> LockTarget {
    match g {
        0 => LockTarget::Relation(RelId(0)),
        1 => LockTarget::Relation(RelId(1)),
        n => LockTarget::Tuple(RelId((n % 2) as u32), TupleId::new(n as u32 / 2, 0)),
    }
}

/// Do two targets overlap (relation covers its tuples)?
fn overlaps(a: LockTarget, b: LockTarget) -> bool {
    let rel = |t: LockTarget| match t {
        LockTarget::Relation(r) | LockTarget::Tuple(r, _) => r,
    };
    if rel(a) != rel(b) {
        return false;
    }
    match (a, b) {
        (LockTarget::Tuple(_, x), LockTarget::Tuple(_, y)) => x == y,
        _ => true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Single-threaded model check: the lock manager's grant decisions
    /// match a brute-force shadow model of held locks.
    #[test]
    fn grants_match_shadow_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let db = Database::new();
        let lm = db.lock_manager();
        // shadow: (txn, target) → mode
        let mut shadow: HashMap<(u8, u8), LockMode> = HashMap::new();
        for op in ops {
            match op {
                LOp::Try(t, g, exclusive) => {
                    let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
                    let granted = lm.try_acquire(TxnId(t as u64), target(g), mode);
                    // Shadow decision: conflict iff another txn holds an
                    // overlapping lock and either side is exclusive.
                    let conflict = shadow.iter().any(|(&(ht, hg), &hm)| {
                        ht != t
                            && overlaps(target(hg), target(g))
                            && (hm == LockMode::Exclusive || mode == LockMode::Exclusive)
                    });
                    prop_assert_eq!(granted, !conflict, "txn {} target {} mode {:?}", t, g, mode);
                    if granted {
                        let slot = shadow.entry((t, g)).or_insert(mode);
                        if mode == LockMode::Exclusive {
                            *slot = LockMode::Exclusive;
                        }
                    }
                }
                LOp::Release(t) => {
                    lm.release_all(TxnId(t as u64));
                    shadow.retain(|&(ht, _), _| ht != t);
                }
            }
        }
        // Invariant: the manager's held count equals the shadow's.
        prop_assert_eq!(lm.held_count(), shadow.len());
        for t in 0..4u8 {
            lm.release_all(TxnId(t as u64));
        }
        prop_assert_eq!(lm.held_count(), 0);
    }
}

/// Multithreaded smoke: no two exclusive holders of one target at once.
#[test]
fn no_concurrent_exclusive_holders() {
    use std::sync::atomic::{AtomicI32, Ordering};
    let db = Database::new();
    let lm = db.lock_manager();
    let in_cs = AtomicI32::new(0);
    let t = LockTarget::Tuple(RelId(0), TupleId::new(1, 0));
    std::thread::scope(|s| {
        for w in 0..6u64 {
            let lm = &lm;
            let in_cs = &in_cs;
            s.spawn(move || {
                for round in 0..200u64 {
                    let txn = TxnId(w * 1000 + round);
                    if lm.acquire(txn, t, LockMode::Exclusive).is_ok() {
                        let now = in_cs.fetch_add(1, Ordering::SeqCst);
                        assert_eq!(now, 0, "two exclusive holders at once");
                        in_cs.fetch_sub(1, Ordering::SeqCst);
                    }
                    lm.release_all(txn);
                }
            });
        }
    });
    assert_eq!(lm.held_count(), 0);
}
