//! The COND engine's σ-binding pattern index is a pure access-path
//! change: indexed probing and full group scans must agree on every
//! observable — per-op conflict sets, the stored matching patterns, and
//! fired sequences — over random programs with negated CEs and removals.
//!
//! Also here: batched delta maintenance now traces, so the per-batch
//! *net* conflict-delta effect must agree across all five engines (the
//! batched COND path cancels insert-then-remove seeds inside a batch, so
//! streams are compared canonically, not event-by-event).

use std::collections::BTreeMap;

use ops5::ClassId;
use prodsys::{make_engine, CondEngine, EngineKind, MatchEngine, ProductionDb};
use proptest::prelude::*;
use workload::{Op, RuleGenConfig, TraceConfig};

fn random_trace(seed: u64, ops: usize) -> (RuleGenConfig, Vec<Op>) {
    let cfg = RuleGenConfig {
        rules: 8,
        ces_per_rule: 3,
        domain: 3,
        negated_fraction: 0.4,
        seed,
        ..Default::default()
    };
    let trace = TraceConfig {
        ops,
        delete_fraction: 0.3,
        join_domain: 2,
        select_domain: 3,
        seed: seed + 500,
    }
    .trace(cfg.classes, cfg.attrs);
    (cfg, trace)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Indexed vs full-scan COND over a random insert/remove trace, with
    /// the query engine as an independent oracle for the conflict set:
    /// identical conflict sets after every operation, identical pattern
    /// stores — down to individual support-set multisets — identical
    /// final WM, and the index actually probed. Exercises the interned
    /// σ-binding + arena representation end to end: both COND engines
    /// share it, so any id-collision, slot-reuse, or withdraw bug shows
    /// up as divergence from the recomputing query oracle or between the
    /// two access paths.
    #[test]
    fn indexed_cond_matches_scan(seed in 0u64..400, ops in 30usize..80) {
        let (cfg, trace) = random_trace(seed, ops);
        let rules = cfg.rules();
        let mut indexed = CondEngine::new(ProductionDb::new(rules.clone()).unwrap());
        let mut scan = CondEngine::new(ProductionDb::new(rules.clone()).unwrap());
        scan.set_pattern_index(false);
        let mut oracle = make_engine(EngineKind::Query, ProductionDb::new(rules).unwrap());
        for (step, op) in trace.iter().enumerate() {
            match op {
                Op::Insert(c, t) => {
                    indexed.insert(ClassId(*c), t.clone());
                    scan.insert(ClassId(*c), t.clone());
                    oracle.insert(ClassId(*c), t.clone());
                }
                Op::Remove(c, t) => {
                    indexed.remove(ClassId(*c), t);
                    scan.remove(ClassId(*c), t);
                    oracle.remove(ClassId(*c), t);
                }
            }
            prop_assert_eq!(
                indexed.conflict_set().sorted(),
                scan.conflict_set().sorted(),
                "conflict sets diverge at step {}",
                step
            );
            prop_assert_eq!(
                indexed.conflict_set().sorted(),
                oracle.conflict_set().sorted(),
                "cond diverges from the query oracle at step {}",
                step
            );
        }
        prop_assert_eq!(indexed.pattern_count(), scan.pattern_count());
        // Exact pattern-store equality: σ, derived constraints, and the
        // support multiset of every counter, supporter by supporter.
        prop_assert_eq!(indexed.support_snapshot(), scan.support_snapshot());
        // Final WM: same live tuples in every class.
        for c in 0..cfg.classes {
            let wm = |e: &CondEngine| {
                let mut v: Vec<String> = e
                    .pdb()
                    .wm_scan(ClassId(c))
                    .unwrap()
                    .into_iter()
                    .map(|(_, t)| format!("{t:?}"))
                    .collect();
                v.sort();
                v
            };
            prop_assert_eq!(wm(&indexed), wm(&scan), "WM of class {} diverges", c);
            prop_assert_eq!(
                indexed.render_cond(ClassId(c)),
                scan.render_cond(ClassId(c)),
                "COND relation {} diverges",
                c
            );
        }
        let (probes, _) = indexed.pattern_io().unwrap();
        prop_assert!(probes > 0, "the indexed engine must actually probe");
        let (scan_probes, _) = scan.pattern_io().unwrap();
        prop_assert_eq!(scan_probes, 0, "the scan engine must not probe");
    }
}

/// Canonical per-batch fingerprint: net conflict-delta effect (adds
/// minus removes per instantiation, zeros dropped, sorted) plus the WM
/// insert/delete counts of the batch summary. Set-oriented engines may
/// cancel an insert-then-remove pair inside one batch that per-change
/// engines emit and retract, so only the net effect is comparable.
fn batch_fingerprints(events: Vec<obs::Event>) -> Vec<Vec<String>> {
    let mut batches = Vec::new();
    let mut net: BTreeMap<String, i64> = BTreeMap::new();
    for ev in events {
        match ev {
            obs::Event::ConflictDelta {
                add,
                rule,
                rule_name,
                wmes,
                ..
            } => {
                *net.entry(format!("r{rule} {rule_name} {wmes}"))
                    .or_insert(0) += if add { 1 } else { -1 };
            }
            obs::Event::BatchApplied {
                inserts, deletes, ..
            } => {
                let mut fp: Vec<String> = net
                    .iter()
                    .filter(|(_, n)| **n != 0)
                    .map(|(k, n)| format!("{n:+} {k}"))
                    .collect();
                fp.push(format!("wm +{inserts}/-{deletes}"));
                batches.push(fp);
                net.clear();
            }
            _ => {}
        }
    }
    batches
}

/// Batched maintenance traces: every engine's `apply_delta` emits WM
/// events, conflict deltas, and a `BatchApplied` summary — and the net
/// per-batch effect is identical across all five engines.
#[test]
fn batched_trace_agrees_across_engines() {
    let (cfg, trace) = random_trace(21, 60);
    // Split the trace into delta batches of 6 changes each.
    let batches: Vec<Vec<(bool, ClassId, relstore::Tuple)>> = trace
        .chunks(6)
        .map(|chunk| {
            chunk
                .iter()
                .map(|op| match op {
                    Op::Insert(c, t) => (true, ClassId(*c), t.clone()),
                    Op::Remove(c, t) => (false, ClassId(*c), t.clone()),
                })
                .collect()
        })
        .collect();
    let mut streams: Vec<(&'static str, Vec<Vec<String>>)> = Vec::new();
    for &kind in EngineKind::ALL.iter() {
        let mut engine = make_engine(kind, ProductionDb::new(cfg.rules()).unwrap());
        let tracer = obs::Tracer::new(obs::Sink::ring(1_000_000));
        engine.set_tracer(tracer.clone());
        for batch in &batches {
            engine.apply_delta(batch);
        }
        let fps = batch_fingerprints(tracer.ring_events().unwrap());
        assert_eq!(
            fps.len(),
            batches.len(),
            "{}: one BatchApplied per delta batch",
            engine.name()
        );
        streams.push((engine.name(), fps));
    }
    let (base_name, base) = &streams[0];
    assert!(
        base.iter().any(|fp| fp.len() > 1),
        "workload should produce net conflict-delta effects"
    );
    for (name, stream) in &streams[1..] {
        assert_eq!(
            base, stream,
            "batched traces diverge: {base_name} vs {name}"
        );
    }
}
