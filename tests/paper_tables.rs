//! T1–T3: the paper's §4.1.1 COND-relation and RULE-DEF tables, rendered
//! from the compiled rule sets (workspace-level duplicates of the
//! workload-crate unit tests, exercising the public API end to end).

use workload::paper;
use workload::tables::{cond_relation, format_table, rule_def};

#[test]
fn t1_cond_tables_match_paper() {
    let rs = paper::example2_rules();
    let goal = cond_relation(&rs, rs.class_id("Goal").unwrap());
    assert_eq!(
        goal,
        vec![
            vec!["PlusOX", "1", "Simplify", "<N>"],
            vec!["TimesOX", "1", "Simplify", "<N>"],
        ]
    );
    let expr = cond_relation(&rs, rs.class_id("Expression").unwrap());
    assert_eq!(
        expr,
        vec![
            vec!["PlusOX", "2", "<N>", "0", "+", "<X>"],
            vec!["TimesOX", "2", "<N>", "0", "*", "<X>"],
        ]
    );
}

#[test]
fn t2_rule_def_matches_paper() {
    let rs = paper::example2_rules();
    let rows = rule_def(&rs);
    assert_eq!(rows.len(), 4, "one tuple for each condition of each rule");
    assert!(
        rows.iter().all(|r| r[3] == "0"),
        "all check bits unset initially"
    );
}

#[test]
fn t3_example4_initial_cond_relations() {
    let rs = paper::example4_rules();
    for (class, expect) in [
        ("A", vec!["Rule-1", "1", "<x>", "a", "<z>"]),
        ("B", vec!["Rule-1", "2", "<x>", "<y>", "b"]),
        ("C", vec!["Rule-1", "3", "c", "<y>", "<z>"]),
    ] {
        let rows = cond_relation(&rs, rs.class_id(class).unwrap());
        assert_eq!(rows, vec![expect], "COND-{class}");
    }
}

#[test]
fn tables_render_as_text() {
    let rs = paper::example2_rules();
    let rows = cond_relation(&rs, rs.class_id("Expression").unwrap());
    let text = format_table(&["Rule-ID", "CEN", "Name", "Arg1", "Op", "Arg2"], &rows);
    assert!(text.contains("PlusOX"));
    assert!(text.contains("TimesOX"));
    assert!(text.lines().count() >= 4);
}
