//! §5: the concurrent execution of a conflict set must be equivalent to
//! some serial (OPS5) execution.

use ops5::ClassId;
use prodsys::{
    make_engine, ConcurrentExecutor, EngineKind, ProductionDb, SequentialExecutor, Strategy,
};
use relstore::{tuple, Restriction, Tuple};

fn wm_dump(engine: &dyn prodsys::MatchEngine, class: usize) -> Vec<Tuple> {
    let pdb = engine.pdb();
    let mut rows: Vec<Tuple> = pdb
        .db()
        .select(pdb.class_rel(ClassId(class)), &Restriction::default())
        .unwrap()
        .into_iter()
        .map(|(_, t)| t)
        .collect();
    rows.sort();
    rows
}

/// A confluent workload (rule firings commute): the final WM must be
/// identical between sequential and concurrent execution.
#[test]
fn concurrent_equals_sequential_on_confluent_rules() {
    let src = r#"
        (literalize Item n v)
        (literalize Out n v)
        (p Move (Item ^n <N> ^v <V>) --> (remove 1) (make Out ^n <N> ^v <V>))
    "#;
    let rules = ops5::compile(src).unwrap();
    for kind in [EngineKind::Rete, EngineKind::Cond, EngineKind::Query] {
        // Sequential baseline.
        let mut seq = SequentialExecutor::new(
            make_engine(kind, ProductionDb::new(rules.clone()).unwrap()),
            Strategy::Fifo,
        );
        for i in 0..12i64 {
            seq.insert(ClassId(0), tuple![i, i * 10]);
        }
        let seq_out = seq.run(1000);
        let seq_wm = (wm_dump(seq.engine(), 0), wm_dump(seq.engine(), 1));

        // Concurrent run, 4 workers.
        let mut engine = make_engine(kind, ProductionDb::new(rules.clone()).unwrap());
        for i in 0..12i64 {
            engine.insert(ClassId(0), tuple![i, i * 10]);
        }
        let mut conc = ConcurrentExecutor::new(engine, 4);
        let stats = conc.run(1000);
        let eng = conc.engine();
        let g = eng.lock();
        let conc_wm = (wm_dump(g.as_ref(), 0), wm_dump(g.as_ref(), 1));

        assert_eq!(seq_out.fired, stats.committed, "{}", kind.label());
        assert_eq!(seq_wm, conc_wm, "{}: final WM must agree", kind.label());
        assert!(g.conflict_set().is_empty(), "{}", kind.label());
    }
}

/// Conflicting deleters: whatever interleaving happens, the result must
/// equal ONE of the two possible serial outcomes.
#[test]
fn racing_deleters_match_some_serial_order() {
    let src = r#"
        (literalize A x)
        (literalize WinB x)
        (literalize WinC x)
        (p B (A ^x <V>) --> (remove 1) (make WinB ^x <V>))
        (p C (A ^x <V>) --> (remove 1) (make WinC ^x <V>))
    "#;
    for seed in 0..5 {
        let rules = ops5::compile(src).unwrap();
        let mut engine = make_engine(EngineKind::Rete, ProductionDb::new(rules).unwrap());
        for i in 0..6i64 {
            engine.insert(ClassId(0), tuple![i + seed]);
        }
        let mut conc = ConcurrentExecutor::new(engine, 4);
        conc.run(1000);
        let eng = conc.engine();
        let g = eng.lock();
        let a = wm_dump(g.as_ref(), 0);
        let b = wm_dump(g.as_ref(), 1);
        let c = wm_dump(g.as_ref(), 2);
        assert!(a.is_empty(), "every A consumed");
        // Each A was consumed by exactly one of the two rules.
        assert_eq!(
            b.len() + c.len(),
            6,
            "seed {seed}: B={} C={}",
            b.len(),
            c.len()
        );
    }
}

/// The §5.2 negative-dependence scenario: inserting transactions must be
/// serialized against NOT EXISTS checkers; no duplicate Done rows.
#[test]
fn negative_dependence_serializes() {
    let src = r#"
        (literalize Item n)
        (literalize Done n)
        (p Mark (Item ^n <N>) -(Done ^n <N>) --> (make Done ^n <N>))
    "#;
    for workers in [1, 2, 8] {
        let rules = ops5::compile(src).unwrap();
        let mut engine = make_engine(EngineKind::Rete, ProductionDb::new(rules).unwrap());
        // Duplicated items: the negated CE must dedupe Done per n.
        for i in 0..12i64 {
            engine.insert(ClassId(0), tuple![i % 4]);
        }
        let mut conc = ConcurrentExecutor::new(engine, workers);
        conc.run(1000);
        let eng = conc.engine();
        let g = eng.lock();
        assert_eq!(
            wm_dump(g.as_ref(), 1).len(),
            4,
            "workers={workers}: one Done per distinct n"
        );
    }
}

/// Locks must all be released at the end of a run (strict 2PL hygiene).
#[test]
fn no_leaked_locks_after_run() {
    let src = r#"
        (literalize A x)
        (p Consume (A ^x <V>) --> (remove 1))
    "#;
    let rules = ops5::compile(src).unwrap();
    let mut engine = make_engine(EngineKind::Cond, ProductionDb::new(rules).unwrap());
    for i in 0..10i64 {
        engine.insert(ClassId(0), tuple![i]);
    }
    let pdb = engine.pdb().clone();
    let mut conc = ConcurrentExecutor::new(engine, 4);
    let stats = conc.run(1000);
    assert_eq!(stats.committed, 10);
    assert_eq!(
        pdb.db().lock_manager().held_count(),
        0,
        "all locks released"
    );
}
