//! Set-oriented batch matching equivalences:
//!
//! * the [`BatchExecutor`] (hash joins, hash semi/anti-joins) returns
//!   exactly the bindings of the nested-loop [`QueryExecutor`] on random
//!   conjunctive queries, including negated terms and seeded evaluation;
//! * delta-batched loading (`insert_batch`) leaves every engine in the
//!   same state as tuple-at-a-time loading;
//! * parallel COND propagation fires the same rules in the same order as
//!   serial propagation.

use ops5::ClassId;
use prodsys::{
    make_engine, CondEngine, EngineKind, ProductionDb, ProductionSystem, SequentialExecutor,
    Strategy,
};
use proptest::prelude::*;
use relstore::{BatchExecutor, Binding, QueryExecutor, Restriction, Tuple, TupleId};
use workload::{Op, RuleGenConfig, TraceConfig};

fn sorted_tids(bindings: &[Binding]) -> Vec<Vec<Option<u64>>> {
    let mut v: Vec<Vec<Option<u64>>> = bindings
        .iter()
        .map(|b| {
            b.slots
                .iter()
                .map(|s| s.as_ref().map(|(tid, _)| tid.pack()))
                .collect()
        })
        .collect();
    v.sort();
    v
}

/// Build a random program, load a random WM, and return the loaded db.
fn random_pdb(seed: u64, ops: usize) -> (ProductionDb, RuleGenConfig) {
    let cfg = RuleGenConfig {
        rules: 8,
        ces_per_rule: 3,
        domain: 3,
        negated_fraction: 0.4,
        seed,
        ..Default::default()
    };
    let rules = ops5::compile(&cfg.source()).expect("generated program compiles");
    let pdb = ProductionDb::new(rules).expect("pdb");
    let trace = TraceConfig {
        ops,
        delete_fraction: 0.0,
        join_domain: 2,
        select_domain: 3,
        seed: seed + 1000,
    }
    .trace(cfg.classes, cfg.attrs);
    for op in trace {
        if let Op::Insert(c, t) = op {
            pdb.insert_wm(ClassId(c), t).expect("insert");
        }
    }
    (pdb, cfg)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Full-query and seeded-batch evaluation: the set-oriented executor
    /// must return exactly the nested-loop executor's bindings on random
    /// rule queries (joins, selections, negated CEs), whatever join
    /// algorithms its planner picks.
    #[test]
    fn batch_executor_matches_nested_loop(seed in 0u64..400, ops in 20usize..60) {
        let (pdb, _cfg) = random_pdb(seed, ops);
        let db = pdb.db();
        for rule in &pdb.rules().rules {
            let q = pdb.query(rule.id);
            let nl = QueryExecutor::new(db).exec(q, None).unwrap();
            let batch = BatchExecutor::new(db).exec(q, None).unwrap();
            prop_assert_eq!(
                sorted_tids(&nl),
                sorted_tids(&batch),
                "rule {} full evaluation",
                rule.name
            );
            // Seeded evaluation: batch all tuples of a term's class at
            // once; must equal the concatenation of per-seed runs.
            for t in q.positive_terms() {
                let seeds: Vec<(TupleId, Tuple)> =
                    db.select(q.terms[t].rel, &Restriction::default()).unwrap();
                if seeds.is_empty() {
                    continue;
                }
                let mut per_seed = Vec::new();
                for (tid, tuple) in &seeds {
                    per_seed.extend(
                        QueryExecutor::new(db).exec(q, Some((t, *tid, tuple))).unwrap(),
                    );
                }
                let batched = BatchExecutor::new(db)
                    .exec_seeded_batch(q, t, &seeds)
                    .unwrap();
                prop_assert_eq!(
                    sorted_tids(&per_seed),
                    sorted_tids(&batched),
                    "rule {} seeded at term {}",
                    rule.name,
                    t
                );
            }
        }
    }
}

const LOAD_SRC: &str = r#"
    (literalize Item n k)
    (literalize Ref k w)
    (literalize Hit n)
    (p Match (Item ^n <N> ^k <K>) (Ref ^k <K> ^w <W>) -(Hit ^n <N>) --> (make Hit ^n <N>))
    (p Retire (Item ^n <N>) (Hit ^n <N>) --> (remove 1) (remove 2) (write retired <N>))
"#;

fn wm_all(engine: &dyn prodsys::MatchEngine) -> Vec<Vec<Tuple>> {
    let pdb = engine.pdb();
    (0..pdb.class_count())
        .map(|c| {
            let mut rows: Vec<Tuple> = pdb
                .db()
                .select(pdb.class_rel(ClassId(c)), &Restriction::default())
                .unwrap()
                .into_iter()
                .map(|(_, t)| t)
                .collect();
            rows.sort();
            rows
        })
        .collect()
}

/// Loading a delta set through `insert_batch` (one set-oriented
/// maintenance pass) must leave every engine with the same conflict set
/// and the same run trajectory as tuple-at-a-time inserts — in both the
/// set-oriented and the nested-loop evaluation modes.
#[test]
fn insert_batch_matches_per_tuple_loading() {
    use relstore::tuple;
    let refs: Vec<Tuple> = (0..4i64).map(|r| tuple![r, r * 10]).collect();
    let items: Vec<Tuple> = (0..24i64).map(|i| tuple![i, i % 6]).collect();
    for kind in EngineKind::ALL {
        let mut results = Vec::new();
        for (label, batched_load, set_oriented) in [
            ("per-tuple", false, true),
            ("batch", true, true),
            ("batch nested-loop", true, false),
        ] {
            let mut sys = ProductionSystem::from_source(LOAD_SRC, kind, Strategy::Canonical)
                .expect("program compiles");
            sys.set_batching(set_oriented);
            if batched_load {
                sys.insert_batch("Ref", refs.clone()).unwrap();
                sys.insert_batch("Item", items.clone()).unwrap();
            } else {
                for t in &refs {
                    sys.insert("Ref", t.clone()).unwrap();
                }
                for t in &items {
                    sys.insert("Item", t.clone()).unwrap();
                }
            }
            let conflict = sys.engine().conflict_set().sorted();
            let out = sys.run(10_000);
            results.push((label, conflict, out.fired, out.writes, wm_all(sys.engine())));
        }
        let (base_label, base_conflict, base_fired, base_writes, base_wm) = &results[0];
        for (label, conflict, fired, writes, wm) in &results[1..] {
            let pair = format!("{} {base_label} vs {label}", kind.label());
            assert_eq!(base_conflict, conflict, "{pair}: loaded conflict set");
            assert_eq!(base_fired, fired, "{pair}: firing count");
            assert_eq!(base_writes, writes, "{pair}: write log");
            assert_eq!(base_wm, wm, "{pair}: final WM");
        }
    }
}

/// Real (threaded) parallel COND propagation must be invisible to the
/// recognize-act cycle: same conflict set after loading, and the same
/// instantiations fired in the same order through a full run.
#[test]
fn parallel_cond_run_matches_serial() {
    use relstore::tuple;
    let src = r#"
        (literalize A x y)
        (literalize B x y)
        (literalize C x y)
        (literalize Out x)
        (p Wide (A ^x <X> ^y <Y>) (B ^x <X>) (C ^y <Y>) --> (remove 1) (make Out ^x <X>))
        (p Gated (B ^x <X> ^y <Y>) -(C ^x <X>) --> (remove 1) (make Out ^x <X>))
    "#;
    let rules = ops5::compile(src).expect("program compiles");
    let mut runs = Vec::new();
    for parallel in [false, true] {
        let mut engine = CondEngine::new(ProductionDb::new(rules.clone()).unwrap());
        engine.set_parallel(parallel);
        let mut ex = SequentialExecutor::new(Box::new(engine), Strategy::Canonical);
        for i in 0..12i64 {
            ex.insert(ClassId(0), tuple![i % 4, i % 3]);
            ex.insert(ClassId(1), tuple![i % 5, i % 2]);
            if i % 2 == 0 {
                ex.insert(ClassId(2), tuple![i % 3, i % 3]);
            }
        }
        let conflict = ex.engine().conflict_set().sorted();
        let mut firings = Vec::new();
        while let Some((inst, _, writes)) = ex.step() {
            firings.push((format!("{inst:?}"), writes));
            if firings.len() > 500 {
                break;
            }
        }
        runs.push((conflict, firings, wm_all(ex.engine())));
    }
    assert_eq!(runs[0].0, runs[1].0, "loaded conflict set");
    assert_eq!(
        runs[0].1, runs[1].1,
        "fired instantiations and their writes, in order"
    );
    assert_eq!(runs[0].2, runs[1].2, "final WM");
}

/// Cross-check the scaled benchmark workload invariant the snapshots
/// rely on: every engine row reports the same deterministic fired count.
#[test]
fn engines_agree_on_generated_delta_batches() {
    let (_, cfg) = random_pdb(7, 0);
    let rules = ops5::compile(&cfg.source()).expect("generated program compiles");
    let trace = TraceConfig {
        ops: 30,
        delete_fraction: 0.2,
        join_domain: 2,
        select_domain: 3,
        seed: 99,
    }
    .trace(cfg.classes, cfg.attrs);
    let mut results = Vec::new();
    for kind in EngineKind::ALL {
        let mut ex = SequentialExecutor::new(
            make_engine(kind, ProductionDb::new(rules.clone()).unwrap()),
            Strategy::Canonical,
        );
        // Apply the random insert/remove trace as one delta set per
        // engine — removes of absent tuples must be dropped identically.
        let changes: Vec<(bool, ClassId, Tuple)> = trace
            .iter()
            .map(|op| match op {
                Op::Insert(c, t) => (true, ClassId(*c), t.clone()),
                Op::Remove(c, t) => (false, ClassId(*c), t.clone()),
            })
            .collect();
        // Engines apply the resulting deltas to their own conflict sets;
        // the return value only feeds the executor's refraction memory.
        let _ = ex.engine_mut().apply_delta(&changes);
        results.push((kind.label(), ex.engine().conflict_set().sorted()));
    }
    let (base_name, base) = &results[0];
    for (name, conflict) in &results[1..] {
        assert_eq!(base, conflict, "{base_name} vs {name}");
    }
}
