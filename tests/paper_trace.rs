//! T4: the paper's Example 5 insertion trace, reproduced on every engine.
//!
//! Insert B(4,5,b), C(c,7,8), A(4,a,8), B(4,7,b). "Notice that when
//! B(4,7,b) is inserted, the last tuple in COND-B causes Rule-1 to be put
//! in the conflict set because all Mark bits are set."

use prodsys::{make_engine, EngineKind, ProductionDb};
use relstore::tuple;
use workload::paper;

#[test]
fn example_5_rule_fires_only_on_final_insert() {
    for kind in EngineKind::ALL {
        let pdb = ProductionDb::new(paper::example4_rules()).unwrap();
        let rules = pdb.rules().clone();
        let mut engine = make_engine(kind, pdb);
        let inserts = paper::example5_inserts();
        let n = inserts.len();
        for (i, (class, t)) in inserts.into_iter().enumerate() {
            let class = rules.class_id(class).unwrap();
            let deltas = engine.insert(class, t);
            if i + 1 < n {
                assert!(
                    deltas.is_empty(),
                    "{}: no firing before B(4,7,b) (step {i})",
                    kind.label()
                );
            } else {
                assert_eq!(
                    deltas.len(),
                    1,
                    "{}: Rule-1 fires on B(4,7,b)",
                    kind.label()
                );
                assert!(deltas[0].is_add());
                let inst = deltas[0].instantiation();
                assert_eq!(rules.rule(inst.rule).name, "Rule-1");
                // The instantiation binds A(4,a,8), B(4,7,b), C(c,7,8).
                assert_eq!(inst.wmes[0].tuple, tuple![4, "a", 8]);
                assert_eq!(inst.wmes[1].tuple, tuple![4, 7, "b"]);
                assert_eq!(inst.wmes[2].tuple, tuple!["c", 7, 8]);
            }
        }
        assert_eq!(engine.conflict_set().len(), 1, "{}", kind.label());
    }
}

#[test]
fn example_5_reversed_prefix_never_fires() {
    // Any strict prefix (in any order) lacks a full join and must not
    // enter the conflict set.
    use itertools_lite::permutations3;
    for kind in EngineKind::ALL {
        for perm in permutations3() {
            let pdb = ProductionDb::new(paper::example4_rules()).unwrap();
            let rules = pdb.rules().clone();
            let mut engine = make_engine(kind, pdb);
            let all = paper::example5_inserts();
            for &i in &perm {
                let (class, t) = &all[i];
                let class = rules.class_id(class).unwrap();
                engine.insert(class, t.clone());
            }
            assert!(
                engine.conflict_set().is_empty(),
                "{}: prefix {perm:?} must not fire",
                kind.label()
            );
        }
    }
}

#[test]
fn example_5_any_full_order_fires_once() {
    use itertools_lite::permutations4;
    for kind in EngineKind::ALL {
        for perm in permutations4() {
            let pdb = ProductionDb::new(paper::example4_rules()).unwrap();
            let rules = pdb.rules().clone();
            let mut engine = make_engine(kind, pdb);
            let all = paper::example5_inserts();
            for &i in &perm {
                let (class, t) = &all[i];
                let class = rules.class_id(class).unwrap();
                engine.insert(class, t.clone());
            }
            assert_eq!(
                engine.conflict_set().len(),
                1,
                "{}: order {perm:?} must fire exactly once",
                kind.label()
            );
        }
    }
}

/// Tiny permutation helpers (avoiding an external dependency).
mod itertools_lite {
    /// All 3-element subsets (as index prefixes) of {0,1,2,3} in order —
    /// every proper prefix of the Example 5 inserts.
    pub fn permutations3() -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        for a in 0..4 {
            for b in 0..4 {
                for c in 0..4 {
                    if a != b && b != c && a != c {
                        // Only B(4,5,b) (index 0) may substitute for
                        // B(4,7,b) (index 3): but B(4,5,b) never joins C's
                        // y=7, so any 3 distinct inserts are safe except
                        // the full-match triple {1,2,3}.
                        let mut s = [a, b, c];
                        s.sort_unstable();
                        if s == [1, 2, 3] {
                            continue;
                        }
                        out.push(vec![a, b, c]);
                    }
                }
            }
        }
        out
    }

    pub fn permutations4() -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        for a in 0..4 {
            for b in 0..4 {
                for c in 0..4 {
                    for d in 0..4 {
                        let mut s = [a, b, c, d];
                        s.sort_unstable();
                        if s == [0, 1, 2, 3] {
                            out.push(vec![a, b, c, d]);
                        }
                    }
                }
            }
        }
        out
    }
}
