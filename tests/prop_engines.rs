//! Property-based tests over the matching engines.

use ops5::ClassId;
use prodsys::{make_engine, EngineKind, ProductionDb};
use proptest::prelude::*;
use relstore::{tuple, Tuple};

/// A compact op encoding proptest can shrink: insert/delete of small
/// tuples over 3 classes of arity 3.
#[derive(Debug, Clone)]
enum POp {
    Insert(u8, i64, i64),
    /// Delete the i-th oldest live tuple (mod live count).
    Delete(u8),
}

fn op_strategy() -> impl Strategy<Value = POp> {
    prop_oneof![
        3 => (0u8..3, 0i64..3, 0i64..4).prop_map(|(c, a, b)| POp::Insert(c, a, b)),
        1 => (0u8..16).prop_map(POp::Delete),
    ]
}

const RULES: &str = r#"
    (literalize C0 a0 a1 a2)
    (literalize C1 a0 a1 a2)
    (literalize C2 a0 a1 a2)
    (p TwoWay (C0 ^a0 <X> ^a1 1) (C1 ^a0 <X>) --> (remove 1))
    (p ThreeWay (C0 ^a0 <X>) (C1 ^a0 <X> ^a1 <Y>) (C2 ^a1 <Y>) --> (remove 1))
    (p Neg (C1 ^a0 <X> ^a1 2) -(C2 ^a0 <X>) --> (remove 1))
    (p Range (C0 ^a0 <X> ^a1 <S>) (C2 ^a0 <X> ^a1 {< <S>}) --> (remove 1))
    (p SelfJoin (C2 ^a0 <X> ^a1 <A>) (C2 ^a0 <X> ^a1 {<> <A>}) --> (remove 1))
"#;

fn materialize(ops: &[POp]) -> Vec<(bool, usize, Tuple)> {
    let mut live: Vec<(usize, Tuple)> = Vec::new();
    let mut out = Vec::new();
    for op in ops {
        match op {
            POp::Insert(c, a, b) => {
                let t = tuple![*a, *b, 0];
                live.push((*c as usize, t.clone()));
                out.push((true, *c as usize, t));
            }
            POp::Delete(i) => {
                if !live.is_empty() {
                    let idx = *i as usize % live.len();
                    let (c, t) = live.remove(idx);
                    out.push((false, c, t));
                }
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// All five engines agree on the conflict set after every operation,
    /// for arbitrary insert/delete sequences over a rule base exercising
    /// two-way joins, three-way joins, negation, non-eq joins, and
    /// self-joins.
    #[test]
    fn engines_agree(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let rules = ops5::compile(RULES).unwrap();
        let mut engines: Vec<_> = EngineKind::ALL
            .iter()
            .map(|&k| make_engine(k, ProductionDb::new(rules.clone()).unwrap()))
            .collect();
        for (step, (is_insert, c, t)) in materialize(&ops).into_iter().enumerate() {
            let mut sets = Vec::new();
            for e in engines.iter_mut() {
                if is_insert {
                    e.insert(ClassId(c), t.clone());
                } else {
                    e.remove(ClassId(c), &t);
                }
                sets.push((e.name(), e.conflict_set().sorted()));
            }
            for (name, s) in &sets[1..] {
                prop_assert_eq!(&sets[0].1, s, "step {}: {} vs {}", step, sets[0].0, name);
            }
        }
    }

    /// Rete: remove is the exact inverse of insert (memories and conflict
    /// set return to their prior state).
    #[test]
    fn rete_remove_inverts_insert(
        pre in proptest::collection::vec(op_strategy(), 0..20),
        c in 0u8..3,
        a in 0i64..3,
        b in 0i64..4,
    ) {
        let rules = ops5::compile(RULES).unwrap();
        let mut net = rete::ReteNetwork::new(&rules);
        for (is_insert, class, t) in materialize(&pre) {
            if is_insert {
                net.insert(rete::Wme::new(ClassId(class), t));
            } else {
                net.remove(&rete::Wme::new(ClassId(class), t));
            }
        }
        let entries = net.stored_entries();
        let cs = net.conflict_set().sorted();
        let w = rete::Wme::new(ClassId(c as usize), tuple![a, b, 0]);
        net.insert(w.clone());
        net.remove(&w);
        prop_assert_eq!(net.stored_entries(), entries);
        prop_assert_eq!(net.conflict_set().sorted(), cs);
    }

    /// Serial and parallel COND propagation are observationally identical
    /// on arbitrary traces (§4.2.3's parallelism must not change results).
    #[test]
    fn cond_parallel_equals_serial(ops in proptest::collection::vec(op_strategy(), 1..30)) {
        let rules = ops5::compile(RULES).unwrap();
        let mut serial = prodsys::CondEngine::new(ProductionDb::new(rules.clone()).unwrap());
        let mut parallel = prodsys::CondEngine::new(ProductionDb::new(rules).unwrap());
        parallel.set_parallel(true);
        use prodsys::MatchEngine;
        for (is_insert, c, t) in materialize(&ops) {
            if is_insert {
                serial.insert(ClassId(c), t.clone());
                parallel.insert(ClassId(c), t);
            } else {
                serial.remove(ClassId(c), &t);
                parallel.remove(ClassId(c), &t);
            }
            prop_assert_eq!(serial.conflict_set().sorted(), parallel.conflict_set().sorted());
        }
        prop_assert_eq!(serial.pattern_count(), parallel.pattern_count());
    }

    /// The cond engine's pattern store returns to baseline when all WM
    /// elements are deleted again (full GC of matching patterns).
    #[test]
    fn cond_patterns_collected_on_full_deletion(
        ops in proptest::collection::vec((0u8..3, 0i64..2, 0i64..3), 1..12)
    ) {
        let rules = ops5::compile(RULES).unwrap();
        let pdb = ProductionDb::new(rules).unwrap();
        let mut e = prodsys::CondEngine::new(pdb);
        let baseline = e.pattern_count();
        use prodsys::MatchEngine;
        let mut inserted = Vec::new();
        for (c, a, b) in ops {
            let t = tuple![a, b, 0];
            e.insert(ClassId(c as usize), t.clone());
            inserted.push((c as usize, t));
        }
        for (c, t) in inserted.into_iter().rev() {
            e.remove(ClassId(c), &t);
        }
        prop_assert!(e.conflict_set().is_empty());
        prop_assert_eq!(e.pattern_count(), baseline, "patterns leak");
    }
}
