//! "Our method can be used for [maintaining materialized views and
//! triggers] as well" (§6): the view workload must converge to the exact
//! view contents on every engine, and track base-table updates
//! incrementally.

use prodsys::{EngineKind, ProductionSystem, Strategy};
use relstore::tuple;
use workload::view;

fn build(kind: EngineKind) -> ProductionSystem {
    let mut sys = ProductionSystem::from_source(view::VIEW_RULES, kind, Strategy::Fifo).unwrap();
    for (class, t) in view::base_load() {
        sys.insert(class, t).unwrap();
    }
    sys
}

#[test]
fn view_materializes_on_every_engine() {
    for kind in EngineKind::ALL {
        let mut sys = build(kind);
        let out = sys.run(100);
        assert!(!out.limited, "{}", kind.label());
        assert_eq!(
            sys.wm("View").unwrap(),
            view::expected_view(),
            "{}",
            kind.label()
        );
    }
}

#[test]
fn view_tracks_inserts_and_deletes() {
    for kind in [EngineKind::Rete, EngineKind::Cond, EngineKind::Query] {
        let mut sys = build(kind);
        sys.run(100);

        // A new qualifying employee appears in the view.
        sys.insert("Emp", tuple!["Zoe", 7000, 1]).unwrap();
        sys.run(100);
        assert!(
            sys.wm("View").unwrap().contains(&tuple!["Zoe", 7000, 3]),
            "{}: insert propagated",
            kind.label()
        );

        // Removing the base tuple removes the view row.
        sys.remove("Emp", &tuple!["Zoe", 7000, 1]).unwrap();
        sys.run(100);
        assert!(
            !sys.wm("View").unwrap().contains(&tuple!["Zoe", 7000, 3]),
            "{}: delete propagated",
            kind.label()
        );
        assert_eq!(
            sys.wm("View").unwrap(),
            view::expected_view(),
            "{}",
            kind.label()
        );
    }
}

#[test]
fn non_qualifying_updates_are_ignored() {
    for kind in [EngineKind::Rete, EngineKind::Cond] {
        let mut sys = build(kind);
        sys.run(100);
        // Low salary and wrong department: readily ignorable updates
        // (the RIU idea of Buneman & Clemons, §2.3).
        sys.insert("Emp", tuple!["Tmp", 1000, 1]).unwrap();
        sys.insert("Emp", tuple!["Other", 9999, 2]).unwrap();
        let out = sys.run(100);
        assert_eq!(out.fired, 0, "{}: nothing to do", kind.label());
        assert_eq!(
            sys.wm("View").unwrap(),
            view::expected_view(),
            "{}",
            kind.label()
        );
    }
}
