//! The OPS5 pretty-printer round-trips every shape the synthetic
//! generator produces, and printed rule sets behave identically.

use ops5::ClassId;
use prodsys::{make_engine, EngineKind, ProductionDb};
use workload::{Op, RuleGenConfig, TraceConfig};

#[test]
fn generated_rulebases_roundtrip() {
    for seed in 0..6 {
        for negated in [0.0, 0.5] {
            let cfg = RuleGenConfig {
                rules: 24,
                ces_per_rule: 3,
                classes: 3,
                negated_fraction: negated,
                seed,
                ..Default::default()
            };
            let rs = cfg.rules();
            let printed = ops5::print(&rs);
            let rs2 = ops5::compile(&printed)
                .unwrap_or_else(|e| panic!("reprint failed (seed {seed}): {e}\n{printed}"));
            assert_eq!(rs, rs2, "seed {seed} negated {negated}");
        }
    }
}

#[test]
fn printed_rulebase_matches_original_behaviour() {
    // Same conflict sets when running the printed source instead of the
    // original.
    let cfg = RuleGenConfig {
        rules: 16,
        ces_per_rule: 2,
        domain: 4,
        seed: 9,
        ..Default::default()
    };
    let original = cfg.rules();
    let reprinted = ops5::compile(&ops5::print(&original)).unwrap();
    let mut a = make_engine(EngineKind::Rete, ProductionDb::new(original).unwrap());
    let mut b = make_engine(EngineKind::Rete, ProductionDb::new(reprinted).unwrap());
    let trace = TraceConfig {
        ops: 120,
        seed: 10,
        ..Default::default()
    }
    .trace(cfg.classes, cfg.attrs);
    for op in trace {
        match op {
            Op::Insert(c, t) => {
                a.insert(ClassId(c), t.clone());
                b.insert(ClassId(c), t);
            }
            Op::Remove(c, t) => {
                a.remove(ClassId(c), &t);
                b.remove(ClassId(c), &t);
            }
        }
        assert_eq!(a.conflict_set().sorted(), b.conflict_set().sorted());
    }
}

#[test]
fn paper_programs_roundtrip() {
    for src in [
        workload::paper::EXAMPLE2,
        workload::paper::EXAMPLE3,
        workload::paper::EXAMPLE4,
        workload::view::VIEW_RULES,
        workload::programs::MONKEY_BANANAS,
        workload::programs::INVENTORY,
    ] {
        let rs = ops5::compile(src).unwrap();
        let rs2 = ops5::compile(&ops5::print(&rs)).unwrap();
        assert_eq!(rs, rs2);
    }
}
