//! Persistent working memory: "the working memory can reside on secondary
//! storage and be persistent" (§3.2). Snapshot the database, restore it,
//! re-attach a fresh engine, and continue exactly where the run stopped.

use ops5::ClassId;
use prodsys::{bootstrap, make_engine, EngineKind, ProductionDb};
use relstore::{snapshot, tuple};
use std::sync::Arc;

const SRC: &str = r#"
    (literalize Emp name salary manager dno)
    (literalize Dept dno dname floor manager)
    (p R2
        (Emp ^dno <D>)
        (Dept ^dno <D> ^dname Toy ^floor 1)
        -->
        (remove 1))
"#;

#[test]
fn snapshot_restore_rebuilds_conflict_set() {
    for kind in EngineKind::ALL {
        // Phase 1: load WM and match.
        let rules = ops5::compile(SRC).unwrap();
        let pdb = ProductionDb::new(rules.clone()).unwrap();
        let mut engine = make_engine(kind, pdb.clone());
        engine.insert(ClassId(0), tuple!["Ann", 1000, "Sam", 7]);
        engine.insert(ClassId(0), tuple!["Bob", 2000, "Sam", 8]);
        engine.insert(ClassId(1), tuple![7, "Toy", 1, "Sam"]);
        let before = engine.conflict_set().sorted();
        assert_eq!(before.len(), 1);

        // Phase 2: snapshot, restore into a new database, re-attach.
        let image = snapshot::save(pdb.db()).unwrap();
        let restored = Arc::new(snapshot::load(image).unwrap());
        let pdb2 = ProductionDb::attach(restored, rules).unwrap();
        assert_eq!(pdb2.wm_total(), 3, "{}", kind.label());
        // The DB-Rete engine re-attaches to its snapshot-restored
        // LEFT/RIGHT relations; the others rebuild via bootstrap.
        let mut engine2 = make_engine(kind, pdb2);
        bootstrap(engine2.as_mut());
        assert_eq!(engine2.conflict_set().sorted(), before, "{}", kind.label());

        // Phase 3: the restored system keeps matching.
        let deltas = engine2.insert(ClassId(0), tuple!["Cid", 3000, "Sam", 7]);
        assert_eq!(deltas.len(), 1, "{}", kind.label());
    }
}

/// `bootstrap` now replays the restored WM as one §4.2 delta batch; the
/// result must be indistinguishable from the old tuple-at-a-time replay.
#[test]
fn batched_bootstrap_matches_per_tuple_replay() {
    for kind in EngineKind::ALL {
        let rules = ops5::compile(SRC).unwrap();
        let pdb = ProductionDb::new(rules.clone()).unwrap();
        let mut engine = make_engine(kind, pdb.clone());
        for i in 0..12i64 {
            engine.insert(ClassId(0), tuple![format!("e{i}"), 100 * i, "Sam", i % 3]);
        }
        engine.insert(ClassId(1), tuple![0, "Toy", 1, "Sam"]);
        engine.insert(ClassId(1), tuple![2, "Toy", 1, "Pat"]);

        let image = snapshot::save(pdb.db()).unwrap();

        // Batched path: the one `bootstrap` now uses.
        let restored = Arc::new(snapshot::load(image.clone()).unwrap());
        let pdb_batch = ProductionDb::attach(restored, rules.clone()).unwrap();
        let mut batched = make_engine(kind, pdb_batch.clone());
        bootstrap(batched.as_mut());

        // Reference path: replay the same WM tuple at a time.
        let restored = Arc::new(snapshot::load(image).unwrap());
        let pdb_seq = ProductionDb::attach(restored, rules).unwrap();
        let mut per_tuple = make_engine(kind, pdb_seq.clone());
        if batched.needs_bootstrap() {
            for c in 0..pdb_seq.class_count() {
                let class = ClassId(c);
                for (tid, tuple) in pdb_seq.wm_scan(class).unwrap() {
                    per_tuple.maintain_insert(class, tid, &tuple);
                }
            }
        }

        assert_eq!(
            batched.conflict_set().sorted(),
            per_tuple.conflict_set().sorted(),
            "{}",
            kind.label()
        );
        assert_eq!(
            engine.conflict_set().sorted(),
            batched.conflict_set().sorted(),
            "{}: restored match state equals the original",
            kind.label()
        );
    }
}

#[test]
fn snapshot_preserves_wm_exactly() {
    let rules = ops5::compile(SRC).unwrap();
    let pdb = ProductionDb::new(rules.clone()).unwrap();
    let mut engine = make_engine(EngineKind::Cond, pdb.clone());
    for i in 0..50i64 {
        engine.insert(ClassId(0), tuple![format!("e{i}"), 100 * i, "Sam", i % 5]);
    }
    engine.remove(ClassId(0), &tuple!["e7", 700, "Sam", 2]);

    let image = snapshot::save(pdb.db()).unwrap();
    let restored = snapshot::load(image).unwrap();
    let emp = restored.rel_id("Emp").unwrap();
    assert_eq!(restored.relation_len(emp), 49);
    // Content check via sorted dumps.
    let mut orig: Vec<_> = pdb
        .db()
        .select(pdb.class_rel(ClassId(0)), &relstore::Restriction::default())
        .unwrap()
        .into_iter()
        .map(|(_, t)| t)
        .collect();
    let mut back: Vec<_> = restored
        .select(emp, &relstore::Restriction::default())
        .unwrap()
        .into_iter()
        .map(|(_, t)| t)
        .collect();
    orig.sort();
    back.sort();
    assert_eq!(orig, back);
}
