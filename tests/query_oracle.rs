//! Property test: the conjunctive-query executor (greedy plan, index
//! nested loops, seeded evaluation, NOT EXISTS) must agree with a naive
//! brute-force oracle on random databases and queries.

use proptest::prelude::*;
use relstore::{
    tuple, CompOp, ConjunctiveQuery, Database, JoinPred, QueryExecutor, QueryTerm, Restriction,
    Schema, Selection, Tuple, TupleId,
};

fn db_with(rows: &[Vec<(i64, i64)>]) -> (Database, Vec<relstore::RelId>) {
    let db = Database::new();
    let mut rids = Vec::new();
    for (i, rel_rows) in rows.iter().enumerate() {
        let rid = db
            .create_relation(Schema::new(format!("R{i}"), ["a", "b"]))
            .unwrap();
        // Index half the relations to exercise both access paths.
        if i % 2 == 0 {
            db.create_hash_index(rid, 0).unwrap();
        }
        for (a, b) in rel_rows {
            db.insert(rid, tuple![*a, *b]).unwrap();
        }
        rids.push(rid);
    }
    (db, rids)
}

/// Brute force: enumerate every combination of positive-term rows, apply
/// all predicates, then check negated terms.
fn oracle(db: &Database, query: &ConjunctiveQuery) -> Vec<Vec<Option<TupleId>>> {
    let all_rows: Vec<Vec<(TupleId, Tuple)>> = query
        .terms
        .iter()
        .map(|t| db.select(t.rel, &Restriction::default()).unwrap())
        .collect();
    let positives = query.positive_terms();
    let negatives = query.negated_terms();
    let mut out = Vec::new();
    // Odometer over positive terms.
    let mut idx = vec![0usize; positives.len()];
    'outer: loop {
        // Build the candidate binding.
        let mut slots: Vec<Option<(TupleId, Tuple)>> = vec![None; query.terms.len()];
        for (k, &t) in positives.iter().enumerate() {
            if all_rows[t].is_empty() {
                break 'outer;
            }
            slots[t] = Some(all_rows[t][idx[k]].clone());
        }
        let ok = query
            .terms
            .iter()
            .enumerate()
            .all(|(t, term)| match &slots[t] {
                Some((_, row)) => term.restriction.matches(row),
                None => true,
            })
            && query.joins.iter().all(|j| {
                match (&slots[j.left_term], &slots[j.right_term]) {
                    (Some((_, l)), Some((_, r))) => j.op.eval(&l[j.left_attr], &r[j.right_attr]),
                    _ => true, // involves a negated term; checked below
                }
            });
        if ok {
            // NOT EXISTS for each negated term.
            let blocked = negatives.iter().any(|&nt| {
                all_rows[nt].iter().any(|(_, row)| {
                    query.terms[nt].restriction.matches(row)
                        && query.joins.iter().filter(|j| j.touches(nt)).all(|j| {
                            let (other, my_attr, other_attr, op) = if j.left_term == nt {
                                (j.right_term, j.left_attr, j.right_attr, j.op)
                            } else {
                                (j.left_term, j.right_attr, j.left_attr, j.op.flip())
                            };
                            match &slots[other] {
                                Some((_, o)) => op.eval(&row[my_attr], &o[other_attr]),
                                None => false,
                            }
                        })
                })
            });
            if !blocked {
                out.push(
                    slots
                        .iter()
                        .map(|s| s.as_ref().map(|(tid, _)| *tid))
                        .collect(),
                );
            }
        }
        // Advance the odometer.
        for k in (0..idx.len()).rev() {
            idx[k] += 1;
            if idx[k] < all_rows[positives[k]].len() {
                continue 'outer;
            }
            idx[k] = 0;
            if k == 0 {
                break 'outer;
            }
        }
        if idx.is_empty() {
            break;
        }
    }
    out.sort();
    out
}

fn row_strategy() -> impl Strategy<Value = Vec<(i64, i64)>> {
    proptest::collection::vec((0i64..4, 0i64..4), 0..6)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn executor_matches_oracle_two_way(
        r0 in row_strategy(),
        r1 in row_strategy(),
        sel in 0i64..4,
        join_op in prop_oneof![Just(CompOp::Eq), Just(CompOp::Lt), Just(CompOp::Ne)],
    ) {
        let (db, rids) = db_with(&[r0, r1]);
        let q = ConjunctiveQuery::new(
            vec![
                QueryTerm::new(rids[0], Restriction::new(vec![Selection::new(1, CompOp::Ge, sel)])),
                QueryTerm::new(rids[1], Restriction::default()),
            ],
            vec![JoinPred { left_term: 0, left_attr: 0, op: join_op, right_term: 1, right_attr: 0 }],
        );
        let mut got: Vec<Vec<Option<TupleId>>> = QueryExecutor::new(&db)
            .exec(&q, None)
            .unwrap()
            .into_iter()
            .map(|b| b.slots.iter().map(|s| s.as_ref().map(|(t, _)| *t)).collect())
            .collect();
        got.sort();
        prop_assert_eq!(got, oracle(&db, &q));
    }

    #[test]
    fn executor_matches_oracle_three_way_with_negation(
        r0 in row_strategy(),
        r1 in row_strategy(),
        r2 in row_strategy(),
        neg_sel in 0i64..4,
    ) {
        let (db, rids) = db_with(&[r0, r1, r2]);
        let q = ConjunctiveQuery::new(
            vec![
                QueryTerm::new(rids[0], Restriction::default()),
                QueryTerm::new(rids[1], Restriction::default()),
                QueryTerm::negated(
                    rids[2],
                    Restriction::new(vec![Selection::new(1, CompOp::Le, neg_sel)]),
                ),
            ],
            vec![
                JoinPred::eq(0, 0, 1, 0),
                JoinPred::eq(2, 0, 0, 1),
            ],
        );
        let mut got: Vec<Vec<Option<TupleId>>> = QueryExecutor::new(&db)
            .exec(&q, None)
            .unwrap()
            .into_iter()
            .map(|b| b.slots.iter().map(|s| s.as_ref().map(|(t, _)| *t)).collect())
            .collect();
        got.sort();
        prop_assert_eq!(got, oracle(&db, &q));
    }

    #[test]
    fn seeded_union_equals_full_result(
        r0 in row_strategy(),
        r1 in row_strategy(),
    ) {
        let (db, rids) = db_with(&[r0, r1]);
        let q = ConjunctiveQuery::new(
            vec![
                QueryTerm::new(rids[0], Restriction::default()),
                QueryTerm::new(rids[1], Restriction::default()),
            ],
            vec![JoinPred::eq(0, 0, 1, 0)],
        );
        let exec = QueryExecutor::new(&db);
        let mut full: Vec<Vec<Option<TupleId>>> = exec
            .exec(&q, None)
            .unwrap()
            .into_iter()
            .map(|b| b.slots.iter().map(|s| s.as_ref().map(|(t, _)| *t)).collect())
            .collect();
        full.sort();
        // Union over seeding each term-0 row must equal the full result.
        let mut seeded: Vec<Vec<Option<TupleId>>> = Vec::new();
        for (tid, t) in db.select(rids[0], &Restriction::default()).unwrap() {
            seeded.extend(
                exec.exec(&q, Some((0, tid, &t)))
                    .unwrap()
                    .into_iter()
                    .map(|b| b.slots.iter().map(|s| s.as_ref().map(|(x, _)| *x)).collect::<Vec<_>>()),
            );
        }
        seeded.sort();
        prop_assert_eq!(full, seeded);
    }
}
