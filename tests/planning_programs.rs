//! End-to-end multi-cycle programs: a planning chain (monkey & bananas)
//! and an inventory workflow, identical across all five engines.

use prodsys::{EngineKind, ProductionSystem, Strategy};
use relstore::tuple;
use workload::programs;

#[test]
fn monkey_and_bananas_plans_identically_on_all_engines() {
    for kind in EngineKind::ALL {
        let mut sys =
            ProductionSystem::from_source(programs::MONKEY_BANANAS, kind, Strategy::Fifo).unwrap();
        for (class, t) in programs::monkey_bananas_wm() {
            sys.insert(class, t).unwrap();
        }
        let out = sys.run(50);
        assert!(out.halted, "{}: plan reaches the bananas", kind.label());
        assert_eq!(out.fired, 4, "{}", kind.label());
        assert_eq!(
            out.writes,
            programs::monkey_bananas_plan(),
            "{}",
            kind.label()
        );
        // Final world: monkey on the ladder at the bananas, holding them.
        assert_eq!(
            sys.wm("Monkey").unwrap(),
            vec![tuple!["center", "ladder", "bananas"]],
            "{}",
            kind.label()
        );
        assert!(sys
            .wm("Goal")
            .unwrap()
            .contains(&tuple!["satisfied", "holds", "bananas"]));
    }
}

#[test]
fn inventory_workflow_raises_and_clears_pos() {
    for kind in EngineKind::ALL {
        let mut sys =
            ProductionSystem::from_source(programs::INVENTORY, kind, Strategy::Fifo).unwrap();
        for (class, t) in programs::inventory_wm() {
            sys.insert(class, t).unwrap();
        }
        let out = sys.run(50);
        assert!(!out.limited, "{}", kind.label());
        // widget (2 < 10) and sprocket (0 < 5) trigger POs; gadget does not.
        assert_eq!(sys.wm("PO").unwrap().len(), 2, "{}", kind.label());

        // A shipment arrives for the widget.
        sys.insert("Receipt", tuple!["widget", 40]).unwrap();
        let out = sys.run(50);
        assert!(out.fired >= 1, "{}", kind.label());
        assert!(
            sys.wm("PO").unwrap().contains(&tuple!["widget", "closed"]),
            "{}: widget PO closed",
            kind.label()
        );
        assert!(
            sys.wm("Product")
                .unwrap()
                .contains(&tuple!["widget", 40, 10]),
            "{}: stock replenished",
            kind.label()
        );
        assert!(sys.wm("Receipt").unwrap().is_empty(), "{}", kind.label());
        // The sprocket PO stays open.
        assert!(sys.wm("PO").unwrap().contains(&tuple!["sprocket", "open"]));
    }
}

#[test]
fn reordering_after_receipt_consumption() {
    // After closing, dropping stock again must not raise a second PO while
    // the closed one exists (the negated CE sees any PO for the sku).
    let mut sys =
        ProductionSystem::from_source(programs::INVENTORY, EngineKind::Cond, Strategy::Fifo)
            .unwrap();
    sys.insert("Product", tuple!["widget", 2, 10]).unwrap();
    sys.run(50);
    assert_eq!(sys.wm("PO").unwrap().len(), 1);
    sys.insert("Receipt", tuple!["widget", 40]).unwrap();
    sys.run(50);
    // Stock drops again.
    sys.remove("Product", &tuple!["widget", 40, 10]).unwrap();
    sys.insert("Product", tuple!["widget", 1, 10]).unwrap();
    sys.run(50);
    assert_eq!(
        sys.wm("PO").unwrap().len(),
        1,
        "closed PO blocks re-raising"
    );
}
