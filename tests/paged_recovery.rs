//! Paged working memory: file-backed pages behind a small buffer pool
//! must be observationally identical to in-memory storage, and a crash at
//! any WAL byte boundary must recover exactly the committed prefix.

use proptest::prelude::*;
use relstore::{tuple, Database, Restriction, Schema, Tuple, Value};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static NEXT_DIR: AtomicUsize = AtomicUsize::new(0);

fn tmp_dir(tag: &str) -> PathBuf {
    let n = NEXT_DIR.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("relstore-paged-{tag}-{}-{n}", std::process::id()))
}

/// Sorted dump of every relation's tuples, name-keyed — the equality
/// oracle for "same working memory".
fn dump(db: &Database) -> Vec<(String, Vec<Tuple>)> {
    let mut out: Vec<(String, Vec<Tuple>)> = db
        .relation_names()
        .into_iter()
        .map(|(rid, name)| {
            let mut rows: Vec<Tuple> = db
                .select(rid, &Restriction::default())
                .unwrap()
                .into_iter()
                .map(|(_, t)| t)
                .collect();
            rows.sort();
            (name, rows)
        })
        .collect();
    out.sort();
    out
}

#[test]
fn paged_database_matches_memory_under_forced_eviction() {
    let dir = tmp_dir("equiv");
    // Two frames against hundreds of fat rows: the working set cannot fit.
    let paged = Database::new_paged(&dir, 2).unwrap();
    let mem = Database::new();
    for db in [&paged, &mem] {
        let r = db.create_relation(Schema::new("R", ["k", "pad"])).unwrap();
        db.create_hash_index(r, 0).unwrap();
        let s = db.create_relation(Schema::new("S", ["k"])).unwrap();
        for i in 0..300i64 {
            db.insert(r, tuple![i % 17, "x".repeat(100 + (i as usize % 50))])
                .unwrap();
            if i % 3 == 0 {
                db.insert(s, tuple![i % 17]).unwrap();
            }
            if i % 7 == 0 {
                db.delete_equal(
                    r,
                    &tuple![(i - 3) % 17, "x".repeat(100 + ((i - 3) as usize % 50))],
                )
                .ok();
            }
        }
    }
    assert_eq!(dump(&paged), dump(&mem));
    // Point lookups through the hash index agree too.
    let rp = paged.rel_id("R").unwrap();
    let rm = mem.rel_id("R").unwrap();
    for k in 0..17i64 {
        let restr = Restriction::new(vec![relstore::Selection::eq(0, k)]);
        let mut a: Vec<Tuple> = paged
            .select(rp, &restr)
            .unwrap()
            .into_iter()
            .map(|(_, t)| t)
            .collect();
        let mut b: Vec<Tuple> = mem
            .select(rm, &restr)
            .unwrap()
            .into_iter()
            .map(|(_, t)| t)
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "indexed lookup k={k}");
    }
    let snap = paged.stats().snapshot();
    assert!(
        snap.pool_evictions > 0,
        "pool must be smaller than the working set"
    );
    assert!(snap.page_reads > 0, "evicted pages were faulted back in");
    assert!(
        snap.page_writes > 0,
        "dirty evictions reached the page file"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_and_reopen_recovers_exact_state() {
    let dir = tmp_dir("reopen");
    let before;
    {
        let db = Database::new_paged(&dir, 4).unwrap();
        let r = db.create_relation(Schema::new("R", ["a", "b"])).unwrap();
        db.create_ord_index(r, 0).unwrap();
        for i in 0..40i64 {
            db.insert(r, tuple![i, format!("row-{i}")]).unwrap();
        }
        db.checkpoint().unwrap();
        // Post-checkpoint work lives only in the WAL.
        for i in 40..55i64 {
            db.insert(r, tuple![i, format!("row-{i}")]).unwrap();
        }
        db.delete_equal(r, &tuple![3, "row-3"]).unwrap();
        db.sync_wal().unwrap();
        before = dump(&db);
    } // "crash"

    let (back, report) = Database::open_paged(&dir, 4).unwrap();
    assert!(report.snapshot_loaded, "checkpoint snapshot was found");
    assert_eq!(
        report.records_replayed, 16,
        "15 inserts + 1 delete replayed"
    );
    assert!(report.torn.is_none());
    assert_eq!(dump(&back), before);
    let r = back.rel_id("R").unwrap();
    assert!(back.read(r, |rel| rel.has_ord_index(0)).unwrap());
    // The reopened database keeps working in paged mode.
    assert!(back.is_paged());
    back.insert(r, tuple![99, "post-recovery"]).unwrap();
    assert_eq!(back.relation_len(r), 55);
    std::fs::remove_dir_all(&dir).ok();
}

/// The checkpoint crash window: the snapshot has been renamed into place
/// but the WAL was not yet truncated when the process died. Recovery
/// must skip every log record the snapshot already contains (replaying
/// them would duplicate the inserts — and fail outright on the replayed
/// CreateRelation) and finish the interrupted truncation.
#[test]
fn crash_between_snapshot_rename_and_wal_truncate_recovers() {
    let dir = tmp_dir("midckpt");
    let before;
    {
        let db = Database::new_paged(&dir, 4).unwrap();
        let r = db.create_relation(Schema::new("R", ["a"])).unwrap();
        for i in 0..20i64 {
            db.insert(r, tuple![i]).unwrap();
        }
        db.sync_wal().unwrap();
        // Save the pre-checkpoint log, checkpoint, then put the old log
        // back: the state a crash right after the snapshot rename leaves.
        let pre_wal = std::fs::read(dir.join("wal.log")).unwrap();
        db.checkpoint().unwrap();
        before = dump(&db);
        drop(db);
        std::fs::write(dir.join("wal.log"), &pre_wal).unwrap();
    }
    let (back, report) = Database::open_paged(&dir, 4).unwrap();
    assert!(report.snapshot_loaded);
    assert_eq!(
        report.records_replayed, 0,
        "snapshot already holds them all"
    );
    assert_eq!(report.records_skipped, 21, "create + 20 inserts skipped");
    assert_eq!(dump(&back), before);
    // New work after recovery must not collide with skipped LSNs.
    let r = back.rel_id("R").unwrap();
    back.insert(r, tuple![99]).unwrap();
    back.sync_wal().unwrap();
    drop(back);
    // The interrupted truncation was finished on open: a second recovery
    // sees only the post-recovery insert.
    let (again, report2) = Database::open_paged(&dir, 4).unwrap();
    assert_eq!(report2.records_skipped, 0);
    assert_eq!(report2.records_replayed, 1);
    assert_eq!(again.relation_len(again.rel_id("R").unwrap()), 21);
    std::fs::remove_dir_all(&dir).ok();
}

/// Checkpoints racing live writers: every insert that committed (sync'd)
/// must survive recovery exactly once, whether it landed in a snapshot,
/// in the log suffix a checkpoint kept, or in both epochs' history.
#[test]
fn checkpoint_concurrent_with_writers_loses_nothing() {
    let dir = tmp_dir("ckpt-race");
    let before;
    {
        let db = Database::new_paged(&dir, 4).unwrap();
        let r = db.create_relation(Schema::new("R", ["w", "i"])).unwrap();
        std::thread::scope(|s| {
            for w in 0..2i64 {
                let db = &db;
                s.spawn(move || {
                    for i in 0..100i64 {
                        db.insert(r, tuple![w, i]).unwrap();
                        db.sync_wal().unwrap();
                    }
                });
            }
            let db = &db;
            s.spawn(move || {
                for _ in 0..5 {
                    db.checkpoint().unwrap();
                }
            });
        });
        db.sync_wal().unwrap();
        before = dump(&db);
    } // "crash"
    let (back, _report) = Database::open_paged(&dir, 4).unwrap();
    assert_eq!(dump(&back), before, "no insert lost, none duplicated");
    assert_eq!(back.relation_len(back.rel_id("R").unwrap()), 200);
    std::fs::remove_dir_all(&dir).ok();
}

/// The satellite regression for the torn-tail bug, at the recovery level:
/// chop the *encoded log file* at every byte offset and open the database;
/// whatever whole records survive must reproduce exactly that prefix's
/// working memory — never an error, never a partial record's effects.
#[test]
fn recovery_at_every_wal_cut_yields_prefix_state() {
    let dir = tmp_dir("cuts");
    {
        let db = Database::new_paged(&dir, 4).unwrap();
        let r = db.create_relation(Schema::new("R", ["v"])).unwrap();
        db.insert(r, tuple!["a"]).unwrap();
        db.insert(r, tuple!["b"]).unwrap();
        db.delete_equal(r, &tuple!["a"]).unwrap();
        db.insert(r, tuple!["c"]).unwrap();
        db.sync_wal().unwrap();
    }
    let log = std::fs::read(dir.join("wal.log")).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    // Expected relation contents after replaying k whole records.
    let states: [Option<Vec<&str>>; 6] = [
        None,                 // nothing: relation not yet created
        Some(vec![]),         // create R
        Some(vec!["a"]),      // insert a
        Some(vec!["a", "b"]), // insert b
        Some(vec!["b"]),      // delete a
        Some(vec!["b", "c"]), // insert c
    ];
    // Frame boundaries: the cuts where the log is exactly k records.
    let mut boundaries = vec![0usize];
    {
        let (records, _, _) = decode_boundaries(&log);
        boundaries.extend(records);
    }
    assert_eq!(boundaries.len(), 6, "five records logged");

    for cut in 0..=log.len() {
        let dir = tmp_dir("cut");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("wal.log"), &log[..cut]).unwrap();
        let (db, report) = Database::open_paged(&dir, 4).unwrap();
        let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        assert_eq!(report.records_replayed, whole, "cut at {cut}");
        assert_eq!(
            report.torn.is_none(),
            boundaries.contains(&cut),
            "cut at {cut}: torn tail iff mid-frame"
        );
        match &states[whole] {
            None => assert_eq!(db.relation_count(), 0, "cut at {cut}"),
            Some(want) => {
                let r = db.rel_id("R").unwrap();
                let mut got: Vec<Tuple> = db
                    .select(r, &Restriction::default())
                    .unwrap()
                    .into_iter()
                    .map(|(_, t)| t)
                    .collect();
                got.sort();
                let want: Vec<Tuple> = want.iter().map(|s| tuple![*s]).collect();
                assert_eq!(got, want, "cut at {cut}");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Frame-boundary offsets of a WAL byte image, via the public prefix
/// decoder: re-decode every prefix and note where the record count grows.
fn decode_boundaries(log: &[u8]) -> (Vec<usize>, usize, usize) {
    let mut cuts = Vec::new();
    let mut last = 0;
    for cut in 1..=log.len() {
        let (records, torn) = relstore::Wal::decode_prefix(&log[..cut]);
        if torn.is_none() && records.len() > last {
            last = records.len();
            cuts.push(cut);
        }
    }
    (cuts, last, log.len())
}

/// One step of the randomized crash workload.
#[derive(Debug, Clone)]
enum Op {
    Insert(i64),
    /// Delete the i-th live value (mod live count); no-op when empty.
    Delete(u8),
    Checkpoint,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0i64..40).prop_map(Op::Insert),
        2 => (0u8..32).prop_map(Op::Delete),
        1 => Just(Op::Checkpoint),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random inserts/deletes/checkpoints against a paged database, then
    /// a "crash" that truncates the WAL at an arbitrary byte offset.
    /// Recovery must land exactly on the state after the longest prefix
    /// of operations whose log records fully survived — and agree with an
    /// in-memory database replaying that same prefix.
    #[test]
    fn crash_at_arbitrary_wal_offset_recovers_committed_prefix(
        ops in proptest::collection::vec(op_strategy(), 1..30),
        cut_sel in 0u32..1_000_000,
    ) {
        let dir = tmp_dir("prop");
        let db = Database::new_paged(&dir, 2).unwrap();
        let r = db.create_relation(Schema::new("R", ["v"])).unwrap();
        db.sync_wal().unwrap();
        let wal_path = dir.join("wal.log");
        let wal_len = |p: &std::path::Path| std::fs::metadata(p).unwrap().len() as usize;

        // `marks`: after each durable point, the WAL byte length and the
        // multiset of live values. A checkpoint restarts the log, so the
        // marks list restarts from the new base state.
        let mut live: Vec<i64> = Vec::new();
        let mut marks: Vec<(usize, Vec<i64>)> = vec![(wal_len(&wal_path), live.clone())];
        for op in &ops {
            match op {
                Op::Insert(v) => {
                    db.insert(r, tuple![*v]).unwrap();
                    live.push(*v);
                    live.sort_unstable();
                }
                Op::Delete(i) => {
                    if !live.is_empty() {
                        let v = live.remove(*i as usize % live.len());
                        db.delete_equal(r, &tuple![v]).unwrap();
                    }
                }
                Op::Checkpoint => {
                    db.checkpoint().unwrap();
                    marks = Vec::new();
                }
            }
            db.sync_wal().unwrap();
            marks.push((wal_len(&wal_path), live.clone()));
        }
        drop(db); // "crash"

        // Truncate the log at an arbitrary offset past the last checkpoint.
        let total = wal_len(&wal_path);
        let base = marks.first().map_or(0, |(len, _)| *len).min(total);
        let cut = base + ((cut_sel as usize) % (total - base + 1));
        let full = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &full[..cut]).unwrap();

        let (back, _report) = Database::open_paged(&dir, 2).unwrap();
        let r2 = back.rel_id("R").unwrap();
        let mut got: Vec<i64> = back
            .select(r2, &Restriction::default())
            .unwrap()
            .into_iter()
            .map(|(_, t)| match &t[0] {
                Value::Int(i) => *i,
                other => panic!("unexpected value {other:?}"),
            })
            .collect();
        got.sort_unstable();

        // Expected: the newest mark whose WAL length fits in the cut.
        let want = marks
            .iter()
            .rev()
            .find(|(len, _)| *len <= cut)
            .map(|(_, live)| live.clone())
            .unwrap_or_default();
        prop_assert_eq!(got, want, "cut {} of {} (base {})", cut, total, base);
        std::fs::remove_dir_all(&dir).ok();
    }
}
