//! Fault injection: a storage error in the middle of a transaction must
//! abort that transaction — rolling its effects back and surfacing the
//! error in [`ConcurrentStats`] — never panic a worker or corrupt
//! working memory.
//!
//! The hook is [`Database::inject_fault_after`]: after the given number
//! of further transactional operations, exactly one operation fails with
//! [`Error::Injected`], then the fault disarms itself.

use ops5::ClassId;
use prodsys::{make_engine, ConcurrentExecutor, EngineKind, ProductionDb};
use relstore::{tuple, Error, Restriction, Schema};

/// Transaction-level contract: the armed fault fires on exactly one
/// operation, the dropped transaction rolls back, and the database is
/// usable (disarmed) afterwards.
#[test]
fn armed_fault_aborts_one_txn_and_disarms() {
    let db = relstore::Database::new();
    let rid = db.create_relation(Schema::new("R", ["a"])).unwrap();
    db.insert(rid, tuple![1]).unwrap();

    // Fires on the very next transactional operation.
    db.inject_fault_after(0);
    let txn = db.begin();
    let err = txn.select(rid, &Restriction::default()).unwrap_err();
    assert!(
        matches!(err, Error::Injected(_)),
        "expected the injected fault, got: {err}"
    );
    drop(txn); // abort; nothing to undo, but the path must not panic

    // Disarmed: a fresh transaction succeeds end to end.
    let txn = db.begin();
    assert_eq!(txn.select(rid, &Restriction::default()).unwrap().len(), 1);
    txn.commit().unwrap();

    // A fault mid-write rolls the earlier writes of that txn back.
    db.inject_fault_after(1);
    let mut txn = db.begin();
    txn.insert(rid, tuple![2]).unwrap(); // op 1: survives the countdown
    let err = txn.insert(rid, tuple![3]).unwrap_err(); // op 2: fires
    assert!(matches!(err, Error::Injected(_)), "{err}");
    drop(txn); // abort undoes the eager insert of tuple![2]
    assert_eq!(
        db.select(rid, &Restriction::default()).unwrap().len(),
        1,
        "the aborted transaction's insert was rolled back"
    );
}

const COUNTER_RULES: &str = r#"
    (literalize Item n)
    (literalize Done n)
    (p Mark
        (Item ^n <N>)
        -(Done ^n <N>)
        -->
        (make Done ^n <N>))
"#;

/// End-to-end contract: an injected storage error during a concurrent
/// run fails one transaction (reported in the stats, with its error
/// message), the worker does not panic, the failed instantiation is
/// retried, and working memory ends fully consistent.
#[test]
fn concurrent_run_survives_injected_storage_error() {
    for kind in [EngineKind::Rete, EngineKind::Cond] {
        let rules = ops5::compile(COUNTER_RULES).unwrap();
        let pdb = ProductionDb::new(rules).unwrap();
        let db = pdb.db().clone();
        let mut ex = ConcurrentExecutor::new(make_engine(kind, pdb), 4);
        {
            let eng = ex.engine();
            let mut g = eng.lock();
            for i in 0..8i64 {
                g.insert(ClassId(0), tuple![i]);
            }
        }
        // Arm after seeding so the fault lands inside some worker's
        // transaction (each Mark firing runs at least three guarded
        // operations: re-select, verify-absent, RHS insert).
        db.inject_fault_after(2);
        let stats = ex.run(1000);
        assert_eq!(stats.failed, 1, "{}: exactly one op faulted", kind.label());
        assert_eq!(stats.errors.len(), 1, "{}", kind.label());
        assert!(
            stats.errors[0].contains("injected"),
            "{}: error surfaced verbatim, got {:?}",
            kind.label(),
            stats.errors
        );
        assert_eq!(
            stats.committed,
            8,
            "{}: the failed instantiation was retried to completion",
            kind.label()
        );
        let eng = ex.engine();
        let g = eng.lock();
        assert_eq!(g.pdb().wm_len(ClassId(1)), 8, "{}", kind.label());
        assert!(g.conflict_set().is_empty(), "{}", kind.label());
    }
}
