//! §5.2: "It is also possible that both T_i and T_j delete or update
//! tuples from R_i … This could lead to a deadlock of the two
//! transactions." The system must detect such deadlocks, abort a victim,
//! and still drive the run to a correct quiescent state.

use ops5::ClassId;
use prodsys::{make_engine, ConcurrentExecutor, EngineKind, ProductionDb};
use relstore::{tuple, LockMode, LockTarget, RelId, TupleId};

#[test]
fn lock_manager_resolves_cycles_under_stress() {
    let db = relstore::Database::new();
    let lm = db.lock_manager();
    let targets: Vec<LockTarget> = (0..4)
        .map(|i| LockTarget::Tuple(RelId(0), TupleId::new(i, 0)))
        .collect();
    std::thread::scope(|s| {
        for w in 0..8u64 {
            let targets = targets.clone();
            let lm = &lm;
            s.spawn(move || {
                for round in 0..50u64 {
                    let txn = relstore::TxnId(w * 1000 + round);
                    // Acquire two targets in opposite orders per worker —
                    // a deadlock factory.
                    let (a, b) = if w % 2 == 0 {
                        (
                            targets[(round % 4) as usize],
                            targets[((round + 1) % 4) as usize],
                        )
                    } else {
                        (
                            targets[((round + 1) % 4) as usize],
                            targets[(round % 4) as usize],
                        )
                    };
                    let ok = lm.acquire(txn, a, LockMode::Exclusive).is_ok()
                        && lm.acquire(txn, b, LockMode::Exclusive).is_ok();
                    let _ = ok;
                    lm.release_all(txn);
                }
            });
        }
    });
    assert_eq!(lm.held_count(), 0, "every lock released despite deadlocks");
}

/// Rules that both read and delete overlapping tuples from one relation —
/// the paper's mutual-delete scenario — run to completion concurrently.
#[test]
fn mutual_deleters_complete() {
    let src = r#"
        (literalize Pair a b)
        (p Left  (Pair ^a <X> ^b <Y>) (Pair ^a <Y> ^b <X>) --> (remove 1))
        (p Right (Pair ^a <X> ^b <Y>) (Pair ^a <Y> ^b <X>) --> (remove 2))
    "#;
    for trial in 0..3 {
        let rules = ops5::compile(src).unwrap();
        let mut engine = make_engine(EngineKind::Rete, ProductionDb::new(rules).unwrap());
        // Mutually-referencing pairs: (i, i+1) and (i+1, i).
        for i in 0..6i64 {
            engine.insert(ClassId(0), tuple![2 * i, 2 * i + 1]);
            engine.insert(ClassId(0), tuple![2 * i + 1, 2 * i]);
        }
        let pdb = engine.pdb().clone();
        let mut conc = ConcurrentExecutor::new(engine, 6);
        let stats = conc.run(10_000);
        assert!(!stats.halted);
        assert_eq!(pdb.db().lock_manager().held_count(), 0, "trial {trial}");
        // Quiescent: no matching mutual pair remains.
        let eng = conc.engine();
        let g = eng.lock();
        assert!(g.conflict_set().is_empty(), "trial {trial}: {stats:?}");
    }
}
