//! Property test: `obs::json` string escaping is correct per RFC 8259.
//!
//! A strict, from-scratch JSON string-literal parser (surrogate pairs,
//! mandatory `\uXXXX` for control characters, whole-input consumption)
//! decodes whatever [`obs::json::escaped`] produces; round-tripping
//! arbitrary strings — control characters, quotes, backslashes, astral
//! plane — must reproduce the input exactly.

use proptest::prelude::*;

/// Parse one complete RFC 8259 string literal (quotes included). Strict:
/// rejects unescaped control characters, bad escapes, lone surrogates,
/// and trailing input. Errors are static descriptions for test output.
fn parse_json_string(input: &str) -> Result<String, &'static str> {
    let mut chars = input.chars();
    if chars.next() != Some('"') {
        return Err("missing opening quote");
    }
    let mut out = String::new();
    loop {
        let c = chars.next().ok_or("unterminated string")?;
        match c {
            '"' => break,
            '\\' => {
                let esc = chars.next().ok_or("dangling backslash")?;
                match esc {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'b' => out.push('\u{08}'),
                    'f' => out.push('\u{0C}'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'u' => {
                        let unit = parse_hex4(&mut chars)?;
                        let code = if (0xD800..0xDC00).contains(&unit) {
                            // High surrogate: a \uXXXX low surrogate must follow.
                            if chars.next() != Some('\\') || chars.next() != Some('u') {
                                return Err("high surrogate not followed by \\u escape");
                            }
                            let low = parse_hex4(&mut chars)?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err("high surrogate followed by non-low surrogate");
                            }
                            0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00)
                        } else if (0xDC00..0xE000).contains(&unit) {
                            return Err("lone low surrogate");
                        } else {
                            unit
                        };
                        out.push(char::from_u32(code).ok_or("invalid scalar value")?);
                    }
                    _ => return Err("unknown escape"),
                }
            }
            c if (c as u32) < 0x20 => return Err("unescaped control character"),
            c => out.push(c),
        }
    }
    if chars.next().is_some() {
        return Err("trailing input after closing quote");
    }
    Ok(out)
}

fn parse_hex4(chars: &mut std::str::Chars) -> Result<u32, &'static str> {
    let mut v = 0u32;
    for _ in 0..4 {
        let d = chars
            .next()
            .and_then(|c| c.to_digit(16))
            .ok_or("bad \\u escape")?;
        v = v * 16 + d;
    }
    Ok(v)
}

/// Arbitrary Unicode scalar values, biased toward the characters the
/// escaper special-cases: controls, quote, backslash, then the whole BMP
/// and astral planes (surrogate codes remapped to nearby scalars).
fn arb_char() -> impl Strategy<Value = char> {
    prop_oneof![
        4 => (0u32..0x20).prop_map(|c| char::from_u32(c).unwrap()),
        4 => prop_oneof![Just('"'), Just('\\'), Just('/'), Just('\u{7f}')],
        4 => (0x20u32..0x80).prop_map(|c| char::from_u32(c).unwrap()),
        2 => (0x80u32..0xD800).prop_map(|c| char::from_u32(c).unwrap()),
        1 => (0xE000u32..0x1_0000).prop_map(|c| char::from_u32(c).unwrap()),
        1 => (0x1_0000u32..0x11_0000).prop_map(|c| {
            char::from_u32(c).expect("range above the surrogate gap")
        }),
    ]
}

fn arb_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(arb_char(), 0..64).prop_map(|cs| cs.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    /// The strict parser decodes `escaped(s)` back to `s` exactly.
    #[test]
    fn escaping_round_trips(s in arb_string()) {
        let encoded = obs::json::escaped(&s);
        let decoded = parse_json_string(&encoded);
        prop_assert_eq!(decoded.as_deref(), Ok(s.as_str()), "encoded: {}", encoded);
    }

    /// The escaper's output is always a clean literal: quoted, free of
    /// raw control characters, every interior quote preceded by `\`.
    #[test]
    fn escaped_output_is_well_formed(s in arb_string()) {
        let encoded = obs::json::escaped(&s);
        prop_assert!(encoded.len() >= 2 && encoded.starts_with('"') && encoded.ends_with('"'));
        prop_assert!(
            !encoded.chars().any(|c| (c as u32) < 0x20),
            "raw control char in {encoded:?}"
        );
        let body: Vec<char> = encoded[1..encoded.len() - 1].chars().collect();
        for (i, &c) in body.iter().enumerate() {
            if c == '"' {
                prop_assert_eq!(body.get(i.wrapping_sub(1)), Some(&'\\'), "bare quote: {}", encoded);
            }
        }
    }

    /// `Obj::str` fields survive: the value parsed out of the rendered
    /// object equals what was put in.
    #[test]
    fn obj_str_fields_round_trip(s in arb_string()) {
        let json = obs::json::Obj::new().str("k", &s).finish();
        let literal = json
            .strip_prefix("{\"k\":")
            .and_then(|r| r.strip_suffix('}'))
            .expect("single-field object shape");
        prop_assert_eq!(parse_json_string(literal).as_deref(), Ok(s.as_str()));
    }
}

/// The fixed corner cases stay pinned even if generation drifts.
#[test]
fn known_escapes_parse_back() {
    for (raw, enc) in [
        ("", r#""""#),
        ("a\"b", r#""a\"b""#),
        ("back\\slash", r#""back\\slash""#),
        ("\n\r\t", r#""\n\r\t""#),
        ("\u{08}\u{0C}", r#""\b\f""#),
        ("\u{01}\u{1f}", "\"\\u0001\\u001f\""),
        ("é€𝄞", "\"é€𝄞\""),
    ] {
        assert_eq!(obs::json::escaped(raw), enc);
        assert_eq!(parse_json_string(enc).as_deref(), Ok(raw));
    }
    // Surrogate-pair escapes decode (the emitter never produces them for
    // astral chars — it writes UTF-8 directly — but the parser is strict
    // about the full grammar).
    assert_eq!(parse_json_string("\"\\ud834\\udd1e\"").as_deref(), Ok("𝄞"));
    assert_eq!(parse_json_string(r#""\udd1e""#), Err("lone low surrogate"));
    assert_eq!(
        parse_json_string("\"\u{01}\""),
        Err("unescaped control character")
    );
}
