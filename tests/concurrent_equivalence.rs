//! §5 concurrent execution equivalence: running instantiations as
//! concurrent worker transactions (strict 2PL, re-select / verify-absent
//! / RHS / maintenance-before-commit) must be invisible to the program —
//! the same instantiations commit and working memory converges to the
//! same final state as a sequential recognize-act run, for every engine,
//! worker count, and evaluation mode.
//!
//! The generated programs come from a confluent family (a `Mark` rule
//! gated by a negated CE plus a `Consume` rule that retires items), so
//! the *set* of committed transactions and the final WM are
//! order-independent even though the concurrent schedule is not.

use ops5::ClassId;
use prodsys::{
    make_engine, ConcurrentExecutor, EngineKind, ProductionDb, SequentialExecutor, Strategy,
};
use proptest::prelude::*;
use relstore::{tuple, Restriction, Tuple};

const SRC: &str = r#"
    (literalize Item n k)
    (literalize Done n)
    (literalize Log n)
    (p Mark (Item ^n <N> ^k <K>) -(Done ^n <N>) --> (make Done ^n <N>))
    (p Consume (Item ^n <N> ^k <K>) (Done ^n <N>) --> (remove 1) (make Log ^n <N>))
"#;

/// Sorted per-class dump of the whole working memory.
fn wm_all(engine: &dyn prodsys::MatchEngine) -> Vec<Vec<Tuple>> {
    let pdb = engine.pdb();
    (0..pdb.class_count())
        .map(|c| {
            let mut rows: Vec<Tuple> = pdb
                .db()
                .select(pdb.class_rel(ClassId(c)), &Restriction::default())
                .unwrap()
                .into_iter()
                .map(|(_, t)| t)
                .collect();
            rows.sort();
            rows
        })
        .collect()
}

/// Build an engine and load the randomized WM: every item inserted
/// tuple-at-a-time, then a few removed again by content (exercising the
/// maintenance remove path before execution starts).
fn load(
    kind: EngineKind,
    items: &[(i64, i64)],
    removes: &[usize],
) -> Box<dyn prodsys::MatchEngine> {
    load_sharded(kind, relstore::DEFAULT_LOCK_SHARDS, items, removes)
}

/// Same loader but over a database with an explicit lock-shard count, so
/// the proptests can pin the degenerate 1-shard layout and the sharded
/// layouts against the same oracle.
fn load_sharded(
    kind: EngineKind,
    shards: usize,
    items: &[(i64, i64)],
    removes: &[usize],
) -> Box<dyn prodsys::MatchEngine> {
    let rules = ops5::compile(SRC).expect("program compiles");
    let db = std::sync::Arc::new(relstore::Database::new_with_shards(shards));
    let mut engine = make_engine(kind, ProductionDb::with_db(db, rules).unwrap());
    for &(n, k) in items {
        engine.insert(ClassId(0), tuple![n, k]);
    }
    for &idx in removes {
        let (n, k) = items[idx];
        engine.remove(ClassId(0), &tuple![n, k]);
    }
    engine
}

/// Journal of the minimized workload that exposed the `self_removed`
/// mis-attribution: duplicate-content `Item` rows racing under 4
/// workers, where a `Consume` commit deletes one copy of a tuple whose
/// other copies still support pending instantiations. Refraction used to
/// credit the *maintenance* delta (which can observe every copy's
/// retirement under concurrency) instead of the transaction's own
/// applied RHS, and the conflict set would not drain. Replaying the
/// checked-in journal pins the fixed behavior: the recorded schedule
/// must reproduce exactly, firing-for-firing, down to the final WM.
#[test]
fn replays_checked_in_flake_fixture() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/flake_regression.jsonl"
    );
    let out = prodsys_bench::replay_run(path).expect("fixture journal replays w/o divergence");
    assert!(out.firings > 0, "fixture is non-trivial");
    assert_eq!(out.mode, "concurrent");
}

/// Maintenance helper — regenerate the fixture after a schema change:
/// `cargo test --test concurrent_equivalence -- --ignored regenerate`
#[test]
#[ignore]
fn regenerate_flake_fixture() {
    let items: &[(i64, i64)] = &[(0, 0), (0, 0), (1, 0), (1, 0), (0, 1), (2, 0), (2, 0)];
    let load = items
        .iter()
        .map(|&(n, k)| obs::LoadOp {
            insert: true,
            class: 0,
            values: vec![obs::LoadValue::Int(n), obs::LoadValue::Int(k)],
        })
        .collect();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/flake_regression.jsonl"
    );
    let out =
        prodsys_bench::record_run_with(path, EngineKind::Query, 4, SRC, load, 10_000).unwrap();
    println!("fixture regenerated: {} firings -> {path}", out.fired);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Every (engine, workers, batching) concurrent configuration commits
    /// the same number of transactions and leaves the same final WM as
    /// the sequential executor on the same program and working memory.
    #[test]
    fn concurrent_matches_sequential(
        items in proptest::collection::vec((0i64..6, 0i64..4), 1..19),
        remove_idx in proptest::collection::vec(0usize..64, 0..4),
    ) {
        // Dedup removal targets so both loaders drop the same instances.
        let mut removes: Vec<usize> =
            remove_idx.iter().map(|i| i % items.len()).collect();
        removes.sort_unstable();
        removes.dedup();

        for kind in EngineKind::ALL {
            // Sequential baseline: classic recognize-act cycle.
            let mut seq = SequentialExecutor::new(load(kind, &items, &removes), Strategy::Canonical);
            let out = seq.run(10_000);
            let base_wm = wm_all(seq.engine());

            for workers in [1usize, 4] {
                for batching in [true, false] {
                    let mut exec =
                        ConcurrentExecutor::new(load(kind, &items, &removes), workers);
                    exec.set_batching(batching);
                    let stats = exec.run(10_000);
                    let label = format!(
                        "{} workers={workers} batching={batching}",
                        kind.label()
                    );
                    prop_assert_eq!(
                        stats.committed, out.fired,
                        "{}: committed txns vs sequential firings", &label
                    );
                    prop_assert!(!stats.halted, "{}: no halt in this program", &label);
                    let engine = exec.engine();
                    let g = engine.lock();
                    prop_assert_eq!(
                        wm_all(&**g), base_wm.clone(),
                        "{}: final working memory", &label
                    );
                    prop_assert_eq!(
                        g.conflict_set().len(), 0,
                        "{}: quiescent conflict set", &label
                    );
                }
            }
        }
    }

    /// Shard count is invisible to the program: for every lock-shard
    /// layout and worker count, the sharded concurrent run commits the
    /// same transactions, converges to the same WM, and leaves the same
    /// refraction state (a second run fires nothing) as an *unsharded*
    /// sequential oracle.
    #[test]
    fn sharded_concurrent_matches_unsharded_sequential(
        items in proptest::collection::vec((0i64..6, 0i64..4), 1..19),
        remove_idx in proptest::collection::vec(0usize..64, 0..4),
    ) {
        let mut removes: Vec<usize> =
            remove_idx.iter().map(|i| i % items.len()).collect();
        removes.sort_unstable();
        removes.dedup();

        for kind in [EngineKind::Query, EngineKind::Cond] {
            // Oracle: unsharded (1 lock shard), sequential recognize-act.
            let mut seq = SequentialExecutor::new(
                load_sharded(kind, 1, &items, &removes),
                Strategy::Canonical,
            );
            let out = seq.run(10_000);
            let base_wm = wm_all(seq.engine());

            for shards in [1usize, 4] {
                for workers in [1usize, 4, 16] {
                    let mut exec = ConcurrentExecutor::new(
                        load_sharded(kind, shards, &items, &removes),
                        workers,
                    );
                    let stats = exec.run(10_000);
                    let label = format!(
                        "{} shards={shards} workers={workers}",
                        kind.label()
                    );
                    prop_assert_eq!(
                        stats.committed, out.fired,
                        "{}: committed txns vs unsharded sequential firings", &label
                    );
                    {
                        let engine = exec.engine();
                        let g = engine.lock();
                        prop_assert_eq!(
                            wm_all(&**g), base_wm.clone(),
                            "{}: final working memory", &label
                        );
                        prop_assert_eq!(
                            g.conflict_set().len(), 0,
                            "{}: quiescent conflict set", &label
                        );
                    }
                    // Refraction survives the shard layout: everything that
                    // could fire already has, so a second pass is a no-op.
                    let again = exec.run(10_000);
                    prop_assert_eq!(
                        again.committed, 0,
                        "{}: refraction state drained", &label
                    );
                }
            }
        }
    }
}
