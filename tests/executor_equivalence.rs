//! Executor-level cross-engine equivalence: full recognize-act *runs*
//! (not just matching) must produce identical working memories and
//! firing counts on every engine, including modify-heavy programs.

use ops5::ClassId;
use prodsys::{make_engine, EngineKind, ProductionDb, SequentialExecutor, Strategy};
use relstore::{Restriction, Tuple};

fn wm_all(engine: &dyn prodsys::MatchEngine) -> Vec<Vec<Tuple>> {
    let pdb = engine.pdb();
    (0..pdb.class_count())
        .map(|c| {
            let mut rows: Vec<Tuple> = pdb
                .db()
                .select(pdb.class_rel(ClassId(c)), &Restriction::default())
                .unwrap()
                .into_iter()
                .map(|(_, t)| t)
                .collect();
            rows.sort();
            rows
        })
        .collect()
}

/// Run with the Canonical strategy: selection depends only on conflict-set
/// *content*, so equivalent engines must produce identical trajectories
/// even for non-confluent programs (Fifo/Lifo order is an engine-internal
/// freedom the paper leaves "arbitrary").
fn run_all_engines(src: &str, load: &[(usize, Tuple)], max_cycles: usize) {
    let rules = ops5::compile(src).unwrap();
    let mut results = Vec::new();
    for kind in EngineKind::ALL {
        let mut ex = SequentialExecutor::new(
            make_engine(kind, ProductionDb::new(rules.clone()).unwrap()),
            Strategy::Canonical,
        );
        for (c, t) in load {
            ex.insert(ClassId(*c), t.clone());
        }
        let out = ex.run(max_cycles);
        results.push((
            kind.label(),
            out.fired,
            out.writes.clone(),
            wm_all(ex.engine()),
        ));
    }
    let (base_name, base_fired, base_writes, base_wm) = &results[0];
    for (name, fired, writes, wm) in &results[1..] {
        assert_eq!(base_fired, fired, "{base_name} vs {name}: firing count");
        assert_eq!(base_writes, writes, "{base_name} vs {name}: write log");
        assert_eq!(base_wm, wm, "{base_name} vs {name}: final WM");
    }
}

/// A modify-heavy state machine: tokens ratchet through states until done.
#[test]
fn state_machine_runs_identically() {
    use relstore::tuple;
    let src = r#"
        (literalize Job id state tries)
        (p Advance1 (Job ^id <I> ^state s0) --> (modify 1 ^state s1))
        (p Advance2 (Job ^id <I> ^state s1) --> (modify 1 ^state s2))
        (p Advance3 (Job ^id <I> ^state s2) --> (modify 1 ^state done) (write done <I>))
    "#;
    let load: Vec<(usize, Tuple)> = (0..6i64).map(|i| (0, tuple![i, "s0", 0])).collect();
    run_all_engines(src, &load, 100);
}

/// Cascading make/remove: firing one rule enables the next.
#[test]
fn cascade_runs_identically() {
    use relstore::tuple;
    let src = r#"
        (literalize A x)
        (literalize B x)
        (literalize C x)
        (p AtoB (A ^x <V>) --> (remove 1) (make B ^x <V>))
        (p BtoC (B ^x <V>) --> (remove 1) (make C ^x <V>))
    "#;
    let load: Vec<(usize, Tuple)> = (0..8i64).map(|i| (0, tuple![i])).collect();
    run_all_engines(src, &load, 100);
}

/// Negation-gated production with churn: the blocked rule must re-fire
/// identically as blockers come and go during the run.
#[test]
fn negation_churn_runs_identically() {
    use relstore::tuple;
    let src = r#"
        (literalize Req id)
        (literalize Lock id)
        (literalize Grant id)
        (p Acquire
            (Req ^id <I>)
            -(Lock ^id <I>)
            -->
            (remove 1)
            (make Lock ^id <I>)
            (make Grant ^id <I>))
        (p Coalesce
            (Req ^id <I>)
            (Lock ^id <I>)
            -->
            (remove 1)
            (write coalesced <I>))
    "#;
    // Duplicate requests per id: the first acquires, the rest coalesce.
    let mut load: Vec<(usize, Tuple)> = Vec::new();
    for i in 0..4i64 {
        for _ in 0..3 {
            load.push((0, tuple![i]));
        }
    }
    run_all_engines(src, &load, 200);
}

/// Randomized programs from the workload generator, executed to
/// quiescence on every engine.
#[test]
fn generated_programs_run_identically() {
    use workload::{Op, RuleGenConfig, TraceConfig};
    for seed in [21u64, 22, 23] {
        let cfg = RuleGenConfig {
            rules: 10,
            ces_per_rule: 2,
            domain: 3,
            negated_fraction: 0.3,
            seed,
            ..Default::default()
        };
        let src = cfg.source();
        let trace = TraceConfig {
            ops: 40,
            delete_fraction: 0.0,
            join_domain: 2,
            select_domain: 3,
            seed: seed + 100,
        }
        .trace(cfg.classes, cfg.attrs);
        let load: Vec<(usize, Tuple)> = trace
            .into_iter()
            .filter_map(|op| match op {
                Op::Insert(c, t) => Some((c, t)),
                Op::Remove(..) => None,
            })
            .collect();
        run_all_engines(&src, &load, 300);
    }
}
