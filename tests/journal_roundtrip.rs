//! Flight-recorder properties.
//!
//! 1. Record→replay determinism: journaling any run of the batched
//!    engines (query, cond, marker) under 1 or 4 workers, then replaying
//!    from nothing but the journal file, reproduces the exact firing
//!    sequence and final working memory ([`prodsys_bench::replay_run`]
//!    verifies both and errors on the first discrepancy).
//! 2. JSON round-trip: every `Event` variant and the journal meta line
//!    survive `to_json` → `from_json` unchanged, so journals written by
//!    one build are readable by the next.

use obs::{Event, JournalMeta, LoadOp, LoadValue};
use prodsys::EngineKind;
use proptest::prelude::*;

/// The confluent Mark/Consume family the concurrent-equivalence suite
/// uses: racy (Consume deletes support out from under Mark) but with an
/// order-independent final state.
const SRC: &str = r#"
    (literalize Item n k)
    (literalize Done n)
    (literalize Log n)
    (p Mark (Item ^n <N> ^k <K>) -(Done ^n <N>) --> (make Done ^n <N>))
    (p Consume (Item ^n <N> ^k <K>) (Done ^n <N>) --> (remove 1) (make Log ^n <N>))
"#;

fn item_load(items: &[(i64, i64)]) -> Vec<LoadOp> {
    items
        .iter()
        .map(|&(n, k)| LoadOp {
            insert: true,
            class: 0,
            values: vec![LoadValue::Int(n), LoadValue::Int(k)],
        })
        .collect()
}

fn tmp_path(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!(
            "journal_roundtrip_{}_{tag}.jsonl",
            std::process::id()
        ))
        .to_string_lossy()
        .into_owned()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Record under racing workers, replay serially from the file alone:
    /// identical firing sequence, identical final WM, for each batched
    /// engine × worker count.
    #[test]
    fn record_replay_reproduces_run(
        items in proptest::collection::vec((0i64..6, 0i64..4), 1..14),
    ) {
        for kind in [EngineKind::Query, EngineKind::Cond, EngineKind::Marker] {
            for workers in [1usize, 4] {
                let path = tmp_path(&format!("{}_{workers}", kind.label()));
                let rec = prodsys_bench::record_run_with(
                    &path, kind, workers, SRC, item_load(&items), 10_000,
                );
                prop_assert!(rec.is_ok(), "record: {:?}", rec.err());
                let rep = prodsys_bench::replay_run(&path);
                let _ = std::fs::remove_file(&path);
                match rep {
                    Ok(out) => prop_assert_eq!(out.firings, rec.unwrap().fired),
                    Err(e) => prop_assert!(
                        false,
                        "{} workers={workers}: replay diverged: {e}",
                        kind.label()
                    ),
                }
            }
        }
    }
}

/// One of every `Event` variant, with awkward strings included.
fn all_variants() -> Vec<Event> {
    vec![
        Event::CycleStart { cycle: 3 },
        Event::CycleEnd {
            cycle: 3,
            conflict_len: 2,
            fired_total: 9,
        },
        Event::WmInsert {
            class: 1,
            class_name: "Item \"q\"".into(),
            tuple: "(1, \\2)".into(),
            tid: 77,
        },
        Event::WmRemove {
            class: 2,
            class_name: "Done".into(),
            tuple: "(1)".into(),
            tid: 0,
        },
        Event::MatchMaintain {
            engine: "cond",
            class: 0,
            insert: true,
            adds: 1,
            removes: 2,
            detect_ns: 10,
            total_ns: 20,
        },
        Event::PropagateSpan {
            class: 4,
            class_name: "C".into(),
            scanned: 5,
            probes: 6,
            span_ns: 7,
            parallel: true,
        },
        Event::BatchApplied {
            engine: "query",
            inserts: 1,
            deletes: 0,
            rules_awakened: 2,
            total_ns: 9,
        },
        Event::RoundSpan {
            round: 2,
            candidates: 3,
            committed: 2,
            aborted: 1,
            critical_ns: 4,
            span_ns: 5,
        },
        Event::ConflictDelta {
            add: true,
            rule: 1,
            rule_name: "Mark".into(),
            wmes: "Item(1, 2)".into(),
            support: "t3.1 t7.2".into(),
            absent: "Done(1)".into(),
        },
        Event::ConflictDelta {
            add: false,
            rule: 1,
            rule_name: "Mark".into(),
            wmes: "Item(1, 2)".into(),
            support: String::new(),
            absent: String::new(),
        },
        Event::RuleSelect {
            cycle: 1,
            rule: 0,
            rule_name: "R".into(),
            conflict_len: 4,
        },
        Event::RuleFire {
            cycle: 1,
            rule: 0,
            rule_name: "R".into(),
            rhs_ns: 8,
            inserts: 1,
            removes: 1,
        },
        Event::Derivation {
            rule: 0,
            rule_name: "R".into(),
            wmes: "A(1)".into(),
            support: "t0.1".into(),
            absent: "B(1)".into(),
        },
        Event::TxnBegin {
            txn: 9,
            rule: 1,
            rule_name: "Consume".into(),
        },
        Event::LockWait {
            txn: 9,
            target: "rel3[t9.1]".into(),
            mode: "shared",
        },
        Event::LockAcquire {
            txn: 9,
            target: "rel3".into(),
            mode: "exclusive",
            wait_ns: 123,
        },
        Event::DeadlockVictim { txn: 9 },
        Event::DeadlockGraph {
            victim: 9,
            edges: "t9->t4 exclusive rel3[t9.1]; t4->t9 shared rel3".into(),
        },
        Event::Firing {
            seq: 41,
            round: 7,
            txn: 9,
            rule: 1,
            rule_name: "Consume".into(),
            wmes: "Item(1, 2), Done(1)".into(),
            support: "t0.1 t1.1".into(),
        },
        Event::TxnAbort {
            txn: 9,
            reason: "deadlock".into(),
        },
        Event::TxnCommit { txn: 9, writes: 2 },
    ]
}

#[test]
fn every_event_variant_round_trips_through_json() {
    let variants = all_variants();
    // One of each variant is present (two ConflictDelta directions).
    let kinds: std::collections::BTreeSet<&str> = variants.iter().map(Event::kind).collect();
    assert_eq!(kinds.len(), 20, "cover every Event variant: {kinds:?}");
    for (i, event) in variants.iter().enumerate() {
        let line = event.to_json(i as u64);
        let (seq, back) = Event::from_json(&line)
            .unwrap_or_else(|e| panic!("parse {}: {e}\n{line}", event.kind()));
        assert_eq!(seq, i as u64);
        assert_eq!(&back, event, "{line}");
    }
}

#[test]
fn journal_meta_round_trips_through_json() {
    let meta = JournalMeta {
        engine: "query".into(),
        mode: "concurrent".into(),
        workers: 4,
        batching: true,
        strategy: "canonical".into(),
        max_fired: 10_000,
        program: SRC.into(),
        load: vec![
            LoadOp {
                insert: true,
                class: 0,
                values: vec![LoadValue::Int(-3), LoadValue::Float(2.5)],
            },
            LoadOp {
                insert: false,
                class: 1,
                values: vec![
                    LoadValue::Str("a \"b\"".into()),
                    LoadValue::Bool(false),
                    LoadValue::Null,
                ],
            },
        ],
    };
    let back = JournalMeta::from_json(&meta.to_json()).unwrap();
    assert_eq!(back.to_json(), meta.to_json());
    assert_eq!(back.program, meta.program);
    assert_eq!(back.load.len(), 2);
}
