//! Conflict-resolution strategies drive observable firing order (the
//! Select step of §2.1).

use prodsys::{EngineKind, ProductionSystem, Strategy};
use relstore::tuple;
use std::collections::HashMap;

const SRC: &str = r#"
    (literalize A x)
    (p Low    (A ^x <V>)        --> (remove 1) (write low <V>))
    (p High   (A ^x <V> ^x {>= 0}) --> (remove 1) (write high <V>))
"#;

fn run_with(strategy: Strategy) -> Vec<String> {
    let mut sys = ProductionSystem::from_source(SRC, EngineKind::Rete, strategy).unwrap();
    sys.insert("A", tuple![1]).unwrap();
    sys.run(10).writes
}

#[test]
fn priority_selects_higher_rule() {
    let rules = ops5::compile(SRC).unwrap();
    let low = rules.rule_by_name("Low").unwrap().id;
    let high = rules.rule_by_name("High").unwrap().id;

    let out = run_with(Strategy::Priority(HashMap::from([(low, 10), (high, 1)])));
    assert_eq!(out, vec!["low 1"]);
    let out = run_with(Strategy::Priority(HashMap::from([(low, 1), (high, 10)])));
    assert_eq!(out, vec!["high 1"]);
}

#[test]
fn specificity_prefers_more_tests() {
    // High has an extra test → higher specificity.
    let out = run_with(Strategy::Specificity);
    assert_eq!(out, vec!["high 1"]);
}

#[test]
fn fifo_vs_lifo_order_instantiations() {
    let src = r#"
        (literalize A x)
        (p Note (A ^x <V>) --> (write saw <V>) (remove 1))
    "#;
    // FIFO fires the oldest instantiation first.
    let mut sys = ProductionSystem::from_source(src, EngineKind::Rete, Strategy::Fifo).unwrap();
    sys.insert("A", tuple![1]).unwrap();
    sys.insert("A", tuple![2]).unwrap();
    assert_eq!(sys.run(10).writes, vec!["saw 1", "saw 2"]);
    // LIFO fires the newest first (recency, as OPS5's LEX prefers).
    let mut sys = ProductionSystem::from_source(src, EngineKind::Rete, Strategy::Lifo).unwrap();
    sys.insert("A", tuple![1]).unwrap();
    sys.insert("A", tuple![2]).unwrap();
    assert_eq!(sys.run(10).writes, vec!["saw 2", "saw 1"]);
}

#[test]
fn random_strategy_is_reproducible_and_complete() {
    let src = r#"
        (literalize A x)
        (p Note (A ^x <V>) --> (write saw <V>) (remove 1))
    "#;
    let run = |seed| {
        let mut sys =
            ProductionSystem::from_source(src, EngineKind::Rete, Strategy::Random(seed)).unwrap();
        for i in 0..5i64 {
            sys.insert("A", tuple![i]).unwrap();
        }
        sys.run(10).writes
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a, b, "same seed, same order");
    assert_eq!(a.len(), 5, "every instantiation eventually fires");
    let mut sorted = a.clone();
    sorted.sort();
    assert_eq!(sorted, vec!["saw 0", "saw 1", "saw 2", "saw 3", "saw 4"]);
}
