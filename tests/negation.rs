//! Negated condition elements (§4.2.2) across engines and executors.

use ops5::ClassId;
use prodsys::{make_engine, EngineKind, ProductionDb, ProductionSystem, Strategy};
use relstore::tuple;

const ORPHAN: &str = r#"
    (literalize Emp name dno)
    (literalize Dept dno)
    (p Orphan (Emp ^name <N> ^dno <D>) -(Dept ^dno <D>) --> (remove 1))
"#;

#[test]
fn negation_lifecycle_all_engines() {
    for kind in EngineKind::ALL {
        let rules = ops5::compile(ORPHAN).unwrap();
        let mut e = make_engine(kind, ProductionDb::new(rules).unwrap());
        let label = kind.label();

        // Fires when the dept is absent.
        let d = e.insert(ClassId(0), tuple!["Ann", 7]);
        assert_eq!(d.len(), 1, "{label}");
        // Blocked when it appears.
        let d = e.insert(ClassId(1), tuple![7]);
        assert_eq!(d.len(), 1, "{label}");
        assert!(!d[0].is_add(), "{label}");
        // Two blockers: removing one keeps it blocked.
        e.insert(ClassId(1), tuple![7]);
        e.remove(ClassId(1), &tuple![7]);
        assert!(e.conflict_set().is_empty(), "{label}: one blocker left");
        // Removing the last blocker revives the match.
        let d = e.remove(ClassId(1), &tuple![7]);
        assert_eq!(d.len(), 1, "{label}");
        assert!(d[0].is_add(), "{label}");
    }
}

#[test]
fn multiple_negated_ces() {
    let src = r#"
        (literalize Emp name dno proj)
        (literalize Dept dno)
        (literalize Proj proj)
        (p Lost
            (Emp ^name <N> ^dno <D> ^proj <P>)
            -(Dept ^dno <D>)
            -(Proj ^proj <P>)
            -->
            (remove 1))
    "#;
    for kind in EngineKind::ALL {
        let rules = ops5::compile(src).unwrap();
        let mut e = make_engine(kind, ProductionDb::new(rules).unwrap());
        let label = kind.label();
        let d = e.insert(ClassId(0), tuple!["Ann", 7, "x"]);
        assert_eq!(d.len(), 1, "{label}: both absent → fires");
        e.insert(ClassId(1), tuple![7]);
        assert!(e.conflict_set().is_empty(), "{label}: dept blocks");
        e.insert(ClassId(2), tuple!["x"]);
        e.remove(ClassId(1), &tuple![7]);
        assert!(e.conflict_set().is_empty(), "{label}: proj still blocks");
        e.remove(ClassId(2), &tuple!["x"]);
        assert_eq!(e.conflict_set().len(), 1, "{label}: unblocked again");
    }
}

/// A negation-driven fixpoint program: set difference Emp \ Dept by dno.
#[test]
fn negation_fixpoint_program() {
    let src = r#"
        (literalize Emp name dno)
        (literalize Dept dno)
        (literalize Orphaned name)
        (p FindOrphan
            (Emp ^name <N> ^dno <D>)
            -(Dept ^dno <D>)
            -(Orphaned ^name <N>)
            -->
            (make Orphaned ^name <N>))
    "#;
    for kind in EngineKind::ALL {
        let mut sys = ProductionSystem::from_source(src, kind, Strategy::Fifo).unwrap();
        sys.insert("Emp", tuple!["Ann", 1]).unwrap();
        sys.insert("Emp", tuple!["Bob", 2]).unwrap();
        sys.insert("Emp", tuple!["Cid", 3]).unwrap();
        sys.insert("Dept", tuple![2]).unwrap();
        let out = sys.run(100);
        assert!(!out.limited, "{}", kind.label());
        assert_eq!(
            sys.wm("Orphaned").unwrap(),
            vec![tuple!["Ann"], tuple!["Cid"]],
            "{}",
            kind.label()
        );
    }
}
