//! Fuzz the OPS5 front end: arbitrary input must never panic — it either
//! compiles or returns a structured error.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Arbitrary byte soup (printable-ish) through the whole pipeline.
    #[test]
    fn arbitrary_text_never_panics(src in "[ -~\\n]{0,200}") {
        let _ = ops5::compile(&src);
    }

    /// Structured-ish soup: random sequences of OPS5 token fragments are
    /// far more likely to reach the parser's deep paths.
    #[test]
    fn token_soup_never_panics(parts in proptest::collection::vec(
        prop_oneof![
            Just("(".to_string()), Just(")".to_string()),
            Just("{".to_string()), Just("}".to_string()),
            Just("p".to_string()), Just("literalize".to_string()),
            Just("^a".to_string()), Just("^b".to_string()),
            Just("<V>".to_string()), Just("<W>".to_string()),
            Just("-->".to_string()), Just("-".to_string()),
            Just("<>".to_string()), Just("<=".to_string()), Just(">=".to_string()),
            Just("<".to_string()), Just(">".to_string()), Just("=".to_string()),
            Just("C".to_string()), Just("D".to_string()), Just("x".to_string()),
            Just("1".to_string()), Just("-2".to_string()), Just("3.5".to_string()),
            Just("nil".to_string()), Just("*".to_string()), Just("'q s'".to_string()),
            Just("make".to_string()), Just("remove".to_string()),
            Just("modify".to_string()), Just("write".to_string()),
            Just("halt".to_string()), Just("bind".to_string()), Just("call".to_string()),
        ],
        0..60,
    )) {
        let src = parts.join(" ");
        let _ = ops5::compile(&src);
    }

    /// Anything that does compile must survive the printer round trip.
    #[test]
    fn whatever_compiles_roundtrips(parts in proptest::collection::vec(
        prop_oneof![
            Just("(literalize C a b)".to_string()),
            Just("(p R1 (C ^a <V>) --> (remove 1))".to_string()),
            Just("(p R2 (C ^a <V> ^b {> <V>}) --> (modify 1 ^b nil))".to_string()),
            Just("(p R3 (C ^a <V>) -(C ^b <V>) --> (make C ^a <V>))".to_string()),
        ],
        1..5,
    )) {
        let src = parts.join("\n");
        if let Ok(rs) = ops5::compile(&src) {
            let printed = ops5::print(&rs);
            let rs2 = ops5::compile(&printed).expect("printed source compiles");
            prop_assert_eq!(rs, rs2);
        }
    }
}
