//! F2 / cross-engine equivalence: all five matching engines consume the
//! same WM update stream (the paper's Figure 2 loop) and must maintain
//! identical conflict sets after every operation.

use ops5::ClassId;
use prodsys::{make_engine, EngineKind, MatchEngine, ProductionDb};
use workload::{Op, RuleGenConfig, TraceConfig};

fn engines_for(cfg: &RuleGenConfig) -> Vec<Box<dyn MatchEngine>> {
    EngineKind::ALL
        .iter()
        .map(|&kind| {
            let pdb = ProductionDb::new(cfg.rules()).unwrap();
            make_engine(kind, pdb)
        })
        .collect()
}

fn run_trace_and_compare(cfg: RuleGenConfig, trace_cfg: TraceConfig) {
    let mut engines = engines_for(&cfg);
    let trace = trace_cfg.trace(cfg.classes, cfg.attrs);
    for (step, op) in trace.iter().enumerate() {
        let mut sets = Vec::new();
        for e in engines.iter_mut() {
            match op {
                Op::Insert(c, t) => {
                    e.insert(ClassId(*c), t.clone());
                }
                Op::Remove(c, t) => {
                    e.remove(ClassId(*c), t);
                }
            }
            sets.push((e.name(), e.conflict_set().sorted()));
        }
        let (base_name, base) = &sets[0];
        for (name, s) in &sets[1..] {
            assert_eq!(
                base, s,
                "conflict sets diverge at step {step} ({op:?}): {base_name} vs {name}"
            );
        }
    }
}

#[test]
fn equivalence_on_two_way_joins() {
    run_trace_and_compare(
        RuleGenConfig {
            rules: 12,
            ces_per_rule: 2,
            domain: 4,
            seed: 1,
            ..Default::default()
        },
        TraceConfig {
            ops: 150,
            delete_fraction: 0.25,
            join_domain: 3,
            select_domain: 4,
            seed: 2,
        },
    );
}

#[test]
fn equivalence_on_three_way_joins() {
    run_trace_and_compare(
        RuleGenConfig {
            rules: 8,
            ces_per_rule: 3,
            classes: 3,
            domain: 3,
            seed: 3,
            ..Default::default()
        },
        TraceConfig {
            ops: 120,
            delete_fraction: 0.3,
            join_domain: 2,
            select_domain: 3,
            seed: 4,
        },
    );
}

#[test]
fn equivalence_with_negation() {
    run_trace_and_compare(
        RuleGenConfig {
            rules: 10,
            ces_per_rule: 2,
            domain: 3,
            negated_fraction: 0.5,
            seed: 5,
            ..Default::default()
        },
        TraceConfig {
            ops: 120,
            delete_fraction: 0.3,
            join_domain: 2,
            select_domain: 3,
            seed: 6,
        },
    );
}

#[test]
fn equivalence_delete_heavy() {
    run_trace_and_compare(
        RuleGenConfig {
            rules: 8,
            ces_per_rule: 2,
            domain: 3,
            seed: 7,
            ..Default::default()
        },
        TraceConfig {
            ops: 200,
            delete_fraction: 0.45,
            join_domain: 2,
            select_domain: 3,
            seed: 8,
        },
    );
}

#[test]
fn equivalence_on_paper_example_3() {
    use relstore::tuple;
    let rules = workload::paper::example3_rules();
    let mut engines: Vec<Box<dyn MatchEngine>> = EngineKind::ALL
        .iter()
        .map(|&k| make_engine(k, ProductionDb::new(rules.clone()).unwrap()))
        .collect();
    let ops: Vec<Op> = vec![
        Op::Insert(0, tuple!["Sam", 5000, "Root", 1]),
        Op::Insert(0, tuple!["Mike", 6000, "Sam", 1]),
        Op::Insert(1, tuple![1, "Toy", 1, "Sam"]),
        Op::Insert(0, tuple!["Jane", 4000, "Sam", 2]),
        Op::Remove(0, tuple!["Mike", 6000, "Sam", 1]),
        Op::Insert(1, tuple![2, "Shoe", 2, "Ann"]),
        Op::Remove(1, tuple![1, "Toy", 1, "Sam"]),
    ];
    for (step, op) in ops.iter().enumerate() {
        let mut sets = Vec::new();
        for e in engines.iter_mut() {
            match op {
                Op::Insert(c, t) => {
                    e.insert(ClassId(*c), t.clone());
                }
                Op::Remove(c, t) => {
                    e.remove(ClassId(*c), t);
                }
            }
            sets.push((e.name(), e.conflict_set().sorted()));
        }
        for (name, s) in &sets[1..] {
            assert_eq!(&sets[0].1, s, "step {step}: {} vs {name}", sets[0].0);
        }
    }
}

/// Trace-level equivalence: beyond ending with identical conflict sets,
/// every engine must *emit* the identical ordered stream of
/// conflict-delta trace events for the same WM update stream (removes
/// before adds per change, then instantiation order — the canonical
/// order the tracer imposes).
#[test]
fn trace_equivalence_on_conflict_deltas() {
    let cfg = RuleGenConfig {
        rules: 10,
        ces_per_rule: 2,
        domain: 3,
        negated_fraction: 0.25,
        seed: 11,
        ..Default::default()
    };
    let trace = TraceConfig {
        ops: 120,
        delete_fraction: 0.3,
        join_domain: 2,
        select_domain: 3,
        seed: 12,
    }
    .trace(cfg.classes, cfg.attrs);

    let mut streams: Vec<(&'static str, Vec<String>)> = Vec::new();
    for &kind in EngineKind::ALL.iter() {
        let mut engine = make_engine(kind, ProductionDb::new(cfg.rules()).unwrap());
        let tracer = obs::Tracer::new(obs::Sink::ring(1_000_000));
        engine.set_tracer(tracer.clone());
        for op in &trace {
            match op {
                Op::Insert(c, t) => {
                    engine.insert(ClassId(*c), t.clone());
                }
                Op::Remove(c, t) => {
                    engine.remove(ClassId(*c), t);
                }
            }
        }
        let deltas: Vec<String> = tracer
            .ring_events()
            .unwrap()
            .into_iter()
            .filter_map(|ev| match ev {
                obs::Event::ConflictDelta {
                    add,
                    rule,
                    rule_name,
                    wmes,
                    ..
                } => Some(format!(
                    "{} r{rule} {rule_name} {wmes}",
                    if add { '+' } else { '-' }
                )),
                _ => None,
            })
            .collect();
        streams.push((engine.name(), deltas));
    }

    let (base_name, base) = &streams[0];
    assert!(
        !base.is_empty(),
        "workload should produce conflict-delta events"
    );
    for (name, stream) in &streams[1..] {
        assert_eq!(
            base, stream,
            "conflict-delta event streams diverge: {base_name} vs {name}"
        );
    }
}
