//! Cross-engine EXPLAIN: all five matching engines, whatever their join
//! order policy, must agree on *what* each rule reads — the set of WM
//! relations scanned per rule, which CEs are negated — and on how many
//! instantiations each rule produces for the same working memory.

use std::collections::BTreeSet;

use prodsys::{EngineKind, OrderPolicy, ProductionSystem, Strategy};
use relstore::tuple;

const SRC: &str = r#"
    (literalize Emp name salary manager dno)
    (literalize Dept dno dname floor manager)
    (literalize Audit name)
    (p Paid
        (Emp ^name Mike ^salary <S> ^manager <M>)
        (Emp ^name <M> ^salary {<S1> < <S>})
        -->
        (remove 1))
    (p Housed
        (Emp ^dno <D>)
        (Dept ^dno <D> ^floor 1)
        -->
        (remove 1))
    (p NoDept
        (Emp ^name <N> ^dno <D>)
        -(Dept ^dno <D>)
        -->
        (make Audit ^name <N>))
"#;

fn load(kind: EngineKind) -> ProductionSystem {
    let mut sys = ProductionSystem::from_source(SRC, kind, Strategy::Fifo).unwrap();
    for (name, salary, manager, dno) in [
        ("Sam", 5000, "Root", 1),
        ("Mike", 6000, "Sam", 1),
        ("Jane", 4000, "Sam", 2),
        ("Orphan", 1000, "Sam", 99),
    ] {
        sys.insert("Emp", tuple![name, salary, manager, dno])
            .unwrap();
    }
    sys.insert("Dept", tuple![1, "Toy", 1, "Ken"]).unwrap();
    sys.insert("Dept", tuple![2, "Shoe", 2, "Pat"]).unwrap();
    sys
}

/// Rule name, (relation, negated) pairs touched, instantiation count.
type PlanShape = (String, BTreeSet<(String, bool)>, u64);

/// Per rule: everything order-independent about a plan.
fn plan_shape(sys: &ProductionSystem) -> Vec<PlanShape> {
    sys.engine()
        .match_plan()
        .into_iter()
        .map(|p| {
            let touched = p
                .steps
                .iter()
                .map(|s| (s.relation.clone(), s.negated))
                .collect();
            (p.rule_name, touched, p.results)
        })
        .collect()
}

#[test]
fn engines_agree_on_relations_read_and_results() {
    let baseline = plan_shape(&load(EngineKind::ALL[0]));
    assert_eq!(baseline.len(), 3, "one plan per rule");
    for &kind in &EngineKind::ALL[1..] {
        let shape = plan_shape(&load(kind));
        assert_eq!(baseline, shape, "{}", kind.label());
    }
    // Spot-check the shape itself, not just cross-engine equality.
    let by_rule = |name: &str| {
        baseline
            .iter()
            .find(|(r, _, _)| r == name)
            .unwrap_or_else(|| panic!("{name} missing"))
    };
    let (_, touched, results) = by_rule("NoDept");
    assert!(touched.contains(&("Emp".to_string(), false)));
    assert!(touched.contains(&("Dept".to_string(), true)), "negated CE");
    assert_eq!(*results, 1, "only Orphan's department is missing");
    assert_eq!(by_rule("Paid").2, 1, "Mike outearns Sam");
    assert_eq!(by_rule("Housed").2, 2, "Sam and Mike are on floor 1");
}

#[test]
fn policies_differ_but_estimates_are_present() {
    // Frozen textual plans (rete, db-rete, cond) vs the stats-driven
    // planner (query, marker): both must carry estimates on every step.
    for kind in EngineKind::ALL {
        let sys = load(kind);
        for plan in sys.engine().match_plan() {
            let expected = match kind {
                EngineKind::Query | EngineKind::Marker => OrderPolicy::Planner,
                _ => OrderPolicy::Textual,
            };
            assert_eq!(plan.policy, expected, "{}", kind.label());
            assert!(!plan.steps.is_empty(), "{}: empty plan", kind.label());
            for step in &plan.steps {
                assert!(
                    step.estimated >= 0.0 && step.estimated.is_finite(),
                    "{}: bad estimate {}",
                    kind.label(),
                    step.estimated
                );
            }
        }
    }
}
