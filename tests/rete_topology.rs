//! F1/F3: compiled network topology — Figure 3's shared nodes for the
//! Example 2 rules and Figure 1's linear chain depth.

use rete::{BetaKind, NetworkPlan, ReteNetwork, Wme};
use workload::{paper, ChainWorkload};

#[test]
fn f3_example2_network_shape() {
    let plan = NetworkPlan::compile(&paper::example2_rules());
    // Shared Goal alpha + two distinct Expression alphas.
    assert_eq!(plan.alphas.len(), 3);
    // Shared Goal join + one Expression join per rule.
    assert_eq!(plan.two_input_nodes(), 3);
    assert_eq!(plan.production_nodes(), 2);
    assert_eq!(plan.max_depth(), 3);
    // The Goal join node is a child of the root and feeds both
    // Expression joins.
    let root_children = &plan.betas[plan.root()].children;
    assert_eq!(root_children.len(), 1, "one shared first join");
    let goal_join = root_children[0];
    assert_eq!(plan.betas[goal_join].children.len(), 2);
    assert!(matches!(plan.betas[goal_join].kind, BetaKind::Join { .. }));
}

#[test]
fn f1_chain_depth_linear_in_n() {
    for n in [1usize, 2, 8, 32] {
        let w = ChainWorkload::new(n);
        let plan = NetworkPlan::compile(&w.rules());
        assert_eq!(plan.max_depth(), n + 1, "depth = n joins + production");
        assert_eq!(plan.two_input_nodes(), n);
    }
}

#[test]
fn f1_propagation_depth_observed_at_runtime() {
    // "The propagation delay of inserting a token … will be significant
    // if the number of single input nodes n is large" (§4): the final
    // link's insertion must touch nodes at every level.
    for n in [2usize, 8, 24] {
        let w = ChainWorkload::new(n);
        let mut net = ReteNetwork::new(&w.rules());
        let links = w.links();
        let class = ops5::ClassId(0);
        for t in &links[..n - 1] {
            net.insert(Wme::new(class, t.clone()));
        }
        let deltas = net.insert(Wme::new(class, links[n - 1].clone()));
        assert_eq!(deltas.len(), 1, "chain of {n} completes");
        let m = net.last_metrics();
        assert!(
            m.max_depth >= n,
            "n={n}: deepest node touched {} < {n}",
            m.max_depth
        );
    }
}

#[test]
fn chain_metrics_grow_with_n() {
    // The cost of the final insertion grows with chain length — the
    // hierarchical-propagation overhead the paper's §4 criticizes.
    let mut costs = Vec::new();
    for n in [2usize, 8, 24] {
        let w = ChainWorkload::new(n);
        let mut net = ReteNetwork::new(&w.rules());
        let links = w.links();
        let class = ops5::ClassId(0);
        for t in &links[..n - 1] {
            net.insert(Wme::new(class, t.clone()));
        }
        net.insert(Wme::new(class, links[n - 1].clone()));
        costs.push(net.last_metrics().activations);
    }
    assert!(
        costs.windows(2).all(|w| w[0] < w[1]),
        "activations grow: {costs:?}"
    );
}
