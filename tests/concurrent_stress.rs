//! Long-running stress sweep for §5 concurrent/sequential equivalence —
//! the harness that pinned down the `self_removed` refraction
//! mis-attribution (a committed `remove` was credited from the
//! maintenance delta, which under concurrency can observe *every* copy
//! of a duplicated tuple retiring, instead of from the transaction's own
//! applied RHS).
//!
//! Ignored by default: it is a soak test, not a unit test. Run it after
//! touching the concurrent executor, refraction, or lock-manager paths:
//!
//! ```sh
//! SEED=7 ITERS=2000 cargo test --release --test concurrent_stress -- --ignored --nocapture
//! ```

use ops5::ClassId;
use prodsys::{
    make_engine, ConcurrentExecutor, EngineKind, ProductionDb, SequentialExecutor, Strategy,
};
use relstore::{tuple, Restriction, Tuple};

const SRC: &str = r#"
    (literalize Item n k)
    (literalize Done n)
    (literalize Log n)
    (p Mark (Item ^n <N> ^k <K>) -(Done ^n <N>) --> (make Done ^n <N>))
    (p Consume (Item ^n <N> ^k <K>) (Done ^n <N>) --> (remove 1) (make Log ^n <N>))
"#;

fn wm_all(engine: &dyn prodsys::MatchEngine) -> Vec<Vec<Tuple>> {
    let pdb = engine.pdb();
    (0..pdb.class_count())
        .map(|c| {
            let mut rows: Vec<Tuple> = pdb
                .db()
                .select(pdb.class_rel(ClassId(c)), &Restriction::default())
                .unwrap()
                .into_iter()
                .map(|(_, t)| t)
                .collect();
            rows.sort();
            rows
        })
        .collect()
}

fn load(
    kind: EngineKind,
    items: &[(i64, i64)],
    removes: &[usize],
) -> Box<dyn prodsys::MatchEngine> {
    let rules = ops5::compile(SRC).expect("program compiles");
    let mut engine = make_engine(kind, ProductionDb::new(rules).unwrap());
    for &(n, k) in items {
        engine.insert(ClassId(0), tuple![n, k]);
    }
    for &idx in removes {
        let (n, k) = items[idx];
        engine.remove(ClassId(0), &tuple![n, k]);
    }
    engine
}

/// Deterministic splitmix-style generator so a failing seed reproduces.
struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

#[test]
#[ignore = "soak test; run with --ignored after touching §5 executor/refraction/locking"]
fn stress_concurrent_equals_sequential() {
    let seed: u64 = std::env::var("SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let iters: u64 = std::env::var("ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let mut rng = Lcg(seed);
    let mut mismatches = 0u64;
    for it in 0..iters {
        let n_items = 1 + rng.below(18) as usize;
        // Small domains on purpose: duplicate (n, k) rows are the shape
        // that exercises content-equal tuples racing for the same locks.
        let items: Vec<(i64, i64)> = (0..n_items)
            .map(|_| (rng.below(6) as i64, rng.below(4) as i64))
            .collect();
        let mut removes: Vec<usize> = (0..rng.below(4))
            .map(|_| rng.below(64) as usize % n_items)
            .collect();
        removes.sort_unstable();
        removes.dedup();

        for kind in EngineKind::ALL {
            let mut seq =
                SequentialExecutor::new(load(kind, &items, &removes), Strategy::Canonical);
            let out = seq.run(10_000);
            let base_wm = wm_all(seq.engine());

            for batching in [true, false] {
                let mut exec = ConcurrentExecutor::new(load(kind, &items, &removes), 4);
                exec.set_batching(batching);
                let stats = exec.run(10_000);
                let engine = exec.engine();
                let g = engine.lock();
                let wm = wm_all(&**g);
                let cs_len = g.conflict_set().len();
                if stats.committed != out.fired || wm != base_wm || cs_len != 0 {
                    mismatches += 1;
                    eprintln!(
                        "MISMATCH iter={it} {} batching={batching}: \
                         committed={} seq_fired={} cs_len={cs_len} items={items:?} removes={removes:?}",
                        kind.label(),
                        stats.committed,
                        out.fired,
                    );
                }
            }
        }
    }
    assert_eq!(mismatches, 0, "seed {seed}: {mismatches} mismatching runs");
}
