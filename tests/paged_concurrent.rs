//! Paged working memory under the concurrent executor: worker
//! transactions faulting pages through a deliberately tiny buffer pool
//! must commit the same firings and converge to the same WM as an
//! in-memory sequential run — and the run must leave no lock or latch
//! behind. This is the §5 × §6 intersection the seed never exercised.

use ops5::ClassId;
use prodsys::{
    make_engine, ConcurrentExecutor, EngineKind, ProductionDb, SequentialExecutor, Strategy,
};
use relstore::{tuple, Database, Restriction, Tuple};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

static NEXT_DIR: AtomicUsize = AtomicUsize::new(0);

fn tmp_dir(tag: &str) -> PathBuf {
    let n = NEXT_DIR.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("paged-conc-{tag}-{}-{n}", std::process::id()))
}

const SRC: &str = r#"
    (literalize Item n k pad)
    (literalize Done n)
    (literalize Log n)
    (p Mark (Item ^n <N> ^k <K> ^pad <P>) -(Done ^n <N>) --> (make Done ^n <N>))
    (p Consume (Item ^n <N> ^k <K> ^pad <P>) (Done ^n <N>) --> (remove 1) (make Log ^n <N>))
"#;

/// Sorted per-class dump of the whole working memory.
fn wm_all(engine: &dyn prodsys::MatchEngine) -> Vec<Vec<Tuple>> {
    let pdb = engine.pdb();
    (0..pdb.class_count())
        .map(|c| {
            let mut rows: Vec<Tuple> = pdb
                .db()
                .select(pdb.class_rel(ClassId(c)), &Restriction::default())
                .unwrap()
                .into_iter()
                .map(|(_, t)| t)
                .collect();
            rows.sort();
            rows
        })
        .collect()
}

/// Fat-padded items so a handful of tuples overflow a 2-frame pool.
fn load(db: Arc<Database>, kind: EngineKind, items: i64) -> Box<dyn prodsys::MatchEngine> {
    let rules = ops5::compile(SRC).expect("program compiles");
    let mut engine = make_engine(kind, ProductionDb::with_db(db, rules).unwrap());
    for i in 0..items {
        engine.insert(
            ClassId(0),
            tuple![i % 24, i % 3, "x".repeat(120 + (i as usize % 40))],
        );
    }
    engine
}

#[test]
fn paged_database_under_concurrent_workers_matches_memory() {
    for kind in [EngineKind::Query, EngineKind::Cond] {
        // In-memory sequential oracle.
        let mut seq = SequentialExecutor::new(
            load(Arc::new(Database::new()), kind, 64),
            Strategy::Canonical,
        );
        let out = seq.run(10_000);
        assert!(out.fired > 0, "{}: workload is non-trivial", kind.label());
        let base_wm = wm_all(seq.engine());

        // Paged database, two frames: every worker round faults pages.
        let dir = tmp_dir(kind.label());
        let db = Arc::new(Database::new_paged(&dir, 2).unwrap());
        let mut exec = ConcurrentExecutor::new(load(db.clone(), kind, 64), 4);
        let stats = exec.run(10_000);

        assert_eq!(
            stats.committed,
            out.fired,
            "{}: paged concurrent commits vs in-memory sequential firings",
            kind.label()
        );
        assert!(!stats.halted, "{}: no halt in this program", kind.label());
        {
            let engine = exec.engine();
            let g = engine.lock();
            assert_eq!(wm_all(&**g), base_wm, "{}: final WM", kind.label());
            assert_eq!(
                g.conflict_set().len(),
                0,
                "{}: quiescent conflict set",
                kind.label()
            );
        }
        let snap = db.stats().snapshot();
        assert!(
            snap.pool_evictions > 0,
            "{}: the 2-frame pool must thrash ({} evictions)",
            kind.label(),
            snap.pool_evictions
        );
        assert_eq!(
            db.lock_manager().held_count(),
            0,
            "{}: no lock survives the run",
            kind.label()
        );
        // The paged store is still fully usable after the storm.
        let r = db.rel_id("Log").unwrap();
        db.insert(r, tuple![999i64]).unwrap();
        db.sync_wal().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn paged_database_survives_concurrent_checkpoints() {
    let dir = tmp_dir("ckpt");
    let db = Arc::new(Database::new_paged(&dir, 4).unwrap());
    let mut exec = ConcurrentExecutor::new(load(db.clone(), EngineKind::Query, 48), 4);

    // Checkpoint continuously while workers commit rule firings: the
    // snapshot path takes the same latches as worker transactions, so
    // any ordering bug deadlocks or panics here.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let stats = std::thread::scope(|s| {
        let ck_db = db.clone();
        let ck_stop = stop.clone();
        s.spawn(move || {
            while !ck_stop.load(Ordering::Relaxed) {
                ck_db.checkpoint().unwrap();
            }
        });
        let stats = exec.run(10_000);
        stop.store(true, Ordering::Relaxed);
        stats
    });
    assert!(stats.committed > 0, "workers made progress");
    assert_eq!(db.lock_manager().held_count(), 0);
    db.checkpoint().unwrap();
    let before = dump(&db);
    drop(exec);
    drop(db);

    // Everything the run committed survives a crash-reopen.
    let (back, report) = Database::open_paged(&dir, 4).unwrap();
    assert!(report.snapshot_loaded);
    assert_eq!(dump(&back), before, "recovered WM matches");
    std::fs::remove_dir_all(&dir).ok();
}

/// Sorted dump of every relation's tuples, name-keyed.
fn dump(db: &Database) -> Vec<(String, Vec<Tuple>)> {
    let mut out: Vec<(String, Vec<Tuple>)> = db
        .relation_names()
        .into_iter()
        .map(|(rid, name)| {
            let mut rows: Vec<Tuple> = db
                .select(rid, &Restriction::default())
                .unwrap()
                .into_iter()
                .map(|(_, t)| t)
                .collect();
            rows.sort();
            (name, rows)
        })
        .collect();
    out.sort();
    out
}
