//! # sellis88 — umbrella crate
//!
//! Re-exports the whole workspace: a reproduction of *Sellis, Lin,
//! Raschid: "Implementing Large Production Systems in a DBMS Environment:
//! Concepts and Algorithms"* (SIGMOD 1988).
//!
//! Start with [`prodsys::ProductionSystem`] (see `examples/quickstart.rs`)
//! or the layer you need:
//!
//! * [`relstore`] — the relational storage substrate;
//! * [`predindex`] — R/R+-tree predicate indexing;
//! * [`ops5`] — the rule language compiler;
//! * [`rete`] — the classic and DB-backed Rete networks;
//! * [`prodsys`] — matching engines and executors (the paper's core);
//! * [`workload`] — example programs and synthetic generators.

pub use ops5;
pub use predindex;
pub use prodsys;
pub use relstore;
pub use rete;
pub use workload;
