//! # prodsys — production systems in a DBMS environment
//!
//! A full implementation of *Sellis, Lin, Raschid: "Implementing Large
//! Production Systems in a DBMS Environment: Concepts and Algorithms"*
//! (SIGMOD 1988): OPS5-style rules over DBMS-resident working memory,
//! with five interchangeable matching engines and two execution models.
//!
//! ```
//! use prodsys::{EngineKind, ProductionSystem, Strategy};
//! use relstore::tuple;
//!
//! let mut sys = ProductionSystem::from_source(r#"
//!     (literalize Emp name salary manager)
//!     (p R1
//!         (Emp ^name Mike ^salary <S> ^manager <M>)
//!         (Emp ^name <M> ^salary {<S1> < <S>})
//!         -->
//!         (remove 1))
//! "#, EngineKind::Cond, Strategy::Fifo).unwrap();
//! sys.insert("Emp", tuple!["Sam", 5000, "Root"]).unwrap();
//! sys.insert("Emp", tuple!["Mike", 6000, "Sam"]).unwrap();
//! let out = sys.run(10);
//! assert_eq!(out.fired, 1); // Mike out-earned his manager and is gone
//! ```
//!
//! See the crate-level modules:
//! * [`engine`] — the five matching engines (§3–§4 of the paper);
//! * [`exec`] — sequential (OPS5) and concurrent (§5) execution;
//! * [`strategy`] — conflict-resolution strategies;
//! * [`pdb`] — working-memory relations inside the DBMS.

pub mod engine;
pub mod error;
pub mod exec;
pub mod pdb;
pub mod rulebase;
pub mod strategy;
pub mod system;

pub use engine::{
    bootstrap, make_engine, plans_to_json, CondEngine, DbReteEngine, EngineKind, MarkerEngine,
    MatchEngine, MatchPlan, OrderPolicy, PlanStep, QueryEngine, ReteEngine, SpaceStats,
};
pub use error::{Error, Result};
pub use exec::{
    count_equivalent_schedules, critical_path, interleaving_upper_bound, ops_of_instantiation,
    ConcurrentExecutor, ConcurrentStats, RunOutcome, ScheduleOracle, SequentialExecutor, TxnOps,
    WmChange,
};
pub use pdb::ProductionDb;
pub use rulebase::RulebaseIndex;
pub use strategy::Strategy;
pub use system::{run_concurrent, ProductionSystem};

// Re-export the shared runtime vocabulary so downstream users need only
// this crate.
pub use ops5::{ClassId, RuleId, RuleSet};
pub use rete::{AbsentPattern, ConflictDelta, ConflictSet, Instantiation, Provenance, Wme};
