//! Working-memory relations inside the DBMS.
//!
//! "All classes can be simulated by relations … the working memory can
//! reside on secondary storage and be persistent" (§3.2). `ProductionDb`
//! creates one WM relation per `literalize` class, indexes the attributes
//! that rule conditions test with equality, and pre-lowers every rule's
//! LHS to a conjunctive query.

use std::sync::Arc;

use ops5::{ClassId, RuleId, RuleSet};
use relstore::{CompOp, ConjunctiveQuery, Database, RelId, Result, Schema, Tuple, TupleId};

/// Shared handle to the rule set, the database, and the WM relations.
#[derive(Clone)]
pub struct ProductionDb {
    db: Arc<Database>,
    rules: Arc<RuleSet>,
    class_rel: Arc<Vec<RelId>>,
    queries: Arc<Vec<ConjunctiveQuery>>,
}

impl ProductionDb {
    /// Create WM relations for every class in a fresh database.
    pub fn new(rules: RuleSet) -> Result<Self> {
        Self::with_db(Arc::new(Database::new()), rules)
    }

    /// Create WM relations inside an existing database.
    pub fn with_db(db: Arc<Database>, rules: RuleSet) -> Result<Self> {
        let mut class_rel = Vec::with_capacity(rules.classes.len());
        for class in &rules.classes {
            let rid = db.create_relation(Schema::new(&class.name, class.attrs.clone()))?;
            class_rel.push(rid);
        }
        // Index attributes used in equality tests (constants or joins).
        let mut want_hash: Vec<Vec<bool>> = rules
            .classes
            .iter()
            .map(|c| vec![false; c.arity()])
            .collect();
        let mut want_ord: Vec<Vec<bool>> = rules
            .classes
            .iter()
            .map(|c| vec![false; c.arity()])
            .collect();
        for rule in &rules.rules {
            for ce in &rule.ces {
                for sel in &ce.alpha.tests {
                    if sel.op == CompOp::Eq {
                        want_hash[ce.class.0][sel.attr] = true;
                    } else if sel.op != CompOp::Ne {
                        want_ord[ce.class.0][sel.attr] = true;
                    }
                }
                for j in &ce.joins {
                    if j.op == CompOp::Eq {
                        want_hash[ce.class.0][j.my_attr] = true;
                        want_hash[rule.ces[j.other_ce].class.0][j.other_attr] = true;
                    }
                }
            }
        }
        for (c, rid) in class_rel.iter().enumerate() {
            for attr in 0..rules.classes[c].arity() {
                if want_hash[c][attr] {
                    db.write(*rid, |r| r.create_hash_index(attr))??;
                } else if want_ord[c][attr] {
                    db.write(*rid, |r| r.create_ord_index(attr))??;
                }
            }
        }
        let queries = rules.rules.iter().map(|r| r.to_query(&class_rel)).collect();
        Ok(ProductionDb {
            db,
            rules: Arc::new(rules),
            class_rel: Arc::new(class_rel),
            queries: Arc::new(queries),
        })
    }

    /// Attach to a database that already contains the WM relations (e.g.
    /// one restored from a [`relstore::snapshot`]). Relations are resolved
    /// by class name instead of being created.
    pub fn attach(db: Arc<Database>, rules: RuleSet) -> Result<Self> {
        let mut class_rel = Vec::with_capacity(rules.classes.len());
        for class in &rules.classes {
            class_rel.push(db.rel_id(&class.name)?);
        }
        let queries = rules.rules.iter().map(|r| r.to_query(&class_rel)).collect();
        Ok(ProductionDb {
            db,
            rules: Arc::new(rules),
            class_rel: Arc::new(class_rel),
            queries: Arc::new(queries),
        })
    }

    /// All live WM tuples of a class, with ids.
    pub fn wm_scan(&self, class: ClassId) -> Result<Vec<(TupleId, Tuple)>> {
        self.db.read(self.class_rel(class), |r| r.scan())?
    }

    /// The underlying database.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// The compiled rule set.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// The WM relation storing this class.
    pub fn class_rel(&self, class: ClassId) -> RelId {
        self.class_rel[class.0]
    }

    /// Number of WM classes.
    pub fn class_count(&self) -> usize {
        self.class_rel.len()
    }

    /// The pre-lowered conjunctive query of a rule's LHS.
    pub fn query(&self, rule: RuleId) -> &ConjunctiveQuery {
        &self.queries[rule.0]
    }

    /// Insert a WM element.
    pub fn insert_wm(&self, class: ClassId, tuple: Tuple) -> Result<TupleId> {
        self.db.insert(self.class_rel(class), tuple)
    }

    /// Delete one WM element equal to `tuple` (OPS5 `remove` semantics).
    pub fn remove_wm_equal(&self, class: ClassId, tuple: &Tuple) -> Result<Option<TupleId>> {
        self.db.delete_equal(self.class_rel(class), tuple)
    }

    /// Live WM size of a class.
    pub fn wm_len(&self, class: ClassId) -> usize {
        self.db.relation_len(self.class_rel(class))
    }

    /// Total WM tuples across classes.
    pub fn wm_total(&self) -> usize {
        self.class_rel
            .iter()
            .map(|&r| self.db.relation_len(r))
            .sum()
    }

    /// Approximate WM bytes across classes.
    pub fn wm_bytes(&self) -> usize {
        self.class_rel
            .iter()
            .map(|&r| {
                self.db
                    .read(r, |rel| rel.approx_bytes().unwrap_or(0))
                    .unwrap_or(0)
            })
            .sum()
    }
}

impl std::fmt::Debug for ProductionDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProductionDb")
            .field("classes", &self.class_rel.len())
            .field("rules", &self.rules.rules.len())
            .field("wm_total", &self.wm_total())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::tuple;

    fn pdb() -> ProductionDb {
        let rs = ops5::compile(
            r#"
            (literalize Emp name salary manager dno)
            (literalize Dept dno dname floor manager)
            (p R2
                (Emp ^dno <D>)
                (Dept ^dno <D> ^dname Toy ^floor 1)
                -->
                (remove 1))
            "#,
        )
        .unwrap();
        ProductionDb::new(rs).unwrap()
    }

    #[test]
    fn wm_relations_created_with_indexes() {
        let p = pdb();
        assert_eq!(p.class_count(), 2);
        let emp = p.class_rel(ClassId(0));
        // dno is an equality-join attribute → hash indexed.
        assert!(p.db().read(emp, |r| r.has_hash_index(3)).unwrap());
        let dept = p.class_rel(ClassId(1));
        assert!(p.db().read(dept, |r| r.has_hash_index(0)).unwrap());
        assert!(
            p.db().read(dept, |r| r.has_hash_index(1)).unwrap(),
            "dname Toy eq test"
        );
    }

    #[test]
    fn insert_and_remove_wm() {
        let p = pdb();
        let c = ClassId(0);
        p.insert_wm(c, tuple!["Ann", 1000, "Sam", 7]).unwrap();
        assert_eq!(p.wm_len(c), 1);
        assert!(p
            .remove_wm_equal(c, &tuple!["Ann", 1000, "Sam", 7])
            .unwrap()
            .is_some());
        assert!(p
            .remove_wm_equal(c, &tuple!["Ann", 1000, "Sam", 7])
            .unwrap()
            .is_none());
        assert_eq!(p.wm_total(), 0);
    }

    #[test]
    fn queries_prelowered() {
        let p = pdb();
        let q = p.query(RuleId(0));
        assert_eq!(q.terms.len(), 2);
        assert_eq!(q.joins.len(), 1);
    }
}
