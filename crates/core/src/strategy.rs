//! Conflict-resolution strategies — the *Select* step of the
//! recognize-act cycle (§2.1: "One may use user-defined priorities or, in
//! general, order rules according to some static or dynamic criteria and
//! then fire the rules in that order").

use std::collections::HashMap;

use ops5::{RuleId, RuleSet};
use rete::Instantiation;

/// How the sequential executor picks one instantiation from the conflict
/// set.
#[derive(Debug, Clone)]
pub enum Strategy {
    /// Oldest instantiation first (stable queue order).
    Fifo,
    /// Newest instantiation first (recency, LEX-flavored).
    Lifo,
    /// User-defined rule priorities; higher fires first, ties broken by
    /// arrival order.
    Priority(HashMap<RuleId, i32>),
    /// More specific rules (more tests on their LHS) first.
    Specificity,
    /// Deterministic pseudo-random choice from a seed.
    Random(u64),
    /// Smallest instantiation in content order. Unlike `Fifo`/`Lifo`
    /// (which depend on the engine's internal conflict-set ordering, a
    /// freedom §2.1 leaves "arbitrary"), this makes whole runs
    /// reproducible across *different matching engines*.
    Canonical,
}

impl Strategy {
    /// Pick an index into `candidates` (non-empty).
    pub fn pick(&mut self, rules: &RuleSet, candidates: &[&Instantiation]) -> usize {
        debug_assert!(!candidates.is_empty());
        match self {
            Strategy::Fifo => 0,
            Strategy::Lifo => candidates.len() - 1,
            Strategy::Priority(pri) => {
                let mut best = 0;
                let mut best_p = i32::MIN;
                for (i, inst) in candidates.iter().enumerate() {
                    let p = pri.get(&inst.rule).copied().unwrap_or(0);
                    if p > best_p {
                        best_p = p;
                        best = i;
                    }
                }
                best
            }
            Strategy::Specificity => {
                let mut best = 0;
                let mut best_s = 0;
                for (i, inst) in candidates.iter().enumerate() {
                    let s = rules.rule(inst.rule).specificity();
                    if s > best_s {
                        best_s = s;
                        best = i;
                    }
                }
                best
            }
            Strategy::Canonical => {
                let mut best = 0;
                for (i, inst) in candidates.iter().enumerate() {
                    if *inst < candidates[best] {
                        best = i;
                    }
                }
                best
            }
            Strategy::Random(state) => {
                // xorshift64*, deterministic given the seed.
                let mut x = *state;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                *state = x;
                (x.wrapping_mul(0x2545_F491_4F6C_DD1D) % candidates.len() as u64) as usize
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ops5::ClassId;
    use relstore::tuple;
    use rete::Wme;

    fn rules() -> RuleSet {
        ops5::compile(
            r#"
            (literalize A x y)
            (p Simple (A ^x 1) --> (remove 1))
            (p Specific (A ^x 1 ^y 2) --> (remove 1))
            "#,
        )
        .unwrap()
    }

    fn inst(rule: usize) -> Instantiation {
        Instantiation::new(RuleId(rule), vec![Wme::new(ClassId(0), tuple![1, 2])])
    }

    #[test]
    fn fifo_lifo() {
        let rs = rules();
        let a = inst(0);
        let b = inst(1);
        let cands = vec![&a, &b];
        assert_eq!(Strategy::Fifo.pick(&rs, &cands), 0);
        assert_eq!(Strategy::Lifo.pick(&rs, &cands), 1);
    }

    #[test]
    fn priority_and_specificity() {
        let rs = rules();
        let a = inst(0);
        let b = inst(1);
        let cands = vec![&a, &b];
        let mut pri = Strategy::Priority(HashMap::from([(RuleId(0), 5), (RuleId(1), 1)]));
        assert_eq!(pri.pick(&rs, &cands), 0);
        assert_eq!(
            Strategy::Specificity.pick(&rs, &cands),
            1,
            "Specific has more tests"
        );
    }

    #[test]
    fn canonical_picks_content_minimum() {
        let rs = rules();
        let a = inst(1);
        let b = inst(0);
        // Regardless of arrival order, the content-smallest wins.
        assert_eq!(Strategy::Canonical.pick(&rs, &[&a, &b]), 1);
        assert_eq!(Strategy::Canonical.pick(&rs, &[&b, &a]), 0);
    }

    #[test]
    fn random_is_deterministic_and_in_range() {
        let rs = rules();
        let a = inst(0);
        let b = inst(1);
        let cands = vec![&a, &b];
        let mut s1 = Strategy::Random(42);
        let mut s2 = Strategy::Random(42);
        for _ in 0..20 {
            let p1 = s1.pick(&rs, &cands);
            assert_eq!(p1, s2.pick(&rs, &cands));
            assert!(p1 < 2);
        }
    }
}
