//! High-level facade: compile a program, pick an engine and a strategy,
//! load working memory, run.

use ops5::{ClassId, RuleSet};
use relstore::{Restriction, Tuple};

use crate::engine::{make_engine, EngineKind, MatchEngine};
use crate::error::{Error, Result};
use crate::exec::{ConcurrentExecutor, ConcurrentStats, RunOutcome, SequentialExecutor};
use crate::pdb::ProductionDb;
use crate::strategy::Strategy;

/// A ready-to-run production system.
pub struct ProductionSystem {
    exec: SequentialExecutor,
}

impl ProductionSystem {
    /// Compile OPS5 source and build the system.
    pub fn from_source(src: &str, kind: EngineKind, strategy: Strategy) -> Result<Self> {
        let rules = ops5::compile(src)?;
        Self::from_rules(rules, kind, strategy)
    }

    /// Build the system from an already-compiled rule set.
    pub fn from_rules(rules: RuleSet, kind: EngineKind, strategy: Strategy) -> Result<Self> {
        let pdb = ProductionDb::new(rules)?;
        Ok(ProductionSystem {
            exec: SequentialExecutor::new(make_engine(kind, pdb), strategy),
        })
    }

    fn class(&self, name: &str) -> Result<ClassId> {
        self.exec
            .engine()
            .pdb()
            .rules()
            .class_id(name)
            .ok_or_else(|| Error::UnknownClass(name.to_string()))
    }

    /// Insert a WM element by class name.
    pub fn insert(&mut self, class: &str, tuple: Tuple) -> Result<()> {
        let c = self.class(class)?;
        self.exec.insert(c, tuple);
        Ok(())
    }

    /// Remove a WM element (by content) by class name.
    pub fn remove(&mut self, class: &str, tuple: &Tuple) -> Result<()> {
        let c = self.class(class)?;
        self.exec.remove(c, tuple);
        Ok(())
    }

    /// Insert many WM elements of one class as a single delta set (one
    /// set-oriented maintenance pass; see
    /// [`SequentialExecutor::insert_batch`]).
    pub fn insert_batch(&mut self, class: &str, tuples: Vec<Tuple>) -> Result<()> {
        let c = self.class(class)?;
        self.exec.insert_batch(c, tuples);
        Ok(())
    }

    /// Toggle set-oriented (hash-join, delta-batched) evaluation in the
    /// matching engine. Engines without a batch strategy ignore it. Used
    /// by benchmarks to pin the nested-loop baseline.
    pub fn set_batching(&mut self, on: bool) {
        self.exec.engine_mut().set_batching(on);
    }

    /// Toggle the σ-binding hash index over matching patterns (COND
    /// engine). Engines without a pattern store ignore it. Benchmarks pin
    /// `false` to reproduce the historical full-scan baseline.
    pub fn set_pattern_index(&mut self, on: bool) {
        self.exec.engine_mut().set_pattern_index(on);
    }

    /// Run the recognize-act cycle.
    pub fn run(&mut self, max_cycles: usize) -> RunOutcome {
        self.exec.run(max_cycles)
    }

    /// One cycle; `None` at quiescence.
    pub fn step(&mut self) -> Option<(rete::Instantiation, bool, Vec<String>)> {
        self.exec.step()
    }

    /// Current conflict-set size.
    pub fn conflict_len(&self) -> usize {
        self.exec.engine().conflict_set().len()
    }

    /// Dump a class's working memory (sorted for stable comparison).
    pub fn wm(&self, class: &str) -> Result<Vec<Tuple>> {
        let c = self.class(class)?;
        let pdb = self.exec.engine().pdb();
        let mut rows: Vec<Tuple> = pdb
            .db()
            .select(pdb.class_rel(c), &Restriction::default())?
            .into_iter()
            .map(|(_, t)| t)
            .collect();
        rows.sort();
        Ok(rows)
    }

    /// The matching engine in use.
    pub fn engine(&self) -> &dyn MatchEngine {
        self.exec.engine()
    }

    /// Install a tracing/metrics handle. The matching engine, the
    /// executor, and the storage layer's lock manager all share it, so a
    /// single sink sees the whole recognize-act lifecycle. Pass
    /// [`obs::Tracer::disabled`] to turn tracing back off.
    pub fn set_tracer(&mut self, tracer: obs::Tracer) {
        self.exec
            .engine()
            .pdb()
            .db()
            .lock_manager()
            .set_tracer(tracer.clone());
        self.exec.engine_mut().set_tracer(tracer);
    }

    /// The installed tracing handle (disabled by default).
    pub fn tracer(&self) -> &obs::Tracer {
        self.exec.engine().tracer()
    }

    /// Direct access to the sequential executor.
    pub fn executor_mut(&mut self) -> &mut SequentialExecutor {
        &mut self.exec
    }

    /// Convert into a concurrent executor (§5) with `workers` threads.
    pub fn into_concurrent(self, workers: usize) -> ConcurrentExecutor {
        ConcurrentExecutor::new(self.exec.into_engine(), workers)
    }

    /// Snapshot the persistent working memory (§3.2: "the working memory
    /// can reside on secondary storage and be persistent").
    pub fn save(&self) -> Result<bytes::Bytes> {
        Ok(relstore::snapshot::save(self.exec.engine().pdb().db())?)
    }

    /// Restore a system from a snapshot produced by [`ProductionSystem::save`]
    /// with the same program: the working memory, match structures and
    /// conflict set come back exactly.
    pub fn load(
        snapshot: bytes::Bytes,
        src: &str,
        kind: EngineKind,
        strategy: Strategy,
    ) -> Result<Self> {
        let rules = ops5::compile(src)?;
        let db = std::sync::Arc::new(relstore::snapshot::load(snapshot)?);
        let pdb = ProductionDb::attach(db, rules)?;
        let mut engine = make_engine(kind, pdb);
        crate::engine::bootstrap(engine.as_mut());
        Ok(ProductionSystem {
            exec: SequentialExecutor::new(engine, strategy),
        })
    }
}

/// Convenience: build, load, and run concurrently in one call.
pub fn run_concurrent(
    src: &str,
    kind: EngineKind,
    workers: usize,
    wm: Vec<(String, Tuple)>,
    max_fired: usize,
) -> Result<ConcurrentStats> {
    let rules = ops5::compile(src)?;
    let pdb = ProductionDb::new(rules)?;
    let mut engine = make_engine(kind, pdb);
    for (class, tuple) in wm {
        let c = engine
            .pdb()
            .rules()
            .class_id(&class)
            .ok_or_else(|| Error::UnknownClass(class.clone()))?;
        engine.insert(c, tuple);
    }
    let mut ex = ConcurrentExecutor::new(engine, workers);
    Ok(ex.run(max_fired))
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::tuple;

    const SRC: &str = r#"
        (literalize Emp name salary manager)
        (p R1
            (Emp ^name Mike ^salary <S> ^manager <M>)
            (Emp ^name <M> ^salary {<S1> < <S>})
            -->
            (remove 1)
            (write removed Mike))
    "#;

    #[test]
    fn facade_end_to_end() {
        let mut sys = ProductionSystem::from_source(SRC, EngineKind::Cond, Strategy::Fifo).unwrap();
        sys.insert("Emp", tuple!["Sam", 5000, "Root"]).unwrap();
        sys.insert("Emp", tuple!["Mike", 6000, "Sam"]).unwrap();
        assert_eq!(sys.conflict_len(), 1);
        let out = sys.run(10);
        assert_eq!(out.fired, 1);
        assert_eq!(out.writes, vec!["removed Mike"]);
        assert_eq!(sys.wm("Emp").unwrap(), vec![tuple!["Sam", 5000, "Root"]]);
    }

    #[test]
    fn unknown_class_is_an_error() {
        let mut sys = ProductionSystem::from_source(SRC, EngineKind::Rete, Strategy::Fifo).unwrap();
        assert!(sys.insert("Ghost", tuple![1]).is_err());
        assert!(sys.wm("Ghost").is_err());
    }

    #[test]
    fn save_load_roundtrip_resumes_matching() {
        let mut sys = ProductionSystem::from_source(SRC, EngineKind::Cond, Strategy::Fifo).unwrap();
        sys.insert("Emp", tuple!["Sam", 5000, "Root"]).unwrap();
        sys.insert("Emp", tuple!["Mike", 6000, "Sam"]).unwrap();
        let image = sys.save().unwrap();
        drop(sys);

        let mut back =
            ProductionSystem::load(image, SRC, EngineKind::Cond, Strategy::Fifo).unwrap();
        assert_eq!(back.conflict_len(), 1, "conflict set restored");
        let out = back.run(10);
        assert_eq!(out.fired, 1);
        assert_eq!(back.wm("Emp").unwrap(), vec![tuple!["Sam", 5000, "Root"]]);
    }

    #[test]
    fn run_concurrent_helper() {
        let stats = run_concurrent(
            r#"
            (literalize Item n)
            (literalize Done n)
            (p Mark (Item ^n <N>) -(Done ^n <N>) --> (make Done ^n <N>))
            "#,
            EngineKind::Rete,
            4,
            (0..6i64).map(|i| ("Item".to_string(), tuple![i])).collect(),
            100,
        )
        .unwrap();
        assert_eq!(stats.committed, 6);
    }
}
