//! The "simplified algorithm" of §4.1: one COND relation per WM class, no
//! intermediate join results.
//!
//! "Instead of storing a large number of intermediate relations, we will
//! only need to store one relation per class of working memory elements"
//! and consequently "the speed may be slower in some cases since
//! re-computation of joins is necessary whenever a change is made to the
//! working memory" (§4.1.2). Variable-free condition checking goes through
//! a [`predindex`] condition index ("one can use intelligent indexing
//! techniques such as R-trees or R+-trees … to check if a given tuple
//! satisfies conditions stored in the COND relations").

use std::collections::BTreeSet;
use std::time::Instant;

use ops5::{ClassId, RuleId};
use predindex::{make_index, ConditionIndex, IndexKind, Rect};
use relstore::{Tuple, TupleId};
use rete::{ConflictDelta, ConflictSet};

use crate::engine::recompute::{eval_rule_via, InstStore};
use crate::engine::{MatchEngine, SpaceStats, WmDelta};
use crate::pdb::ProductionDb;

/// Payload of a COND index entry: (rule, condition element number).
type CondRef = (usize, usize);

/// §4.1 matching engine.
pub struct QueryEngine {
    pdb: ProductionDb,
    /// COND relation per class: the conditions referring to that class.
    cond: Vec<Box<dyn ConditionIndex<CondRef> + Send + Sync>>,
    store: InstStore,
    conflict: ConflictSet,
    last_total: u64,
    /// Set-oriented evaluation: hash-join executor + whole-delta batching.
    batch: bool,
    tracer: obs::Tracer,
}

impl QueryEngine {
    /// Create a new, empty instance.
    pub fn new(pdb: ProductionDb) -> Self {
        Self::with_index(pdb, IndexKind::RTree)
    }

    /// Choose the COND-relation index implementation (E9 ablation).
    pub fn with_index(pdb: ProductionDb, kind: IndexKind) -> Self {
        let mut cond: Vec<Box<dyn ConditionIndex<CondRef> + Send + Sync>> = pdb
            .rules()
            .classes
            .iter()
            .map(|c| make_index(kind, c.arity()))
            .collect();
        for rule in &pdb.rules().rules {
            for (cen, ce) in rule.ces.iter().enumerate() {
                let arity = pdb.rules().class(ce.class).arity();
                // A contradictory alpha restriction can never match: the
                // CE (and for positive CEs the whole rule) is dead.
                if let Some(rect) = Rect::from_restriction(arity, &ce.alpha) {
                    cond[ce.class.0].insert(rect, (rule.id.0, cen));
                }
            }
        }
        QueryEngine {
            pdb,
            cond,
            store: InstStore::new(),
            conflict: ConflictSet::new(),
            last_total: 0,
            batch: true,
            tracer: obs::Tracer::disabled(),
        }
    }

    /// Rules with a condition element whose one-input tests match this
    /// tuple — the only rules the change can affect. Exact stabbing over
    /// rectangles plus the intra-tuple attr tests the rectangles cannot
    /// encode.
    fn affected_rules(&self, class: ClassId, tuple: &Tuple) -> BTreeSet<usize> {
        self.cond[class.0]
            .stab(tuple)
            .into_iter()
            .filter(|&(rid, cen)| {
                let ce = &self.pdb.rules().rule(RuleId(rid)).ces[cen];
                ce.alpha.attr_tests.iter().all(|t| t.matches(tuple))
            })
            .map(|(rid, _)| rid)
            .collect()
    }

    fn reevaluate(&mut self, rules: BTreeSet<usize>) -> Vec<ConflictDelta> {
        obs::prof_span!("eval");
        let mut deltas = Vec::new();
        for rid in rules {
            let rule = self.pdb.rules().rule(RuleId(rid)).clone();
            let matches = eval_rule_via(&self.pdb, &rule, self.batch);
            deltas.extend(self.store.replace(&rule, matches));
        }
        self.conflict.apply_all(&deltas);
        deltas
    }

    /// Stabbing-cost metric (index nodes visited so far).
    pub fn index_visits(&self) -> u64 {
        self.cond.iter().map(|i| i.node_visits()).sum()
    }
}

impl MatchEngine for QueryEngine {
    fn name(&self) -> &'static str {
        "query"
    }

    fn pdb(&self) -> &ProductionDb {
        &self.pdb
    }

    fn maintain_insert(
        &mut self,
        class: ClassId,
        _tid: TupleId,
        tuple: &Tuple,
    ) -> Vec<ConflictDelta> {
        obs::prof_span!("query.maintain");
        let start = Instant::now();
        let affected = self.affected_rules(class, tuple);
        let deltas = self.reevaluate(affected);
        self.last_total = start.elapsed().as_nanos() as u64;
        deltas
    }

    fn maintain_remove(
        &mut self,
        class: ClassId,
        _tid: TupleId,
        tuple: &Tuple,
    ) -> Vec<ConflictDelta> {
        obs::prof_span!("query.maintain");
        let start = Instant::now();
        let affected = self.affected_rules(class, tuple);
        let deltas = self.reevaluate(affected);
        self.last_total = start.elapsed().as_nanos() as u64;
        deltas
    }

    /// Batched maintenance (§4.1 meets §4.2's "update first, maintain
    /// once"): with the whole WM delta applied, union the affected rules
    /// of every change and re-evaluate each exactly once. Since full
    /// re-evaluation against the final WM is idempotent, one pass per
    /// rule yields the same conflict-set diff the per-change loop would.
    fn maintain_delta(&mut self, deltas: &[WmDelta]) -> Vec<ConflictDelta> {
        if !self.batch {
            let mut out = Vec::new();
            for d in deltas {
                if d.insert {
                    out.extend(self.maintain_insert(d.class, d.tid, &d.tuple));
                } else {
                    out.extend(self.maintain_remove(d.class, d.tid, &d.tuple));
                }
            }
            return out;
        }
        obs::prof_span!("query.maintain");
        let start = Instant::now();
        let mut affected = BTreeSet::new();
        for d in deltas {
            affected.extend(self.affected_rules(d.class, &d.tuple));
        }
        let out = self.reevaluate(affected);
        self.last_total = start.elapsed().as_nanos() as u64;
        out
    }

    fn set_batching(&mut self, on: bool) {
        self.batch = on;
    }

    fn conflict_set(&self) -> &ConflictSet {
        &self.conflict
    }

    fn space(&self) -> SpaceStats {
        // "In terms of space, this algorithm is much better than the Rete
        // Network because no intermediate results are stored" — only the
        // COND entries (one per condition element) count.
        let entries: usize = self.cond.iter().map(|i| i.len()).sum();
        SpaceStats {
            match_entries: entries,
            match_bytes: entries * 96,
            wm_tuples: self.pdb.wm_total(),
        }
    }

    fn last_detect_split(&self) -> Option<(u64, u64)> {
        // Re-evaluation computes all affected joins before the conflict
        // set changes: no maintenance tail after detection (§4.1.2).
        Some((self.last_total, self.last_total))
    }

    fn tracer(&self) -> &obs::Tracer {
        &self.tracer
    }

    fn set_tracer(&mut self, tracer: obs::Tracer) {
        self.tracer = tracer;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::tuple;

    fn engine() -> QueryEngine {
        let rs = ops5::compile(
            r#"
            (literalize Emp name salary manager dno)
            (literalize Dept dno dname floor manager)
            (p R1
                (Emp ^name Mike ^salary <S> ^manager <M>)
                (Emp ^name <M> ^salary {<S1> < <S>})
                -->
                (remove 1))
            (p R2
                (Emp ^dno <D>)
                (Dept ^dno <D> ^dname Toy ^floor 1)
                -->
                (remove 1))
            "#,
        )
        .unwrap();
        QueryEngine::new(ProductionDb::new(rs).unwrap())
    }

    #[test]
    fn example_3_matching() {
        let mut e = engine();
        let emp = ClassId(0);
        let dept = ClassId(1);
        assert!(e.insert(emp, tuple!["Sam", 5000, "Root", 1]).is_empty());
        let d = e.insert(emp, tuple!["Mike", 6000, "Sam", 1]);
        assert_eq!(d.len(), 1, "R1 fires");
        let d = e.insert(dept, tuple![1, "Toy", 1, "Sam"]);
        assert_eq!(d.len(), 2, "R2 fires for Sam and Mike");
        assert_eq!(e.conflict_set().len(), 3);
        // Deleting Mike retracts R1's instantiation and one R2 one.
        let d = e.remove(emp, &tuple!["Mike", 6000, "Sam", 1]);
        assert_eq!(d.iter().filter(|x| !x.is_add()).count(), 2);
        assert_eq!(e.conflict_set().len(), 1);
    }

    #[test]
    fn unaffected_rules_not_reevaluated() {
        let mut e = engine();
        // A Dept tuple that fails R2's alpha tests affects nothing.
        let affected = e.affected_rules(ClassId(1), &tuple![9, "Shoe", 2, "X"]);
        assert!(affected.is_empty());
        assert!(e.insert(ClassId(1), tuple![9, "Shoe", 2, "X"]).is_empty());
    }

    #[test]
    fn index_visits_counted() {
        let mut e = engine();
        e.insert(ClassId(0), tuple!["Ann", 1, "B", 2]);
        assert!(e.index_visits() > 0);
    }

    #[test]
    fn negation_through_recompute() {
        let rs = ops5::compile(
            r#"
            (literalize Emp name dno)
            (literalize Dept dno)
            (p Orphan (Emp ^name <N> ^dno <D>) -(Dept ^dno <D>) --> (remove 1))
            "#,
        )
        .unwrap();
        let mut e = QueryEngine::new(ProductionDb::new(rs).unwrap());
        let d = e.insert(ClassId(0), tuple!["Ann", 7]);
        assert_eq!(d.len(), 1);
        let d = e.insert(ClassId(1), tuple![7]);
        assert_eq!(d.len(), 1);
        assert!(!d[0].is_add());
        let d = e.remove(ClassId(1), &tuple![7]);
        assert_eq!(d.len(), 1);
        assert!(d[0].is_add());
        assert_eq!(e.conflict_set().len(), 1);
    }

    #[test]
    fn space_excludes_intermediate_results() {
        let mut e = engine();
        let before = e.space().match_entries;
        for i in 0..50i64 {
            e.insert(ClassId(0), tuple![format!("e{i}"), 100 * i, "Sam", i % 5]);
        }
        assert_eq!(e.space().match_entries, before, "COND entries are static");
    }
}
