//! The paper's §3.2 design as an engine: Rete with LEFT/RIGHT relations
//! stored in the same database as working memory.

use std::time::Instant;

use ops5::ClassId;
use relstore::{Tuple, TupleId};
use rete::{ConflictDelta, ConflictSet, DbReteNetwork, Wme};

use crate::engine::{MatchEngine, SpaceStats};
use crate::pdb::ProductionDb;

/// DBMS-backed Rete matching.
pub struct DbReteEngine {
    pdb: ProductionDb,
    net: DbReteNetwork,
    last_total: u64,
    tracer: obs::Tracer,
}

impl DbReteEngine {
    /// Create a new, empty instance.
    pub fn new(pdb: ProductionDb) -> Self {
        let net = match DbReteNetwork::new(pdb.db().clone(), pdb.rules()) {
            Ok(net) => net,
            // The database already holds this rule set's LEFT/RIGHT
            // relations (restored snapshot): re-attach to them — the whole
            // network state is DB-resident.
            Err(relstore::Error::DuplicateRelation(_)) => {
                DbReteNetwork::attach(pdb.db().clone(), pdb.rules())
                    .expect("attach to restored LEFT/RIGHT relations")
            }
            Err(e) => panic!("LEFT/RIGHT relation creation: {e}"),
        };
        DbReteEngine {
            pdb,
            net,
            last_total: 0,
            tracer: obs::Tracer::disabled(),
        }
    }

    /// Did construction attach to pre-existing (already populated)
    /// network relations?
    pub fn attached(&self) -> bool {
        !self.net.conflict_set().is_empty() || self.net.stored_entries() > 0
    }

    /// The underlying DB-resident network.
    pub fn network(&self) -> &DbReteNetwork {
        &self.net
    }
}

impl MatchEngine for DbReteEngine {
    fn name(&self) -> &'static str {
        "db-rete"
    }

    fn match_plan(&self) -> Vec<crate::engine::MatchPlan> {
        // LEFT/RIGHT relations mirror the compile-time network shape, so
        // the effective join order is still the textual CE order.
        crate::engine::explain::match_plans(
            self.pdb(),
            self.name(),
            crate::engine::OrderPolicy::Textual,
        )
    }

    fn pdb(&self) -> &ProductionDb {
        &self.pdb
    }

    fn maintain_insert(
        &mut self,
        class: ClassId,
        _tid: TupleId,
        tuple: &Tuple,
    ) -> Vec<ConflictDelta> {
        obs::prof_span!("dbrete.maintain");
        let start = Instant::now();
        let deltas = self.net.insert(Wme::new(class, tuple.clone()));
        self.last_total = start.elapsed().as_nanos() as u64;
        deltas
    }

    fn maintain_remove(
        &mut self,
        class: ClassId,
        _tid: TupleId,
        tuple: &Tuple,
    ) -> Vec<ConflictDelta> {
        obs::prof_span!("dbrete.maintain");
        let start = Instant::now();
        let deltas = self.net.remove(&Wme::new(class, tuple.clone()));
        self.last_total = start.elapsed().as_nanos() as u64;
        deltas
    }

    fn conflict_set(&self) -> &ConflictSet {
        self.net.conflict_set()
    }

    fn space(&self) -> SpaceStats {
        SpaceStats {
            match_entries: self.net.stored_entries(),
            match_bytes: self.net.approx_bytes(),
            wm_tuples: self.pdb.wm_total(),
        }
    }

    fn needs_bootstrap(&self) -> bool {
        // When attached, the restored LEFT/RIGHT relations already encode
        // the match state; replaying WM would double-count.
        !self.attached()
    }

    fn last_detect_split(&self) -> Option<(u64, u64)> {
        // Like in-memory Rete, the DB-resident network surfaces conflict
        // deltas only after the LEFT/RIGHT relations are maintained:
        // detection cannot complete earlier than maintenance (§4.2.3).
        Some((self.last_total, self.last_total))
    }

    fn tracer(&self) -> &obs::Tracer {
        &self.tracer
    }

    fn set_tracer(&mut self, tracer: obs::Tracer) {
        self.tracer = tracer;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::tuple;

    #[test]
    fn db_rete_engine_matches_and_stores_tokens() {
        let rs = ops5::compile(
            r#"
            (literalize Emp name dno)
            (literalize Dept dno)
            (p R (Emp ^dno <D>) (Dept ^dno <D>) --> (remove 1))
            "#,
        )
        .unwrap();
        let pdb = ProductionDb::new(rs).unwrap();
        let mut e = DbReteEngine::new(pdb.clone());
        e.insert(ClassId(0), tuple!["Ann", 7]);
        let deltas = e.insert(ClassId(1), tuple![7]);
        assert_eq!(deltas.len(), 1);
        // LEFT/RIGHT relations hold redundant copies (the §3.2 critique).
        assert!(e.space().match_entries >= 2);
        e.remove(ClassId(0), &tuple!["Ann", 7]);
        assert!(e.conflict_set().is_empty());
    }
}
