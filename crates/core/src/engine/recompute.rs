//! Shared instantiation bookkeeping for engines that (re)compute LHS
//! queries: an exact multiset of current instantiations per rule, keyed by
//! tuple ids so duplicate WM elements are handled correctly.

use std::collections::HashMap;

use ops5::{ClassId, Rule, RuleId};
use relstore::{BatchExecutor, Binding, QueryExecutor, Tuple, TupleId};
use rete::{AbsentPattern, ConflictDelta, Instantiation, Provenance, Wme};

use crate::pdb::ProductionDb;

/// One concrete match: tuple ids and contents of the positive CEs, in CE
/// order.
#[derive(Debug, Clone)]
pub struct Match {
    /// Tuple ids, aligned with the positive CEs.
    pub tids: Vec<TupleId>,
    /// Tuple contents, aligned with `tids`.
    pub tuples: Vec<Tuple>,
}

impl Match {
    /// Materialize this match as a conflict-set instantiation, carrying
    /// full provenance: the supporting tuple ids and, for each negated
    /// CE, the concrete pattern whose absence holds (§4.2.2).
    pub fn instantiation(&self, rule: &Rule) -> Instantiation {
        let classes: Vec<ClassId> = rule
            .ces
            .iter()
            .filter(|ce| !ce.negated)
            .map(|ce| ce.class)
            .collect();
        let wmes = classes
            .into_iter()
            .zip(&self.tuples)
            .map(|(c, t)| Wme::new(c, t.clone()))
            .collect();
        Instantiation::new(rule.id, wmes).with_provenance(Provenance {
            support: self.tids.iter().map(|t| t.pack()).collect(),
            absent: self.absent_patterns(rule),
        })
    }

    /// The rule's negated CEs with their join tests bound to this match's
    /// concrete values: what must stay absent for the match to hold.
    fn absent_patterns(&self, rule: &Rule) -> Vec<AbsentPattern> {
        let positive_pos = {
            let mut pos = Vec::with_capacity(rule.ces.len());
            let mut next = 0usize;
            for ce in &rule.ces {
                pos.push(if ce.negated {
                    None
                } else {
                    next += 1;
                    Some(next - 1)
                });
            }
            pos
        };
        rule.ces
            .iter()
            .filter(|ce| ce.negated)
            .map(|ce| {
                let mut tests: Vec<_> = ce
                    .alpha
                    .tests
                    .iter()
                    .map(|s| (s.attr, s.op, s.value.clone()))
                    .collect();
                for j in &ce.joins {
                    if let Some(p) = positive_pos.get(j.other_ce).copied().flatten() {
                        tests.push((j.my_attr, j.op, self.tuples[p][j.other_attr].clone()));
                    }
                }
                AbsentPattern {
                    class: ce.class,
                    tests,
                }
            })
            .collect()
    }
}

/// Flatten executor bindings (positive slots in CE order) into matches.
fn matches_from(bindings: Vec<Binding>) -> Vec<Match> {
    bindings
        .into_iter()
        .map(|b| {
            let mut tids = Vec::new();
            let mut tuples = Vec::new();
            for slot in b.slots.into_iter().flatten() {
                tids.push(slot.0);
                tuples.push(slot.1);
            }
            Match { tids, tuples }
        })
        .collect()
}

/// Evaluate a rule's LHS against the current WM. Returns every match.
/// Uses the index nested-loop executor (the pre-batching strategy).
pub fn eval_rule(pdb: &ProductionDb, rule: &Rule) -> Vec<Match> {
    eval_rule_via(pdb, rule, false)
}

/// Evaluate a rule's LHS, choosing the executor: `set_oriented` runs the
/// hash-join [`BatchExecutor`], otherwise the tuple-at-a-time
/// [`QueryExecutor`]. Both return the same match set (property-tested).
pub fn eval_rule_via(pdb: &ProductionDb, rule: &Rule, set_oriented: bool) -> Vec<Match> {
    let query = pdb.query(rule.id);
    let bindings = if set_oriented {
        BatchExecutor::new(pdb.db())
            .exec(query, None)
            .expect("rule query")
    } else {
        QueryExecutor::new(pdb.db())
            .exec(query, None)
            .expect("rule query")
    };
    matches_from(bindings)
}

/// Evaluate a rule's LHS seeded with a specific tuple filling positive CE
/// `ce` (§4.1.2's insertion path).
pub fn eval_rule_seeded(
    pdb: &ProductionDb,
    rule: &Rule,
    ce: usize,
    tid: TupleId,
    tuple: &Tuple,
) -> Vec<Match> {
    let query = pdb.query(rule.id);
    let exec = QueryExecutor::new(pdb.db());
    let bindings = exec
        .exec(query, Some((ce, tid, tuple)))
        .expect("seeded rule query");
    matches_from(bindings)
}

/// Evaluate a rule's LHS once per seed tuple filling positive CE `ce`,
/// returning the concatenation. `set_oriented` evaluates the whole seed
/// set in one batched pass (one plan, one relation read per step) through
/// the [`BatchExecutor`]; otherwise the seeds are probed one at a time —
/// the two produce equal match multisets, in possibly different order, so
/// callers must dedup/diff by tid vector (they do: [`InstStore`]).
pub fn eval_rule_seeded_batch(
    pdb: &ProductionDb,
    rule: &Rule,
    ce: usize,
    seeds: &[(TupleId, Tuple)],
    set_oriented: bool,
) -> Vec<Match> {
    if seeds.is_empty() {
        return Vec::new();
    }
    if set_oriented {
        let query = pdb.query(rule.id);
        let bindings = BatchExecutor::new(pdb.db())
            .exec_seeded_batch(query, ce, seeds)
            .expect("seeded batch query");
        matches_from(bindings)
    } else {
        seeds
            .iter()
            .flat_map(|(tid, tuple)| eval_rule_seeded(pdb, rule, ce, *tid, tuple))
            .collect()
    }
}

/// Exact multiset of live matches per rule.
#[derive(Debug, Default)]
pub struct InstStore {
    by_rule: HashMap<RuleId, Vec<Match>>,
}

impl InstStore {
    /// Create a new, empty instance.
    pub fn new() -> Self {
        InstStore::default()
    }

    /// The live matches of one rule.
    pub fn matches(&self, rule: RuleId) -> &[Match] {
        self.by_rule.get(&rule).map_or(&[], Vec::as_slice)
    }

    /// Total live matches across all rules.
    pub fn total(&self) -> usize {
        self.by_rule.values().map(Vec::len).sum()
    }

    /// Replace rule `rule`'s matches with `new`, emitting deltas for the
    /// symmetric difference (by tid vector, multiset semantics).
    pub fn replace(&mut self, rule: &Rule, new: Vec<Match>) -> Vec<ConflictDelta> {
        let old = self.by_rule.remove(&rule.id).unwrap_or_default();
        let mut deltas = Vec::new();
        // Count occurrences by tid-vector.
        let mut old_left: Vec<Option<&Match>> = old.iter().map(Some).collect();
        let mut fresh: Vec<&Match> = Vec::new();
        'outer: for m in &new {
            for slot in old_left.iter_mut() {
                if let Some(o) = slot {
                    if o.tids == m.tids {
                        *slot = None;
                        continue 'outer;
                    }
                }
            }
            fresh.push(m);
        }
        for gone in old_left.into_iter().flatten() {
            deltas.push(ConflictDelta::Remove(gone.instantiation(rule)));
        }
        for add in fresh {
            deltas.push(ConflictDelta::Add(add.instantiation(rule)));
        }
        self.by_rule.insert(rule.id, new);
        deltas
    }

    /// Add matches (assumed not already present) to a rule.
    pub fn add(&mut self, rule: &Rule, matches: Vec<Match>) -> Vec<ConflictDelta> {
        let deltas: Vec<ConflictDelta> = matches
            .iter()
            .map(|m| ConflictDelta::Add(m.instantiation(rule)))
            .collect();
        self.by_rule.entry(rule.id).or_default().extend(matches);
        deltas
    }

    /// Remove all matches of `rule` containing `tid` at a position whose
    /// positive CE has class `class`.
    pub fn remove_containing(
        &mut self,
        rule: &Rule,
        class: ClassId,
        tid: TupleId,
    ) -> Vec<ConflictDelta> {
        let Some(ms) = self.by_rule.get_mut(&rule.id) else {
            return Vec::new();
        };
        let classes: Vec<ClassId> = rule
            .ces
            .iter()
            .filter(|ce| !ce.negated)
            .map(|ce| ce.class)
            .collect();
        let mut deltas = Vec::new();
        ms.retain(|m| {
            let hit = m
                .tids
                .iter()
                .zip(&classes)
                .any(|(t, c)| *t == tid && *c == class);
            if hit {
                deltas.push(ConflictDelta::Remove(m.instantiation(rule)));
            }
            !hit
        });
        deltas
    }

    /// Remove matches of `rule` failing a predicate, emitting deltas.
    pub fn remove_where(
        &mut self,
        rule: &Rule,
        mut invalid: impl FnMut(&Match) -> bool,
    ) -> Vec<ConflictDelta> {
        let Some(ms) = self.by_rule.get_mut(&rule.id) else {
            return Vec::new();
        };
        let mut deltas = Vec::new();
        ms.retain(|m| {
            if invalid(m) {
                deltas.push(ConflictDelta::Remove(m.instantiation(rule)));
                false
            } else {
                true
            }
        });
        deltas
    }

    /// Matches in `new` not already stored for `rule` (by tid vector),
    /// added and returned as Add deltas.
    pub fn add_missing(&mut self, rule: &Rule, new: Vec<Match>) -> Vec<ConflictDelta> {
        let existing = self.by_rule.entry(rule.id).or_default();
        let mut remaining: Vec<Option<&Match>> = existing.iter().map(Some).collect();
        let mut fresh = Vec::new();
        'outer: for m in new {
            for slot in remaining.iter_mut() {
                if let Some(o) = slot {
                    if o.tids == m.tids {
                        *slot = None;
                        continue 'outer;
                    }
                }
            }
            fresh.push(m);
        }
        let deltas: Vec<ConflictDelta> = Vec::new();
        let mut deltas = deltas;
        for m in fresh {
            deltas.push(ConflictDelta::Add(m.instantiation(rule)));
            self.by_rule
                .get_mut(&rule.id)
                .expect("entry created")
                .push(m);
        }
        deltas
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::tuple;

    fn setup() -> (ProductionDb, RuleId) {
        let rs = ops5::compile(
            r#"
            (literalize Emp name dno)
            (literalize Dept dno dname)
            (p R (Emp ^dno <D>) (Dept ^dno <D> ^dname Toy) --> (remove 1))
            "#,
        )
        .unwrap();
        (ProductionDb::new(rs).unwrap(), RuleId(0))
    }

    #[test]
    fn eval_and_replace_diff() {
        let (pdb, rid) = setup();
        let rule = pdb.rules().rule(rid).clone();
        let emp = ClassId(0);
        let dept = ClassId(1);
        pdb.insert_wm(emp, tuple!["Ann", 7]).unwrap();
        let mut store = InstStore::new();
        assert!(store.replace(&rule, eval_rule(&pdb, &rule)).is_empty());

        pdb.insert_wm(dept, tuple![7, "Toy"]).unwrap();
        let deltas = store.replace(&rule, eval_rule(&pdb, &rule));
        assert_eq!(deltas.len(), 1);
        assert!(deltas[0].is_add());
        assert_eq!(store.total(), 1);

        pdb.remove_wm_equal(dept, &tuple![7, "Toy"]).unwrap();
        let deltas = store.replace(&rule, eval_rule(&pdb, &rule));
        assert_eq!(deltas.len(), 1);
        assert!(!deltas[0].is_add());
        assert_eq!(store.total(), 0);
    }

    #[test]
    fn duplicate_tuples_tracked_as_multiset() {
        let (pdb, rid) = setup();
        let rule = pdb.rules().rule(rid).clone();
        pdb.insert_wm(ClassId(0), tuple!["Ann", 7]).unwrap();
        pdb.insert_wm(ClassId(0), tuple!["Ann", 7]).unwrap();
        pdb.insert_wm(ClassId(1), tuple![7, "Toy"]).unwrap();
        let mut store = InstStore::new();
        let deltas = store.replace(&rule, eval_rule(&pdb, &rule));
        assert_eq!(deltas.len(), 2, "one instantiation per duplicate");
        // Removing one duplicate removes exactly one instantiation.
        let tid = pdb
            .remove_wm_equal(ClassId(0), &tuple!["Ann", 7])
            .unwrap()
            .unwrap();
        let deltas = store.remove_containing(&rule, ClassId(0), tid);
        assert_eq!(deltas.len(), 1);
        assert_eq!(store.total(), 1);
    }

    #[test]
    fn seeded_eval_matches_full_eval() {
        let (pdb, rid) = setup();
        let rule = pdb.rules().rule(rid).clone();
        pdb.insert_wm(ClassId(0), tuple!["Ann", 7]).unwrap();
        let tid = pdb.insert_wm(ClassId(1), tuple![7, "Toy"]).unwrap();
        let seeded = eval_rule_seeded(&pdb, &rule, 1, tid, &tuple![7, "Toy"]);
        let full = eval_rule(&pdb, &rule);
        assert_eq!(seeded.len(), full.len());
        assert_eq!(seeded[0].tids, full[0].tids);
    }

    #[test]
    fn add_missing_dedupes() {
        let (pdb, rid) = setup();
        let rule = pdb.rules().rule(rid).clone();
        pdb.insert_wm(ClassId(0), tuple!["Ann", 7]).unwrap();
        pdb.insert_wm(ClassId(1), tuple![7, "Toy"]).unwrap();
        let mut store = InstStore::new();
        let all = eval_rule(&pdb, &rule);
        store.replace(&rule, all.clone());
        assert!(
            store.add_missing(&rule, all).is_empty(),
            "nothing new to add"
        );
    }
}
