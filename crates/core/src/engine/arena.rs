//! Arena-backed storage for COND matching patterns.
//!
//! A pattern group used to be `Vec<Option<Pattern>>` with each `Pattern`
//! owning a `Vec<Option<Value>>` σ and a `Vec<Vec<TupKey>>` support —
//! three heap blocks per pattern before a single supporter lands, and a
//! fourth per non-empty support set. Two observations make that
//! unnecessary: every pattern in a group shares the group's rule, so σ
//! rows all have the same width (`nvars`) and support rows the same width
//! (`nrce`); and on the measured workloads most support sets hold one or
//! two keys. [`PatternArena`] therefore stores σ as one flat
//! `Vec<Option<Value>>` (slot `s` owns `[s*nvars .. (s+1)*nvars]`),
//! support as one flat `Vec<SupportSet>` of [`InlineVec`]s that keep ≤ 2
//! keys inline, and tombstones as a plain `live` bitmap with a free list
//! — removal clears a row in place and reuses it, no per-slot `Option`.

use std::mem::MaybeUninit;

use relstore::{TupleId, Value};

use super::intern::{Extra, PatId};

/// `(class, tuple)` — the identity of a supporting WM tuple.
pub type TupKey = (usize, TupleId);

/// Support set of one RCE counter: almost always 1–2 keys, kept inline.
pub type SupportSet = InlineVec<TupKey, 2>;

/// Small-vector for `Copy` payloads: up to `N` elements live inline in
/// the struct; pushes past `N` spill to a heap `Vec`. `T: Copy` means no
/// element ever needs dropping, so the `MaybeUninit` buffer needs no
/// `Drop` bookkeeping.
pub struct InlineVec<T: Copy, const N: usize> {
    len: u32,
    inline: [MaybeUninit<T>; N],
    spill: Vec<T>,
}

impl<T: Copy, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self {
            len: 0,
            inline: [MaybeUninit::uninit(); N],
            spill: Vec::new(),
        }
    }
}

impl<T: Copy, const N: usize> InlineVec<T, N> {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.len as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn inline_len(&self) -> usize {
        (self.len as usize).min(N)
    }

    /// The inline prefix, as an initialized slice.
    fn head(&self) -> &[T] {
        // SAFETY: elements [0, inline_len) were written by `push` before
        // `len` was bumped past them, and Copy payloads are never
        // invalidated by moves of `self`.
        unsafe { std::slice::from_raw_parts(self.inline.as_ptr().cast::<T>(), self.inline_len()) }
    }

    pub fn push(&mut self, v: T) {
        let i = self.len as usize;
        if i < N {
            self.inline[i] = MaybeUninit::new(v);
        } else {
            self.spill.push(v);
        }
        self.len += 1;
    }

    pub fn iter(&self) -> impl Iterator<Item = &T> + Clone {
        self.head().iter().chain(self.spill.iter())
    }

    pub fn contains(&self, v: &T) -> bool
    where
        T: PartialEq,
    {
        self.head().contains(v) || self.spill.contains(v)
    }

    pub fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }

    /// Keep only elements satisfying `f`, preserving order.
    pub fn retain(&mut self, mut f: impl FnMut(&T) -> bool) {
        let kept: Vec<T> = self.iter().copied().filter(|v| f(v)).collect();
        self.clear();
        for v in kept {
            self.push(v);
        }
    }
}

impl<T: Copy + std::fmt::Debug, const N: usize> std::fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T: Copy, const N: usize> Clone for InlineVec<T, N> {
    fn clone(&self) -> Self {
        Self {
            len: self.len,
            inline: self.inline,
            spill: self.spill.clone(),
        }
    }
}

impl<T: Copy + PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

/// Borrowed view of one live pattern in the arena.
#[derive(Clone, Copy)]
pub struct PatRef<'a> {
    pub id: PatId,
    pub sigma: &'a [Option<Value>],
    pub extra: &'a [Extra],
    pub support: &'a [SupportSet],
}

/// Slab of matching patterns with uniform row widths. Slot indices are
/// reused after removal; `ids[slot]` gives the interned identity.
#[derive(Debug, Default)]
pub struct PatternArena {
    nvars: usize,
    nrce: usize,
    sigma: Vec<Option<Value>>,
    support: Vec<SupportSet>,
    extra: Vec<Vec<Extra>>,
    ids: Vec<PatId>,
    live: Vec<bool>,
    free: Vec<u32>,
    n_live: usize,
}

impl PatternArena {
    pub fn new(nvars: usize, nrce: usize) -> Self {
        Self {
            nvars,
            nrce,
            ..Self::default()
        }
    }

    pub fn len(&self) -> usize {
        self.n_live
    }

    pub fn is_empty(&self) -> bool {
        self.n_live == 0
    }

    pub fn slots(&self) -> usize {
        self.ids.len()
    }

    pub fn is_live(&self, slot: u32) -> bool {
        self.live[slot as usize]
    }

    pub fn live_flags(&self) -> &[bool] {
        &self.live
    }

    /// Allocate a slot for identity `id` with σ copied from `sigma` and
    /// empty support; returns the slot index.
    pub fn insert(&mut self, id: PatId, sigma: &[Option<Value>], extra: &[Extra]) -> u32 {
        debug_assert_eq!(sigma.len(), self.nvars);
        if let Some(slot) = self.free.pop() {
            let s = slot as usize;
            self.sigma[s * self.nvars..(s + 1) * self.nvars].clone_from_slice(sigma);
            if extra.is_empty() {
                self.extra[s].clear();
            } else {
                self.extra[s] = extra.to_vec();
            }
            self.ids[s] = id;
            self.live[s] = true;
            self.n_live += 1;
            return slot;
        }
        let slot = u32::try_from(self.ids.len()).expect("pattern arena slot space exhausted");
        self.sigma.extend_from_slice(sigma);
        self.support
            .extend((0..self.nrce).map(|_| SupportSet::new()));
        self.extra.push(if extra.is_empty() {
            Vec::new()
        } else {
            extra.to_vec()
        });
        self.ids.push(id);
        self.live.push(true);
        self.n_live += 1;
        slot
    }

    /// Tombstone `slot`: clear its rows in place and queue it for reuse.
    pub fn remove(&mut self, slot: u32) {
        let s = slot as usize;
        debug_assert!(self.live[s]);
        self.live[s] = false;
        self.n_live -= 1;
        for v in &mut self.sigma[s * self.nvars..(s + 1) * self.nvars] {
            *v = None;
        }
        for set in &mut self.support[s * self.nrce..(s + 1) * self.nrce] {
            set.clear();
        }
        self.extra[s].clear();
        self.free.push(slot);
    }

    pub fn id(&self, slot: u32) -> PatId {
        self.ids[slot as usize]
    }

    pub fn sigma(&self, slot: u32) -> &[Option<Value>] {
        let s = slot as usize;
        &self.sigma[s * self.nvars..(s + 1) * self.nvars]
    }

    pub fn extra(&self, slot: u32) -> &[Extra] {
        &self.extra[slot as usize]
    }

    pub fn support(&self, slot: u32) -> &[SupportSet] {
        let s = slot as usize;
        &self.support[s * self.nrce..(s + 1) * self.nrce]
    }

    pub fn support_mut(&mut self, slot: u32) -> &mut [SupportSet] {
        let s = slot as usize;
        &mut self.support[s * self.nrce..(s + 1) * self.nrce]
    }

    pub fn pat(&self, slot: u32) -> PatRef<'_> {
        let s = slot as usize;
        PatRef {
            id: self.ids[s],
            sigma: &self.sigma[s * self.nvars..(s + 1) * self.nvars],
            extra: &self.extra[s],
            support: &self.support[s * self.nrce..(s + 1) * self.nrce],
        }
    }

    /// Live slot indices, in slot order, without collecting a `Vec`.
    pub fn iter_live(&self) -> impl Iterator<Item = u32> + '_ {
        self.live
            .iter()
            .enumerate()
            .filter(|(_, l)| **l)
            .map(|(s, _)| s as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tk(class: usize, slot: u32) -> TupKey {
        (class, TupleId { slot, gen: 0 })
    }

    #[test]
    fn inline_vec_spills_past_capacity() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        assert!(v.is_empty());
        for i in 0..5 {
            v.push(i);
        }
        assert_eq!(v.len(), 5);
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        assert!(v.contains(&0) && v.contains(&4) && !v.contains(&9));
        v.retain(|&x| x % 2 == 0);
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![0, 2, 4]);
        v.clear();
        assert!(v.is_empty() && !v.contains(&0));
    }

    #[test]
    fn inline_vec_eq_spans_the_spill_boundary() {
        let mut a: InlineVec<u8, 2> = InlineVec::new();
        let mut b: InlineVec<u8, 2> = InlineVec::new();
        for x in [1, 2, 3] {
            a.push(x);
            b.push(x);
        }
        assert_eq!(a, b);
        b.push(4);
        assert_ne!(a, b);
    }

    #[test]
    fn arena_rows_are_isolated_and_slots_reused() {
        let mut ar = PatternArena::new(2, 3);
        let a = ar.insert(0, &[Some(Value::Int(1)), None], &[]);
        let b = ar.insert(1, &[None, Some(Value::Int(2))], &[]);
        ar.support_mut(a)[0].push(tk(0, 7));
        ar.support_mut(b)[2].push(tk(1, 9));
        assert_eq!(ar.len(), 2);
        assert_eq!(ar.sigma(a), &[Some(Value::Int(1)), None]);
        assert_eq!(ar.support(a)[0].len(), 1);
        assert!(ar.support(a)[2].is_empty());
        assert_eq!(ar.support(b)[2].len(), 1);

        ar.remove(a);
        assert_eq!(ar.len(), 1);
        assert!(!ar.is_live(a));
        assert_eq!(ar.iter_live().collect::<Vec<_>>(), vec![b]);

        // Reused slot starts clean.
        let c = ar.insert(
            2,
            &[None, None],
            &[(0, relstore::CompOp::Gt, Value::Int(3))],
        );
        assert_eq!(c, a);
        assert!(ar.support(c).iter().all(|s| s.is_empty()));
        assert_eq!(ar.extra(c).len(), 1);
        assert_eq!(ar.id(c), 2);
        assert_eq!(ar.len(), 2);
    }
}
