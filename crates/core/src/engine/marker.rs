//! POSTGRES-style rule indexing: markers on the data (§2.3 Basic Locking,
//! §3.2's discussion of the "dual approach").
//!
//! "POSTGRES uses a dual approach, i.e. it stores identifiers of possibly
//! qualifying rules with the data … The space overhead incurred in such an
//! implementation is clearly lower than that of the Rete Network … However,
//! the process of identifying qualifying rules is more expensive … as more
//! false drops may arise."
//!
//! Each condition element contributes one *marker*: an index-interval lock
//! on a single attribute (the first equality test, else the first range
//! test) or a whole-relation marker when no attribute is testable. An
//! arriving tuple collects the markers it falls under — a deliberately
//! coarse test — and the corresponding rules are then *verified* by
//! re-evaluating their LHS. Awakenings that change nothing are counted as
//! false drops.

use std::collections::BTreeSet;
use std::time::Instant;

use ops5::{ClassId, RuleId};
use predindex::Interval;
use relstore::{CompOp, Tuple, TupleId};
use rete::{ConflictDelta, ConflictSet};

use crate::engine::recompute::{eval_rule_via, InstStore};
use crate::engine::{MatchEngine, SpaceStats, WmDelta};
use crate::pdb::ProductionDb;

/// One marker: rule `rule` watches tuples of a class through an interval
/// on `attr` (or all tuples when `attr` is `None`).
#[derive(Debug, Clone)]
struct Marker {
    rule: usize,
    attr: Option<usize>,
    interval: Interval,
}

/// The marker-based engine.
pub struct MarkerEngine {
    pdb: ProductionDb,
    /// Markers per class.
    markers: Vec<Vec<Marker>>,
    store: InstStore,
    conflict: ConflictSet,
    false_drops: u64,
    last_total: u64,
    /// Set-oriented evaluation: hash-join executor + whole-delta batching.
    batch: bool,
    tracer: obs::Tracer,
}

impl MarkerEngine {
    /// Create a new, empty instance.
    pub fn new(pdb: ProductionDb) -> Self {
        let mut markers: Vec<Vec<Marker>> =
            pdb.rules().classes.iter().map(|_| Vec::new()).collect();
        for rule in &pdb.rules().rules {
            for ce in &rule.ces {
                // Pick the most selective single-attribute test: first
                // equality, else first non-Ne comparison, else none.
                let pick = ce
                    .alpha
                    .tests
                    .iter()
                    .find(|s| s.op == CompOp::Eq)
                    .or_else(|| ce.alpha.tests.iter().find(|s| s.op != CompOp::Ne));
                let (attr, interval) = match pick {
                    Some(s) => (Some(s.attr), Interval::from_op(s.op, s.value.clone())),
                    None => (None, Interval::full()),
                };
                markers[ce.class.0].push(Marker {
                    rule: rule.id.0,
                    attr,
                    interval,
                });
            }
        }
        MarkerEngine {
            pdb,
            markers,
            store: InstStore::new(),
            conflict: ConflictSet::new(),
            false_drops: 0,
            last_total: 0,
            batch: true,
            tracer: obs::Tracer::disabled(),
        }
    }

    /// Collect the rules whose markers trap this tuple.
    fn candidates(&self, class: ClassId, tuple: &Tuple) -> BTreeSet<usize> {
        self.markers[class.0]
            .iter()
            .filter(|m| match m.attr {
                Some(a) => tuple.get(a).is_some_and(|v| m.interval.contains(v)),
                None => true,
            })
            .map(|m| m.rule)
            .collect()
    }

    fn verify(&mut self, rules: BTreeSet<usize>) -> Vec<ConflictDelta> {
        let mut deltas = Vec::new();
        for rid in rules {
            let rule = self.pdb.rules().rule(RuleId(rid)).clone();
            let matches = eval_rule_via(&self.pdb, &rule, self.batch);
            let d = self.store.replace(&rule, matches);
            if d.is_empty() {
                // The marker woke the rule for nothing.
                self.false_drops += 1;
            }
            deltas.extend(d);
        }
        self.conflict.apply_all(&deltas);
        deltas
    }
}

impl MatchEngine for MarkerEngine {
    fn name(&self) -> &'static str {
        "marker"
    }

    fn pdb(&self) -> &ProductionDb {
        &self.pdb
    }

    fn maintain_insert(
        &mut self,
        class: ClassId,
        _tid: TupleId,
        tuple: &Tuple,
    ) -> Vec<ConflictDelta> {
        obs::prof_span!("marker.maintain");
        let start = Instant::now();
        let c = self.candidates(class, tuple);
        let deltas = self.verify(c);
        self.last_total = start.elapsed().as_nanos() as u64;
        deltas
    }

    fn maintain_remove(
        &mut self,
        class: ClassId,
        _tid: TupleId,
        tuple: &Tuple,
    ) -> Vec<ConflictDelta> {
        obs::prof_span!("marker.maintain");
        let start = Instant::now();
        let c = self.candidates(class, tuple);
        let deltas = self.verify(c);
        self.last_total = start.elapsed().as_nanos() as u64;
        deltas
    }

    /// Batched maintenance: union the candidate rules every change's
    /// markers trap, then verify each awakened rule exactly once against
    /// the fully-applied WM delta. A rule awakened by several changes in
    /// the same cycle counts at most one false drop.
    fn maintain_delta(&mut self, deltas: &[WmDelta]) -> Vec<ConflictDelta> {
        obs::prof_span!("marker.maintain");
        if !self.batch {
            let mut out = Vec::new();
            for d in deltas {
                if d.insert {
                    out.extend(self.maintain_insert(d.class, d.tid, &d.tuple));
                } else {
                    out.extend(self.maintain_remove(d.class, d.tid, &d.tuple));
                }
            }
            return out;
        }
        let start = Instant::now();
        let mut candidates = BTreeSet::new();
        for d in deltas {
            candidates.extend(self.candidates(d.class, &d.tuple));
        }
        let out = self.verify(candidates);
        self.last_total = start.elapsed().as_nanos() as u64;
        out
    }

    fn set_batching(&mut self, on: bool) {
        self.batch = on;
    }

    fn conflict_set(&self) -> &ConflictSet {
        &self.conflict
    }

    fn space(&self) -> SpaceStats {
        // Rule identifiers are tiny — the paper's space advantage.
        let entries: usize = self.markers.iter().map(Vec::len).sum();
        SpaceStats {
            match_entries: entries,
            match_bytes: entries * 24,
            wm_tuples: self.pdb.wm_total(),
        }
    }

    fn false_drops(&self) -> u64 {
        self.false_drops
    }

    fn last_detect_split(&self) -> Option<(u64, u64)> {
        // Candidate collection plus verification both precede any
        // conflict-set change: detection dominates (§2.3's cost remark).
        Some((self.last_total, self.last_total))
    }

    fn tracer(&self) -> &obs::Tracer {
        &self.tracer
    }

    fn set_tracer(&mut self, tracer: obs::Tracer) {
        self.tracer = tracer;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::tuple;

    /// The paper's own example: "in the case where all Emp tuples are
    /// marked because of rules R1 and R2, a new insertion to that relation
    /// will trigger both of these rules, even though [R2] should not be
    /// fired because there are no matching Dept tuples."
    #[test]
    fn false_drops_counted() {
        let rs = ops5::compile(
            r#"
            (literalize Emp name salary manager dno)
            (literalize Dept dno dname floor manager)
            (p R1
                (Emp ^name Mike ^salary <S> ^manager <M>)
                (Emp ^name <M> ^salary {<S1> < <S>})
                -->
                (remove 1))
            (p R2
                (Emp ^dno <D>)
                (Dept ^dno <D> ^dname Toy ^floor 1)
                -->
                (remove 1))
            "#,
        )
        .unwrap();
        let mut e = MarkerEngine::new(ProductionDb::new(rs).unwrap());
        // R2's Emp CE has no constant test → whole-relation marker: every
        // Emp insertion wakes R2 even with no Dept tuples at all.
        let d = e.insert(ClassId(0), tuple!["Ann", 1000, "Sam", 7]);
        assert!(d.is_empty());
        assert!(e.false_drops() >= 1, "R2 woke for nothing");
    }

    #[test]
    fn verification_keeps_conflict_set_exact() {
        let rs = ops5::compile(
            r#"
            (literalize Emp name dno)
            (literalize Dept dno)
            (p R (Emp ^dno <D>) (Dept ^dno <D>) --> (remove 1))
            "#,
        )
        .unwrap();
        let mut e = MarkerEngine::new(ProductionDb::new(rs).unwrap());
        e.insert(ClassId(0), tuple!["Ann", 7]);
        let d = e.insert(ClassId(1), tuple![7]);
        assert_eq!(d.len(), 1);
        assert_eq!(e.conflict_set().len(), 1);
        e.remove(ClassId(1), &tuple![7]);
        assert!(e.conflict_set().is_empty());
    }

    #[test]
    fn interval_markers_trap_ranges() {
        let rs = ops5::compile(
            r#"
            (literalize Emp name age)
            (p Old (Emp ^age {>= 55}) --> (remove 1))
            "#,
        )
        .unwrap();
        let mut e = MarkerEngine::new(ProductionDb::new(rs).unwrap());
        let d = e.insert(ClassId(0), tuple!["Young", 30]);
        assert!(d.is_empty());
        assert_eq!(e.false_drops(), 0, "interval marker excludes age 30");
        let d = e.insert(ClassId(0), tuple!["Old", 60]);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn space_is_tiny() {
        let rs = ops5::compile(
            r#"
            (literalize Emp name dno)
            (literalize Dept dno)
            (p R (Emp ^dno <D>) (Dept ^dno <D>) --> (remove 1))
            "#,
        )
        .unwrap();
        let mut e = MarkerEngine::new(ProductionDb::new(rs).unwrap());
        for i in 0..100i64 {
            e.insert(ClassId(0), tuple![format!("e{i}"), i]);
        }
        assert_eq!(
            e.space().match_entries,
            2,
            "one marker per CE, data-independent"
        );
    }
}
