//! The AI baseline: classic in-memory Rete (§3.1) with WM mirrored into
//! the DBMS relations (so executors and other tooling see one WM).

use std::time::Instant;

use ops5::ClassId;
use relstore::{Tuple, TupleId};
use rete::{ConflictDelta, ConflictSet, OpMetrics, ReteNetwork, Wme};

use crate::engine::{MatchEngine, SpaceStats};
use crate::pdb::ProductionDb;

/// In-memory Rete matching over DBMS-resident working memory.
pub struct ReteEngine {
    pdb: ProductionDb,
    net: ReteNetwork,
    last_total: u64,
    tracer: obs::Tracer,
}

impl ReteEngine {
    /// Create a new, empty instance.
    pub fn new(pdb: ProductionDb) -> Self {
        let net = ReteNetwork::new(pdb.rules());
        ReteEngine {
            pdb,
            net,
            last_total: 0,
            tracer: obs::Tracer::disabled(),
        }
    }

    /// Propagation metrics of the last operation (E3).
    pub fn last_metrics(&self) -> OpMetrics {
        self.net.last_metrics()
    }

    /// The underlying in-memory network.
    pub fn network(&self) -> &ReteNetwork {
        &self.net
    }
}

impl MatchEngine for ReteEngine {
    fn name(&self) -> &'static str {
        "rete"
    }

    fn match_plan(&self) -> Vec<crate::engine::MatchPlan> {
        // The Rete network compiles CEs in textual order (§3.2's frozen
        // access plan).
        crate::engine::explain::match_plans(
            self.pdb(),
            self.name(),
            crate::engine::OrderPolicy::Textual,
        )
    }

    fn pdb(&self) -> &ProductionDb {
        &self.pdb
    }

    fn maintain_insert(
        &mut self,
        class: ClassId,
        _tid: TupleId,
        tuple: &Tuple,
    ) -> Vec<ConflictDelta> {
        obs::prof_span!("rete.maintain");
        let start = Instant::now();
        let deltas = self.net.insert(Wme::new(class, tuple.clone()));
        self.last_total = start.elapsed().as_nanos() as u64;
        deltas
    }

    fn maintain_remove(
        &mut self,
        class: ClassId,
        _tid: TupleId,
        tuple: &Tuple,
    ) -> Vec<ConflictDelta> {
        obs::prof_span!("rete.maintain");
        let start = Instant::now();
        let deltas = self.net.remove(&Wme::new(class, tuple.clone()));
        self.last_total = start.elapsed().as_nanos() as u64;
        deltas
    }

    fn conflict_set(&self) -> &ConflictSet {
        self.net.conflict_set()
    }

    fn space(&self) -> SpaceStats {
        SpaceStats {
            match_entries: self.net.stored_entries(),
            match_bytes: self.net.approx_bytes(),
            wm_tuples: self.pdb.wm_total(),
        }
    }

    fn last_detect_split(&self) -> Option<(u64, u64)> {
        // Rete updates the conflict set only after full propagation:
        // detection time equals total time (§4.2.3's contrast).
        Some((self.last_total, self.last_total))
    }

    fn tracer(&self) -> &obs::Tracer {
        &self.tracer
    }

    fn set_tracer(&mut self, tracer: obs::Tracer) {
        self.tracer = tracer;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::tuple;

    #[test]
    fn engine_mirrors_wm_into_db() {
        let rs = ops5::compile(
            r#"
            (literalize Emp name dno)
            (literalize Dept dno)
            (p R (Emp ^dno <D>) (Dept ^dno <D>) --> (remove 1))
            "#,
        )
        .unwrap();
        let pdb = ProductionDb::new(rs).unwrap();
        let mut e = ReteEngine::new(pdb.clone());
        e.insert(ClassId(0), tuple!["Ann", 7]);
        let deltas = e.insert(ClassId(1), tuple![7]);
        assert_eq!(deltas.len(), 1);
        assert_eq!(e.conflict_set().len(), 1);
        assert_eq!(pdb.wm_total(), 2, "WM relations updated too");
        assert!(e.space().match_entries > 0);
        let (d, t) = e.last_detect_split().unwrap();
        assert_eq!(d, t);

        e.remove(ClassId(1), &tuple![7]);
        assert!(e.conflict_set().is_empty());
        assert_eq!(pdb.wm_total(), 1);
        // Removing a non-existent tuple is a no-op.
        assert!(e.remove(ClassId(1), &tuple![99]).is_empty());
    }
}
