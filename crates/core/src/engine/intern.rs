//! Pattern-identity interning for the COND engine (§4.2).
//!
//! A matching pattern's identity is its specialized σ-binding vector plus
//! any derived range constraints. The original representation carried that
//! identity around by value — `(Vec<Option<Value>>, Vec<(usize, CompOp,
//! Value)>)` — so every `by_identity` lookup, proposal key, and log entry
//! cloned and deep-hashed Values. The interner maps each distinct
//! `(sigma, extra)` to a dense [`PatId`] once, at pattern-creation time;
//! everywhere else the engine compares and hashes a `u32`.
//!
//! Lookups take *slices*, not owned keys: the table is keyed by a
//! precomputed content hash, so probing for an identity allocates nothing.
//! Canonical storage is only written on a miss — which coincides with a
//! new pattern being materialized, the one moment an allocation is
//! genuinely owed.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};

use relstore::{CompOp, Value};

/// Dense interned identity of a matching pattern: index into the
/// interner's canonical table. Integer equality ⇔ deep identity equality.
pub type PatId = u32;

/// A derived range constraint carried by a pattern: `(attr, op, value)`.
pub type Extra = (usize, CompOp, Value);

/// FNV-1a. The engine's hot maps are keyed by small integers ([`PatId`],
/// packed `u64` proposal keys, tuple slots); SipHash's DoS resistance buys
/// nothing there and costs a measurable fraction of the probe path.
pub struct FnvHasher {
    hash: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

impl Default for FnvHasher {
    fn default() -> Self {
        Self { hash: FNV_OFFSET }
    }
}

impl Hasher for FnvHasher {
    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.hash;
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        self.hash = h;
    }

    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` with the cheap integer hasher — for maps keyed by ids.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FnvHasher>>;

/// Content hash of an identity, computed from borrowed slices so a probe
/// never has to materialize an owned key.
pub fn identity_hash(sigma: &[Option<Value>], extra: &[Extra]) -> u64 {
    let mut h = FnvHasher::default();
    sigma.hash(&mut h);
    extra.hash(&mut h);
    h.finish()
}

/// Append-only table of distinct pattern identities. Ids are stable for
/// the lifetime of the engine — a pattern removed from one group and
/// re-derived later resolves to the same id, which is what keeps
/// `by_identity` and the contribution log comparable across deltas.
#[derive(Debug, Default)]
pub struct IdentityInterner {
    idents: Vec<(Vec<Option<Value>>, Vec<Extra>)>,
    /// Content hash → candidate ids (collision chains are near-empty).
    table: FastMap<u64, Vec<PatId>>,
}

impl IdentityInterner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct identities seen so far.
    pub fn len(&self) -> usize {
        self.idents.len()
    }

    pub fn is_empty(&self) -> bool {
        self.idents.is_empty()
    }

    /// Intern `(sigma, extra)`, returning its dense id. Only a miss
    /// clones the slices into canonical storage.
    pub fn intern(&mut self, sigma: &[Option<Value>], extra: &[Extra]) -> PatId {
        let h = identity_hash(sigma, extra);
        if let Some(ids) = self.table.get(&h) {
            for &id in ids {
                let (s, e) = &self.idents[id as usize];
                if s.as_slice() == sigma && e.as_slice() == extra {
                    return id;
                }
            }
        }
        let id = u32::try_from(self.idents.len()).expect("pattern identity space exhausted");
        self.idents.push((sigma.to_vec(), extra.to_vec()));
        self.table.entry(h).or_default().push(id);
        id
    }

    /// Borrow the canonical `(sigma, extra)` for an id.
    pub fn resolve(&self, id: PatId) -> (&[Option<Value>], &[Extra]) {
        let (s, e) = &self.idents[id as usize];
        (s.as_slice(), e.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: i64) -> Option<Value> {
        Some(Value::Int(n))
    }

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut it = IdentityInterner::new();
        let a = it.intern(&[None, v(1)], &[]);
        let b = it.intern(&[None, v(2)], &[]);
        let a2 = it.intern(&[None, v(1)], &[]);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(it.len(), 2);
        assert_eq!(it.resolve(b).0, &[None, v(2)]);
    }

    #[test]
    fn extra_distinguishes_identities() {
        let mut it = IdentityInterner::new();
        let plain = it.intern(&[v(3)], &[]);
        let ranged = it.intern(&[v(3)], &[(1, CompOp::Gt, Value::Int(7))]);
        assert_ne!(plain, ranged);
        let (s, e) = it.resolve(ranged);
        assert_eq!(s, &[v(3)]);
        assert_eq!(e, &[(1, CompOp::Gt, Value::Int(7))]);
    }

    #[test]
    fn slice_lookup_matches_vec_derived_hash() {
        // The probe hashes borrowed slices; storage hashes the owned
        // vectors. They must land in the same bucket.
        let sigma = vec![v(9), None];
        let extra = vec![(0, CompOp::Le, Value::Int(4))];
        assert_eq!(
            identity_hash(&sigma, &extra),
            identity_hash(sigma.as_slice(), extra.as_slice())
        );
    }
}
