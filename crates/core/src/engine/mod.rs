//! The matching-engine abstraction and its five implementations.
//!
//! | Engine | Paper section | Idea |
//! |---|---|---|
//! | [`ReteEngine`] | §3.1 | classic in-memory Rete |
//! | [`DbReteEngine`] | §3.2 | Rete with LEFT/RIGHT relations in the DBMS |
//! | [`QueryEngine`] | §4.1 | no intermediate storage; re-evaluate LHS queries |
//! | [`CondEngine`] | §4.2 | **matching patterns** in COND relations (the paper's contribution) |
//! | [`MarkerEngine`] | §2.3/§3.2 | POSTGRES-style rule markers on data, with false drops |
//!
//! All five consume the same insert/remove stream and must produce
//! identical conflict sets (equivalence- and property-tested at the
//! workspace level).

pub mod cond;
pub mod dbrete_engine;
pub mod marker;
pub mod query_engine;
pub mod recompute;
pub mod rete_engine;

pub use cond::CondEngine;
pub use dbrete_engine::DbReteEngine;
pub use marker::MarkerEngine;
pub use query_engine::QueryEngine;
pub use rete_engine::ReteEngine;

use ops5::ClassId;
use relstore::{Tuple, TupleId};
use rete::{ConflictDelta, ConflictSet};

use crate::pdb::ProductionDb;

/// Space consumed by an engine's match-acceleration structures, separate
/// from working memory itself (the E2 metric).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpaceStats {
    /// Stored entries: tokens, patterns, markers, or index postings.
    pub match_entries: usize,
    /// Approximate bytes of those entries.
    pub match_bytes: usize,
    /// Live WM tuples (identical across engines, reported for context).
    pub wm_tuples: usize,
}

/// A matching engine: maintains the conflict set under WM changes.
pub trait MatchEngine: Send {
    /// Short identifier used in experiment tables.
    fn name(&self) -> &'static str;

    /// Shared database/rules handle.
    fn pdb(&self) -> &ProductionDb;

    /// Match maintenance for a tuple already inserted into its WM
    /// relation (the §5 concurrent executor updates WM transactionally
    /// and then runs maintenance before commit).
    fn maintain_insert(
        &mut self,
        class: ClassId,
        tid: TupleId,
        tuple: &Tuple,
    ) -> Vec<ConflictDelta>;

    /// Match maintenance for a tuple already deleted from its WM relation.
    fn maintain_remove(
        &mut self,
        class: ClassId,
        tid: TupleId,
        tuple: &Tuple,
    ) -> Vec<ConflictDelta>;

    /// Insert a WM element (relation + maintenance).
    fn insert(&mut self, class: ClassId, tuple: Tuple) -> Vec<ConflictDelta> {
        let tid = self
            .pdb()
            .insert_wm(class, tuple.clone())
            .expect("wm insert");
        self.maintain_insert(class, tid, &tuple)
    }

    /// Remove one WM element equal to `tuple`; no-op when absent.
    fn remove(&mut self, class: ClassId, tuple: &Tuple) -> Vec<ConflictDelta> {
        match self.pdb().remove_wm_equal(class, tuple).expect("wm remove") {
            Some(tid) => self.maintain_remove(class, tid, tuple),
            None => Vec::new(),
        }
    }

    /// The current conflict set.
    fn conflict_set(&self) -> &ConflictSet;

    /// Match-structure space.
    fn space(&self) -> SpaceStats;

    /// Rules awakened that turned out not to be affected (§2.3: "the
    /// system may awaken a trigger even when it should not (false
    /// drops)"). Only the marker engine produces these.
    fn false_drops(&self) -> u64 {
        0
    }

    /// Should [`bootstrap`] replay working memory into this engine after
    /// [`ProductionDb::attach`]? Engines whose match state is itself
    /// DB-resident (and therefore restored by the snapshot) return false.
    fn needs_bootstrap(&self) -> bool {
        true
    }

    /// Nanoseconds of the last operation spent before the conflict set
    /// was fully updated, and total nanoseconds, when the engine
    /// distinguishes the two phases (§4.2.3: "the conflict set is updated
    /// first, and then the maintenance process follows").
    fn last_detect_split(&self) -> Option<(u64, u64)> {
        None
    }
}

/// Which engine to instantiate (experiment configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Classic in-memory Rete (3.1).
    Rete,
    /// Rete with LEFT/RIGHT relations in the DBMS (3.2).
    DbRete,
    /// Re-evaluate LHS queries (4.1).
    Query,
    /// Matching patterns in COND relations (4.2).
    Cond,
    /// POSTGRES-style rule markers (2.3).
    Marker,
}

impl EngineKind {
    /// Every engine, in a stable experiment order.
    pub const ALL: [EngineKind; 5] = [
        EngineKind::Rete,
        EngineKind::DbRete,
        EngineKind::Query,
        EngineKind::Cond,
        EngineKind::Marker,
    ];

    /// Short name used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Rete => "rete",
            EngineKind::DbRete => "db-rete",
            EngineKind::Query => "query",
            EngineKind::Cond => "cond",
            EngineKind::Marker => "marker",
        }
    }
}

/// Replay the existing working memory through an engine's maintenance
/// path, rebuilding match structures and the conflict set. Used after
/// attaching to a restored database ([`ProductionDb::attach`]).
pub fn bootstrap(engine: &mut dyn MatchEngine) {
    if !engine.needs_bootstrap() {
        return;
    }
    let pdb = engine.pdb().clone();
    for c in 0..pdb.class_count() {
        let class = ClassId(c);
        for (tid, tuple) in pdb.wm_scan(class).expect("wm scan") {
            engine.maintain_insert(class, tid, &tuple);
        }
    }
}

/// Instantiate an engine over a shared [`ProductionDb`].
pub fn make_engine(kind: EngineKind, pdb: ProductionDb) -> Box<dyn MatchEngine> {
    match kind {
        EngineKind::Rete => Box::new(ReteEngine::new(pdb)),
        EngineKind::DbRete => Box::new(DbReteEngine::new(pdb)),
        EngineKind::Query => Box::new(QueryEngine::new(pdb)),
        EngineKind::Cond => Box::new(CondEngine::new(pdb)),
        EngineKind::Marker => Box::new(MarkerEngine::new(pdb)),
    }
}
