//! The matching-engine abstraction and its five implementations.
//!
//! | Engine | Paper section | Idea |
//! |---|---|---|
//! | [`ReteEngine`] | §3.1 | classic in-memory Rete |
//! | [`DbReteEngine`] | §3.2 | Rete with LEFT/RIGHT relations in the DBMS |
//! | [`QueryEngine`] | §4.1 | no intermediate storage; re-evaluate LHS queries |
//! | [`CondEngine`] | §4.2 | **matching patterns** in COND relations (the paper's contribution) |
//! | [`MarkerEngine`] | §2.3/§3.2 | POSTGRES-style rule markers on data, with false drops |
//!
//! All five consume the same insert/remove stream and must produce
//! identical conflict sets (equivalence- and property-tested at the
//! workspace level).

pub mod arena;
pub mod cond;
pub mod dbrete_engine;
pub mod explain;
pub mod intern;
pub mod marker;
pub mod query_engine;
pub mod recompute;
pub mod rete_engine;

pub use cond::CondEngine;
pub use dbrete_engine::DbReteEngine;
pub use explain::{plans_to_json, MatchPlan, OrderPolicy, PlanStep};
pub use marker::MarkerEngine;
pub use query_engine::QueryEngine;
pub use rete_engine::ReteEngine;

use std::time::Instant;

use obs::{Event, Tracer};
use ops5::ClassId;
use relstore::{Tuple, TupleId};
use rete::{ConflictDelta, ConflictSet};

use crate::pdb::ProductionDb;

/// Space consumed by an engine's match-acceleration structures, separate
/// from working memory itself (the E2 metric).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpaceStats {
    /// Stored entries: tokens, patterns, markers, or index postings.
    pub match_entries: usize,
    /// Approximate bytes of those entries.
    pub match_bytes: usize,
    /// Live WM tuples (identical across engines, reported for context).
    pub wm_tuples: usize,
}

/// One working-memory change of a cycle's delta set, with the tuple id it
/// resolved to. §4.2's maintenance phase consumes these set-at-a-time.
#[derive(Debug, Clone)]
pub struct WmDelta {
    /// True for an insertion, false for a deletion.
    pub insert: bool,
    /// The WM class changed.
    pub class: ClassId,
    /// The tuple id the change resolved to.
    pub tid: TupleId,
    /// The tuple contents.
    pub tuple: Tuple,
}

/// A matching engine: maintains the conflict set under WM changes.
pub trait MatchEngine: Send {
    /// Short identifier used in experiment tables.
    fn name(&self) -> &'static str;

    /// Shared database/rules handle.
    fn pdb(&self) -> &ProductionDb;

    /// Match maintenance for a tuple already inserted into its WM
    /// relation (the §5 concurrent executor updates WM transactionally
    /// and then runs maintenance before commit).
    fn maintain_insert(
        &mut self,
        class: ClassId,
        tid: TupleId,
        tuple: &Tuple,
    ) -> Vec<ConflictDelta>;

    /// Match maintenance for a tuple already deleted from its WM relation.
    fn maintain_remove(
        &mut self,
        class: ClassId,
        tid: TupleId,
        tuple: &Tuple,
    ) -> Vec<ConflictDelta>;

    /// Insert a WM element (relation + maintenance). When a tracer is
    /// installed, the WM change, the match-maintenance timing, and every
    /// conflict-set delta are emitted from here — one code path for all
    /// five engines, so their delta event streams are directly comparable.
    fn insert(&mut self, class: ClassId, tuple: Tuple) -> Vec<ConflictDelta> {
        let tid = self
            .pdb()
            .insert_wm(class, tuple.clone())
            .expect("wm insert");
        let start = self.tracer().enabled().then(Instant::now);
        let deltas = self.maintain_insert(class, tid, &tuple);
        if let Some(start) = start {
            let total_ns = start.elapsed().as_nanos() as u64;
            trace_wm_change(self, class, true, tid, &tuple, &deltas, total_ns);
        }
        deltas
    }

    /// Remove one WM element equal to `tuple`; no-op when absent.
    fn remove(&mut self, class: ClassId, tuple: &Tuple) -> Vec<ConflictDelta> {
        match self.pdb().remove_wm_equal(class, tuple).expect("wm remove") {
            Some(tid) => {
                let start = self.tracer().enabled().then(Instant::now);
                let deltas = self.maintain_remove(class, tid, tuple);
                if let Some(start) = start {
                    let total_ns = start.elapsed().as_nanos() as u64;
                    trace_wm_change(self, class, false, tid, tuple, &deltas, total_ns);
                }
                deltas
            }
            None => Vec::new(),
        }
    }

    /// Match maintenance for a whole cycle's delta set, applied after all
    /// the WM changes are in place (§4.2: "the conflict set is updated
    /// first, and then the maintenance process follows" — here the WM is
    /// updated first, then matching runs once over the full delta). The
    /// default processes changes one at a time; set-oriented engines
    /// override it to evaluate each affected (rule, seeded-term) pair in
    /// one batched pass.
    fn maintain_delta(&mut self, deltas: &[WmDelta]) -> Vec<ConflictDelta> {
        let mut out = Vec::new();
        for d in deltas {
            if d.insert {
                out.extend(self.maintain_insert(d.class, d.tid, &d.tuple));
            } else {
                out.extend(self.maintain_remove(d.class, d.tid, &d.tuple));
            }
        }
        out
    }

    /// Apply a cycle's WM changes (in action order) and then run one
    /// set-oriented maintenance pass over the resulting delta set. Removes
    /// of absent tuples are dropped, exactly as [`MatchEngine::remove`]
    /// drops them. When a tracer is installed, the batch emits the WM
    /// change events, the canonically ordered conflict-set deltas for the
    /// whole batch, and one [`Event::BatchApplied`] summary — batched runs
    /// trace without falling back to per-change maintenance.
    fn apply_delta(&mut self, changes: &[(bool, ClassId, Tuple)]) -> Vec<ConflictDelta> {
        let mut resolved: Vec<WmDelta> = Vec::with_capacity(changes.len());
        for (insert, class, tuple) in changes {
            if *insert {
                let tid = self
                    .pdb()
                    .insert_wm(*class, tuple.clone())
                    .expect("wm insert");
                resolved.push(WmDelta {
                    insert: true,
                    class: *class,
                    tid,
                    tuple: tuple.clone(),
                });
            } else if let Some(tid) = self
                .pdb()
                .remove_wm_equal(*class, tuple)
                .expect("wm remove")
            {
                resolved.push(WmDelta {
                    insert: false,
                    class: *class,
                    tid,
                    tuple: tuple.clone(),
                });
            }
        }
        let start = self.tracer().enabled().then(Instant::now);
        let deltas = self.maintain_delta(&resolved);
        if let Some(start) = start {
            let total_ns = start.elapsed().as_nanos() as u64;
            trace_batch(self, &resolved, &deltas, total_ns);
        }
        deltas
    }

    /// Toggle set-oriented (batched, hash-join) evaluation where the
    /// engine supports it. Default: no-op — the engine keeps its only
    /// strategy. Used by benchmarks to pin the nested-loop baseline.
    fn set_batching(&mut self, _on: bool) {}

    /// Toggle the σ-binding hash index over matching patterns where the
    /// engine keeps one (the COND engine). Default: no-op. Benchmarks pin
    /// `false` to reproduce the historical full-scan baseline.
    fn set_pattern_index(&mut self, _on: bool) {}

    /// `(probes, patterns_examined)` counters of the matching-pattern
    /// store, when the engine keeps one. `None` for engines without a
    /// pattern store.
    fn pattern_io(&self) -> Option<(u64, u64)> {
        None
    }

    /// The current conflict set.
    fn conflict_set(&self) -> &ConflictSet;

    /// Match-structure space.
    fn space(&self) -> SpaceStats;

    /// Rules awakened that turned out not to be affected (§2.3: "the
    /// system may awaken a trigger even when it should not (false
    /// drops)"). Only the marker engine produces these.
    fn false_drops(&self) -> u64 {
        0
    }

    /// Should [`bootstrap`] replay working memory into this engine after
    /// [`ProductionDb::attach`]? Engines whose match state is itself
    /// DB-resident (and therefore restored by the snapshot) return false.
    fn needs_bootstrap(&self) -> bool {
        true
    }

    /// EXPLAIN: the per-rule match plans this engine's strategy implies,
    /// profiled against the current working memory. The default reports
    /// the statistics-driven planner order; engines that freeze the plan
    /// at compile time (the Rete family, COND patterns) override with
    /// [`OrderPolicy::Textual`].
    fn match_plan(&self) -> Vec<MatchPlan> {
        explain::match_plans(self.pdb(), self.name(), OrderPolicy::Planner)
    }

    /// Nanoseconds of the last operation spent before the conflict set
    /// was fully updated, and total nanoseconds, when the engine
    /// distinguishes the two phases (§4.2.3: "the conflict set is updated
    /// first, and then the maintenance process follows").
    fn last_detect_split(&self) -> Option<(u64, u64)> {
        None
    }

    /// The engine's tracing handle. Disabled by default; the default
    /// `insert`/`remove` wrappers consult it on every WM change, so the
    /// accessor must stay trivially cheap.
    fn tracer(&self) -> &Tracer;

    /// Install a tracing handle (shared with the executor and the lock
    /// manager by the system facade).
    fn set_tracer(&mut self, tracer: Tracer);
}

/// Emit the trace events and metrics for one completed WM change. Shared
/// by the default `insert`/`remove` wrappers and the §5 concurrent
/// executor's maintenance step, so every engine produces the same event
/// stream for the same conflict-set changes.
pub(crate) fn trace_wm_change<E: MatchEngine + ?Sized>(
    engine: &E,
    class: ClassId,
    insert: bool,
    tid: TupleId,
    tuple: &Tuple,
    deltas: &[ConflictDelta],
    total_ns: u64,
) {
    let tracer = engine.tracer();
    let rules = engine.pdb().rules();
    let class_name = &rules.class(class).name;
    let (detect_ns, split_total_ns) = engine.last_detect_split().unwrap_or((0, 0));
    // Engines that do not time their phases still contribute the wall
    // time measured by the wrapper.
    let detect_ns = if split_total_ns == 0 { 0 } else { detect_ns };
    tracer.emit(|| {
        if insert {
            Event::WmInsert {
                class: class.0 as u32,
                class_name: class_name.clone(),
                tuple: tuple.to_string(),
                tid: tid.pack(),
            }
        } else {
            Event::WmRemove {
                class: class.0 as u32,
                class_name: class_name.clone(),
                tuple: tuple.to_string(),
                tid: tid.pack(),
            }
        }
    });
    emit_conflict_deltas(tracer, rules, deltas);
    let (adds, removes) =
        deltas.iter().fold(
            (0, 0),
            |(a, r), d| {
                if d.is_add() {
                    (a + 1, r)
                } else {
                    (a, r + 1)
                }
            },
        );
    tracer.emit(|| Event::MatchMaintain {
        engine: engine.name(),
        class: class.0 as u32,
        insert,
        adds,
        removes,
        detect_ns,
        total_ns,
    });
    if let Some(m) = tracer.metrics() {
        m.record_match(
            engine.name(),
            class.0 as u32,
            class_name,
            deltas.len(),
            detect_ns,
            total_ns,
        );
    }
}

/// Emit the canonically ordered conflict-set delta events (removes first,
/// then adds, each sorted) so the streams of different engines line up.
/// Returns the number of distinct rules the deltas touched.
fn emit_conflict_deltas(tracer: &Tracer, rules: &ops5::RuleSet, deltas: &[ConflictDelta]) -> usize {
    let mut ordered: Vec<&ConflictDelta> = deltas.iter().collect();
    ordered.sort_by(|a, b| {
        a.is_add()
            .cmp(&b.is_add())
            .then_with(|| a.instantiation().cmp(b.instantiation()))
    });
    let mut awakened = std::collections::BTreeSet::new();
    for delta in ordered {
        let inst = delta.instantiation();
        awakened.insert(inst.rule.0);
        let rule_name = &rules.rule(inst.rule).name;
        if let Some(m) = tracer.metrics() {
            m.record_conflict_delta(inst.rule.0 as u32, rule_name, delta.is_add());
        }
        tracer.emit(|| {
            let mut wmes = String::new();
            for w in &inst.wmes {
                if !wmes.is_empty() {
                    wmes.push(' ');
                }
                wmes.push_str(&rules.class(w.class).name);
                wmes.push_str(&w.tuple.to_string());
            }
            Event::ConflictDelta {
                add: delta.is_add(),
                rule: inst.rule.0 as u32,
                rule_name: rule_name.clone(),
                wmes,
                support: inst.why.support_display(),
                absent: inst.why.absent_display(rules),
            }
        });
    }
    awakened.len()
}

/// Emit the trace events and metrics for one completed batched delta
/// (§4.2 set-oriented maintenance): every WM change event, the whole
/// batch's conflict-set deltas in canonical order, and a
/// [`Event::BatchApplied`] summary. Used by [`MatchEngine::apply_delta`]
/// so batched runs trace without a per-change fallback.
pub(crate) fn trace_batch<E: MatchEngine + ?Sized>(
    engine: &E,
    resolved: &[WmDelta],
    deltas: &[ConflictDelta],
    total_ns: u64,
) {
    let tracer = engine.tracer();
    let rules = engine.pdb().rules();
    let mut inserts = 0usize;
    let mut deletes = 0usize;
    for d in resolved {
        let class_name = &rules.class(d.class).name;
        if d.insert {
            inserts += 1;
        } else {
            deletes += 1;
        }
        if let Some(m) = tracer.metrics() {
            m.record_class_change(d.class.0 as u32, class_name);
        }
        tracer.emit(|| {
            if d.insert {
                Event::WmInsert {
                    class: d.class.0 as u32,
                    class_name: class_name.clone(),
                    tuple: d.tuple.to_string(),
                    tid: d.tid.pack(),
                }
            } else {
                Event::WmRemove {
                    class: d.class.0 as u32,
                    class_name: class_name.clone(),
                    tuple: d.tuple.to_string(),
                    tid: d.tid.pack(),
                }
            }
        });
    }
    let rules_awakened = emit_conflict_deltas(tracer, rules, deltas);
    tracer.emit(|| Event::BatchApplied {
        engine: engine.name(),
        inserts,
        deletes,
        rules_awakened,
        total_ns,
    });
    if let Some(m) = tracer.metrics() {
        m.record_batch((inserts + deletes) as u64);
    }
}

/// Which engine to instantiate (experiment configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Classic in-memory Rete (3.1).
    Rete,
    /// Rete with LEFT/RIGHT relations in the DBMS (3.2).
    DbRete,
    /// Re-evaluate LHS queries (4.1).
    Query,
    /// Matching patterns in COND relations (4.2).
    Cond,
    /// POSTGRES-style rule markers (2.3).
    Marker,
}

impl EngineKind {
    /// Every engine, in a stable experiment order.
    pub const ALL: [EngineKind; 5] = [
        EngineKind::Rete,
        EngineKind::DbRete,
        EngineKind::Query,
        EngineKind::Cond,
        EngineKind::Marker,
    ];

    /// Short name used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Rete => "rete",
            EngineKind::DbRete => "db-rete",
            EngineKind::Query => "query",
            EngineKind::Cond => "cond",
            EngineKind::Marker => "marker",
        }
    }
}

/// Replay the existing working memory through an engine's maintenance
/// path, rebuilding match structures and the conflict set. Used after
/// attaching to a restored database ([`ProductionDb::attach`]).
///
/// The restored WM is replayed as *one* set-oriented delta batch (§4.2)
/// rather than tuple at a time, so engines with a batch strategy rebuild
/// at batch cost and the whole replay produces a single maintenance pass.
pub fn bootstrap(engine: &mut dyn MatchEngine) {
    if !engine.needs_bootstrap() {
        return;
    }
    let pdb = engine.pdb().clone();
    let mut batch = Vec::new();
    for c in 0..pdb.class_count() {
        let class = ClassId(c);
        for (tid, tuple) in pdb.wm_scan(class).expect("wm scan") {
            batch.push(WmDelta {
                insert: true,
                class,
                tid,
                tuple,
            });
        }
    }
    engine.maintain_delta(&batch);
}

/// Instantiate an engine over a shared [`ProductionDb`].
pub fn make_engine(kind: EngineKind, pdb: ProductionDb) -> Box<dyn MatchEngine> {
    match kind {
        EngineKind::Rete => Box::new(ReteEngine::new(pdb)),
        EngineKind::DbRete => Box::new(DbReteEngine::new(pdb)),
        EngineKind::Query => Box::new(QueryEngine::new(pdb)),
        EngineKind::Cond => Box::new(CondEngine::new(pdb)),
        EngineKind::Marker => Box::new(MarkerEngine::new(pdb)),
    }
}
