//! The paper's new approach (§4.2): **matching patterns** in COND
//! relations.
//!
//! Each class has a COND store holding, per `(rule, condition element)`,
//! the original condition template plus *matching patterns* — copies of
//! the template with variables progressively bound by tuples that arrived
//! in *related* condition elements (the RCE list), with one mark per RCE.
//! "A matching pattern in a COND relation indicates that there is some
//! tuple in another (related) WM relation having the property of the
//! matching pattern and therefore is joinable with tuples in the current
//! WM relation. Hence, when a tuple is inserted later … we know
//! immediately that there is a match." (§4.2.1)
//!
//! Key faithful details:
//!
//! * **detection first**: the conflict set is updated before the
//!   maintenance (propagation) phase — the reverse of Rete (§4.2.3);
//! * **counters, not bits** (§4.2.2): "because a matching pattern tuple
//!   may have been created by more than one WM element … Mark bits can be
//!   easily replaced by counters to record the number of contributing
//!   tuples." We realize the counters as *support sets* (the tuple ids of
//!   the contributing WM elements; the paper's counter is the set's
//!   size), plus a per-tuple contribution log, so that the deletion
//!   algorithm undoes exactly what the insertion algorithm did — the
//!   mirrored re-derivation the paper sketches is not self-consistent
//!   once the COND state has evolved between insert and delete;
//! * **mark-compatibility** during unification ("each Mark bit must be
//!   set in T if the corresponding Mark bit is set in the matching tuple
//!   M", §4.2.2), restricted to marks of CEs that share a variable with
//!   the target CE — for variable-disjoint CEs the mark carries no
//!   binding information inside the target COND relation and the paper's
//!   unrestricted check would lose real matches;
//! * **negated condition elements** invert the mark default (§4.2.2):
//!   their support sets count *blockers* and the element is satisfied
//!   when empty;
//! * **parallelizable propagation**: COND stores are partitioned by class
//!   and the maintenance phase can fan out one thread per affected class
//!   ("propagation of changes can be performed in parallel to all the
//!   COND relations", §4.2.3).
//!
//! Non-equality join tests (e.g. R1's `salary {< <S>}`) propagate as
//! *range* specializations: the pattern created by `Mike ^salary 6000`
//! in the manager's COND entry carries `salary < 6000`. Where a
//! composition of inequalities is not representable the pattern stays
//! conservative; the conflict set remains exact because detection expands
//! fire candidates through a seeded LHS query.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use ops5::{ClassId, Rule, RuleId};
use predindex::{make_index, ConditionIndex, IndexKind, Rect};
use relstore::{CompOp, Tuple, TupleId, Value};
use rete::{ConflictDelta, ConflictSet};

use crate::engine::arena::{PatRef, PatternArena, SupportSet, TupKey};
use crate::engine::intern::{Extra, FastMap, IdentityInterner, PatId};
use crate::engine::recompute::{eval_rule_seeded_batch, eval_rule_via, InstStore, Match};
use crate::engine::{MatchEngine, SpaceStats, WmDelta};
use crate::pdb::ProductionDb;

/// A variable occurrence: condition element, attribute, operator.
type Occurrence = (usize, usize, CompOp);

/// Address of a pattern: (rule, cen, interned identity). The store class
/// follows from (rule, cen). Three integers — hashing and comparing a
/// pattern address never touches Values.
type PatKey = (u32, u32, PatId);

/// Canonical order for derived range constraints: attribute, then
/// operator, then value. Every path that builds an `extra` list sorts
/// with this, so structural identity is order-insensitive.
fn sort_extra(extra: &mut [Extra]) {
    extra.sort_unstable_by(|a, b| {
        a.0.cmp(&b.0)
            .then_with(|| a.1.cmp(&b.1))
            .then_with(|| a.2.cmp(&b.2))
    });
}

/// Static per-rule pattern structure derived from the IR.
#[derive(Debug, Clone)]
struct RuleInfo {
    /// Binding sites, one per variable: (ce, attr).
    var_sites: Vec<(usize, usize)>,
    /// All occurrences of each variable (including the binding site).
    occurrences: Vec<Vec<Occurrence>>,
    /// Per CE: constraints referencing variables: (attr, op, var).
    var_constraints: Vec<Vec<(usize, CompOp, usize)>>,
    /// Per CE: the related condition elements (all other CEs, in order).
    rce: Vec<Vec<usize>>,
    /// `share_masks[a]` bit `b`: do CEs `a` and `b` share a variable?
    /// Marks and share sets live in `u64` bitmasks (CE count ≤ 64,
    /// asserted at build), so mark-compatibility is two ANDs.
    share_masks: Vec<u64>,
    /// Positions of positive CEs (original index → positive position).
    positive_pos: Vec<Option<usize>>,
    /// Per CE: its Eq-constrained variables as `(vid, attr)` hash sites
    /// (one per variable), the keys of the σ-binding pattern index.
    hash_sites: Vec<Vec<(usize, usize)>>,
}

impl RuleInfo {
    fn build(rule: &Rule) -> Self {
        let n = rule.ces.len();
        assert!(
            n <= 64,
            "rule {} has {n} CEs; COND mark bitmasks cap rules at 64",
            rule.name
        );
        let mut var_sites: Vec<(usize, usize)> = Vec::new();
        let mut site_index: HashMap<(usize, usize), usize> = HashMap::new();
        for (ci, ce) in rule.ces.iter().enumerate() {
            for (attr, _) in &ce.bindings {
                let site = (ci, *attr);
                site_index.entry(site).or_insert_with(|| {
                    var_sites.push(site);
                    var_sites.len() - 1
                });
            }
        }
        let mut occurrences: Vec<Vec<Occurrence>> = var_sites
            .iter()
            .map(|&(ce, attr)| vec![(ce, attr, CompOp::Eq)])
            .collect();
        for (ci, ce) in rule.ces.iter().enumerate() {
            for j in &ce.joins {
                if let Some(&vid) = site_index.get(&(j.other_ce, j.other_attr)) {
                    occurrences[vid].push((ci, j.my_attr, j.op));
                }
            }
        }
        let mut var_constraints: Vec<Vec<(usize, CompOp, usize)>> = vec![Vec::new(); n];
        for (vid, occs) in occurrences.iter().enumerate() {
            for &(ce, attr, op) in occs {
                var_constraints[ce].push((attr, op, vid));
            }
        }
        // Which variables occur in each CE, and which CE pairs share one.
        let mut vars_of_ce: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        for (vid, occs) in occurrences.iter().enumerate() {
            for &(ce, _, _) in occs {
                vars_of_ce[ce].insert(vid);
            }
        }
        let share_masks: Vec<u64> = (0..n)
            .map(|a| {
                (0..n)
                    .filter(|&b| !vars_of_ce[a].is_disjoint(&vars_of_ce[b]))
                    .fold(0u64, |m, b| m | (1 << b))
            })
            .collect();
        let rce: Vec<Vec<usize>> = (0..n)
            .map(|k| (0..n).filter(|&j| j != k).collect())
            .collect();
        let mut positive_pos = vec![None; n];
        let mut pos = 0;
        for (i, ce) in rule.ces.iter().enumerate() {
            if !ce.negated {
                positive_pos[i] = Some(pos);
                pos += 1;
            }
        }
        let mut hash_sites: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        for (ce, constraints) in var_constraints.iter().enumerate() {
            let mut seen: BTreeSet<usize> = BTreeSet::new();
            for &(attr, op, vid) in constraints {
                if op == CompOp::Eq && seen.insert(vid) {
                    hash_sites[ce].push((vid, attr));
                }
            }
        }
        RuleInfo {
            var_sites,
            occurrences,
            var_constraints,
            rce,
            share_masks,
            positive_pos,
            hash_sites,
        }
    }

    /// Index of CE `j` within CE `k`'s RCE list.
    fn rce_index(&self, k: usize, j: usize) -> usize {
        self.rce[k]
            .iter()
            .position(|&x| x == j)
            .expect("j is a related CE")
    }
}

/// A contribution extracted from a tuple matching a pattern of CE `k`:
/// the combined substitution and derived ranges to propagate to the RCEs.
/// Built once per match; the fan-out to related CEs shares it by index
/// instead of cloning it per target.
#[derive(Debug)]
struct Contribution {
    rule: usize,
    k: usize,
    /// σ' = pattern σ ∪ bindings from the tuple's eq occurrences.
    sigma: Vec<Option<Value>>,
    /// Range info from the tuple's non-eq occurrences: `(vid, op, value)`
    /// meaning `vid op value`. Flat because almost always empty.
    ranges: Vec<(usize, CompOp, Value)>,
    /// Positive CEs marked in the extended view (T's marks + k), as a
    /// bitmask over rule CE indices.
    marks: u64,
}

/// One `(rule, cen)` pattern group: tombstoned pattern slots plus the
/// σ-binding hash index (§4.2.3's "indices … on COND relations" applied
/// to the matching patterns themselves). For each *hash site* — an
/// Eq-constrained variable of the CE — every live pattern is posted
/// either under its bound value (`by_binding`) or on the site's unbound
/// list. Any single site therefore partitions the group, so a probe on
/// one site yields a sound candidate superset; lookups pick the
/// narrowest available site. The index is always maintained; whether
/// lookups probe it or scan every slot is the engine's
/// `pattern_index` switch.
#[derive(Debug)]
struct PatternGroup {
    /// The CE's hash sites, `(vid, attr)` — see [`RuleInfo::hash_sites`].
    hash_sites: Vec<(usize, usize)>,
    /// Arena-backed pattern rows: flat σ, inline support sets.
    arena: PatternArena,
    /// The group's original (all-unbound, no-extra) template identity —
    /// `id == original_id` replaces the old all-None σ scan.
    original_id: PatId,
    /// Interned identity → slot (integer-keyed apply/withdraw lookup).
    by_identity: FastMap<PatId, u32>,
    /// Per site: bound value → slots whose σ binds the variable to it.
    by_binding: Vec<HashMap<Value, Vec<u32>>>,
    /// Per site: slots whose σ leaves the site's variable unbound.
    unbound: Vec<Vec<u32>>,
}

/// Candidate slots of one group lookup, borrowed straight from the index
/// postings (or the arena's live bitmap) — no intermediate `Vec` is
/// collected on any probe or scan path.
enum Cands<'a> {
    /// Unbound-postings slice then bound-postings slice.
    Lists(&'a [u32], &'a [u32]),
    /// Every live slot (full scan).
    All(&'a PatternArena),
}

impl<'a> Cands<'a> {
    fn empty() -> Self {
        Cands::Lists(&[], &[])
    }

    fn len(&self) -> usize {
        match self {
            Cands::Lists(a, b) => a.len() + b.len(),
            Cands::All(arena) => arena.len(),
        }
    }

    fn iter(&self) -> CandIter<'a> {
        match *self {
            Cands::Lists(a, b) => CandIter::Lists { a, b, i: 0 },
            Cands::All(arena) => CandIter::All {
                live: arena.live_flags(),
                s: 0,
            },
        }
    }
}

enum CandIter<'a> {
    Lists {
        a: &'a [u32],
        b: &'a [u32],
        i: usize,
    },
    All {
        live: &'a [bool],
        s: usize,
    },
}

impl Iterator for CandIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        match self {
            CandIter::Lists { a, b, i } => {
                let n = *i;
                *i += 1;
                if n < a.len() {
                    Some(a[n])
                } else {
                    b.get(n - a.len()).copied()
                }
            }
            CandIter::All { live, s } => {
                while *s < live.len() {
                    let cur = *s;
                    *s += 1;
                    if live[cur] {
                        return Some(cur as u32);
                    }
                }
                None
            }
        }
    }
}

impl PatternGroup {
    fn new(hash_sites: Vec<(usize, usize)>, nvars: usize, nrce: usize, original_id: PatId) -> Self {
        let n = hash_sites.len();
        PatternGroup {
            hash_sites,
            arena: PatternArena::new(nvars, nrce),
            original_id,
            by_identity: FastMap::default(),
            by_binding: vec![HashMap::new(); n],
            unbound: vec![Vec::new(); n],
        }
    }

    /// Live patterns in the group.
    fn len(&self) -> usize {
        self.arena.len()
    }

    fn pat(&self, slot: u32) -> PatRef<'_> {
        self.arena.pat(slot)
    }

    fn support_mut(&mut self, slot: u32) -> &mut [SupportSet] {
        self.arena.support_mut(slot)
    }

    fn is_original_slot(&self, slot: u32) -> bool {
        self.arena.id(slot) == self.original_id
    }

    fn slot_of(&self, id: PatId) -> Option<u32> {
        self.by_identity.get(&id).copied()
    }

    /// The hash-site position of variable `vid`, if it is one.
    fn site_of(&self, vid: usize) -> Option<usize> {
        self.hash_sites.iter().position(|&(v, _)| v == vid)
    }

    /// Bound-postings slice of a site for `v` (strict: no unbound).
    fn bound_at(&self, site: usize, v: &Value) -> &[u32] {
        self.by_binding[site].get(v).map_or(&[], |l| l.as_slice())
    }

    /// Index probe for a WM tuple: the narrowest site whose attribute
    /// the tuple carries. `None` = no usable site, caller scans.
    fn probe_tuple(&self, tuple: &Tuple) -> Option<Cands<'_>> {
        let mut best: Option<(&[u32], &[u32])> = None;
        for (site, &(_, attr)) in self.hash_sites.iter().enumerate() {
            let Some(v) = tuple.get(attr) else { continue };
            let lists = (self.unbound[site].as_slice(), self.bound_at(site, v));
            if best.is_none_or(|(a, b): (&[u32], &[u32])| {
                lists.0.len() + lists.1.len() < a.len() + b.len()
            }) {
                best = Some(lists);
            }
        }
        best.map(|(a, b)| Cands::Lists(a, b))
    }

    /// Index probe for a desired pattern's bound variables (each is
    /// Eq-constrained in this CE, hence a hash site). `None` = nothing
    /// bound, caller scans.
    fn probe_bound(&self, bound: &[(usize, Value)]) -> Option<Cands<'_>> {
        let mut best: Option<(&[u32], &[u32])> = None;
        for (vid, v) in bound {
            let Some(site) = self.site_of(*vid) else {
                continue;
            };
            let lists = (self.unbound[site].as_slice(), self.bound_at(site, v));
            if best.is_none_or(|(a, b): (&[u32], &[u32])| {
                lists.0.len() + lists.1.len() < a.len() + b.len()
            }) {
                best = Some(lists);
            }
        }
        best.map(|(a, b)| Cands::Lists(a, b))
    }

    /// Store a pattern under interned identity `id` and post it to every
    /// index. σ never changes on a live pattern (only support does), so
    /// postings stay valid until [`PatternGroup::remove`].
    fn insert(&mut self, id: PatId, sigma: &[Option<Value>], extra: &[Extra]) -> u32 {
        let slot = self.arena.insert(id, sigma, extra);
        self.by_identity.insert(id, slot);
        for site in 0..self.hash_sites.len() {
            let vid = self.hash_sites[site].0;
            match &self.arena.sigma(slot)[vid] {
                Some(v) => {
                    let v = v.clone();
                    self.by_binding[site].entry(v).or_default().push(slot);
                }
                None => self.unbound[site].push(slot),
            }
        }
        slot
    }

    /// Drop a pattern and all its postings; the slot is reused.
    fn remove(&mut self, slot: u32) {
        let id = self.arena.id(slot);
        self.by_identity.remove(&id);
        for site in 0..self.hash_sites.len() {
            let vid = self.hash_sites[site].0;
            match &self.arena.sigma(slot)[vid] {
                Some(v) => {
                    let v = v.clone();
                    if let Some(list) = self.by_binding[site].get_mut(&v) {
                        list.retain(|&s| s != slot);
                        if list.is_empty() {
                            self.by_binding[site].remove(&v);
                        }
                    }
                }
                None => self.unbound[site].retain(|&s| s != slot),
            }
        }
        self.arena.remove(slot);
    }
}

/// Per-class COND store: patterns grouped by (rule, cen).
#[derive(Debug, Default)]
struct CondStore {
    groups: HashMap<(usize, usize), PatternGroup>,
}

/// What the propagation of one insertion did to one pattern, recorded so
/// deletion can undo it exactly.
type LogEntry = (TupKey, PatKey);

/// A per-class predicate index over condition elements (payload =
/// (rule, cen)).
type AlphaIndex = Vec<Box<dyn ConditionIndex<(usize, usize)> + Send + Sync>>;

/// One planned support-set change, keyed by `(rule, n, k_idx, id)`
/// packed into a u64. Distinct derivation paths reaching the same target
/// union into one proposal.
struct Proposal {
    rule: u32,
    n: u32,
    k_idx: u32,
    id: PatId,
    /// The `(σ, extra)` to materialize if the identity has no live slot
    /// yet. `None` when the target pattern already existed at collection
    /// time (then only marks/support change).
    fresh: Option<(Vec<Option<Value>>, Vec<Extra>)>,
    /// Support inherited from source patterns (per RCE position). Empty
    /// vec = nothing inherited — the proposal only records the inserted
    /// tuple's own mark at `k_idx`. The old representation unioned a
    /// pattern's *own* support into its no-new-info proposal and back —
    /// a pure self-union that copied the whole support set per
    /// contribution and dominated the profile; carrying no inherited
    /// support in that case is behavior-identical and O(1).
    inherit: Vec<SupportSet>,
}

/// Reusable buffers for one `apply_to_store` call. Living on the engine
/// (serial path) or per propagation thread, they turn the per-tuple
/// `HashMap`/`Vec` rebuilds of the hot path into `clear()`s.
#[derive(Default)]
struct ApplyScratch {
    /// Packed proposal key → index into `props`.
    keys: FastMap<u64, u32>,
    props: Vec<Proposal>,
    /// Desired-pattern buffers (see `desired_into`).
    bound: Vec<(usize, Value)>,
    extra: Vec<Extra>,
    /// Merged-identity buffers.
    sigma: Vec<Option<Value>>,
    merged_extra: Vec<Extra>,
}

/// Per-`propagate` scratch: class fan-out lists, collected log entries,
/// per-partition span stats, and the serial-path apply buffers.
#[derive(Default)]
struct PropScratch {
    per_class: Vec<Vec<(u32, u32)>>,
    entries: Vec<LogEntry>,
    spans: Vec<(usize, u64, u64, u64)>,
    apply: ApplyScratch,
}

fn pack_key(rule: usize, n: usize, k_idx: usize, id: PatId) -> u64 {
    debug_assert!(rule < (1 << 16) && n < (1 << 8) && k_idx < (1 << 8));
    ((rule as u64) << 48) | ((n as u64) << 40) | ((k_idx as u64) << 32) | u64::from(id)
}

/// The §4.2 matching engine.
pub struct CondEngine {
    pdb: ProductionDb,
    infos: Vec<RuleInfo>,
    stores: Vec<CondStore>,
    /// Interned pattern identities, shared across all groups. Append-only
    /// (ids stay stable across pattern remove/re-add); behind a mutex
    /// because the parallel propagation path interns through `&self`, but
    /// locked only when a derivation actually merges new bindings.
    interner: Mutex<IdentityInterner>,
    /// Reused propagation buffers (serial path).
    scratch: PropScratch,
    /// Per-class predicate index over the condition elements' alpha
    /// rectangles: only groups whose one-input tests match the tuple are
    /// searched ("building indices such as R-trees or R+-trees on COND
    /// relations can help in speeding up this process", §4.2.3). `None`
    /// disables the index (the E10 ablation).
    alpha_index: Option<AlphaIndex>,
    /// Simulated secondary-storage latency per COND tuple examined, in
    /// nanoseconds. The paper assumes disk-resident COND relations; this
    /// knob restores the I/O-bound regime its parallelism argument
    /// (§4.2.3) lives in. Zero (default) = pure in-memory.
    io_cost_ns: u64,
    /// tuple → the patterns whose support mentions it. Entries are
    /// 12-byte integer triples; dedup is integer compares.
    log: FastMap<TupKey, Vec<PatKey>>,
    inst: InstStore,
    conflict: ConflictSet,
    parallel: bool,
    /// Probe-vs-scan selector for pattern-group lookups. The σ-binding
    /// hash index is always maintained; `false` restores the full group
    /// scan (the historical `cond` bench row, and the E10-style
    /// ablation baseline).
    pattern_index: bool,
    /// Index probes served (atomic: parallel propagation counts through
    /// `&self`).
    pat_probes: AtomicU64,
    /// Patterns examined across all lookups, probed or scanned.
    pat_scanned: AtomicU64,
    /// Set-oriented evaluation: hash-join executor for the seeded fire
    /// expansions and unblock re-evaluations, plus whole-delta batching
    /// of those expansions per (rule, seeded-term) in `maintain_delta`.
    batch: bool,
    last_detect_ns: u64,
    last_total_ns: u64,
    tracer: obs::Tracer,
}

impl CondEngine {
    /// Create a new, empty instance.
    pub fn new(pdb: ProductionDb) -> Self {
        Self::with_index(pdb, Some(IndexKind::RTree))
    }

    /// Build with an explicit COND-relation index choice (`None` scans
    /// every group — the unindexed §4.1-style search).
    pub fn with_index(pdb: ProductionDb, index: Option<IndexKind>) -> Self {
        let infos: Vec<RuleInfo> = pdb.rules().rules.iter().map(RuleInfo::build).collect();
        let nvars: Vec<usize> = infos.iter().map(|i| i.var_sites.len()).collect();
        let mut stores: Vec<CondStore> = pdb
            .rules()
            .classes
            .iter()
            .map(|_| CondStore::default())
            .collect();
        let mut interner = IdentityInterner::new();
        for rule in &pdb.rules().rules {
            let none_sigma = vec![None; nvars[rule.id.0]];
            let original_id = interner.intern(&none_sigma, &[]);
            for (cen, ce) in rule.ces.iter().enumerate() {
                let info = &infos[rule.id.0];
                let mut group = PatternGroup::new(
                    info.hash_sites[cen].clone(),
                    nvars[rule.id.0],
                    info.rce[cen].len(),
                    original_id,
                );
                group.insert(original_id, &none_sigma, &[]);
                stores[ce.class.0].groups.insert((rule.id.0, cen), group);
            }
        }
        let alpha_index = index.map(|kind| {
            let mut per_class: AlphaIndex = pdb
                .rules()
                .classes
                .iter()
                .map(|c| make_index(kind, c.arity()))
                .collect();
            for rule in &pdb.rules().rules {
                for (cen, ce) in rule.ces.iter().enumerate() {
                    let arity = pdb.rules().class(ce.class).arity();
                    if let Some(rect) = Rect::from_restriction(arity, &ce.alpha) {
                        per_class[ce.class.0].insert(rect, (rule.id.0, cen));
                    }
                }
            }
            per_class
        });
        CondEngine {
            pdb,
            infos,
            stores,
            interner: Mutex::new(interner),
            scratch: PropScratch::default(),
            alpha_index,
            io_cost_ns: 0,
            log: FastMap::default(),
            inst: InstStore::new(),
            conflict: ConflictSet::new(),
            parallel: false,
            pattern_index: true,
            pat_probes: AtomicU64::new(0),
            pat_scanned: AtomicU64::new(0),
            batch: true,
            last_detect_ns: 0,
            last_total_ns: 0,
            tracer: obs::Tracer::disabled(),
        }
    }

    /// Simulate secondary-storage latency per COND tuple examined
    /// (busy-wait; deterministic enough for the E5 experiment).
    pub fn set_io_cost_ns(&mut self, ns: u64) {
        self.io_cost_ns = ns;
    }

    /// Burn the simulated I/O budget for `tuples` COND reads. Long waits
    /// sleep (like real I/O they release the CPU, so parallel propagation
    /// threads genuinely overlap); short ones spin for accuracy.
    fn charge_io(&self, tuples: u64) {
        if self.io_cost_ns == 0 || tuples == 0 {
            return;
        }
        let dur = std::time::Duration::from_nanos(self.io_cost_ns * tuples);
        if dur > std::time::Duration::from_micros(200) {
            std::thread::sleep(dur);
        } else {
            let deadline = Instant::now() + dur;
            while Instant::now() < deadline {
                std::hint::spin_loop();
            }
        }
    }

    /// The (rule, cen) groups of `class` whose alpha tests can match the
    /// tuple — via the COND index when present, else all groups.
    fn candidate_groups(&self, class: ClassId, tuple: &Tuple) -> Vec<(usize, usize)> {
        match &self.alpha_index {
            Some(idx) => idx[class.0].stab(tuple),
            None => self.stores[class.0].groups.keys().copied().collect(),
        }
    }

    /// Enable parallel propagation of matching patterns across COND
    /// stores (E5).
    pub fn set_parallel(&mut self, on: bool) {
        self.parallel = on;
    }

    /// Account one pattern-group lookup: `examined` candidates
    /// surfaced, via an index probe (`indexed`) or a full scan.
    fn note_pattern_lookup(&self, examined: u64, indexed: bool) {
        self.pat_scanned.fetch_add(examined, Ordering::Relaxed);
        if indexed {
            self.pat_probes.fetch_add(1, Ordering::Relaxed);
            self.pdb.db().stats().index_probe();
        }
        if let Some(m) = self.tracer.metrics() {
            m.record_pattern_io(indexed as u64, examined);
        }
    }

    /// Candidate pattern slots of a group for a WM tuple: an index
    /// probe on the narrowest hash site when enabled, else every live
    /// slot. The second value says whether the index served it.
    ///
    /// Scan-fallback audit (the `pattern_scanned` remainder with the
    /// index on): `probe_tuple` returns `None` only for CEs with no
    /// Eq-constrained variable at all — their groups hold just the
    /// original template plus range-specialized patterns, which no hash
    /// site can partition. Indexing those would need a range structure
    /// over `extra`; the groups are tiny, so the scan is irreducible.
    fn tuple_candidates<'g>(&self, group: &'g PatternGroup, tuple: &Tuple) -> (Cands<'g>, bool) {
        if self.pattern_index {
            obs::prof_span!("probe");
            if let Some(c) = group.probe_tuple(tuple) {
                return (c, true);
            }
        }
        obs::prof_span!("scan");
        (Cands::All(&group.arena), false)
    }

    /// Candidate slots for a positive contribution: patterns whose σ is
    /// compatible with every bound variable of the desired pattern.
    ///
    /// Scan-fallback audit: an empty `bound` means the contribution
    /// shares no bound variable with the target CE, so its existence
    /// mark applies to *every* pattern of the group (the
    /// variable-disjoint broadcast case — see `disconnected_ce_pairs_fire`).
    /// That scan is semantically a broadcast, not a missed index route.
    fn bound_candidates<'g>(
        &self,
        group: &'g PatternGroup,
        bound: &[(usize, Value)],
    ) -> (Cands<'g>, bool) {
        if self.pattern_index {
            obs::prof_span!("probe");
            if let Some(c) = group.probe_bound(bound) {
                return (c, true);
            }
        }
        obs::prof_span!("scan");
        (Cands::All(&group.arena), false)
    }

    /// Candidate slots for a negated-source contribution (§4.2.2
    /// blocker accounting): a pattern gains the blocker mark only when
    /// every variable of the negated CE is bound identically in both
    /// σs, so probe the strict postings of one such variable; an
    /// unbound blocker variable means no pattern can qualify at all.
    /// Likewise, a blocker variable that is not a hash site of the
    /// target CE can never be bound by its patterns (σ is restricted to
    /// the CE's own Eq variables), so the lookup is empty — the old
    /// representation fell back to a full scan there. The only remaining
    /// scan is the constraint-free unconditional blocker, which really
    /// does mark every pattern.
    fn blocker_candidates<'g>(
        &self,
        c: &Contribution,
        group: &'g PatternGroup,
    ) -> (Cands<'g>, bool) {
        let constraints = &self.infos[c.rule].var_constraints[c.k];
        if !self.pattern_index || constraints.is_empty() {
            obs::prof_span!("scan");
            return (Cands::All(&group.arena), false);
        }
        obs::prof_span!("probe");
        if constraints
            .iter()
            .any(|&(_, _, vid)| c.sigma[vid].is_none())
        {
            return (Cands::empty(), true);
        }
        let mut best: Option<&[u32]> = None;
        for &(_, _, vid) in constraints {
            let Some(site) = group.site_of(vid) else {
                return (Cands::empty(), true);
            };
            let v = c.sigma[vid].as_ref().expect("checked bound");
            let cand = group.bound_at(site, v);
            if best.is_none_or(|b: &[u32]| cand.len() < b.len()) {
                best = Some(cand);
            }
        }
        (Cands::Lists(&[], best.unwrap_or(&[])), true)
    }

    /// All stored patterns (space metric).
    pub fn pattern_count(&self) -> usize {
        self.stores
            .iter()
            .flat_map(|s| s.groups.values())
            .map(PatternGroup::len)
            .sum()
    }

    /// Canonical dump of every live pattern — σ, derived constraints,
    /// and the full support multiset (supporter keys sorted within each
    /// RCE counter), one sorted line per pattern. The exact-equality
    /// oracle the property tests compare across access paths (indexed
    /// vs scanned) and representations: two engines agree iff their
    /// pattern stores are identical down to individual supporters.
    pub fn support_snapshot(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (class, store) in self.stores.iter().enumerate() {
            for (&(rid, cen), g) in &store.groups {
                for s in g.arena.iter_live() {
                    let p = g.pat(s);
                    let sup: Vec<Vec<String>> = p
                        .support
                        .iter()
                        .map(|ss| {
                            let mut v: Vec<String> = ss.iter().map(|k| format!("{k:?}")).collect();
                            v.sort();
                            v
                        })
                        .collect();
                    out.push(format!(
                        "class={class} rule={rid} cen={cen} sigma={:?} extra={:?} support={sup:?}",
                        p.sigma, p.extra
                    ));
                }
            }
        }
        out.sort();
        out
    }

    /// Render a class's COND relation as the paper prints it (§4.2.1 /
    /// Example 5): one row per pattern with Rule-ID, CEN, a cell per
    /// attribute (bound value, `<var>`, or a derived range), the RCE
    /// list, and the mark counters.
    pub fn render_cond(&self, class: ClassId) -> Vec<Vec<String>> {
        let rules = self.pdb.rules();
        let mut keys: Vec<(usize, usize)> = self.stores[class.0].groups.keys().copied().collect();
        keys.sort_unstable();
        let mut rows = Vec::new();
        for (rid, cen) in keys {
            let rule = rules.rule(RuleId(rid));
            let info = &self.infos[rid];
            let arity = rules.class(class).arity();
            let g = &self.stores[class.0].groups[&(rid, cen)];
            let mut slots: Vec<u32> = g.arena.iter_live().collect();
            // Originals first, then by specialization (stable textual
            // order; slices render identically to the old owned vectors).
            slots.sort_by_cached_key(|&s| {
                let p = g.pat(s);
                (!g.is_original_slot(s), format!("{:?}", (p.sigma, p.extra)))
            });
            for s in slots {
                let p = g.pat(s);
                let mut cells = vec![rule.name.clone(), (cen + 1).to_string()];
                for attr in 0..arity {
                    cells.push(self.render_cell(rid, cen, p, attr));
                }
                let rce = info.rce[cen]
                    .iter()
                    .map(|j| format!("({},{})", rule.name, j + 1))
                    .collect::<Vec<_>>()
                    .join(",");
                cells.push(rce);
                cells.push(
                    p.support
                        .iter()
                        .map(|s| s.len().to_string())
                        .collect::<Vec<_>>()
                        .join(""),
                );
                rows.push(cells);
            }
        }
        rows
    }

    /// One attribute cell of a pattern row.
    fn render_cell(&self, rid: usize, cen: usize, p: PatRef<'_>, attr: usize) -> String {
        let rule = self.rule(rid);
        let info = &self.infos[rid];
        // Constant test from the alpha restriction?
        if let Some(sel) = rule.ces[cen].alpha.tests.iter().find(|s| s.attr == attr) {
            return if sel.op == CompOp::Eq {
                sel.value.to_string()
            } else {
                format!("{}{}", sel.op, sel.value)
            };
        }
        // Derived range constraint?
        if let Some((_, op, v)) = p.extra.iter().find(|(a, _, _)| *a == attr) {
            return format!("{op}{v}");
        }
        // Variable constraint: bound or free?
        for &(a, op, vid) in &info.var_constraints[cen] {
            if a != attr || op != CompOp::Eq {
                continue;
            }
            return match &p.sigma[vid] {
                Some(v) => v.to_string(),
                None => {
                    let (bce, battr) = info.var_sites[vid];
                    rule.ces[bce]
                        .bindings
                        .iter()
                        .find(|(ba, _)| *ba == battr)
                        .map(|(_, n)| format!("<{n}>"))
                        .unwrap_or_else(|| format!("<v{vid}>"))
                }
            };
        }
        "*".to_string()
    }

    fn rule(&self, rid: usize) -> &Rule {
        self.pdb.rules().rule(RuleId(rid))
    }

    /// Does `tuple` match pattern `p` of `(rule, cen)`? Alpha tests plus
    /// every evaluable specialized constraint.
    fn pattern_matches(&self, rid: usize, cen: usize, p: PatRef<'_>, tuple: &Tuple) -> bool {
        let rule = self.rule(rid);
        let info = &self.infos[rid];
        self.pdb.db().stats().read_tuples(1); // COND tuple examined
        if !rule.ces[cen].alpha.matches(tuple) {
            return false;
        }
        for &(attr, op, vid) in &info.var_constraints[cen] {
            if let Some(x) = &p.sigma[vid] {
                match tuple.get(attr) {
                    Some(v) if op.eval(v, x) => {}
                    _ => return false,
                }
            }
        }
        for (attr, op, x) in p.extra {
            match tuple.get(*attr) {
                Some(v) if op.eval(v, x) => {}
                _ => return false,
            }
        }
        true
    }

    /// Are all marks of a pattern (for CE `cen` of rule `rid`) set?
    /// Positive RCEs need support; negated RCEs need no blockers
    /// (§4.2.2).
    fn fully_marked(&self, rid: usize, cen: usize, support: &[SupportSet]) -> bool {
        let rule = self.rule(rid);
        let info = &self.infos[rid];
        info.rce[cen].iter().enumerate().all(|(i, &j)| {
            if rule.ces[j].negated {
                support[i].is_empty()
            } else {
                !support[i].is_empty()
            }
        })
    }

    /// Positive marks of a pattern as a bitmask over rule CE indices
    /// (for mark compatibility). No allocation — support emptiness
    /// flags folded into a u64.
    fn positive_marks(&self, rid: usize, cen: usize, support: &[SupportSet]) -> u64 {
        let rule = self.rule(rid);
        let info = &self.infos[rid];
        let mut marks = 0u64;
        for (i, &j) in info.rce[cen].iter().enumerate() {
            if !rule.ces[j].negated && !support[i].is_empty() {
                marks |= 1 << j;
            }
        }
        marks
    }

    /// Build the contribution of `tuple` matching pattern `p` at CE `k`.
    fn contribution(&self, rid: usize, k: usize, p: PatRef<'_>, tuple: &Tuple) -> Contribution {
        let info = &self.infos[rid];
        let mut sigma = p.sigma.to_vec();
        let mut ranges: Vec<(usize, CompOp, Value)> = Vec::new();
        for (vid, occs) in info.occurrences.iter().enumerate() {
            for &(ce, attr, op) in occs {
                if ce != k {
                    continue;
                }
                if op == CompOp::Eq {
                    // The tuple fixes this variable's value.
                    sigma[vid] = Some(tuple[attr].clone());
                } else {
                    // The tuple bounds the variable: v op.flip() t[attr].
                    ranges.push((vid, op.flip(), tuple[attr].clone()));
                }
            }
        }
        let mut marks = self.positive_marks(rid, k, p.support);
        if !self.rule(rid).ces[k].negated {
            marks |= 1 << k;
        }
        Contribution {
            rule: rid,
            k,
            sigma,
            ranges,
            marks,
        }
    }

    /// The desired pattern for target CE `n` under a contribution:
    /// substitution restricted to `n`'s variables plus derived ranges,
    /// written into reused scratch buffers.
    fn desired_into(
        &self,
        c: &Contribution,
        n: usize,
        bound: &mut Vec<(usize, Value)>,
        extra: &mut Vec<Extra>,
    ) {
        bound.clear();
        extra.clear();
        let info = &self.infos[c.rule];
        for &(attr, op, vid) in &info.var_constraints[n] {
            if let Some(v) = &c.sigma[vid] {
                if op == CompOp::Eq {
                    bound.push((vid, v.clone()));
                } else {
                    // Non-eq constraint with a known value: specialize.
                    extra.push((attr, op, v.clone()));
                }
            } else if op == CompOp::Eq {
                for (rvid, rop, rv) in &c.ranges {
                    if *rvid == vid {
                        extra.push((attr, *rop, rv.clone()));
                    }
                }
            }
        }
        bound.sort_by_key(|(vid, _)| *vid);
        bound.dedup();
        sort_extra(extra);
        extra.dedup();
    }

    /// Maintenance after an insertion: propagate matching patterns of the
    /// inserted tuple `tup` to all related COND stores (§4.2.2's insertion
    /// algorithm).
    fn propagate(&mut self, contributions: Vec<Contribution>, tup: TupKey) {
        obs::prof_span!("propagate");
        if contributions.is_empty() {
            return;
        }
        // Group planned work by target class so stores can be updated in
        // parallel (each class store is owned by exactly one task). The
        // fan-out shares each contribution by index — no Rule or
        // Contribution clones per related CE — and all buffers are
        // engine-owned scratch reused across `maintain_delta` calls.
        let nclasses = self.stores.len();
        let mut scratch = std::mem::take(&mut self.scratch);
        if scratch.per_class.len() < nclasses {
            scratch.per_class.resize_with(nclasses, Vec::new);
        }
        for list in &mut scratch.per_class {
            list.clear();
        }
        for (ci, c) in contributions.iter().enumerate() {
            let ces = &self.rule(c.rule).ces;
            for &n in &self.infos[c.rule].rce[c.k] {
                scratch.per_class[ces[n].class.0].push((ci as u32, n as u32));
            }
        }
        scratch.entries.clear();
        scratch.spans.clear();
        let parallel = self.parallel;
        if parallel {
            // Real fan-out, partitioned like the working memory: classes
            // are grouped by the lock shard their relation hashes to, and
            // one scoped thread is spawned per *non-empty* shard group
            // (classes within a group run sequentially on that thread).
            // COND propagation parallelism thereby mirrors the storage
            // layer's sharding — a shard's match maintenance stays on one
            // thread, co-located with the lock traffic its transactions
            // generate — and empty groups pay no thread overhead. Each
            // thread gets its own apply scratch; the serial path below
            // reuses the engine's. Results are flattened and sorted by
            // class, so the merge order (and every downstream journal
            // line) is independent of shard count and thread timing.
            let lm = self.pdb.db().lock_manager();
            let mut groups: Vec<Vec<usize>> = vec![Vec::new(); lm.shard_count()];
            for (class, work) in scratch.per_class.iter().enumerate() {
                if !work.is_empty() {
                    groups[lm.shard_of(self.pdb.class_rel(ClassId(class)))].push(class);
                }
            }
            let stores = std::mem::take(&mut self.stores);
            let mut slots: Vec<Option<CondStore>> = stores.into_iter().map(Some).collect();
            let this: &CondEngine = self;
            let contribs = &contributions;
            let per_class = &scratch.per_class;
            let collected = crossbeam::thread::scope(|scope| {
                let mut handles = Vec::new();
                for classes in groups.iter().filter(|g| !g.is_empty()) {
                    let assigned: Vec<(usize, CondStore)> = classes
                        .iter()
                        .map(|&class| (class, slots[class].take().expect("store present")))
                        .collect();
                    let handle = scope.spawn(move |_| {
                        let mut apply = ApplyScratch::default();
                        let mut out = Vec::new();
                        for (class, mut store) in assigned {
                            let started = Instant::now();
                            let mut log = Vec::new();
                            let (scanned, probes) = this.apply_to_store(
                                &mut store,
                                contribs,
                                &per_class[class],
                                tup,
                                &mut apply,
                                &mut log,
                            );
                            let span_ns = started.elapsed().as_nanos() as u64;
                            out.push((class, store, log, scanned, probes, span_ns));
                        }
                        out
                    });
                    handles.push(handle);
                }
                let mut returned: Vec<(usize, CondStore, Vec<LogEntry>, u64, u64, u64)> = handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("propagation thread"))
                    .collect();
                returned.sort_by_key(|(c, ..)| *c);
                returned
            })
            .expect("propagation scope");
            for (class, store, log, scanned, probes, span_ns) in collected {
                slots[class] = Some(store);
                scratch.entries.extend(log);
                scratch.spans.push((class, scanned, probes, span_ns));
            }
            self.stores = slots
                .into_iter()
                .map(|s| s.expect("store returned"))
                .collect();
        } else {
            let mut stores = std::mem::take(&mut self.stores);
            for (class, work) in scratch.per_class.iter().enumerate() {
                if work.is_empty() {
                    continue;
                }
                let started = Instant::now();
                let (scanned, probes) = self.apply_to_store(
                    &mut stores[class],
                    &contributions,
                    work,
                    tup,
                    &mut scratch.apply,
                    &mut scratch.entries,
                );
                scratch
                    .spans
                    .push((class, scanned, probes, started.elapsed().as_nanos() as u64));
            }
            self.stores = stores;
        }
        for &(class, scanned, probes, span_ns) in &scratch.spans {
            self.tracer.emit(|| obs::Event::PropagateSpan {
                class: class as u32,
                class_name: self.pdb.rules().class(ClassId(class)).name.clone(),
                scanned,
                probes,
                span_ns,
                parallel,
            });
            if let Some(m) = self.tracer.metrics() {
                m.record_propagate(span_ns);
            }
        }
        for (supporter, pat) in scratch.entries.drain(..) {
            let list = self.log.entry(supporter).or_default();
            if !list.contains(&pat) {
                list.push(pat);
            }
        }
        self.scratch = scratch;
    }

    /// Apply contributions (shared by index in `work`) targeting one
    /// class store. Log entries (supporter tuple → pattern) for every
    /// support-set insertion are appended to `entries`; returns the
    /// number of COND tuples examined and the index probes that narrowed
    /// them (the partition's span work, reported per-partition by
    /// `propagate`).
    ///
    /// The hot path allocates only when a derivation genuinely merges
    /// new information: proposal keys are packed u64s in a reused map,
    /// desired/merged identities live in scratch buffers, and a
    /// no-new-info mark on an existing pattern carries no inherited
    /// support at all (see [`Proposal::inherit`]).
    fn apply_to_store(
        &self,
        store: &mut CondStore,
        contribs: &[Contribution],
        work: &[(u32, u32)],
        tup: TupKey,
        scratch: &mut ApplyScratch,
        entries: &mut Vec<LogEntry>,
    ) -> (u64, u64) {
        obs::prof_span!("apply");
        scratch.keys.clear();
        scratch.props.clear();
        let mut scanned: u64 = 0;
        let mut probes: u64 = 0;
        for &(ci, n) in work {
            let c = &contribs[ci as usize];
            let n = n as usize;
            let rule = self.rule(c.rule);
            let info = &self.infos[c.rule];
            let k_idx = info.rce_index(n, c.k);
            let negated_k = rule.ces[c.k].negated;
            self.desired_into(c, n, &mut scratch.bound, &mut scratch.extra);
            let Some(group) = store.groups.get(&(c.rule, n)) else {
                continue;
            };
            let (cands, indexed) = if negated_k {
                self.blocker_candidates(c, group)
            } else {
                self.bound_candidates(group, &scratch.bound)
            };
            let ncands = cands.len() as u64;
            self.pdb.db().stats().read_tuples(ncands);
            self.note_pattern_lookup(ncands, indexed);
            scanned += ncands;
            probes += indexed as u64;
            for slot in cands.iter() {
                let m = group.pat(slot);
                // Mark compatibility (§4.2.2): every mark set in M must be
                // set in T's extended view — restricted to marks of CEs
                // sharing a variable with the target CE (see module docs).
                let m_marks = self.positive_marks(c.rule, n, m.support);
                if (m_marks & info.share_masks[n]) & !c.marks != 0 {
                    continue;
                }
                if negated_k {
                    // Blocker accounting: the tuple definitely blocks M
                    // only when every join of the negated CE is evaluable
                    // against M's substitution and holds. `c.sigma` holds
                    // the tuple's view; check agreement on shared vars.
                    let all_evaluable_and_true =
                        info.var_constraints[c.k].iter().all(|&(_, _, vid)| {
                            match (&c.sigma[vid], &m.sigma[vid]) {
                                (Some(a), Some(b)) => a == b,
                                _ => false,
                            }
                        });
                    if all_evaluable_and_true {
                        let key = pack_key(c.rule, n, k_idx, m.id);
                        if !scratch.keys.contains_key(&key) {
                            scratch.keys.insert(key, scratch.props.len() as u32);
                            scratch.props.push(Proposal {
                                rule: c.rule as u32,
                                n: n as u32,
                                k_idx: k_idx as u32,
                                id: m.id,
                                fresh: None,
                                inherit: Vec::new(),
                            });
                        }
                    }
                    continue;
                }
                // Unify: shared bound variables must agree.
                let compatible = scratch.bound.iter().all(|(vid, v)| match &m.sigma[*vid] {
                    Some(x) => x == v,
                    None => true,
                });
                if !compatible {
                    continue;
                }
                let adds_binding = scratch.bound.iter().any(|(vid, _)| m.sigma[*vid].is_none());
                let adds_extra = scratch.extra.iter().any(|e| !m.extra.contains(e));
                if !adds_binding && !adds_extra {
                    // No new binding: set the mark on M itself. Only the
                    // inserted tuple's own mark is new — M's support is
                    // already M's, no self-union.
                    let key = pack_key(c.rule, n, k_idx, m.id);
                    if !scratch.keys.contains_key(&key) {
                        scratch.keys.insert(key, scratch.props.len() as u32);
                        scratch.props.push(Proposal {
                            rule: c.rule as u32,
                            n: n as u32,
                            k_idx: k_idx as u32,
                            id: m.id,
                            fresh: None,
                            inherit: Vec::new(),
                        });
                    }
                    continue;
                }
                // "Create a new tuple with the new binding and set the
                // Mark bit of C" — the created pattern inherits M's
                // support and gains this tuple's. Build the merged
                // identity in scratch and intern it; the canonical clone
                // happens only the first time the identity is ever seen.
                scratch.sigma.clear();
                scratch.sigma.extend_from_slice(m.sigma);
                for (vid, v) in &scratch.bound {
                    if scratch.sigma[*vid].is_none() {
                        scratch.sigma[*vid] = Some(v.clone());
                    }
                }
                scratch.merged_extra.clear();
                scratch.merged_extra.extend_from_slice(m.extra);
                for e in &scratch.extra {
                    if !scratch.merged_extra.contains(e) {
                        scratch.merged_extra.push(e.clone());
                    }
                }
                sort_extra(&mut scratch.merged_extra);
                let id = self
                    .interner
                    .lock()
                    .expect("interner")
                    .intern(&scratch.sigma, &scratch.merged_extra);
                let key = pack_key(c.rule, n, k_idx, id);
                let pi = match scratch.keys.get(&key) {
                    Some(&i) => i as usize,
                    None => {
                        let i = scratch.props.len();
                        scratch.keys.insert(key, i as u32);
                        // A merged identity can collide with a *different*
                        // live pattern's identity; then the proposal
                        // unions into that pattern instead of creating.
                        let fresh = if group.slot_of(id).is_none() {
                            Some((scratch.sigma.clone(), scratch.merged_extra.clone()))
                        } else {
                            None
                        };
                        scratch.props.push(Proposal {
                            rule: c.rule as u32,
                            n: n as u32,
                            k_idx: k_idx as u32,
                            id,
                            fresh,
                            inherit: Vec::new(),
                        });
                        i
                    }
                };
                let p = &mut scratch.props[pi];
                if p.inherit.is_empty() {
                    p.inherit.resize_with(info.rce[n].len(), SupportSet::new);
                }
                for (dst, src) in p.inherit.iter_mut().zip(m.support.iter()) {
                    for s in src.iter() {
                        if !dst.contains(s) {
                            dst.push(*s);
                        }
                    }
                }
            }
        }
        // One aggregate I/O charge for everything this store task read —
        // a sleeping wait overlaps across class threads like disk I/O.
        self.charge_io(scanned);
        // Apply: union each proposal's inherited support (plus the
        // inserted tuple's own mark) into the target pattern, creating it
        // if absent. Every supporter newly recorded on a pattern gets a
        // log entry so its deletion withdraws exactly this support.
        for p in scratch.props.drain(..) {
            let group = store
                .groups
                .get_mut(&(p.rule as usize, p.n as usize))
                .expect("group exists");
            let key: PatKey = (p.rule, p.n, p.id);
            let slot = match group.slot_of(p.id) {
                Some(slot) => slot,
                None => {
                    let (sigma, extra) = p.fresh.as_ref().expect("new identity carries its σ");
                    self.pdb.db().stats().inserted();
                    group.insert(p.id, sigma, extra)
                }
            };
            let support = group.support_mut(slot);
            for (i, src) in p.inherit.iter().enumerate() {
                for s in src.iter() {
                    if !support[i].contains(s) {
                        support[i].push(*s);
                        entries.push((*s, key));
                    }
                }
            }
            let ki = p.k_idx as usize;
            if !support[ki].contains(&tup) {
                support[ki].push(tup);
                entries.push((tup, key));
            }
        }
        (scanned, probes)
    }

    /// Withdraw a deleted tuple's support from every pattern it
    /// contributed to (the deletion algorithm: reset marks / decrement
    /// counters, §4.2.2), collecting patterns left with no support.
    fn withdraw(&mut self, tup: TupKey) {
        obs::prof_span!("withdraw");
        let Some(entries) = self.log.remove(&tup) else {
            return;
        };
        for (rid, cen, id) in entries {
            let (rid, cen) = (rid as usize, cen as usize);
            let class = self.rule(rid).ces[cen].class.0;
            let Some(group) = self.stores[class].groups.get_mut(&(rid, cen)) else {
                continue;
            };
            let Some(slot) = group.slot_of(id) else {
                continue;
            };
            let support = group.support_mut(slot);
            for s in support.iter_mut() {
                s.retain(|x| *x != tup);
            }
            if support.iter().all(SupportSet::is_empty) && !group.is_original_slot(slot) {
                // Subsumed by the original template once unsupported.
                self.pdb.db().stats().deleted();
                group.remove(slot);
            }
        }
    }

    /// Detection phase for an insertion (conflict set first! §4.2.3).
    /// Returns the retraction deltas caused by new blockers, plus the
    /// `(rule, cen)` fire triggers whose seeded expansion the caller runs
    /// — inline per change, or deferred and batched per (rule,
    /// seeded-term) by `maintain_delta`.
    fn detect_insert(
        &mut self,
        class: ClassId,
        tuple: &Tuple,
    ) -> (Vec<ConflictDelta>, Vec<(usize, usize)>) {
        obs::prof_span!("detect");
        let mut deltas = Vec::new();
        // (a) fully marked patterns → fire triggers (expanded into new
        // instantiations by a seeded query).
        let mut fire: Vec<(usize, usize)> = Vec::new();
        let mut blockers: Vec<(usize, usize)> = Vec::new();
        for (rid, cen) in self.candidate_groups(class, tuple) {
            let Some(group) = self.stores[class.0].groups.get(&(rid, cen)) else {
                continue;
            };
            let negated = self.rule(rid).ces[cen].negated;
            if negated {
                // Only the alpha template matters; with the pattern
                // index on, the group's patterns are never read here.
                self.charge_io(if self.pattern_index {
                    1
                } else {
                    group.len() as u64
                });
                if self.rule(rid).ces[cen].alpha.matches(tuple) {
                    blockers.push((rid, cen));
                }
                continue;
            }
            let (cands, indexed) = self.tuple_candidates(group, tuple);
            self.charge_io(cands.len() as u64);
            self.note_pattern_lookup(cands.len() as u64, indexed);
            if cands.iter().any(|s| {
                let p = group.pat(s);
                self.pattern_matches(rid, cen, p, tuple) && self.fully_marked(rid, cen, p.support)
            }) {
                fire.push((rid, cen));
            }
        }
        // (b) the tuple blocks negated CEs: retract newly blocked
        // instantiations.
        for (rid, cen) in blockers {
            let rule = self.rule(rid).clone();
            let info = &self.infos[rid];
            let joins = rule.ces[cen].joins.clone();
            let positive_pos = info.positive_pos.clone();
            let d = self.inst.remove_where(&rule, |m| {
                joins.iter().all(|j| {
                    let Some(pos) = positive_pos[j.other_ce] else {
                        return false;
                    };
                    let other = &m.tuples[pos];
                    match (tuple.get(j.my_attr), other.get(j.other_attr)) {
                        (Some(a), Some(b)) => j.op.eval(a, b),
                        _ => false,
                    }
                })
            });
            deltas.extend(d);
        }
        (deltas, fire)
    }

    /// Expand fire triggers through seeded LHS queries — one batched
    /// evaluation per (rule, seeded-term) pair — deduplicating by tid
    /// vector within the batch and against the stored instantiations
    /// (distinct seeds of the same cycle can derive the same match).
    fn expand_fires(&mut self, fires: Vec<(usize, usize, TupleId, Tuple)>) -> Vec<ConflictDelta> {
        obs::prof_span!("expand");
        let mut groups: HashMap<(usize, usize), Vec<(TupleId, Tuple)>> = HashMap::new();
        for (rid, cen, tid, tuple) in fires {
            groups.entry((rid, cen)).or_default().push((tid, tuple));
        }
        let mut keys: Vec<(usize, usize)> = groups.keys().copied().collect();
        keys.sort_unstable();
        let mut by_rule: HashMap<usize, Vec<Match>> = HashMap::new();
        for key in keys {
            let rule = self.rule(key.0).clone();
            let seeds = groups.remove(&key).expect("group present");
            for m in eval_rule_seeded_batch(&self.pdb, &rule, key.1, &seeds, self.batch) {
                let entry = by_rule.entry(key.0).or_default();
                if !entry.iter().any(|x| x.tids == m.tids) {
                    entry.push(m);
                }
            }
        }
        let mut rids: Vec<usize> = by_rule.keys().copied().collect();
        rids.sort_unstable();
        let mut deltas = Vec::new();
        for rid in rids {
            let rule = self.rule(rid).clone();
            let matches = by_rule.remove(&rid).expect("rule present");
            deltas.extend(self.inst.add_missing(&rule, matches));
        }
        deltas
    }

    /// Detection retractions for a deletion: instantiations containing
    /// the tuple leave the conflict store.
    fn retract_containing(&mut self, class: ClassId, tid: TupleId) -> Vec<ConflictDelta> {
        obs::prof_span!("retract");
        let mut deltas = Vec::new();
        let rule_ids: Vec<usize> = self
            .pdb
            .rules()
            .rules_on_class(class)
            .map(|r| r.id.0)
            .collect();
        for rid in &rule_ids {
            let rule = self.rule(*rid).clone();
            deltas.extend(self.inst.remove_containing(&rule, class, tid));
        }
        deltas
    }

    /// Deletion maintenance: withdraw the tuple's support from every
    /// pattern it contributed to, then re-evaluate rules whose negated
    /// CEs the tuple may have been blocking.
    fn remove_maintenance(
        &mut self,
        class: ClassId,
        tid: TupleId,
        tuple: &Tuple,
    ) -> Vec<ConflictDelta> {
        obs::prof_span!("remove");
        self.withdraw((class.0, tid));
        let mut enable_deltas = Vec::new();
        let rule_ids: Vec<usize> = self
            .pdb
            .rules()
            .rules_on_class(class)
            .map(|r| r.id.0)
            .collect();
        for rid in rule_ids {
            let rule = self.rule(rid).clone();
            let unblocks = rule
                .ces
                .iter()
                .any(|ce| ce.negated && ce.class == class && ce.alpha.matches(tuple));
            if unblocks {
                let matches = eval_rule_via(&self.pdb, &rule, self.batch);
                enable_deltas.extend(self.inst.add_missing(&rule, matches));
            }
        }
        enable_deltas
    }

    /// Contributions of a tuple at its class (patterns it matches).
    fn contributions(&self, class: ClassId, tuple: &Tuple) -> Vec<Contribution> {
        obs::prof_span!("contrib");
        let mut out = Vec::new();
        for (rid, cen) in self.candidate_groups(class, tuple) {
            let Some(group) = self.stores[class.0].groups.get(&(rid, cen)) else {
                continue;
            };
            let (cands, indexed) = self.tuple_candidates(group, tuple);
            self.note_pattern_lookup(cands.len() as u64, indexed);
            for s in cands.iter() {
                let p = group.pat(s);
                if self.pattern_matches(rid, cen, p, tuple) {
                    out.push(self.contribution(rid, cen, p, tuple));
                }
            }
        }
        out
    }
}

impl MatchEngine for CondEngine {
    fn name(&self) -> &'static str {
        "cond"
    }

    fn match_plan(&self) -> Vec<crate::engine::MatchPlan> {
        // COND patterns are stored per textual CE; maintenance walks them
        // in that order rather than re-planning per WM change.
        let mut plans = crate::engine::explain::match_plans(
            self.pdb(),
            self.name(),
            crate::engine::OrderPolicy::Textual,
        );
        let mode = if self.pattern_index {
            "indexed"
        } else {
            "scan"
        };
        for plan in &mut plans {
            plan.pattern_store = Some(mode);
        }
        plans
    }

    fn set_pattern_index(&mut self, on: bool) {
        self.pattern_index = on;
    }

    fn pattern_io(&self) -> Option<(u64, u64)> {
        Some((
            self.pat_probes.load(Ordering::Relaxed),
            self.pat_scanned.load(Ordering::Relaxed),
        ))
    }

    fn pdb(&self) -> &ProductionDb {
        &self.pdb
    }

    fn maintain_insert(
        &mut self,
        class: ClassId,
        tid: TupleId,
        tuple: &Tuple,
    ) -> Vec<ConflictDelta> {
        obs::prof_span!("cond.maintain");
        let start = Instant::now();
        let (mut deltas, fire) = self.detect_insert(class, tuple);
        let fires: Vec<(usize, usize, TupleId, Tuple)> = fire
            .into_iter()
            .map(|(rid, cen)| (rid, cen, tid, tuple.clone()))
            .collect();
        deltas.extend(self.expand_fires(fires));
        self.conflict.apply_all(&deltas);
        self.last_detect_ns = start.elapsed().as_nanos() as u64;
        // Maintenance follows detection.
        let contributions = self.contributions(class, tuple);
        self.propagate(contributions, (class.0, tid));
        self.last_total_ns = start.elapsed().as_nanos() as u64;
        deltas
    }

    fn maintain_remove(
        &mut self,
        class: ClassId,
        tid: TupleId,
        tuple: &Tuple,
    ) -> Vec<ConflictDelta> {
        obs::prof_span!("cond.maintain");
        let start = Instant::now();
        // Detection: retract instantiations containing the tuple.
        let mut deltas = self.retract_containing(class, tid);
        self.conflict.apply_all(&deltas);
        self.last_detect_ns = start.elapsed().as_nanos() as u64;

        // Maintenance: withdraw support; a deleted blocker may enable
        // negated rules.
        let enable_deltas = self.remove_maintenance(class, tid, tuple);
        self.conflict.apply_all(&enable_deltas);
        deltas.extend(enable_deltas);
        self.last_total_ns = start.elapsed().as_nanos() as u64;
        deltas
    }

    /// Batched maintenance (§4.2 set-at-a-time): the whole WM delta is
    /// already applied, so walk the changes in action order — detection
    /// triggers and COND propagation stay per-tuple sequential because
    /// contributions read the evolving pattern store — but *defer* the
    /// seeded fire expansions, then run one hash-join evaluation per
    /// (rule, seeded-term) pair over all collected seeds. Seeds of tuples
    /// deleted later in the same cycle are dropped (their matches no
    /// longer exist against the final WM); seeds are keyed by (class,
    /// tuple id) because [`TupleId`] is a per-relation (slot, gen) pair
    /// that collides across classes.
    fn maintain_delta(&mut self, deltas: &[WmDelta]) -> Vec<ConflictDelta> {
        if !self.batch {
            let mut out = Vec::new();
            for d in deltas {
                if d.insert {
                    out.extend(self.maintain_insert(d.class, d.tid, &d.tuple));
                } else {
                    out.extend(self.maintain_remove(d.class, d.tid, &d.tuple));
                }
            }
            return out;
        }
        obs::prof_span!("cond.maintain");
        let start = Instant::now();
        let mut detect_ns: u64 = 0;
        let mut out = Vec::new();
        let mut pending: Vec<(usize, usize, ClassId, TupleId, Tuple)> = Vec::new();
        for d in deltas {
            if d.insert {
                let t0 = Instant::now();
                let (dd, fire) = self.detect_insert(d.class, &d.tuple);
                self.conflict.apply_all(&dd);
                out.extend(dd);
                pending.extend(
                    fire.into_iter()
                        .map(|(rid, cen)| (rid, cen, d.class, d.tid, d.tuple.clone())),
                );
                detect_ns += t0.elapsed().as_nanos() as u64;
                let contributions = self.contributions(d.class, &d.tuple);
                self.propagate(contributions, (d.class.0, d.tid));
            } else {
                let t0 = Instant::now();
                pending.retain(|(_, _, class, tid, _)| !(*class == d.class && *tid == d.tid));
                let dd = self.retract_containing(d.class, d.tid);
                self.conflict.apply_all(&dd);
                out.extend(dd);
                detect_ns += t0.elapsed().as_nanos() as u64;
                let dd = self.remove_maintenance(d.class, d.tid, &d.tuple);
                self.conflict.apply_all(&dd);
                out.extend(dd);
            }
        }
        let t0 = Instant::now();
        let dd = self.expand_fires(
            pending
                .into_iter()
                .map(|(rid, cen, _, tid, tuple)| (rid, cen, tid, tuple))
                .collect(),
        );
        self.conflict.apply_all(&dd);
        out.extend(dd);
        detect_ns += t0.elapsed().as_nanos() as u64;
        self.last_detect_ns = detect_ns;
        self.last_total_ns = start.elapsed().as_nanos() as u64;
        out
    }

    fn set_batching(&mut self, on: bool) {
        self.batch = on;
    }

    fn conflict_set(&self) -> &ConflictSet {
        &self.conflict
    }

    fn space(&self) -> SpaceStats {
        let entries = self.pattern_count();
        let bytes: usize = self
            .stores
            .iter()
            .flat_map(|s| s.groups.values())
            .map(|g| {
                g.arena
                    .iter_live()
                    .map(|s| {
                        let p = g.pat(s);
                        48 + p
                            .sigma
                            .iter()
                            .flatten()
                            .map(Value::approx_bytes)
                            .sum::<usize>()
                            + p.extra.len() * 32
                            + p.support.iter().map(|s| s.len() * 16).sum::<usize>()
                    })
                    .sum::<usize>()
            })
            .sum();
        SpaceStats {
            match_entries: entries,
            match_bytes: bytes,
            wm_tuples: self.pdb.wm_total(),
        }
    }

    fn last_detect_split(&self) -> Option<(u64, u64)> {
        Some((self.last_detect_ns, self.last_total_ns))
    }

    fn tracer(&self) -> &obs::Tracer {
        &self.tracer
    }

    fn set_tracer(&mut self, tracer: obs::Tracer) {
        self.tracer = tracer;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::tuple;

    /// Example 4's Rule-1 over classes A, B, C.
    fn example4() -> CondEngine {
        let rs = ops5::compile(
            r#"
            (literalize A a1 a2 a3)
            (literalize B b1 b2 b3)
            (literalize C c1 c2 c3)
            (p Rule-1
                (A ^a1 <x> ^a2 a ^a3 <z>)
                (B ^b1 <x> ^b2 <y> ^b3 b)
                (C ^c1 c ^c2 <y> ^c3 <z>)
                -->
                (remove 1))
            "#,
        )
        .unwrap();
        CondEngine::new(ProductionDb::new(rs).unwrap())
    }

    /// A readable snapshot of COND patterns for a (rule, cen) group.
    fn patterns(e: &CondEngine, class: usize, cen: usize) -> Vec<(Vec<Option<Value>>, Vec<u32>)> {
        let g = &e.stores[class].groups[&(0, cen)];
        let mut v: Vec<_> = g
            .arena
            .iter_live()
            .map(|s| {
                let p = g.pat(s);
                (
                    p.sigma.to_vec(),
                    p.support.iter().map(|s| s.len() as u32).collect::<Vec<_>>(),
                )
            })
            .collect();
        v.sort_by_key(|(s, _)| format!("{s:?}"));
        v
    }

    /// Example 5's trace: insert B(4,5,b), C(c,7,8), A(4,a,8), B(4,7,b);
    /// Rule-1 enters the conflict set only on the last insertion.
    #[test]
    fn example_5_trace() {
        let mut e = example4();
        let (a, b, c) = (ClassId(0), ClassId(1), ClassId(2));
        assert!(e.insert(b, tuple![4, 5, "b"]).is_empty());
        assert!(e.insert(c, tuple!["c", 7, 8]).is_empty());
        assert!(e.insert(a, tuple![4, "a", 8]).is_empty());

        // COND-A now holds: original, (4,a,<z>) by B(4,5,b), (<x>,a,8) by
        // C(c,7,8) — the paper's first three non-header rows (the fourth,
        // (4,a,8), appears only after B(4,7,b)).
        let ca = patterns(&e, 0, 0);
        assert_eq!(ca.len(), 3, "COND-A: original + two matching patterns");

        let deltas = e.insert(b, tuple![4, 7, "b"]);
        assert_eq!(deltas.len(), 1, "Rule-1 fires on B(4,7,b)");
        assert!(deltas[0].is_add());
        assert_eq!(e.conflict_set().len(), 1);

        // Now COND-A holds the fully bound (4,'a',8) with both marks set.
        let ca = patterns(&e, 0, 0);
        assert_eq!(ca.len(), 4);
        let full = ca
            .iter()
            .find(|(s, _)| s.iter().filter(|x| x.is_some()).count() == 2)
            .expect("fully bound pattern");
        assert_eq!(full.1, vec![1, 1], "marks BC = 11");

        // COND-B gained (4,7,'b') with marks A and C (the paper's fourth
        // row, created by A(4,a,8)).
        let cb = patterns(&e, 1, 1);
        assert!(cb.iter().any(|(s, counts)| {
            s.iter().filter(|x| x.is_some()).count() == 2 && counts.iter().all(|&c| c > 0)
        }));
    }

    /// The rendered COND-A table after the full Example 5 trace matches
    /// the paper's rows cell for cell (with counters where the paper
    /// prints bits).
    #[test]
    fn example_5_rendered_cond_a_table() {
        let mut e = example4();
        let (a, b, c) = (ClassId(0), ClassId(1), ClassId(2));
        e.insert(b, tuple![4, 5, "b"]);
        e.insert(c, tuple!["c", 7, 8]);
        e.insert(a, tuple![4, "a", 8]);
        e.insert(b, tuple![4, 7, "b"]);
        let rows: Vec<String> = e.render_cond(a).iter().map(|r| r.join("|")).collect();
        assert_eq!(
            rows,
            vec![
                "Rule-1|1|<x>|a|<z>|(Rule-1,2),(Rule-1,3)|00",
                "Rule-1|1|<x>|a|8|(Rule-1,2),(Rule-1,3)|01",
                "Rule-1|1|4|a|<z>|(Rule-1,2),(Rule-1,3)|20",
                "Rule-1|1|4|a|8|(Rule-1,2),(Rule-1,3)|11",
            ]
        );
        // And COND-B contains the paper's (4,7,'b') row with both marks.
        let rows: Vec<String> = e.render_cond(b).iter().map(|r| r.join("|")).collect();
        assert!(
            rows.contains(&"Rule-1|2|4|7|b|(Rule-1,1),(Rule-1,3)|11".to_string()),
            "{rows:?}"
        );
    }

    #[test]
    fn deletion_mirrors_insertion() {
        let mut e = example4();
        let (a, b, c) = (ClassId(0), ClassId(1), ClassId(2));
        let baseline = e.pattern_count();
        e.insert(b, tuple![4, 5, "b"]);
        e.insert(c, tuple!["c", 7, 8]);
        e.insert(a, tuple![4, "a", 8]);
        e.insert(b, tuple![4, 7, "b"]);
        assert_eq!(e.conflict_set().len(), 1);
        // Delete everything in a different order; patterns must return to
        // the originals only.
        let d = e.remove(b, &tuple![4, 7, "b"]);
        assert_eq!(d.len(), 1);
        assert!(!d[0].is_add());
        assert!(e.conflict_set().is_empty());
        e.remove(a, &tuple![4, "a", 8]);
        e.remove(c, &tuple!["c", 7, 8]);
        e.remove(b, &tuple![4, 5, "b"]);
        assert_eq!(
            e.pattern_count(),
            baseline,
            "all matching patterns retracted"
        );
        assert!(e.log.is_empty(), "contribution log fully drained");
    }

    #[test]
    fn counter_not_bits_survives_duplicate_support() {
        // Two B tuples contribute the same binding; deleting one must not
        // destroy the pattern (§4.2.2's counter argument).
        let mut e = example4();
        let (a, b, c) = (ClassId(0), ClassId(1), ClassId(2));
        e.insert(b, tuple![4, 7, "b"]);
        e.insert(b, tuple![4, 7, "b"]);
        e.insert(c, tuple!["c", 7, 8]);
        let deltas = e.insert(a, tuple![4, "a", 8]);
        assert_eq!(deltas.len(), 2, "two instantiations, one per duplicate B");
        e.remove(b, &tuple![4, 7, "b"]);
        assert_eq!(e.conflict_set().len(), 1, "one instantiation survives");
        // The supporting pattern in COND-A must still have its B mark.
        let ca = patterns(&e, 0, 0);
        assert!(
            ca.iter()
                .any(|(s, counts)| s.iter().any(Option::is_some) && counts[0] > 0),
            "pattern still supported by the second B tuple"
        );
    }

    #[test]
    fn detection_is_single_search_fast_path() {
        let mut e = example4();
        let (a, b, c) = (ClassId(0), ClassId(1), ClassId(2));
        e.insert(b, tuple![4, 7, "b"]);
        e.insert(c, tuple!["c", 7, 8]);
        e.insert(a, tuple![4, "a", 8]);
        let (detect, total) = e.last_detect_split().unwrap();
        assert!(detect <= total);
        assert!(total > 0);
    }

    #[test]
    fn range_patterns_from_non_eq_joins() {
        // Example 3's R1: salary {< <S>}. Inserting Mike(6000) must
        // create a range pattern salary < 6000 on the manager CE.
        let rs = ops5::compile(
            r#"
            (literalize Emp name salary manager)
            (p R1
                (Emp ^name Mike ^salary <S> ^manager <M>)
                (Emp ^name <M> ^salary {<S1> < <S>})
                -->
                (remove 1))
            "#,
        )
        .unwrap();
        let mut e = CondEngine::new(ProductionDb::new(rs).unwrap());
        let emp = ClassId(0);
        assert!(e.insert(emp, tuple!["Mike", 6000, "Sam"]).is_empty());
        // A pattern specialized with Sam + salary<6000 now exists.
        let group = &e.stores[0].groups[&(0, 1)];
        assert!(
            group
                .arena
                .iter_live()
                .any(|s| !group.pat(s).extra.is_empty()),
            "range constraint stored"
        );
        let d = e.insert(emp, tuple!["Sam", 5000, "Root"]);
        assert_eq!(d.len(), 1, "Sam earns less than Mike → R1 fires");
        // And a manager who earns more does not fire.
        let mut e2 = CondEngine::new(
            ProductionDb::new(
                ops5::compile(
                    r#"
            (literalize Emp name salary manager)
            (p R1
                (Emp ^name Mike ^salary <S> ^manager <M>)
                (Emp ^name <M> ^salary {<S1> < <S>})
                -->
                (remove 1))
            "#,
                )
                .unwrap(),
            )
            .unwrap(),
        );
        e2.insert(emp, tuple!["Mike", 6000, "Sam"]);
        assert!(e2.insert(emp, tuple!["Sam", 9000, "Root"]).is_empty());
    }

    #[test]
    fn negated_ce_inverted_marks() {
        let rs = ops5::compile(
            r#"
            (literalize Emp name dno)
            (literalize Dept dno)
            (p Orphan (Emp ^name <N> ^dno <D>) -(Dept ^dno <D>) --> (remove 1))
            "#,
        )
        .unwrap();
        let mut e = CondEngine::new(ProductionDb::new(rs).unwrap());
        let emp = ClassId(0);
        let dept = ClassId(1);
        let d = e.insert(emp, tuple!["Ann", 7]);
        assert_eq!(d.len(), 1, "no dept → fires immediately");
        let d = e.insert(dept, tuple![7]);
        assert_eq!(d.len(), 1);
        assert!(!d[0].is_add(), "blocker retracts the instantiation");
        let d = e.insert(dept, tuple![8]);
        assert!(d.is_empty(), "unrelated dept does nothing");
        let d = e.remove(dept, &tuple![7]);
        assert_eq!(d.len(), 1);
        assert!(d[0].is_add(), "blocker removal revives the match");
        assert_eq!(e.conflict_set().len(), 1);
    }

    /// A cycle that makes a WME of one class and removes a WME of
    /// another must not cancel the insert's deferred fire seed when the
    /// two tuple ids collide: TupleId is a per-relation (slot, gen) pair,
    /// and both tuples here occupy slot 0 generation 0 of their
    /// relations. Regression test for seed cancellation keyed by tid
    /// alone instead of (class, tid).
    #[test]
    fn batched_delta_keeps_seeds_across_class_tid_collision() {
        let rs = ops5::compile(
            r#"
            (literalize A a1)
            (literalize B b1)
            (literalize C c1)
            (p Pair (A ^a1 <x>) (B ^b1 <x>) --> (remove 1))
            (p Never (C ^c1 99) --> (remove 1))
            "#,
        )
        .unwrap();
        let mut e = CondEngine::new(ProductionDb::new(rs).unwrap());
        let (a, b, c) = (ClassId(0), ClassId(1), ClassId(2));
        // C(1) takes slot 0 gen 0 of the C relation; B(5) arms Pair.
        assert!(e.insert(c, tuple![1]).is_empty());
        assert!(e.insert(b, tuple![5]).is_empty());
        // One cycle: make A(5) — slot 0 gen 0 of the A relation,
        // colliding with C(1)'s tid — and remove the unrelated C(1).
        let deltas = e.apply_delta(&[(true, a, tuple![5]), (false, c, tuple![1])]);
        assert!(
            deltas.iter().any(rete::ConflictDelta::is_add),
            "A(5) seed of the same cycle must survive the C remove"
        );
        assert_eq!(e.conflict_set().len(), 1, "Pair(A5,B5) instantiated");
        // The same-class case still cancels: A(6) would fire against the
        // B(6) made in the same cycle, but A(6) is removed again before
        // the cycle ends, so no Pair(A6,B6) may survive.
        let deltas = e.apply_delta(&[
            (true, a, tuple![6]),
            (true, b, tuple![6]),
            (false, a, tuple![6]),
        ]);
        assert!(
            !deltas.iter().any(rete::ConflictDelta::is_add),
            "made-then-removed tuple yields no match"
        );
        assert_eq!(e.conflict_set().len(), 1);
    }

    /// The σ-binding index is a pure access-path change: probing and
    /// scanning the same trace must agree on conflict sets, pattern
    /// counts, and the rendered COND tables — including negated CEs and
    /// removals.
    #[test]
    fn pattern_index_matches_scan_on_example_trace() {
        let mut indexed = example4();
        let mut scan = example4();
        scan.set_pattern_index(false);
        let (a, b, c) = (ClassId(0), ClassId(1), ClassId(2));
        let ops: Vec<(bool, ClassId, Tuple)> = vec![
            (true, b, tuple![4, 5, "b"]),
            (true, c, tuple!["c", 7, 8]),
            (true, a, tuple![4, "a", 8]),
            (true, b, tuple![4, 7, "b"]),
            (false, c, tuple!["c", 7, 8]),
            (true, c, tuple!["c", 7, 8]),
            (false, b, tuple![4, 7, "b"]),
        ];
        for (ins, cl, t) in ops {
            if ins {
                indexed.insert(cl, t.clone());
                scan.insert(cl, t);
            } else {
                indexed.remove(cl, &t);
                scan.remove(cl, &t);
            }
        }
        assert_eq!(
            indexed.conflict_set().sorted(),
            scan.conflict_set().sorted()
        );
        assert_eq!(indexed.pattern_count(), scan.pattern_count());
        for class in [a, b, c] {
            assert_eq!(indexed.render_cond(class), scan.render_cond(class));
        }
        let (probes, _) = indexed.pattern_io().unwrap();
        assert!(probes > 0, "indexed run actually probed");
        assert_eq!(scan.pattern_io().unwrap().0, 0, "scan run never probes");
    }

    #[test]
    fn parallel_propagation_equivalent() {
        let mut serial = example4();
        let mut parallel = example4();
        parallel.set_parallel(true);
        let ops: Vec<(ClassId, Tuple)> = vec![
            (ClassId(1), tuple![4, 5, "b"]),
            (ClassId(2), tuple!["c", 7, 8]),
            (ClassId(0), tuple![4, "a", 8]),
            (ClassId(1), tuple![4, 7, "b"]),
            (ClassId(2), tuple!["c", 5, 8]),
        ];
        for (c, t) in ops {
            serial.insert(c, t.clone());
            parallel.insert(c, t);
        }
        assert_eq!(
            serial.conflict_set().sorted(),
            parallel.conflict_set().sorted()
        );
        assert_eq!(serial.pattern_count(), parallel.pattern_count());
    }

    #[test]
    fn single_ce_rules_fire_from_original_pattern() {
        let rs = ops5::compile(
            r#"
            (literalize Emp name age)
            (p Old (Emp ^age {>= 55}) --> (remove 1))
            "#,
        )
        .unwrap();
        let mut e = CondEngine::new(ProductionDb::new(rs).unwrap());
        assert!(e.insert(ClassId(0), tuple!["Young", 30]).is_empty());
        let d = e.insert(ClassId(0), tuple!["Old", 60]);
        assert_eq!(d.len(), 1);
    }

    /// Variable-disjoint CE pairs (cross-product-flavored rules): the
    /// existence marks must still accumulate (the case the paper's strict
    /// mark-subset check would miss).
    #[test]
    fn disconnected_ce_pairs_fire() {
        let rs = ops5::compile(
            r#"
            (literalize C0 a0 a1)
            (literalize C1 a0 a1)
            (literalize C2 a0 a1)
            (p ThreeWay (C0 ^a0 <X>) (C1 ^a0 <X> ^a1 <Y>) (C2 ^a1 <Y>) --> (remove 1))
            "#,
        )
        .unwrap();
        let mut e = CondEngine::new(ProductionDb::new(rs).unwrap());
        // The order that exposed the gap: C2 first (disconnected from C0).
        assert!(e.insert(ClassId(2), tuple![0, 1]).is_empty());
        assert!(e.insert(ClassId(1), tuple![0, 0]).is_empty());
        assert!(e.insert(ClassId(0), tuple![0, 0]).is_empty());
        assert!(e.insert(ClassId(0), tuple![0, 0]).is_empty());
        let d = e.insert(ClassId(2), tuple![0, 0]);
        assert_eq!(d.len(), 2, "both C0 duplicates instantiate");
    }
}
