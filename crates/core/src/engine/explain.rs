//! EXPLAIN for match engines: per-rule match plans with estimated and
//! actual cardinalities.
//!
//! §3.2 of the paper contrasts the Rete network — which freezes one access
//! plan per rule at compile time — with a DBMS, where "database technology
//! provides more efficient ways of generating efficient access plans".
//! This module makes that contrast observable: every engine can report,
//! per rule, which COND/WM relations its matching reads, in which order,
//! with the planner's estimated cardinalities next to the row counts an
//! actual evaluation produces (EXPLAIN ANALYZE style).

use obs::json::{Arr, Obj};
use relstore::{CompOp, Planner, QueryExecutor};

use crate::pdb::ProductionDb;

/// How an engine orders a rule's positive condition elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderPolicy {
    /// Statistics-driven greedy join ordering, re-derived at run time
    /// (query and marker engines).
    Planner,
    /// Textual CE order frozen at compile time — the Rete-family plan the
    /// paper's §3.2 critique is aimed at.
    Textual,
}

impl OrderPolicy {
    /// Stable label used in plan renderings and JSON.
    pub fn label(self) -> &'static str {
        match self {
            OrderPolicy::Planner => "planner",
            OrderPolicy::Textual => "textual",
        }
    }
}

/// One step of a rule's match plan.
#[derive(Debug, Clone)]
pub struct PlanStep {
    /// Index into the rule query's terms.
    pub term: usize,
    /// Name of the WM/COND relation this step reads.
    pub relation: String,
    /// True for a negated CE (anti-join at the end of the plan).
    pub negated: bool,
    /// Estimated rows: cumulative bindings after this step for positive
    /// steps, the restricted relation size for negated steps.
    pub estimated: f64,
    /// Actual rows: partial bindings produced (positive) or bindings
    /// blocked (negated) when the plan was profiled.
    pub actual: u64,
    /// Join algorithm the step would run under ([`relstore::JoinAlgo`]
    /// label): "hash" for a build/probe hash (anti-)join chosen by the
    /// statistics-driven planner, "nested-loop" otherwise (and always for
    /// compile-time-frozen textual plans).
    pub join_algo: &'static str,
}

/// The match plan of one rule under one engine's ordering policy.
#[derive(Debug, Clone)]
pub struct MatchPlan {
    /// Engine label (as in experiment tables).
    pub engine: &'static str,
    /// Numeric rule id.
    pub rule: u32,
    /// Rule name.
    pub rule_name: String,
    /// The ordering policy the steps follow.
    pub policy: OrderPolicy,
    /// The plan steps: positive CEs in execution order, then negated CEs.
    pub steps: Vec<PlanStep>,
    /// Instantiations the profiled evaluation produced.
    pub results: u64,
    /// How the engine's matching-pattern store is accessed, when it keeps
    /// one: "indexed" (σ-binding hash probes) or "scan" (full group scan).
    /// `None` for engines without a pattern store.
    pub pattern_store: Option<&'static str>,
}

impl MatchPlan {
    /// Render as indented EXPLAIN ANALYZE-style text.
    pub fn render(&self) -> String {
        let mut s = format!(
            "{} (engine={} policy={}{})\n",
            self.rule_name,
            self.engine,
            self.policy.label(),
            match self.pattern_store {
                Some(store) => format!(" store={store}"),
                None => String::new(),
            }
        );
        for (i, st) in self.steps.iter().enumerate() {
            let op = if st.negated {
                "anti"
            } else if i == 0 {
                "scan"
            } else {
                "join"
            };
            s.push_str(&format!(
                "  {}. {op} {:<12} est={:.1} actual={}{} algo={}\n",
                i + 1,
                st.relation,
                st.estimated,
                st.actual,
                if st.negated { " blocked" } else { "" },
                st.join_algo
            ));
        }
        s.push_str(&format!("  -> {} instantiation(s)\n", self.results));
        s
    }

    /// Render as one JSON object.
    pub fn to_json(&self) -> String {
        let mut steps = Arr::new();
        for (i, st) in self.steps.iter().enumerate() {
            steps = steps.raw(
                &Obj::new()
                    .usize("step", i + 1)
                    .usize("term", st.term)
                    .str("relation", &st.relation)
                    .bool("negated", st.negated)
                    .f64("estimated", st.estimated)
                    .u64("actual", st.actual)
                    .str("join_algo", st.join_algo)
                    .finish(),
            );
        }
        let mut obj = Obj::new()
            .str("engine", self.engine)
            .u64("rule", self.rule as u64)
            .str("rule_name", &self.rule_name)
            .str("policy", self.policy.label());
        if let Some(store) = self.pattern_store {
            obj = obj.str("pattern_store", store);
        }
        obj.raw("steps", &steps.finish())
            .u64("results", self.results)
            .finish()
    }
}

/// Render a set of plans as a JSON array (a `RunReport` section).
pub fn plans_to_json(plans: &[MatchPlan]) -> String {
    let mut arr = Arr::new();
    for p in plans {
        arr = arr.raw(&p.to_json());
    }
    arr.finish()
}

/// Build and profile the match plan of every rule under `policy`,
/// against the current working memory.
pub fn match_plans(
    pdb: &ProductionDb,
    engine: &'static str,
    policy: OrderPolicy,
) -> Vec<MatchPlan> {
    let planner = Planner::new(pdb.db());
    let exec = QueryExecutor::new(pdb.db());
    pdb.rules()
        .rules
        .iter()
        .map(|rule| {
            let query = pdb.query(rule.id);
            let (order, algos): (Vec<usize>, Vec<&'static str>) = match policy {
                OrderPolicy::Planner => {
                    let plan = planner.plan(query, None);
                    let algos = plan.algos.iter().map(|a| a.label()).collect();
                    (plan.order, algos)
                }
                OrderPolicy::Textual => {
                    // Frozen plans evaluate tuple-at-a-time: every step is
                    // an index nested-loop.
                    let order = query.positive_terms();
                    let algos = vec!["nested-loop"; order.len()];
                    (order, algos)
                }
            };
            let profile = exec.exec_explain(query, &order).expect("rule query");
            let rel_name = |t: usize| {
                pdb.db()
                    .schema(query.terms[t].rel)
                    .map(|s| s.name().to_string())
                    .unwrap_or_default()
            };
            let mut steps = Vec::new();
            let mut cum = 1.0f64;
            let mut bound: Vec<usize> = Vec::new();
            for (step_idx, &t) in order.iter().enumerate() {
                // Estimate this step as the planner would: the restricted
                // term size, divided per equi-join into the bound set by
                // the join attribute's distinct count (ANALYZE stats).
                let mut est = planner.term_cardinality(query, t);
                for j in query.joins_of(t) {
                    if let Some((my_attr, op, other, _)) = j.oriented(t) {
                        if op == CompOp::Eq && bound.contains(&other) {
                            let d = pdb
                                .db()
                                .read(query.terms[t].rel, |r| r.distinct_estimate(my_attr))
                                .unwrap_or(1);
                            est /= d.max(1) as f64;
                        }
                    }
                }
                cum *= est;
                bound.push(t);
                steps.push(PlanStep {
                    term: t,
                    relation: rel_name(t),
                    negated: false,
                    estimated: cum,
                    actual: profile.rows[t],
                    join_algo: algos[step_idx],
                });
            }
            for t in query.negated_terms() {
                steps.push(PlanStep {
                    term: t,
                    relation: rel_name(t),
                    negated: true,
                    estimated: planner.term_cardinality(query, t),
                    actual: profile.rows[t],
                    join_algo: match policy {
                        // `cum` is the binding-count estimate after every
                        // positive step — the anti-join's probe input.
                        OrderPolicy::Planner => planner.anti_algo(query, t, cum).label(),
                        OrderPolicy::Textual => "nested-loop",
                    },
                });
            }
            MatchPlan {
                engine,
                rule: rule.id.0 as u32,
                rule_name: rule.name.clone(),
                policy,
                steps,
                results: profile.bindings.len() as u64,
                pattern_store: None,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ops5::ClassId;
    use relstore::tuple;

    fn pdb() -> ProductionDb {
        let rs = ops5::compile(
            r#"
            (literalize Emp name dno)
            (literalize Dept dno dname)
            (p HasDept (Emp ^dno <D>) (Dept ^dno <D>) --> (remove 1))
            (p NoDept (Emp ^dno <D>) -(Dept ^dno <D>) --> (remove 1))
            "#,
        )
        .unwrap();
        let pdb = ProductionDb::new(rs).unwrap();
        pdb.insert_wm(ClassId(0), tuple!["Sam", 1]).unwrap();
        pdb.insert_wm(ClassId(0), tuple!["Ann", 1]).unwrap();
        pdb.insert_wm(ClassId(0), tuple!["Orphan", 99]).unwrap();
        pdb.insert_wm(ClassId(1), tuple![1, "Toy"]).unwrap();
        pdb
    }

    #[test]
    fn plans_cover_all_ces_with_actuals() {
        let pdb = pdb();
        let plans = match_plans(&pdb, "query", OrderPolicy::Planner);
        assert_eq!(plans.len(), 2);
        let has = &plans[0];
        assert_eq!(has.rule_name, "HasDept");
        assert_eq!(has.steps.len(), 2);
        assert!(has.steps.iter().all(|s| !s.negated));
        assert_eq!(has.results, 2, "Sam and Ann join Dept 1");
        let no = &plans[1];
        assert_eq!(no.steps.len(), 2);
        let anti = no.steps.iter().find(|s| s.negated).expect("negated step");
        assert_eq!(anti.relation, "Dept");
        assert_eq!(anti.actual, 2, "Sam and Ann blocked by Dept 1");
        assert_eq!(no.results, 1, "only Orphan survives");
    }

    #[test]
    fn textual_policy_follows_ce_order() {
        let pdb = pdb();
        let plans = match_plans(&pdb, "rete", OrderPolicy::Textual);
        let has = &plans[0];
        assert_eq!(has.policy, OrderPolicy::Textual);
        assert_eq!(
            has.steps[0].relation, "Emp",
            "CE 1 first, regardless of size"
        );
        assert_eq!(has.steps[1].relation, "Dept");
        assert_eq!(has.results, 2);
    }

    #[test]
    fn render_and_json() {
        let pdb = pdb();
        let plans = match_plans(&pdb, "query", OrderPolicy::Planner);
        let text = plans[1].render();
        assert!(text.contains("NoDept"), "{text}");
        assert!(text.contains("anti Dept"), "{text}");
        assert!(text.contains("blocked"), "{text}");
        let json = plans_to_json(&plans);
        assert!(json.starts_with("[{\"engine\":\"query\""), "{json}");
        assert!(json.contains("\"policy\":\"planner\""), "{json}");
        assert!(json.contains("\"negated\":true"), "{json}");
        assert!(json.contains("\"estimated\":"), "{json}");
        assert!(json.contains("\"actual\":"), "{json}");
        assert!(json.contains("\"join_algo\":"), "{json}");
        assert!(text.contains("algo="), "{text}");
    }
}
