//! Rule-base queries (§4.2.3).
//!
//! "Another significant advantage of such indices is their use in
//! answering queries on the rulebase itself. For example, questions of
//! the form *Give me all the rules that apply on employees older than 55*
//! can be easily answered using such an index. … Notice that this is not
//! possible in systems, such as POSTGRES, where rule information is
//! stored together with the actual data."
//!
//! [`RulebaseIndex`] puts every condition element's variable-free
//! restriction into a per-class predicate index (R-tree by default) and
//! answers:
//!
//! * [`RulebaseIndex::rules_for_tuple`] — which rules could a concrete
//!   tuple trigger? (point stabbing);
//! * [`RulebaseIndex::rules_overlapping`] — which rules could apply to
//!   *any* tuple in a region, whether or not such data exists yet?
//!   (box query — the "employees older than 55" form).

use std::collections::BTreeSet;

use ops5::{ClassId, RuleId, RuleSet};
use predindex::{make_index, ConditionIndex, IndexKind, Rect};
use relstore::{Restriction, Tuple};

/// A queryable index over the rule base's condition elements.
pub struct RulebaseIndex {
    rules: RuleSet,
    /// One predicate index per class; payload = (rule, cen).
    per_class: Vec<Box<dyn ConditionIndex<(usize, usize)> + Send + Sync>>,
}

impl RulebaseIndex {
    /// Create a new, empty instance.
    pub fn new(rules: &RuleSet) -> Self {
        Self::with_kind(rules, IndexKind::RTree)
    }

    /// Build with an explicit index implementation.
    pub fn with_kind(rules: &RuleSet, kind: IndexKind) -> Self {
        let mut per_class: Vec<Box<dyn ConditionIndex<(usize, usize)> + Send + Sync>> = rules
            .classes
            .iter()
            .map(|c| make_index(kind, c.arity()))
            .collect();
        for rule in &rules.rules {
            for (cen, ce) in rule.ces.iter().enumerate() {
                let arity = rules.class(ce.class).arity();
                if let Some(rect) = Rect::from_restriction(arity, &ce.alpha) {
                    per_class[ce.class.0].insert(rect, (rule.id.0, cen));
                }
            }
        }
        RulebaseIndex {
            rules: rules.clone(),
            per_class,
        }
    }

    /// Rules with a condition element satisfied by this concrete tuple.
    pub fn rules_for_tuple(&self, class: ClassId, tuple: &Tuple) -> Vec<RuleId> {
        self.per_class[class.0]
            .stab(tuple)
            .into_iter()
            .filter(|&(rid, cen)| {
                // Rectangles cannot encode intra-tuple attr tests; check
                // them exactly.
                self.rules.rule(RuleId(rid)).ces[cen]
                    .alpha
                    .attr_tests
                    .iter()
                    .all(|t| t.matches(tuple))
            })
            .map(|(rid, _)| rid)
            .collect::<BTreeSet<_>>()
            .into_iter()
            .map(RuleId)
            .collect()
    }

    /// Rules whose conditions overlap a region of a class's value space —
    /// answerable "even if data that satisfy the conditions of the rules
    /// has not already been stored in the database" (§4.2.3).
    pub fn rules_overlapping(&self, class: ClassId, region: &Restriction) -> Vec<RuleId> {
        let arity = self.rules.class(class).arity();
        let Some(rect) = Rect::from_restriction(arity, region) else {
            return Vec::new(); // contradictory region matches nothing
        };
        self.per_class[class.0]
            .query(&rect)
            .into_iter()
            .map(|(rid, _)| rid)
            .collect::<BTreeSet<_>>()
            .into_iter()
            .map(RuleId)
            .collect()
    }

    /// Names instead of ids, for display.
    pub fn rule_names(&self, ids: &[RuleId]) -> Vec<String> {
        ids.iter()
            .map(|r| self.rules.rule(*r).name.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::{tuple, CompOp, Selection};

    fn index() -> RulebaseIndex {
        let rules = ops5::compile(
            r#"
            (literalize Emp name age salary)
            (literalize Dept dno)
            (p Retire (Emp ^age {>= 65}) --> (remove 1))
            (p Senior (Emp ^age {>= 50} ^salary {>= 9000}) --> (remove 1))
            (p Junior (Emp ^age {< 30}) --> (remove 1))
            (p Mike (Emp ^name Mike ^age <A>) --> (remove 1))
            (p DeptRule (Dept ^dno 7) --> (remove 1))
            "#,
        )
        .unwrap();
        RulebaseIndex::new(&rules)
    }

    #[test]
    fn paper_query_older_than_55() {
        let idx = index();
        // "Give me all the rules that apply on employees older than 55."
        let region = Restriction::new(vec![Selection::new(1, CompOp::Gt, 55)]);
        let hits = idx.rules_overlapping(ClassId(0), &region);
        let names = idx.rule_names(&hits);
        assert_eq!(names, vec!["Retire", "Senior", "Mike"]);
    }

    #[test]
    fn point_stabbing_a_concrete_employee() {
        let idx = index();
        let hits = idx.rules_for_tuple(ClassId(0), &tuple!["Ann", 70, 5000]);
        assert_eq!(idx.rule_names(&hits), vec!["Retire"]);
        let hits = idx.rules_for_tuple(ClassId(0), &tuple!["Mike", 25, 5000]);
        assert_eq!(idx.rule_names(&hits), vec!["Junior", "Mike"]);
    }

    #[test]
    fn queries_work_without_any_data() {
        // The defining §4.2.3 property: answers need no WM contents.
        let idx = index();
        let region = Restriction::new(vec![Selection::new(1, CompOp::Lt, 20)]);
        assert_eq!(
            idx.rule_names(&idx.rules_overlapping(ClassId(0), &region)),
            vec!["Junior", "Mike"]
        );
    }

    #[test]
    fn classes_are_separated() {
        let idx = index();
        let hits = idx.rules_for_tuple(ClassId(1), &tuple![7]);
        assert_eq!(idx.rule_names(&hits), vec!["DeptRule"]);
        assert!(idx.rules_for_tuple(ClassId(1), &tuple![8]).is_empty());
    }

    #[test]
    fn contradictory_region_is_empty() {
        let idx = index();
        let region = Restriction::new(vec![
            Selection::new(1, CompOp::Lt, 10),
            Selection::new(1, CompOp::Gt, 90),
        ]);
        assert!(idx.rules_overlapping(ClassId(0), &region).is_empty());
    }

    #[test]
    fn all_index_kinds_agree() {
        let rules = ops5::compile(
            r#"
            (literalize Emp name age salary)
            (p A (Emp ^age {>= 65}) --> (remove 1))
            (p B (Emp ^age {>= 50} ^salary {>= 9000}) --> (remove 1))
            (p C (Emp ^age {< 30}) --> (remove 1))
            "#,
        )
        .unwrap();
        let region = Restriction::new(vec![Selection::new(1, CompOp::Ge, 40)]);
        let mut results = Vec::new();
        for kind in [IndexKind::Linear, IndexKind::RTree, IndexKind::RPlus] {
            let idx = RulebaseIndex::with_kind(&rules, kind);
            results.push(idx.rules_overlapping(ClassId(0), &region));
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }
}
