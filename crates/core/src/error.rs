//! Top-level error type for the production-system crate.

use std::fmt;

/// Errors surfaced by the high-level API.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Rule compilation failed.
    Compile(ops5::Error),
    /// A storage operation failed.
    Store(relstore::Error),
    /// A class name was not declared by the loaded program.
    UnknownClass(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Compile(e) => write!(f, "compile error: {e}"),
            Error::Store(e) => write!(f, "storage error: {e}"),
            Error::UnknownClass(c) => write!(f, "unknown class `{c}`"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Compile(e) => Some(e),
            Error::Store(e) => Some(e),
            Error::UnknownClass(_) => None,
        }
    }
}

impl From<ops5::Error> for Error {
    fn from(e: ops5::Error) -> Self {
        Error::Compile(e)
    }
}

impl From<relstore::Error> for Error {
    fn from(e: relstore::Error) -> Self {
        Error::Store(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_from() {
        let e: Error = relstore::Error::UnknownRelation("X".into()).into();
        assert!(e.to_string().contains("storage error"));
        let e: Error = ops5::Error::DuplicateClass("C".into()).into();
        assert!(e.to_string().contains("compile error"));
        assert!(Error::UnknownClass("Z".into()).to_string().contains("`Z`"));
    }
}
