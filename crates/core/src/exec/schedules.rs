//! Concurrency-benefit estimates (§5.2, citing \[RASC87\]).
//!
//! Two measures:
//!
//! * **critical path** — "in the best case, neglecting locking overhead,
//!   this will be proportional to the maximum number of updates to any WM
//!   relation or COND relation": the serial residue a concurrent run
//!   cannot avoid;
//! * **equivalent-schedule count** — "the number of serializable schedules
//!   equivalent to a single serial schedule … proportional to the number
//!   of possible choices of actions that can be executed at any instant":
//!   computed exactly here by counting interleavings whose conflict pairs
//!   respect the serial order.
//!
//! Operations carry the same granularity as the §5.2 locking rules:
//! reads/deletes of matched tuples are tuple-level; insertions take a
//! relation-level write (so they conflict with everything touching the
//! relation — the negative-dependence discipline).

use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use ops5::RuleSet;
use rete::Instantiation;

use crate::exec::{eval_rhs, WmChange};

/// One relation-or-tuple-granular operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpSpec {
    /// Relation (class) index.
    pub rel: usize,
    /// Tuple identity for tuple-granular ops; `None` = whole relation
    /// (insertions, per §5.2).
    pub tuple: Option<u64>,
    /// Is this a write (vs a read)?
    pub write: bool,
}

impl OpSpec {
    /// A tuple-granular read.
    pub fn read(rel: usize, tuple: u64) -> Self {
        OpSpec {
            rel,
            tuple: Some(tuple),
            write: false,
        }
    }

    /// A tuple-granular write (delete/update of a matched row).
    pub fn write_tuple(rel: usize, tuple: u64) -> Self {
        OpSpec {
            rel,
            tuple: Some(tuple),
            write: true,
        }
    }

    /// A relation-granular write (insertion, per the 5.2 lock rule).
    pub fn insert(rel: usize) -> Self {
        OpSpec {
            rel,
            tuple: None,
            write: true,
        }
    }
}

/// A transaction reduced to its lock-relevant operations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TxnOps {
    /// The operations, in execution order.
    pub ops: Vec<OpSpec>,
}

fn tuple_key(wme: &rete::Wme) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    wme.hash(&mut h);
    h.finish()
}

/// Derive a [`TxnOps`] from an instantiation: tuple-level reads of every
/// matched WME, tuple-level writes for RHS deletes of matched WMEs, and
/// relation-level writes for insertions.
pub fn ops_of_instantiation(rules: &RuleSet, inst: &Instantiation) -> TxnOps {
    let mut ops = Vec::new();
    for wme in &inst.wmes {
        ops.push(OpSpec::read(wme.class.0, tuple_key(wme)));
    }
    for change in eval_rhs(rules, inst).changes {
        match change {
            WmChange::Remove(c, t) => {
                ops.push(OpSpec::write_tuple(c.0, tuple_key(&rete::Wme::new(c, t))));
            }
            WmChange::Insert(c, _) => ops.push(OpSpec::insert(c.0)),
        }
    }
    TxnOps { ops }
}

/// Max number of writes hitting a single relation — the §5.2 best-case
/// execution-time bound for concurrent execution.
pub fn critical_path(txns: &[TxnOps]) -> usize {
    let mut per_rel: HashMap<usize, usize> = HashMap::new();
    for t in txns {
        for op in &t.ops {
            if op.write {
                *per_rel.entry(op.rel).or_insert(0) += 1;
            }
        }
    }
    per_rel.values().copied().max().unwrap_or(0)
}

fn conflicts(a: OpSpec, b: OpSpec) -> bool {
    a.rel == b.rel
        && (a.write || b.write)
        && match (a.tuple, b.tuple) {
            (Some(x), Some(y)) => x == y,
            // A relation-level op conflicts with everything in the
            // relation (the phantom-safe insert lock).
            _ => true,
        }
}

/// Count interleavings of `txns` that are conflict-equivalent to the
/// serial schedule `T0, T1, …` (every conflicting pair ordered as in the
/// serial schedule; operations within a transaction stay ordered).
///
/// Exact via memoized search — use with small inputs (≤ ~20 ops total).
pub fn count_equivalent_schedules(txns: &[TxnOps]) -> u128 {
    fn rec(
        txns: &[TxnOps],
        progress: &mut Vec<usize>,
        memo: &mut HashMap<Vec<usize>, u128>,
    ) -> u128 {
        if progress.iter().zip(txns).all(|(&p, t)| p == t.ops.len()) {
            return 1;
        }
        if let Some(&v) = memo.get(progress) {
            return v;
        }
        let mut total = 0u128;
        for i in 0..txns.len() {
            let p = progress[i];
            if p == txns[i].ops.len() {
                continue;
            }
            let op = txns[i].ops[p];
            // Legal iff all conflicting ops of earlier (serial-order)
            // transactions are done, and no conflicting op of a later
            // transaction has run yet.
            let mut legal = true;
            for (j, t) in txns.iter().enumerate() {
                if j < i {
                    if t.ops[progress[j]..].iter().any(|&o| conflicts(o, op)) {
                        legal = false;
                        break;
                    }
                } else if j > i && t.ops[..progress[j]].iter().any(|&o| conflicts(o, op)) {
                    legal = false;
                    break;
                }
            }
            if legal {
                progress[i] += 1;
                total += rec(txns, progress, memo);
                progress[i] -= 1;
            }
        }
        memo.insert(progress.clone(), total);
        total
    }
    let mut progress = vec![0; txns.len()];
    rec(txns, &mut progress, &mut HashMap::new())
}

/// Multinomial upper bound: interleavings ignoring conflicts entirely
/// (what fully independent transactions would allow).
pub fn interleaving_upper_bound(txns: &[TxnOps]) -> u128 {
    let mut total = 0usize;
    let mut result: u128 = 1;
    for t in txns {
        for k in 1..=t.ops.len() {
            total += 1;
            result = result * total as u128 / k as u128;
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ops: &[OpSpec]) -> TxnOps {
        TxnOps { ops: ops.to_vec() }
    }

    #[test]
    fn independent_txns_fully_interleave() {
        // Two transactions writing disjoint tuples: 2 ops each →
        // C(4,2) = 6 interleavings, all serializable.
        let txns = [
            t(&[OpSpec::read(0, 1), OpSpec::write_tuple(0, 1)]),
            t(&[OpSpec::read(0, 2), OpSpec::write_tuple(0, 2)]),
        ];
        assert_eq!(count_equivalent_schedules(&txns), 6);
        assert_eq!(interleaving_upper_bound(&txns), 6);
        assert_eq!(critical_path(&txns), 2);
    }

    #[test]
    fn fully_conflicting_txns_serialize() {
        // Same tuple, all writes: only the serial schedule survives.
        let txns = [
            t(&[OpSpec::write_tuple(0, 7), OpSpec::write_tuple(0, 7)]),
            t(&[OpSpec::write_tuple(0, 7), OpSpec::write_tuple(0, 7)]),
        ];
        assert_eq!(count_equivalent_schedules(&txns), 1);
        assert_eq!(critical_path(&txns), 4);
    }

    #[test]
    fn inserts_are_relation_level() {
        // Inserts into one relation serialize even for distinct rows.
        let txns = [t(&[OpSpec::insert(1)]), t(&[OpSpec::insert(1)])];
        assert_eq!(count_equivalent_schedules(&txns), 1);
        // Inserts into distinct relations interleave freely.
        let txns = [t(&[OpSpec::insert(1)]), t(&[OpSpec::insert(2)])];
        assert_eq!(count_equivalent_schedules(&txns), 2);
    }

    #[test]
    fn reads_do_not_conflict() {
        let txns = [t(&[OpSpec::read(0, 9)]), t(&[OpSpec::read(0, 9)])];
        assert_eq!(count_equivalent_schedules(&txns), 2);
        assert_eq!(critical_path(&txns), 0);
    }

    #[test]
    fn mixed_case() {
        // T0 writes tuple a then inserts into rel 1; T1 also inserts into
        // rel 1: the rel-1 inserts conflict → only (a b c).
        let txns = [
            t(&[OpSpec::write_tuple(0, 1), OpSpec::insert(1)]),
            t(&[OpSpec::insert(1)]),
        ];
        assert_eq!(count_equivalent_schedules(&txns), 1);
        // T1 inserting elsewhere is free → 3 interleavings.
        let txns = [
            t(&[OpSpec::write_tuple(0, 1), OpSpec::insert(1)]),
            t(&[OpSpec::insert(2)]),
        ];
        assert_eq!(count_equivalent_schedules(&txns), 3);
    }

    #[test]
    fn ops_from_instantiation() {
        let rs = ops5::compile(
            r#"
            (literalize A x)
            (literalize B x)
            (p R (A ^x <V>) --> (remove 1) (make B ^x <V>))
            "#,
        )
        .unwrap();
        let inst = Instantiation::new(
            ops5::RuleId(0),
            vec![rete::Wme::new(ops5::ClassId(0), relstore::tuple![1])],
        );
        let ops = ops_of_instantiation(&rs, &inst);
        assert_eq!(ops.ops.len(), 3);
        assert!(!ops.ops[0].write && ops.ops[0].rel == 0);
        assert!(ops.ops[1].write && ops.ops[1].tuple.is_some());
        assert!(ops.ops[2].write && ops.ops[2].tuple.is_none() && ops.ops[2].rel == 1);
        // The matched-tuple read and its delete share the tuple key.
        assert_eq!(ops.ops[0].tuple, ops.ops[1].tuple);
    }

    #[test]
    fn empty_input() {
        assert_eq!(count_equivalent_schedules(&[]), 1);
        assert_eq!(critical_path(&[]), 0);
        assert_eq!(interleaving_upper_bound(&[]), 1);
    }
}
