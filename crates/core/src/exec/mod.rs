//! Rule execution: the *Act* step, sequential (OPS5-style) and concurrent
//! (the paper's §5 proposal).

pub mod concurrent;
pub mod schedules;
pub mod sequential;

pub use concurrent::{ConcurrentExecutor, ConcurrentStats, ScheduleOracle};
pub use schedules::{
    count_equivalent_schedules, critical_path, interleaving_upper_bound, ops_of_instantiation,
    TxnOps,
};
pub use sequential::{RunOutcome, SequentialExecutor};

use ops5::{Action, ClassId, RhsVal, Rule, RuleSet};
use relstore::{Tuple, Value};
use rete::Instantiation;

/// One WM change produced by an RHS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WmChange {
    /// Insert the tuple.
    Insert(ClassId, Tuple),
    /// Remove one tuple equal to the payload.
    Remove(ClassId, Tuple),
}

/// Everything an RHS evaluation produces.
#[derive(Debug, Clone, Default)]
pub struct RhsResult {
    /// WM changes, in action order.
    pub changes: Vec<WmChange>,
    /// Lines produced by `write` actions.
    pub writes: Vec<String>,
    /// `(halt)` was executed.
    pub halt: bool,
}

/// Emit the full derivation of a firing: the matched WMEs, the supporting
/// storage tuple ids (engines that intern WMEs by content report none),
/// and the concrete absent patterns of negated CEs. Shared by both
/// executors so `--explain` sees one event shape regardless of execution
/// mode.
pub(crate) fn trace_derivation(tracer: &obs::Tracer, rules: &RuleSet, inst: &Instantiation) {
    tracer.emit(|| obs::Event::Derivation {
        rule: inst.rule.0 as u32,
        rule_name: rules.rule(inst.rule).name.clone(),
        wmes: inst.wmes_display(rules),
        support: inst.why.support_display(),
        absent: inst.why.absent_display(rules),
    });
}

/// Position of each original CE among the positive CEs.
pub(crate) fn positive_positions(rule: &Rule) -> Vec<Option<usize>> {
    let mut out = vec![None; rule.ces.len()];
    let mut pos = 0;
    for (i, ce) in rule.ces.iter().enumerate() {
        if !ce.negated {
            out[i] = Some(pos);
            pos += 1;
        }
    }
    out
}

fn eval_rhs_val(
    v: &RhsVal,
    _inst: &Instantiation,
    pos_of: &[Option<usize>],
    locals: &[Value],
    current: &[Tuple],
) -> Value {
    match v {
        RhsVal::Const(c) => c.clone(),
        RhsVal::Field { ce, attr } => {
            let pos = pos_of[*ce].expect("RHS references positive CEs");
            current[pos].get(*attr).cloned().unwrap_or(Value::Null)
        }
        RhsVal::Local(slot) => locals.get(*slot).cloned().unwrap_or(Value::Null),
    }
}

/// Evaluate a rule's RHS against an instantiation, producing the WM
/// changes (in action order), write-log entries, and the halt flag.
///
/// `modify` is "a delete followed by an insert" (§5); consecutive actions
/// see the current (possibly already modified) tuples of each CE.
pub fn eval_rhs(rules: &RuleSet, inst: &Instantiation) -> RhsResult {
    let rule = rules.rule(inst.rule);
    let pos_of = positive_positions(rule);
    let mut locals = vec![Value::Null; rule.locals];
    // Track the live tuple of each positive CE as actions mutate them.
    let mut current: Vec<Tuple> = inst.wmes.iter().map(|w| w.tuple.clone()).collect();
    let mut removed: Vec<bool> = vec![false; current.len()];
    let mut out = RhsResult::default();
    for action in &rule.actions {
        match action {
            Action::Make { class, values } => {
                let vals: Vec<Value> = values
                    .iter()
                    .map(|v| eval_rhs_val(v, inst, &pos_of, &locals, &current))
                    .collect();
                out.changes.push(WmChange::Insert(*class, Tuple::new(vals)));
            }
            Action::Remove { ce } => {
                let pos = pos_of[*ce].expect("remove references a positive CE");
                if !removed[pos] {
                    removed[pos] = true;
                    out.changes
                        .push(WmChange::Remove(rule.ces[*ce].class, current[pos].clone()));
                }
            }
            Action::Modify { ce, sets } => {
                let pos = pos_of[*ce].expect("modify references a positive CE");
                if removed[pos] {
                    continue;
                }
                let mut t = current[pos].clone();
                for (attr, v) in sets {
                    t = t.with_value(*attr, eval_rhs_val(v, inst, &pos_of, &locals, &current));
                }
                out.changes
                    .push(WmChange::Remove(rule.ces[*ce].class, current[pos].clone()));
                out.changes
                    .push(WmChange::Insert(rule.ces[*ce].class, t.clone()));
                current[pos] = t;
            }
            Action::Write(items) => {
                let line: Vec<String> = items
                    .iter()
                    .map(|v| eval_rhs_val(v, inst, &pos_of, &locals, &current).to_string())
                    .collect();
                out.writes.push(line.join(" "));
            }
            Action::Halt => out.halt = true,
            Action::Bind { slot, value } => {
                locals[*slot] = eval_rhs_val(value, inst, &pos_of, &locals, &current);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::tuple;
    use rete::Wme;

    #[test]
    fn modify_is_delete_then_insert() {
        let rs = ops5::compile(
            r#"
            (literalize Expression Name Arg1 Op Arg2)
            (literalize Goal Type Object)
            (p PlusOX
                (Goal ^Type Simplify ^Object <N>)
                (Expression ^Name <N> ^Arg1 0 ^Op + ^Arg2 <X>)
                -->
                (modify 2 ^Op nil ^Arg1 nil))
            "#,
        )
        .unwrap();
        let inst = Instantiation::new(
            ops5::RuleId(0),
            vec![
                Wme::new(ClassId(1), tuple!["Simplify", "TERM"]),
                Wme::new(ClassId(0), tuple!["TERM", 0, "+", "x"]),
            ],
        );
        let r = eval_rhs(&rs, &inst);
        assert_eq!(r.changes.len(), 2);
        assert_eq!(
            r.changes[0],
            WmChange::Remove(ClassId(0), tuple!["TERM", 0, "+", "x"])
        );
        let WmChange::Insert(_, t) = &r.changes[1] else {
            panic!("insert expected")
        };
        assert!(t[1].is_null() && t[2].is_null(), "Op and Arg1 nil'd");
        assert_eq!(t[3], Value::str("x"), "Arg2 untouched");
        assert!(!r.halt);
    }

    #[test]
    fn make_remove_write_halt_bind() {
        let rs = ops5::compile(
            r#"
            (literalize A x y)
            (p R (A ^x <V> ^y 1)
                -->
                (bind <W> 9)
                (make A ^x <W> ^y <V>)
                (write fired <V>)
                (remove 1)
                (halt))
            "#,
        )
        .unwrap();
        let inst = Instantiation::new(ops5::RuleId(0), vec![Wme::new(ClassId(0), tuple![5, 1])]);
        let r = eval_rhs(&rs, &inst);
        assert_eq!(r.changes[0], WmChange::Insert(ClassId(0), tuple![9, 5]));
        assert_eq!(r.changes[1], WmChange::Remove(ClassId(0), tuple![5, 1]));
        assert_eq!(r.writes, vec!["fired 5"]);
        assert!(r.halt);
    }

    #[test]
    fn double_remove_is_once() {
        let rs = ops5::compile(
            "(literalize A x)(p R (A ^x 1) --> (remove 1) (remove 1) (modify 1 ^x 2))",
        )
        .unwrap();
        let inst = Instantiation::new(ops5::RuleId(0), vec![Wme::new(ClassId(0), tuple![1])]);
        let r = eval_rhs(&rs, &inst);
        assert_eq!(r.changes.len(), 1, "modify after remove is skipped too");
    }
}
