//! The OPS5 recognize-act cycle: Match → Select → Act, one production per
//! cycle (§2.1). Refraction (an instantiation never fires twice while it
//! stays in the conflict set) prevents trivial infinite loops.

use std::time::Instant;

use obs::Event;
use rete::{ConflictDelta, Instantiation};

use crate::engine::MatchEngine;
use crate::exec::{eval_rhs, WmChange};
use crate::strategy::Strategy;

/// Outcome of a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunOutcome {
    /// Recognize-act cycles executed (= productions fired).
    pub fired: usize,
    /// `(halt)` was executed.
    pub halted: bool,
    /// The cycle limit stopped the run.
    pub limited: bool,
    /// Lines produced by `write` actions.
    pub writes: Vec<String>,
}

/// Sequential executor owning a matching engine.
pub struct SequentialExecutor {
    engine: Box<dyn MatchEngine>,
    strategy: Strategy,
    /// Refraction memory: instantiations already fired (multiset).
    fired: Vec<Instantiation>,
    /// Recognize-act cycles executed over the executor's lifetime.
    cycle: u64,
}

impl SequentialExecutor {
    /// Create a new, empty instance.
    pub fn new(engine: Box<dyn MatchEngine>, strategy: Strategy) -> Self {
        SequentialExecutor {
            engine,
            strategy,
            fired: Vec::new(),
            cycle: 0,
        }
    }

    /// The matching engine driving this executor.
    pub fn engine(&self) -> &dyn MatchEngine {
        self.engine.as_ref()
    }

    /// Mutable access to the engine (e.g. to load working memory).
    pub fn engine_mut(&mut self) -> &mut Box<dyn MatchEngine> {
        &mut self.engine
    }

    /// Consume the executor, returning the engine (e.g. to hand it to the
    /// concurrent executor).
    pub fn into_engine(self) -> Box<dyn MatchEngine> {
        self.engine
    }

    /// Keep the refraction memory consistent with conflict-set removals.
    fn absorb(&mut self, deltas: &[ConflictDelta]) {
        for d in deltas {
            if let ConflictDelta::Remove(inst) = d {
                if let Some(pos) = self.fired.iter().position(|f| f == inst) {
                    self.fired.remove(pos);
                }
            }
        }
    }

    /// Insert a WM element (runs matching; does not fire rules).
    pub fn insert(&mut self, class: ops5::ClassId, tuple: relstore::Tuple) {
        let deltas = self.engine.insert(class, tuple);
        self.absorb(&deltas);
    }

    /// Remove a WM element by content.
    pub fn remove(&mut self, class: ops5::ClassId, tuple: &relstore::Tuple) {
        let deltas = self.engine.remove(class, tuple);
        self.absorb(&deltas);
    }

    /// Insert many WM elements of one class as a single delta set: all
    /// tuples enter working memory first, then the engine runs one
    /// set-oriented maintenance pass. Traced runs emit the batch's WM
    /// events, its canonically ordered conflict deltas, and a
    /// `BatchApplied` summary from inside `apply_delta`.
    pub fn insert_batch(&mut self, class: ops5::ClassId, tuples: Vec<relstore::Tuple>) {
        obs::prof_span!("exec.load");
        let changes: Vec<(bool, ops5::ClassId, relstore::Tuple)> =
            tuples.into_iter().map(|t| (true, class, t)).collect();
        let deltas = self.engine.apply_delta(&changes);
        self.absorb(&deltas);
    }

    /// Instantiations eligible to fire (in conflict set, not yet fired).
    pub fn candidates(&self) -> Vec<Instantiation> {
        let mut remaining: Vec<Option<&Instantiation>> = self.fired.iter().map(Some).collect();
        let mut out = Vec::new();
        'outer: for inst in self.engine.conflict_set().items() {
            for slot in remaining.iter_mut() {
                if let Some(f) = slot {
                    if *f == inst {
                        *slot = None;
                        continue 'outer;
                    }
                }
            }
            out.push(inst.clone());
        }
        out
    }

    /// Run one recognize-act cycle. Returns the fired instantiation, or
    /// `None` when the conflict set has no eligible entry.
    pub fn step(&mut self) -> Option<(Instantiation, bool, Vec<String>)> {
        obs::prof_span!("exec.step");
        let cycle = self.cycle;
        let candidates = self.candidates();
        if candidates.is_empty() {
            return None;
        }
        let tracer = self.engine.tracer().clone();
        tracer.emit(|| Event::CycleStart { cycle });
        let refs: Vec<&Instantiation> = candidates.iter().collect();
        let pick = self.strategy.pick(self.engine.pdb().rules(), &refs);
        let inst = candidates[pick].clone();
        let conflict_len = self.engine.conflict_set().len();
        let rule_name = self.engine.pdb().rules().rule(inst.rule).name.clone();
        tracer.emit(|| Event::RuleSelect {
            cycle,
            rule: inst.rule.0 as u32,
            rule_name: rule_name.clone(),
            conflict_len,
        });
        crate::exec::trace_derivation(&tracer, self.engine.pdb().rules(), &inst);
        self.fired.push(inst.clone());
        let rules = self.engine.pdb().rules().clone();
        let start = tracer.enabled().then(Instant::now);
        let rhs = eval_rhs(&rules, &inst);
        let (mut inserts, mut removes) = (0usize, 0usize);
        // Apply the cycle's whole RHS as one delta set and let the engine
        // maintain it in a single batched pass (§4.2). Traced runs get the
        // batch's events from inside `apply_delta`.
        let changes: Vec<(bool, ops5::ClassId, relstore::Tuple)> = rhs
            .changes
            .iter()
            .map(|change| match change {
                WmChange::Insert(class, tuple) => {
                    inserts += 1;
                    (true, *class, tuple.clone())
                }
                WmChange::Remove(class, tuple) => {
                    removes += 1;
                    (false, *class, tuple.clone())
                }
            })
            .collect();
        let deltas = self.engine.apply_delta(&changes);
        self.absorb(&deltas);
        // The journal's commit record: under sequential execution the
        // firing sequence IS the cycle sequence (txn 0 marks "no §5
        // transaction").
        tracer.emit(|| Event::Firing {
            seq: cycle,
            round: cycle,
            txn: 0,
            rule: inst.rule.0 as u32,
            rule_name: rule_name.clone(),
            wmes: inst.wmes_display(&rules),
            support: inst.why.support_display(),
        });
        if let Some(start) = start {
            let rhs_ns = start.elapsed().as_nanos() as u64;
            tracer.emit(|| Event::RuleFire {
                cycle,
                rule: inst.rule.0 as u32,
                rule_name: rule_name.clone(),
                rhs_ns,
                inserts,
                removes,
            });
            if let Some(m) = tracer.metrics() {
                m.record_fire(inst.rule.0 as u32, &rule_name, rhs_ns);
                m.record_cycle(cycle, self.engine.conflict_set().len());
            }
        }
        self.cycle += 1;
        let fired_total = self.cycle;
        let conflict_len = self.engine.conflict_set().len();
        tracer.emit(|| Event::CycleEnd {
            cycle,
            conflict_len,
            fired_total,
        });
        Some((inst, rhs.halt, rhs.writes))
    }

    /// Run until quiescence, `(halt)`, or `max_cycles`.
    pub fn run(&mut self, max_cycles: usize) -> RunOutcome {
        let mut outcome = RunOutcome::default();
        while outcome.fired < max_cycles {
            match self.step() {
                Some((_, halt, writes)) => {
                    outcome.fired += 1;
                    outcome.writes.extend(writes);
                    if halt {
                        outcome.halted = true;
                        return outcome;
                    }
                }
                None => return outcome,
            }
        }
        outcome.limited = true;
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{make_engine, EngineKind};
    use crate::pdb::ProductionDb;
    use ops5::ClassId;
    use relstore::tuple;

    fn exec(kind: EngineKind, src: &str) -> SequentialExecutor {
        let rs = ops5::compile(src).unwrap();
        let pdb = ProductionDb::new(rs).unwrap();
        SequentialExecutor::new(make_engine(kind, pdb), Strategy::Fifo)
    }

    /// The paper's Example 2 rules simplify 0 + x.
    #[test]
    fn algebraic_simplification_runs() {
        for kind in EngineKind::ALL {
            let mut ex = exec(
                kind,
                r#"
                (literalize Goal Type Object)
                (literalize Expression Name Arg1 Op Arg2)
                (p PlusOX
                    (Goal ^Type Simplify ^Object <N>)
                    (Expression ^Name <N> ^Arg1 0 ^Op + ^Arg2 <X>)
                    -->
                    (modify 2 ^Op nil ^Arg1 nil)
                    (write simplified <N>))
                "#,
            );
            ex.insert(ClassId(0), tuple!["Simplify", "TERM"]);
            ex.insert(ClassId(1), tuple!["TERM", 0, "+", "x"]);
            let out = ex.run(10);
            assert_eq!(out.fired, 1, "{kind:?}");
            assert_eq!(out.writes, vec!["simplified TERM"], "{}", kind.label());
            // The expression was modified in WM.
            let pdb = ex.engine().pdb().clone();
            let rows = pdb
                .db()
                .select(pdb.class_rel(ClassId(1)), &relstore::Restriction::default())
                .unwrap();
            assert_eq!(rows.len(), 1);
            assert!(rows[0].1[1].is_null() && rows[0].1[2].is_null());
        }
    }

    /// Example 3's R1 deletes Mike when he outearns his manager; firing
    /// consumes the match, so the system quiesces after one cycle.
    #[test]
    fn r1_fires_once_and_quiesces() {
        for kind in EngineKind::ALL {
            let mut ex = exec(
                kind,
                r#"
                (literalize Emp name salary manager)
                (p R1
                    (Emp ^name Mike ^salary <S> ^manager <M>)
                    (Emp ^name <M> ^salary {<S1> < <S>})
                    -->
                    (remove 1))
                "#,
            );
            ex.insert(ClassId(0), tuple!["Sam", 5000, "Root"]);
            ex.insert(ClassId(0), tuple!["Mike", 6000, "Sam"]);
            let out = ex.run(10);
            assert_eq!(out.fired, 1, "{}", kind.label());
            assert!(!out.limited);
            let pdb = ex.engine().pdb().clone();
            assert_eq!(pdb.wm_len(ClassId(0)), 1, "Mike removed ({})", kind.label());
        }
    }

    #[test]
    fn halt_stops_the_run() {
        let mut ex = exec(
            EngineKind::Rete,
            r#"
            (literalize A x)
            (p Loop (A ^x <V>) --> (make A ^x <V>) (halt))
            "#,
        );
        ex.insert(ClassId(0), tuple![1]);
        let out = ex.run(100);
        assert!(out.halted);
        assert_eq!(out.fired, 1);
    }

    #[test]
    fn refraction_prevents_refiring() {
        // A rule that does not change its matched WME fires exactly once.
        let mut ex = exec(
            EngineKind::Rete,
            r#"
            (literalize A x)
            (literalize Log x)
            (p Note (A ^x <V>) --> (make Log ^x <V>))
            "#,
        );
        ex.insert(ClassId(0), tuple![1]);
        let out = ex.run(100);
        assert_eq!(out.fired, 1, "refraction blocks refiring");
        assert!(!out.limited);
    }

    #[test]
    fn cycle_limit_reported() {
        // A genuinely looping program: each firing makes a new tuple that
        // matches again.
        let mut ex = exec(
            EngineKind::Rete,
            r#"
            (literalize A x)
            (p Grow (A ^x <V>) --> (modify 1 ^x 1))
            "#,
        );
        ex.insert(ClassId(0), tuple![1]);
        let out = ex.run(25);
        assert!(out.limited);
        assert_eq!(out.fired, 25);
    }

    /// All five engines agree on a multi-cycle run's outcome.
    #[test]
    fn engines_agree_on_chained_firing() {
        let src = r#"
            (literalize Item n)
            (literalize Done n)
            (p Count
                (Item ^n <N>)
                -(Done ^n <N>)
                -->
                (make Done ^n <N>)
                (write done <N>))
        "#;
        let mut baseline: Option<(usize, usize)> = None;
        for kind in EngineKind::ALL {
            let mut ex = exec(kind, src);
            for i in 0..5i64 {
                ex.insert(ClassId(0), tuple![i]);
            }
            let out = ex.run(100);
            let pdb = ex.engine().pdb().clone();
            let result = (out.fired, pdb.wm_len(ClassId(1)));
            match &baseline {
                None => baseline = Some(result),
                Some(b) => assert_eq!(*b, result, "{}", kind.label()),
            }
            assert_eq!(result.1, 5, "{}: every item marked done", kind.label());
        }
    }
}
