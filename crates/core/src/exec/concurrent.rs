//! Concurrent rule execution (§5).
//!
//! "Each matching pattern … can be treated as a transaction that is to be
//! executed" (§5.1). Workers take instantiations from the conflict set and
//! run each as a strict-2PL transaction:
//!
//! 1. **re-select with read locks** — the conflict set stores no tuple
//!    ids, so "attribute values from the matching pattern tuple are used
//!    to generate selection predicates" and the selected WM tuples get
//!    shared locks (§5.2);
//! 2. **verify negative dependence** — negated CEs take a shared lock on
//!    the whole relation and check NOT EXISTS (§5.2's "better solution");
//! 3. **apply the RHS** under exclusive locks;
//! 4. **maintenance before commit** — "a production should not commit its
//!    RHS actions … until the triggered maintenance process updates the
//!    affected COND relations as well" (§5.2): the matching engine is
//!    updated while the transaction still holds its locks;
//! 5. commit (release everything at once).
//!
//! Deadlocks — which the paper explicitly anticipates — abort the
//! requesting transaction; the instantiation is retried in a later round
//! if it is still in the conflict set.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use obs::Event;
use parking_lot::Mutex;

use relstore::{Error, Restriction, Selection, TupleId};
use rete::Instantiation;

use crate::engine::{trace_wm_change, MatchEngine};
use crate::exec::{eval_rhs, positive_positions, WmChange};

/// Statistics from a concurrent run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConcurrentStats {
    /// Instantiations whose transaction committed.
    pub committed: usize,
    /// Transactions aborted as deadlock victims (then retried).
    pub deadlock_aborts: usize,
    /// Deadlock victims that were actually re-executed in a later round.
    pub retries: usize,
    /// Instantiations skipped because their tuples vanished or a negated
    /// CE became blocked before execution.
    pub invalidated: usize,
    /// Transactions aborted by a non-deadlock storage error (the worker
    /// rolls the transaction back and reports the error here; it never
    /// panics).
    pub failed: usize,
    /// The storage errors behind `failed`, in completion order.
    pub errors: Vec<String>,
    /// Synchronization rounds executed.
    pub rounds: usize,
    /// Lock requests that blocked during the run.
    pub lock_waits: u64,
    /// Total nanoseconds transactions spent blocked on locks.
    pub lock_wait_ns: u64,
    /// `(halt)` executed by some production.
    pub halted: bool,
    /// `write` output (order nondeterministic across transactions).
    pub writes: Vec<String>,
}

impl fmt::Display for ConcurrentStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "committed={} aborts={} retries={} invalidated={} failed={} rounds={} \
             lock_waits={} lock_wait_ms={:.3}{}",
            self.committed,
            self.deadlock_aborts,
            self.retries,
            self.invalidated,
            self.failed,
            self.rounds,
            self.lock_waits,
            self.lock_wait_ns as f64 / 1e6,
            if self.halted { " halted" } else { "" }
        )
    }
}

/// Concurrent executor: fires all applicable instantiations as
/// interleaved transactions, round by round, until quiescence.
pub struct ConcurrentExecutor {
    engine: Arc<Mutex<Box<dyn MatchEngine>>>,
    workers: usize,
}

/// Result of one instantiation's transaction.
#[derive(Debug)]
enum TxnOutcome {
    Committed {
        halt: bool,
        writes: Vec<String>,
    },
    Invalid,
    Deadlock,
    /// A non-deadlock storage error aborted the transaction. The dropped
    /// [`relstore::Txn`] rolled its effects back; the error is surfaced in
    /// [`ConcurrentStats::errors`] instead of panicking the worker.
    Failed(Error),
}

impl ConcurrentExecutor {
    /// Create a new, empty instance.
    pub fn new(engine: Box<dyn MatchEngine>, workers: usize) -> Self {
        ConcurrentExecutor {
            engine: Arc::new(Mutex::new(engine)),
            workers: workers.max(1),
        }
    }

    /// Shared engine handle (e.g. to seed WM before running).
    pub fn engine(&self) -> Arc<Mutex<Box<dyn MatchEngine>>> {
        self.engine.clone()
    }

    /// Install a tracing/metrics handle on the engine and the storage
    /// layer's lock manager (§5 contention profiling).
    pub fn set_tracer(&self, tracer: obs::Tracer) {
        let mut g = self.engine.lock();
        g.pdb().db().lock_manager().set_tracer(tracer.clone());
        g.set_tracer(tracer);
    }

    /// Execute one instantiation as a transaction.
    fn run_one(engine: &Arc<Mutex<Box<dyn MatchEngine>>>, inst: &Instantiation) -> TxnOutcome {
        let (pdb, rules, tracer) = {
            let g = engine.lock();
            (g.pdb().clone(), g.pdb().rules().clone(), g.tracer().clone())
        };
        let rule = rules.rule(inst.rule).clone();
        let pos_of = positive_positions(&rule);
        let db = pdb.db().clone();
        let mut txn = db.begin();
        let txn_id = txn.id().0;
        tracer.emit(|| Event::TxnBegin {
            txn: txn_id,
            rule: inst.rule.0 as u32,
            rule_name: rule.name.clone(),
        });
        crate::exec::trace_derivation(&tracer, &rules, inst);
        let mut wm_writes = 0usize;
        let outcome = (|| -> TxnOutcome {
            // 1. Re-select the matched tuples by content, with read locks.
            //    Duplicate WMEs need distinct tuple ids.
            let mut claimed: Vec<(usize, TupleId)> = Vec::new(); // (positive pos, tid)
            for (i, ce) in rule.ces.iter().enumerate() {
                if ce.negated {
                    continue;
                }
                let pos = pos_of[i].expect("positive");
                let wme = &inst.wmes[pos];
                let full_eq = Restriction::new(
                    wme.tuple
                        .values()
                        .iter()
                        .enumerate()
                        .map(|(a, v)| Selection::eq(a, v.clone()))
                        .collect(),
                );
                let rows = match txn.select(pdb.class_rel(ce.class), &full_eq) {
                    Ok(rows) => rows,
                    Err(Error::Deadlock(_)) => return TxnOutcome::Deadlock,
                    Err(e) => return TxnOutcome::Failed(e),
                };
                let free = rows
                    .iter()
                    .find(|(tid, _)| !claimed.iter().any(|(_, c)| c == tid));
                match free {
                    Some((tid, _)) => claimed.push((pos, *tid)),
                    None => return TxnOutcome::Invalid,
                }
            }

            // 2. Negative dependence: shared relation lock + NOT EXISTS.
            for ce in rule.ces.iter().filter(|ce| ce.negated) {
                let mut tests = ce.alpha.tests.clone();
                for j in &ce.joins {
                    let Some(pos) = pos_of[j.other_ce] else {
                        continue;
                    };
                    let bound = inst.wmes[pos].tuple[j.other_attr].clone();
                    tests.push(Selection::new(j.my_attr, j.op, bound));
                }
                let restriction =
                    Restriction::new(tests).with_attr_tests(ce.alpha.attr_tests.clone());
                match txn.verify_absent(pdb.class_rel(ce.class), &restriction) {
                    Ok(true) => {}
                    Ok(false) => return TxnOutcome::Invalid,
                    Err(Error::Deadlock(_)) => return TxnOutcome::Deadlock,
                    Err(e) => return TxnOutcome::Failed(e),
                }
            }

            // 3. Apply the RHS under exclusive locks, remembering what
            //    actually happened for the maintenance phase.
            let rhs = eval_rhs(&rules, inst);
            let mut applied: Vec<(WmChange, TupleId)> = Vec::new();
            for change in &rhs.changes {
                match change {
                    WmChange::Remove(class, tuple) => {
                        // Prefer the claimed (LHS-matched) row of this content.
                        let rel = pdb.class_rel(*class);
                        let tid = claimed
                            .iter()
                            .find(|(pos, _)| {
                                &inst.wmes[*pos].tuple == tuple
                                    && rule
                                        .ces
                                        .iter()
                                        .filter(|ce| !ce.negated)
                                        .nth(*pos)
                                        .map(|ce| ce.class)
                                        == Some(*class)
                            })
                            .map(|(_, tid)| *tid);
                        let tid = match tid {
                            Some(t) => t,
                            None => {
                                // A `modify`-generated intermediate: find any row.
                                let full_eq = Restriction::new(
                                    tuple
                                        .values()
                                        .iter()
                                        .enumerate()
                                        .map(|(a, v)| Selection::eq(a, v.clone()))
                                        .collect(),
                                );
                                match txn.select(rel, &full_eq) {
                                    Ok(rows) if !rows.is_empty() => rows[0].0,
                                    Ok(_) => continue,
                                    Err(Error::Deadlock(_)) => return TxnOutcome::Deadlock,
                                    Err(e) => return TxnOutcome::Failed(e),
                                }
                            }
                        };
                        match txn.delete(rel, tid) {
                            // "T_j will not be able to process tuples of R_i
                            // that have already been deleted" — consistent.
                            Ok(Some(_)) => applied.push((change.clone(), tid)),
                            Ok(None) => {}
                            Err(Error::Deadlock(_)) => return TxnOutcome::Deadlock,
                            Err(e) => return TxnOutcome::Failed(e),
                        }
                    }
                    WmChange::Insert(class, tuple) => {
                        match txn.insert(pdb.class_rel(*class), tuple.clone()) {
                            Ok(tid) => applied.push((change.clone(), tid)),
                            Err(Error::Deadlock(_)) => return TxnOutcome::Deadlock,
                            Err(e) => return TxnOutcome::Failed(e),
                        }
                    }
                }
            }

            // 4. Maintenance BEFORE commit: the transaction still holds every
            //    lock while the match structures (COND relations) are updated.
            {
                let mut g = engine.lock();
                for (change, tid) in &applied {
                    let start = g.tracer().enabled().then(std::time::Instant::now);
                    let (insert, class, tuple, deltas) = match change {
                        WmChange::Insert(class, tuple) => {
                            (true, *class, tuple, g.maintain_insert(*class, *tid, tuple))
                        }
                        WmChange::Remove(class, tuple) => {
                            (false, *class, tuple, g.maintain_remove(*class, *tid, tuple))
                        }
                    };
                    if let Some(start) = start {
                        let total_ns = start.elapsed().as_nanos() as u64;
                        trace_wm_change(&**g, class, insert, tuple, &deltas, total_ns);
                    }
                }
            }

            // 5. Commit point.
            wm_writes = applied.len();
            txn.commit();
            TxnOutcome::Committed {
                halt: rhs.halt,
                writes: rhs.writes,
            }
        })();
        match &outcome {
            TxnOutcome::Committed { .. } => {
                tracer.emit(|| Event::TxnCommit {
                    txn: txn_id,
                    writes: wm_writes,
                });
                if let Some(m) = tracer.metrics() {
                    m.record_txn(true);
                }
            }
            TxnOutcome::Invalid => {
                tracer.emit(|| Event::TxnAbort {
                    txn: txn_id,
                    reason: "invalidated".to_string(),
                });
                if let Some(m) = tracer.metrics() {
                    m.record_txn(false);
                }
            }
            TxnOutcome::Deadlock => {
                tracer.emit(|| Event::TxnAbort {
                    txn: txn_id,
                    reason: "deadlock".to_string(),
                });
                if let Some(m) = tracer.metrics() {
                    m.record_txn(false);
                }
            }
            TxnOutcome::Failed(e) => {
                tracer.emit(|| Event::TxnAbort {
                    txn: txn_id,
                    reason: format!("error: {e}"),
                });
                if let Some(m) = tracer.metrics() {
                    m.record_txn(false);
                }
            }
        }
        outcome
    }

    /// Run rounds of parallel firing until quiescence, halt, or
    /// `max_fired` committed productions.
    pub fn run(&mut self, max_fired: usize) -> ConcurrentStats {
        let mut stats = ConcurrentStats::default();
        let mut fired: Vec<Instantiation> = Vec::new();
        // Deadlock victims awaiting a retry; lock-wait totals come from
        // the storage layer's counters, delta'd over this run.
        let mut deadlocked: Vec<Instantiation> = Vec::new();
        // Consecutive rounds in which nothing committed or invalidated
        // (deadlock victims / failures only): capped, with exponential
        // backoff between the retry rounds.
        let mut stalls = 0usize;
        let base = self.engine.lock().pdb().db().stats().snapshot();
        while stats.committed < max_fired && !stats.halted {
            // Snapshot Ψ_i: conflict set minus already-fired (refraction).
            let candidates: Vec<Instantiation> = {
                let g = self.engine.lock();
                let mut remaining: Vec<Option<&Instantiation>> = fired.iter().map(Some).collect();
                let mut out = Vec::new();
                'outer: for inst in g.conflict_set().items() {
                    for slot in remaining.iter_mut() {
                        if let Some(f) = slot {
                            if *f == inst {
                                *slot = None;
                                continue 'outer;
                            }
                        }
                    }
                    out.push(inst.clone());
                }
                out
            };
            if candidates.is_empty() {
                break;
            }
            stats.retries += prune_deadlocked(&mut deadlocked, &candidates);
            stats.rounds += 1;
            let queue: Arc<Mutex<VecDeque<Instantiation>>> =
                Arc::new(Mutex::new(candidates.into_iter().collect()));
            let results: Arc<Mutex<Vec<(Instantiation, TxnOutcome)>>> =
                Arc::new(Mutex::new(Vec::new()));
            crossbeam::thread::scope(|scope| {
                for _ in 0..self.workers {
                    let queue = queue.clone();
                    let results = results.clone();
                    let engine = self.engine.clone();
                    scope.spawn(move |_| loop {
                        let Some(inst) = queue.lock().pop_front() else {
                            break;
                        };
                        let outcome = Self::run_one(&engine, &inst);
                        results.lock().push((inst, outcome));
                    });
                }
            })
            .expect("worker scope");
            let results = Arc::try_unwrap(results)
                .expect("workers joined")
                .into_inner();
            let mut progressed = false;
            for (inst, outcome) in results {
                match outcome {
                    TxnOutcome::Committed { halt, writes } => {
                        stats.committed += 1;
                        stats.writes.extend(writes);
                        stats.halted |= halt;
                        fired.push(inst);
                        progressed = true;
                    }
                    TxnOutcome::Invalid => {
                        stats.invalidated += 1;
                        // The maintenance process will have removed it
                        // from the conflict set; if not (it was valid when
                        // snapshotted), the next snapshot sees the truth.
                        progressed = true;
                    }
                    TxnOutcome::Deadlock => {
                        stats.deadlock_aborts += 1;
                        // Retried next round if still applicable.
                        deadlocked.push(inst);
                    }
                    TxnOutcome::Failed(e) => {
                        stats.failed += 1;
                        stats.errors.push(e.to_string());
                        // The transaction rolled back; the instantiation is
                        // not marked fired, so the next snapshot retries it
                        // if it is still applicable.
                    }
                }
            }
            // Keep refraction memory consistent with the conflict set.
            {
                let g = self.engine.lock();
                let cs = g.conflict_set();
                let mut kept = Vec::new();
                let mut pool: Vec<Instantiation> = cs.items().to_vec();
                for f in fired.drain(..) {
                    if let Some(pos) = pool.iter().position(|x| *x == f) {
                        pool.remove(pos);
                        kept.push(f);
                    }
                }
                fired = kept;
            }
            if progressed {
                stalls = 0;
            } else {
                // Only deadlock victims / failures remain; retry with
                // backoff, but give up after a bounded streak of
                // no-progress rounds instead of spinning (the old guard
                // compared against *total* rounds, so a long productive
                // run could trip it — or a stall early in a short run
                // could spin for thousands of rounds first).
                stalls += 1;
                if stalls >= 32 {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_micros(50u64 << stalls.min(8)));
            }
        }
        let delta = self
            .engine
            .lock()
            .pdb()
            .db()
            .stats()
            .snapshot()
            .since(&base);
        stats.lock_waits = delta.lock_waits;
        stats.lock_wait_ns = delta.lock_wait_ns;
        stats
    }
}

/// Retire the previous round's deadlock victims against the current
/// candidate snapshot: victims still applicable count as retries (they
/// are about to re-execute); victims whose instantiation left the
/// conflict set are dropped. Either way the list is cleared — a victim
/// that deadlocks again this round re-enters it — so it can never grow
/// without bound on workloads where victims are invalidated by other
/// transactions instead of reappearing.
fn prune_deadlocked(deadlocked: &mut Vec<Instantiation>, candidates: &[Instantiation]) -> usize {
    let mut pool: Vec<Option<&Instantiation>> = candidates.iter().map(Some).collect();
    let mut retries = 0;
    'victims: for victim in deadlocked.drain(..) {
        for slot in pool.iter_mut() {
            if let Some(c) = slot {
                if **c == victim {
                    *slot = None;
                    retries += 1;
                    continue 'victims;
                }
            }
        }
    }
    retries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{make_engine, EngineKind};
    use crate::pdb::ProductionDb;
    use ops5::ClassId;
    use relstore::tuple;

    fn setup(src: &str, kind: EngineKind) -> ConcurrentExecutor {
        let rs = ops5::compile(src).unwrap();
        let pdb = ProductionDb::new(rs).unwrap();
        ConcurrentExecutor::new(make_engine(kind, pdb), 4)
    }

    const COUNTER_RULES: &str = r#"
        (literalize Item n)
        (literalize Done n)
        (p Mark
            (Item ^n <N>)
            -(Done ^n <N>)
            -->
            (make Done ^n <N>))
    "#;

    #[test]
    fn concurrent_matches_sequential_outcome() {
        for kind in [EngineKind::Rete, EngineKind::Cond, EngineKind::Query] {
            let mut ex = setup(COUNTER_RULES, kind);
            {
                let eng = ex.engine();
                let mut g = eng.lock();
                for i in 0..8i64 {
                    g.insert(ClassId(0), tuple![i]);
                }
            }
            let stats = ex.run(1000);
            assert_eq!(stats.committed, 8, "{}", kind.label());
            let eng = ex.engine();
            let g = eng.lock();
            assert_eq!(g.pdb().wm_len(ClassId(1)), 8, "{}", kind.label());
            assert!(g.conflict_set().is_empty() || stats.halted);
        }
    }

    #[test]
    fn competing_deleters_fire_once_total() {
        // Two rules both want to remove the same tuple: serializability
        // means exactly one effective deletion and a consistent WM.
        let src = r#"
            (literalize A x)
            (literalize LogB x)
            (literalize LogC x)
            (p B (A ^x <V>) --> (remove 1) (make LogB ^x <V>))
            (p C (A ^x <V>) --> (remove 1) (make LogC ^x <V>))
        "#;
        let mut ex = setup(src, EngineKind::Rete);
        {
            let eng = ex.engine();
            let mut g = eng.lock();
            g.insert(ClassId(0), tuple![1]);
        }
        let stats = ex.run(100);
        let eng = ex.engine();
        let g = eng.lock();
        assert_eq!(g.pdb().wm_len(ClassId(0)), 0, "tuple deleted");
        let logs = g.pdb().wm_len(ClassId(1)) + g.pdb().wm_len(ClassId(2));
        // Both productions were applicable in Ψ1; per §5.2 the one that
        // loses the race still executes but cannot process the deleted
        // tuple. Our implementation skips it as invalidated, matching the
        // serial schedule where only one fires.
        assert_eq!(logs, 1, "exactly one log entry (stats: {stats:?})");
        assert_eq!(stats.committed, 1);
    }

    #[test]
    fn negative_dependence_is_checked() {
        // Mark fires once per Item even when many workers race: the
        // NOT EXISTS check under a relation lock prevents double Done.
        let mut ex = setup(COUNTER_RULES, EngineKind::Rete);
        {
            let eng = ex.engine();
            let mut g = eng.lock();
            for i in 0..4i64 {
                g.insert(ClassId(0), tuple![i % 2]); // duplicates!
            }
        }
        let _ = ex.run(100);
        let eng = ex.engine();
        let g = eng.lock();
        // Two distinct n values → exactly two Done tuples despite four
        // Items producing four instantiations initially.
        assert_eq!(g.pdb().wm_len(ClassId(1)), 2);
    }

    /// Regression: a deadlock victim whose instantiation never returns to
    /// the conflict set (another transaction invalidated it) used to stay
    /// in the victim list forever. Pruning runs against every candidate
    /// snapshot and clears the list each round.
    #[test]
    fn deadlock_victims_pruned_against_current_candidates() {
        let inst = |rule: usize, v: i64| rete::Instantiation {
            rule: ops5::RuleId(rule),
            wmes: vec![rete::Wme::new(ClassId(0), tuple![v])],
            why: rete::Provenance::default(),
        };
        // Victim 0 reappears in the candidates (a genuine retry); victim 1
        // was invalidated and must be dropped, not kept forever.
        let mut deadlocked = vec![inst(0, 1), inst(1, 2)];
        let candidates = vec![inst(0, 1), inst(2, 3)];
        let retries = prune_deadlocked(&mut deadlocked, &candidates);
        assert_eq!(retries, 1, "only the reappearing victim is a retry");
        assert!(deadlocked.is_empty(), "the victim list is always cleared");
        // Duplicate instantiations retire one victim each, not all at once.
        let mut deadlocked = vec![inst(0, 1), inst(0, 1)];
        let retries = prune_deadlocked(&mut deadlocked, &[inst(0, 1)]);
        assert_eq!(retries, 1, "multiset semantics: one candidate, one retry");
        assert!(deadlocked.is_empty());
    }

    #[test]
    fn halt_propagates() {
        let src = r#"
            (literalize A x)
            (p Stop (A ^x <V>) --> (remove 1) (halt))
        "#;
        let mut ex = setup(src, EngineKind::Rete);
        {
            let eng = ex.engine();
            let mut g = eng.lock();
            g.insert(ClassId(0), tuple![1]);
        }
        let stats = ex.run(100);
        assert!(stats.halted);
        assert_eq!(stats.committed, 1);
    }
}
