//! Concurrent rule execution (§5).
//!
//! "Each matching pattern … can be treated as a transaction that is to be
//! executed" (§5.1). Workers take instantiations from the conflict set and
//! run each as a strict-2PL transaction:
//!
//! 1. **re-select with read locks** — the conflict set stores no tuple
//!    ids, so "attribute values from the matching pattern tuple are used
//!    to generate selection predicates" and the selected WM tuples get
//!    shared locks (§5.2);
//! 2. **verify negative dependence** — negated CEs take a shared lock on
//!    the whole relation and check NOT EXISTS (§5.2's "better solution");
//! 3. **apply the RHS** under exclusive locks;
//! 4. **maintenance before commit** — "a production should not commit its
//!    RHS actions … until the triggered maintenance process updates the
//!    affected COND relations as well" (§5.2): the matching engine is
//!    updated while the transaction still holds its locks;
//! 5. commit (release everything at once).
//!
//! Deadlocks — which the paper explicitly anticipates — abort the
//! requesting transaction; the instantiation is retried in a later round
//! if it is still in the conflict set.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use obs::Event;
use ops5::ClassId;
use parking_lot::Mutex;

use relstore::{Error, Restriction, Selection, Tuple, TupleId};
use rete::Instantiation;

use crate::engine::{trace_batch, MatchEngine, WmDelta};
use crate::exec::{eval_rhs, positive_positions, WmChange};

/// Statistics from a concurrent run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConcurrentStats {
    /// Instantiations whose transaction committed.
    pub committed: usize,
    /// Transactions aborted as deadlock victims (then retried).
    pub deadlock_aborts: usize,
    /// Deadlock victims that were actually re-executed in a later round.
    pub retries: usize,
    /// Instantiations skipped because their tuples vanished or a negated
    /// CE became blocked before execution.
    pub invalidated: usize,
    /// Transactions aborted by a non-deadlock storage error (the worker
    /// rolls the transaction back and reports the error here; it never
    /// panics).
    pub failed: usize,
    /// The storage errors behind `failed`, in completion order.
    pub errors: Vec<String>,
    /// Synchronization rounds executed.
    pub rounds: usize,
    /// Lock requests that blocked during the run.
    pub lock_waits: u64,
    /// Total nanoseconds transactions spent blocked on locks.
    pub lock_wait_ns: u64,
    /// Total nanoseconds committed transactions held the engine critical
    /// section for their pre-commit maintenance pass — the serialized
    /// fraction of the run.
    pub critical_ns: u64,
    /// `(halt)` executed by some production.
    pub halted: bool,
    /// `write` output (order nondeterministic across transactions).
    pub writes: Vec<String>,
    /// Set when an oracle-driven replay could not follow the recorded
    /// schedule: the step it stopped at and why. `None` for live runs and
    /// for replays that reproduced every recorded firing.
    pub divergence: Option<String>,
    /// Per-lock-shard contention over this run, `(shard, waits, wait_ns)`
    /// for every shard where at least one request blocked. Empty when the
    /// run never contended.
    pub shard_contention: Vec<(u32, u64, u64)>,
}

impl fmt::Display for ConcurrentStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "committed={} aborts={} retries={} invalidated={} failed={} rounds={} \
             lock_waits={} lock_wait_ms={:.3} critical_ms={:.3}{}",
            self.committed,
            self.deadlock_aborts,
            self.retries,
            self.invalidated,
            self.failed,
            self.rounds,
            self.lock_waits,
            self.lock_wait_ns as f64 / 1e6,
            self.critical_ns as f64 / 1e6,
            if self.halted { " halted" } else { "" }
        )
    }
}

/// Concurrent executor: fires all applicable instantiations as
/// interleaved transactions, round by round, until quiescence.
pub struct ConcurrentExecutor {
    engine: Arc<Mutex<Box<dyn MatchEngine>>>,
    workers: usize,
    /// Set-oriented worker transactions: batched step-1 re-selection and
    /// whatever batch strategy the engine itself supports. Off pins the
    /// historical per-condition-element baseline.
    batching: bool,
    /// Global commit sequence, threaded into every transaction: the
    /// number is taken while the transaction still holds its locks, so
    /// for conflicting transactions it is the serialization order.
    /// Persists across `run` calls so journal firing sequences never
    /// repeat within one executor's trace.
    next_seq: AtomicU64,
    /// When set, `run` replays the recorded schedule instead of racing
    /// workers (see [`ScheduleOracle`]).
    oracle: Option<ScheduleOracle>,
}

/// A recorded commit schedule: `(rule_name, wmes)` keys in commit-`seq`
/// order, taken from a journal's `Firing` events. Installed on a
/// [`ConcurrentExecutor`] via [`ConcurrentExecutor::set_oracle`], it
/// replaces live worker racing with a serial re-execution that fires the
/// recorded instantiations in the recorded serialization order —
/// committed transactions' firing sequence and final WM are reproduced
/// exactly (non-conflicting transactions commute; conflicting ones were
/// ordered by their lock conflicts, which the `seq` capture point
/// preserves).
#[derive(Debug, Clone)]
pub struct ScheduleOracle {
    steps: Vec<(String, String)>,
    pos: usize,
}

impl ScheduleOracle {
    /// An oracle over `(rule_name, wmes)` firing keys in commit order.
    pub fn new(steps: Vec<(String, String)>) -> Self {
        ScheduleOracle { steps, pos: 0 }
    }

    /// Recorded firings not yet replayed.
    pub fn remaining(&self) -> usize {
        self.steps.len() - self.pos
    }

    fn peek(&self) -> Option<&(String, String)> {
        self.steps.get(self.pos)
    }

    fn advance(&mut self) {
        self.pos += 1;
    }
}

/// Result of one instantiation's transaction.
#[derive(Debug)]
enum TxnOutcome {
    Committed {
        halt: bool,
        writes: Vec<String>,
        /// Nanoseconds the transaction held the engine critical section.
        critical_ns: u64,
        /// The transaction deleted one of its own positive-support
        /// tuples, so the maintenance process retires a conflict-set
        /// copy of the fired instantiation and refraction must not
        /// charge it a firing: duplicate WMEs leave equal-content
        /// copies behind that are still entitled to fire. This is
        /// judged from the transaction's *applied* RHS, not from its
        /// maintenance delta — under concurrency the copy's removal
        /// can surface in a racing transaction's maintenance pass
        /// (storage deltas are visible to other workers' recompute
        /// passes before commit), so delta attribution misses.
        self_removed: bool,
    },
    Invalid,
    Deadlock,
    /// A non-deadlock storage error aborted the transaction. The dropped
    /// [`relstore::Txn`] rolled its effects back; the error is surfaced in
    /// [`ConcurrentStats::errors`] instead of panicking the worker.
    Failed(Error),
}

impl ConcurrentExecutor {
    /// Create a new, empty instance.
    pub fn new(engine: Box<dyn MatchEngine>, workers: usize) -> Self {
        ConcurrentExecutor {
            engine: Arc::new(Mutex::new(engine)),
            workers: workers.max(1),
            batching: true,
            next_seq: AtomicU64::new(0),
            oracle: None,
        }
    }

    /// Install a recorded commit schedule: the next `run` replays it
    /// serially instead of racing live workers.
    pub fn set_oracle(&mut self, oracle: ScheduleOracle) {
        self.oracle = Some(oracle);
    }

    /// Shared engine handle (e.g. to seed WM before running).
    pub fn engine(&self) -> Arc<Mutex<Box<dyn MatchEngine>>> {
        self.engine.clone()
    }

    /// Toggle set-oriented evaluation end-to-end: the worker transactions'
    /// batched step-1 re-selection *and* the engine's own batch strategy
    /// (see [`MatchEngine::set_batching`]). On by default; benchmarks pin
    /// `false` to reproduce the tuple-at-a-time baseline.
    pub fn set_batching(&mut self, on: bool) {
        self.batching = on;
        self.engine.lock().set_batching(on);
    }

    /// Toggle the σ-binding hash index over matching patterns where the
    /// engine keeps one (see [`MatchEngine::set_pattern_index`]).
    pub fn set_pattern_index(&mut self, on: bool) {
        self.engine.lock().set_pattern_index(on);
    }

    /// Install a tracing/metrics handle on the engine and the storage
    /// layer's lock manager (§5 contention profiling).
    pub fn set_tracer(&self, tracer: obs::Tracer) {
        let mut g = self.engine.lock();
        g.pdb().db().lock_manager().set_tracer(tracer.clone());
        g.set_tracer(tracer);
    }

    /// Execute one instantiation as a transaction. `round` and
    /// `commit_seq` feed the journal's `Firing` record: the sequence
    /// number is taken just before the commit point, with every lock
    /// still held.
    fn run_one(
        engine: &Arc<Mutex<Box<dyn MatchEngine>>>,
        inst: &Instantiation,
        batching: bool,
        round: u64,
        commit_seq: &AtomicU64,
    ) -> TxnOutcome {
        let (pdb, rules, tracer) = {
            let g = engine.lock();
            (g.pdb().clone(), g.pdb().rules().clone(), g.tracer().clone())
        };
        let rule = rules.rule(inst.rule).clone();
        let pos_of = positive_positions(&rule);
        let db = pdb.db().clone();
        let mut txn = db.begin();
        let txn_id = txn.id().0;
        tracer.emit(|| Event::TxnBegin {
            txn: txn_id,
            rule: inst.rule.0 as u32,
            rule_name: rule.name.clone(),
        });
        crate::exec::trace_derivation(&tracer, &rules, inst);
        let mut wm_writes = 0usize;
        let outcome = (|| -> TxnOutcome {
            // 1. Re-select the matched tuples by content, with read locks.
            //    Duplicate WMEs need distinct tuple ids *within a class*
            //    (tuple ids are per-relation, so equal ids of different
            //    classes are unrelated rows). Set-oriented mode groups the
            //    rule's positive CEs by class and re-selects each class in
            //    one batched pass (one read, one lock sweep, one liveness
            //    re-read) instead of a select per CE.
            let mut claimed: Vec<(usize, ClassId, TupleId)> = Vec::new(); // (positive pos, class, tid)
            if batching {
                let mut by_class: Vec<(ClassId, Vec<usize>)> = Vec::new(); // positions per class
                for (i, ce) in rule.ces.iter().enumerate() {
                    if ce.negated {
                        continue;
                    }
                    let pos = pos_of[i].expect("positive");
                    match by_class.iter_mut().find(|(c, _)| *c == ce.class) {
                        Some((_, poses)) => poses.push(pos),
                        None => by_class.push((ce.class, vec![pos])),
                    }
                }
                for (class, poses) in by_class {
                    let keys: Vec<Tuple> =
                        poses.iter().map(|&p| inst.wmes[p].tuple.clone()).collect();
                    let groups = match txn.select_eq_batch(pdb.class_rel(class), &keys) {
                        Ok(groups) => groups,
                        Err(Error::Deadlock(_)) => return TxnOutcome::Deadlock,
                        Err(e) => return TxnOutcome::Failed(e),
                    };
                    for (&pos, rows) in poses.iter().zip(&groups) {
                        let free = rows.iter().find(|(tid, _)| {
                            !claimed.iter().any(|(_, c, t)| *c == class && t == tid)
                        });
                        match free {
                            Some((tid, _)) => claimed.push((pos, class, *tid)),
                            None => return TxnOutcome::Invalid,
                        }
                    }
                }
            } else {
                for (i, ce) in rule.ces.iter().enumerate() {
                    if ce.negated {
                        continue;
                    }
                    let pos = pos_of[i].expect("positive");
                    let wme = &inst.wmes[pos];
                    let full_eq = Restriction::new(
                        wme.tuple
                            .values()
                            .iter()
                            .enumerate()
                            .map(|(a, v)| Selection::eq(a, v.clone()))
                            .collect(),
                    );
                    let rows = match txn.select(pdb.class_rel(ce.class), &full_eq) {
                        Ok(rows) => rows,
                        Err(Error::Deadlock(_)) => return TxnOutcome::Deadlock,
                        Err(e) => return TxnOutcome::Failed(e),
                    };
                    let free = rows.iter().find(|(tid, _)| {
                        !claimed.iter().any(|(_, c, t)| *c == ce.class && t == tid)
                    });
                    match free {
                        Some((tid, _)) => claimed.push((pos, ce.class, *tid)),
                        None => return TxnOutcome::Invalid,
                    }
                }
            }

            // 2. Negative dependence: shared relation lock + NOT EXISTS.
            for ce in rule.ces.iter().filter(|ce| ce.negated) {
                let mut tests = ce.alpha.tests.clone();
                for j in &ce.joins {
                    let Some(pos) = pos_of[j.other_ce] else {
                        continue;
                    };
                    let bound = inst.wmes[pos].tuple[j.other_attr].clone();
                    tests.push(Selection::new(j.my_attr, j.op, bound));
                }
                let restriction =
                    Restriction::new(tests).with_attr_tests(ce.alpha.attr_tests.clone());
                match txn.verify_absent(pdb.class_rel(ce.class), &restriction) {
                    Ok(true) => {}
                    Ok(false) => return TxnOutcome::Invalid,
                    Err(Error::Deadlock(_)) => return TxnOutcome::Deadlock,
                    Err(e) => return TxnOutcome::Failed(e),
                }
            }

            // 3. Apply the RHS under exclusive locks, remembering what
            //    actually happened for the maintenance phase.
            let rhs = eval_rhs(&rules, inst);
            let mut applied: Vec<(WmChange, TupleId)> = Vec::new();
            for change in &rhs.changes {
                match change {
                    WmChange::Remove(class, tuple) => {
                        // Prefer the claimed (LHS-matched) row of this content.
                        let rel = pdb.class_rel(*class);
                        let tid = claimed
                            .iter()
                            .find(|(pos, cl, _)| cl == class && &inst.wmes[*pos].tuple == tuple)
                            .map(|(_, _, tid)| *tid);
                        let tid = match tid {
                            Some(t) => t,
                            None => {
                                // A `modify`-generated intermediate: find any row.
                                let full_eq = Restriction::new(
                                    tuple
                                        .values()
                                        .iter()
                                        .enumerate()
                                        .map(|(a, v)| Selection::eq(a, v.clone()))
                                        .collect(),
                                );
                                match txn.select(rel, &full_eq) {
                                    Ok(rows) if !rows.is_empty() => rows[0].0,
                                    Ok(_) => continue,
                                    Err(Error::Deadlock(_)) => return TxnOutcome::Deadlock,
                                    Err(e) => return TxnOutcome::Failed(e),
                                }
                            }
                        };
                        match txn.delete(rel, tid) {
                            // "T_j will not be able to process tuples of R_i
                            // that have already been deleted" — consistent.
                            Ok(Some(_)) => applied.push((change.clone(), tid)),
                            Ok(None) => {}
                            Err(Error::Deadlock(_)) => return TxnOutcome::Deadlock,
                            Err(e) => return TxnOutcome::Failed(e),
                        }
                    }
                    WmChange::Insert(class, tuple) => {
                        match txn.insert(pdb.class_rel(*class), tuple.clone()) {
                            Ok(tid) => applied.push((change.clone(), tid)),
                            Err(Error::Deadlock(_)) => return TxnOutcome::Deadlock,
                            Err(e) => return TxnOutcome::Failed(e),
                        }
                    }
                }
            }

            // 4. Maintenance BEFORE commit: the transaction still holds
            //    every lock while the match structures (COND relations)
            //    are updated — one set-oriented `maintain_delta` pass over
            //    the transaction's whole delta set (§4.2 × §5.2), inside
            //    the engine critical section.
            let resolved: Vec<WmDelta> = applied
                .iter()
                .map(|(change, tid)| match change {
                    WmChange::Insert(class, tuple) => WmDelta {
                        insert: true,
                        class: *class,
                        tid: *tid,
                        tuple: tuple.clone(),
                    },
                    WmChange::Remove(class, tuple) => WmDelta {
                        insert: false,
                        class: *class,
                        tid: *tid,
                        tuple: tuple.clone(),
                    },
                })
                .collect();
            // Whether this firing consumed its own support: an applied
            // delete whose content matches one of the instantiation's
            // positive WMEs retires a conflict-set copy of it. Decided
            // here — from what the transaction itself did — because the
            // *maintenance delta* that reports the removal may belong to
            // a racing transaction: workers delete from shared storage
            // before entering the critical section, so whichever
            // maintenance pass runs first observes the combined state
            // and reports every copy's retirement in its own delta.
            let self_removed = applied.iter().any(|(change, _)| match change {
                WmChange::Remove(class, tuple) => inst
                    .wmes
                    .iter()
                    .any(|w| w.class == *class && &w.tuple == tuple),
                WmChange::Insert(..) => false,
            });
            let critical_ns = {
                let mut g = engine.lock();
                obs::prof_span!("exec.critical");
                let held = Instant::now();
                let start = g.tracer().enabled().then(Instant::now);
                let deltas = g.maintain_delta(&resolved);
                if let Some(start) = start {
                    let total_ns = start.elapsed().as_nanos() as u64;
                    trace_batch(&**g, &resolved, &deltas, total_ns);
                }
                let critical_ns = held.elapsed().as_nanos() as u64;
                if let Some(m) = g.tracer().metrics() {
                    m.record_critical_section(critical_ns);
                }
                critical_ns
            };

            // 5. Commit point. The firing's global sequence number is
            //    taken while the transaction still holds every lock: a
            //    conflicting transaction is blocked until this one
            //    releases at commit, so its own fetch_add is strictly
            //    later — for conflicting transactions `seq` IS the
            //    serialization order, and a serial replay in `seq` order
            //    reproduces the run.
            let seq = commit_seq.fetch_add(1, Ordering::SeqCst);
            tracer.emit(|| Event::Firing {
                seq,
                round,
                txn: txn_id,
                rule: inst.rule.0 as u32,
                rule_name: rule.name.clone(),
                wmes: inst.wmes_display(&rules),
                support: inst.why.support_display(),
            });
            wm_writes = applied.len();
            // A failed commit-time WAL sync rolls the WM changes back;
            // the instantiation stays unfired and is retried if still
            // applicable, like any other failed transaction.
            if let Err(e) = txn.commit() {
                return TxnOutcome::Failed(e);
            }
            TxnOutcome::Committed {
                halt: rhs.halt,
                writes: rhs.writes,
                critical_ns,
                self_removed,
            }
        })();
        match &outcome {
            TxnOutcome::Committed { .. } => {
                tracer.emit(|| Event::TxnCommit {
                    txn: txn_id,
                    writes: wm_writes,
                });
                if let Some(m) = tracer.metrics() {
                    m.record_txn(true);
                }
            }
            TxnOutcome::Invalid => {
                tracer.emit(|| Event::TxnAbort {
                    txn: txn_id,
                    reason: "invalidated".to_string(),
                });
                if let Some(m) = tracer.metrics() {
                    m.record_txn(false);
                }
            }
            TxnOutcome::Deadlock => {
                tracer.emit(|| Event::TxnAbort {
                    txn: txn_id,
                    reason: "deadlock".to_string(),
                });
                if let Some(m) = tracer.metrics() {
                    m.record_txn(false);
                }
            }
            TxnOutcome::Failed(e) => {
                tracer.emit(|| Event::TxnAbort {
                    txn: txn_id,
                    reason: format!("error: {e}"),
                });
                if let Some(m) = tracer.metrics() {
                    m.record_txn(false);
                }
            }
        }
        outcome
    }

    /// Run rounds of parallel firing until quiescence, halt, or
    /// `max_fired` committed productions. With an installed
    /// [`ScheduleOracle`], replays the recorded schedule serially instead.
    pub fn run(&mut self, max_fired: usize) -> ConcurrentStats {
        if self.oracle.is_some() {
            return self.run_replay(max_fired);
        }
        let mut stats = ConcurrentStats::default();
        // Refraction memory as a counted multiset: duplicate WMEs yield
        // equal instantiations, each entitled to one firing.
        let mut fired: HashMap<Instantiation, usize> = HashMap::new();
        // Deadlock victims awaiting a retry; lock-wait totals come from
        // the storage layer's counters, delta'd over this run.
        let mut deadlocked: Vec<Instantiation> = Vec::new();
        // Consecutive rounds that made no observable progress — nothing
        // committed *and* the candidate snapshot is byte-identical to the
        // previous round's (deadlock victims, failures, or a repeatedly
        // invalid instantiation that never leaves the conflict set):
        // capped, with exponential backoff between the retry rounds.
        let mut stalls = 0usize;
        let mut last_fingerprint: Option<u64> = None;
        let tracer = self.engine.lock().tracer().clone();
        let pdb = self.engine.lock().pdb().clone();
        let db = pdb.db().clone();
        let base = db.stats().snapshot();
        let shard_base = db.lock_manager().shard_stats();
        while stats.committed < max_fired && !stats.halted {
            // Snapshot Ψ_i: conflict set minus already-fired (refraction).
            let mut candidates: Vec<Instantiation> = {
                let g = self.engine.lock();
                let mut remaining = fired.clone();
                let mut out = Vec::new();
                for inst in g.conflict_set().items() {
                    if let Some(n) = remaining.get_mut(inst) {
                        if *n > 0 {
                            *n -= 1;
                            continue;
                        }
                    }
                    out.push(inst.clone());
                }
                out
            };
            if candidates.is_empty() {
                break;
            }
            stats.retries += prune_deadlocked(&mut deadlocked, &candidates);
            let fingerprint = {
                use std::hash::{Hash, Hasher};
                let mut h = std::collections::hash_map::DefaultHasher::new();
                candidates.hash(&mut h);
                h.finish()
            };
            let repeated = last_fingerprint == Some(fingerprint);
            last_fingerprint = Some(fingerprint);
            // Never dispatch more work than the remaining firing budget:
            // every queued transaction may commit, and a full round used
            // to overshoot `max_fired` by up to a whole round's worth.
            candidates.truncate(max_fired - stats.committed);
            stats.rounds += 1;
            let round = stats.rounds as u64;
            let dispatched = candidates.len();
            let round_start = Instant::now();
            // Shard-affine dispatch: each candidate is queued on its home
            // lock shard (the shard of its first positive CE's class
            // relation), and worker `w` drains the queue of shard
            // `w % shards` first, so co-resident workers mostly touch
            // their own shard's lock table and condvar. Workers steal
            // from the other shards' queues once their own is empty —
            // the affinity is a fast path, not a partition: no work is
            // stranded on an unstaffed shard.
            let n_shards = db.lock_manager().shard_count();
            let mut by_shard: Vec<VecDeque<Instantiation>> =
                (0..n_shards).map(|_| VecDeque::new()).collect();
            for inst in candidates {
                let home = inst
                    .wmes
                    .first()
                    .map(|w| db.lock_manager().shard_of(pdb.class_rel(w.class)))
                    .unwrap_or(0);
                by_shard[home].push_back(inst);
            }
            let queues: Arc<Vec<Mutex<VecDeque<Instantiation>>>> =
                Arc::new(by_shard.into_iter().map(Mutex::new).collect());
            let results: Arc<Mutex<Vec<(Instantiation, TxnOutcome)>>> =
                Arc::new(Mutex::new(Vec::new()));
            // A committed `(halt)` stops further dispatch *within* the
            // round: transactions already started may finish (they hold
            // locks and must release cleanly), but queued ones stay
            // unexecuted.
            let halt_flag = Arc::new(AtomicBool::new(false));
            let batching = self.batching;
            let commit_seq = &self.next_seq;
            crossbeam::thread::scope(|scope| {
                for w in 0..self.workers {
                    let queues = queues.clone();
                    let results = results.clone();
                    let engine = self.engine.clone();
                    let halt_flag = halt_flag.clone();
                    let start_shard = w % n_shards;
                    scope.spawn(move |_| loop {
                        if halt_flag.load(Ordering::Relaxed) {
                            break;
                        }
                        // Home queue first, then steal round-robin.
                        let inst = (0..queues.len()).find_map(|off| {
                            queues[(start_shard + off) % queues.len()]
                                .lock()
                                .pop_front()
                        });
                        let Some(inst) = inst else {
                            break;
                        };
                        let outcome = Self::run_one(&engine, &inst, batching, round, commit_seq);
                        if let TxnOutcome::Committed { halt: true, .. } = &outcome {
                            halt_flag.store(true, Ordering::Relaxed);
                        }
                        results.lock().push((inst, outcome));
                    });
                }
            })
            .expect("worker scope");
            let results = Arc::try_unwrap(results)
                .expect("workers joined")
                .into_inner();
            let executed = results.len();
            let mut round_committed = 0usize;
            let mut round_critical = 0u64;
            for (inst, outcome) in results {
                match outcome {
                    TxnOutcome::Committed {
                        halt,
                        writes,
                        critical_ns,
                        self_removed,
                    } => {
                        stats.committed += 1;
                        stats.writes.extend(writes);
                        stats.halted |= halt;
                        round_committed += 1;
                        round_critical += critical_ns;
                        // Refraction charges a firing only while the fired
                        // copy is still *in* the conflict set. A
                        // self-consuming RHS (its own maintenance removed a
                        // copy of this instantiation) already retired the
                        // fired copy; any equal-content copies left behind
                        // come from duplicate WMEs and may still fire.
                        if !self_removed {
                            *fired.entry(inst).or_insert(0) += 1;
                        }
                    }
                    TxnOutcome::Invalid => {
                        stats.invalidated += 1;
                        // The maintenance process will have removed it
                        // from the conflict set; if not (it was valid when
                        // snapshotted), the next snapshot sees the truth.
                    }
                    TxnOutcome::Deadlock => {
                        stats.deadlock_aborts += 1;
                        // Retried next round if still applicable.
                        deadlocked.push(inst);
                    }
                    TxnOutcome::Failed(e) => {
                        stats.failed += 1;
                        stats.errors.push(e.to_string());
                        // The transaction rolled back; the instantiation is
                        // not marked fired, so the next snapshot retries it
                        // if it is still applicable.
                    }
                }
            }
            stats.critical_ns += round_critical;
            let span_ns = round_start.elapsed().as_nanos() as u64;
            tracer.emit(|| Event::RoundSpan {
                round: stats.rounds as u64,
                candidates: dispatched,
                committed: round_committed,
                aborted: executed - round_committed,
                critical_ns: round_critical,
                span_ns,
            });
            // Keep refraction memory consistent with the conflict set:
            // drop (or trim) entries whose instantiations left it.
            {
                let g = self.engine.lock();
                let cs = g.conflict_set();
                let mut cs_counts: HashMap<&Instantiation, usize> = HashMap::new();
                for inst in cs.items() {
                    *cs_counts.entry(inst).or_insert(0) += 1;
                }
                fired.retain(|inst, n| {
                    *n = (*n).min(cs_counts.get(inst).copied().unwrap_or(0));
                    *n > 0
                });
            }
            if round_committed > 0 || !repeated {
                stalls = 0;
            } else {
                // No commit and an unchanged candidate set: deadlock
                // victims, failures, or an instantiation that re-selects
                // as invalid without leaving the conflict set. Retry with
                // backoff, but give up after a bounded streak instead of
                // spinning forever.
                stalls += 1;
                if stalls >= 32 {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_micros(50u64 << stalls.min(8)));
            }
        }
        let delta = db.stats().snapshot().since(&base);
        stats.lock_waits = delta.lock_waits;
        stats.lock_wait_ns = delta.lock_wait_ns;
        // Surface where the contention landed: per-shard wait deltas over
        // this run, journaled so traces show hot lock shards.
        for (i, (now, before)) in db
            .lock_manager()
            .shard_stats()
            .iter()
            .zip(&shard_base)
            .enumerate()
        {
            let waits = now.waits.saturating_sub(before.waits);
            let wait_ns = now.wait_ns.saturating_sub(before.wait_ns);
            if waits > 0 {
                stats.shard_contention.push((i as u32, waits, wait_ns));
                tracer.emit(|| Event::ShardContention {
                    shard: i as u32,
                    waits,
                    wait_ns,
                });
            }
        }
        stats
    }

    /// Deterministic replay: fire the oracle's recorded instantiations
    /// one at a time, in the recorded commit order. Each step snapshots
    /// the eligible candidates exactly like a live round, picks the one
    /// matching the oracle's head, and runs it through the same
    /// transaction path (`run_one`) — so locking, maintenance-before-
    /// commit, and refraction bookkeeping are identical; only the racing
    /// is gone. A step whose recorded instantiation is not eligible (or
    /// does not commit) stops the replay with
    /// [`ConcurrentStats::divergence`] set.
    fn run_replay(&mut self, max_fired: usize) -> ConcurrentStats {
        let mut stats = ConcurrentStats::default();
        let mut fired: HashMap<Instantiation, usize> = HashMap::new();
        let tracer = self.engine.lock().tracer().clone();
        let rules = self.engine.lock().pdb().rules().clone();
        let base = self.engine.lock().pdb().db().stats().snapshot();
        while stats.committed < max_fired && !stats.halted {
            let Some((want_rule, want_wmes)) = self.oracle.as_ref().and_then(|o| o.peek()).cloned()
            else {
                break; // schedule fully replayed
            };
            let candidates: Vec<Instantiation> = {
                let g = self.engine.lock();
                let mut remaining = fired.clone();
                let mut out = Vec::new();
                for inst in g.conflict_set().items() {
                    if let Some(n) = remaining.get_mut(inst) {
                        if *n > 0 {
                            *n -= 1;
                            continue;
                        }
                    }
                    out.push(inst.clone());
                }
                out
            };
            let Some(inst) = candidates.into_iter().find(|inst| {
                rules.rule(inst.rule).name == want_rule && inst.wmes_display(&rules) == want_wmes
            }) else {
                stats.divergence = Some(format!(
                    "replay diverged at firing {}: no eligible instantiation for {want_rule}: {want_wmes}",
                    stats.committed
                ));
                break;
            };
            stats.rounds += 1;
            let round = stats.rounds as u64;
            let round_start = Instant::now();
            let outcome = Self::run_one(&self.engine, &inst, self.batching, round, &self.next_seq);
            let mut round_committed = 0usize;
            let mut round_critical = 0u64;
            match outcome {
                TxnOutcome::Committed {
                    halt,
                    writes,
                    critical_ns,
                    self_removed,
                } => {
                    stats.committed += 1;
                    stats.writes.extend(writes);
                    stats.halted |= halt;
                    round_committed = 1;
                    round_critical = critical_ns;
                    stats.critical_ns += critical_ns;
                    if !self_removed {
                        *fired.entry(inst).or_insert(0) += 1;
                    }
                    self.oracle.as_mut().expect("oracle installed").advance();
                }
                TxnOutcome::Invalid => {
                    stats.invalidated += 1;
                    stats.divergence = Some(format!(
                        "replay diverged at firing {}: {want_rule}: {want_wmes} re-selected as invalid",
                        stats.committed
                    ));
                }
                TxnOutcome::Deadlock => {
                    // Impossible serially (one transaction at a time),
                    // but surfaced rather than swallowed if it happens.
                    stats.deadlock_aborts += 1;
                    stats.divergence = Some(format!(
                        "replay diverged at firing {}: {want_rule}: {want_wmes} hit a deadlock",
                        stats.committed
                    ));
                }
                TxnOutcome::Failed(e) => {
                    stats.failed += 1;
                    stats.errors.push(e.to_string());
                    stats.divergence = Some(format!(
                        "replay diverged at firing {}: {want_rule}: {want_wmes} failed: {e}",
                        stats.committed
                    ));
                }
            }
            let span_ns = round_start.elapsed().as_nanos() as u64;
            tracer.emit(|| Event::RoundSpan {
                round,
                candidates: 1,
                committed: round_committed,
                aborted: 1 - round_committed,
                critical_ns: round_critical,
                span_ns,
            });
            {
                let g = self.engine.lock();
                let cs = g.conflict_set();
                let mut cs_counts: HashMap<&Instantiation, usize> = HashMap::new();
                for inst in cs.items() {
                    *cs_counts.entry(inst).or_insert(0) += 1;
                }
                fired.retain(|inst, n| {
                    *n = (*n).min(cs_counts.get(inst).copied().unwrap_or(0));
                    *n > 0
                });
            }
            if stats.divergence.is_some() {
                break;
            }
        }
        let delta = self
            .engine
            .lock()
            .pdb()
            .db()
            .stats()
            .snapshot()
            .since(&base);
        stats.lock_waits = delta.lock_waits;
        stats.lock_wait_ns = delta.lock_wait_ns;
        stats
    }
}

/// Retire the previous round's deadlock victims against the current
/// candidate snapshot: victims still applicable count as retries (they
/// are about to re-execute); victims whose instantiation left the
/// conflict set are dropped. Either way the list is cleared — a victim
/// that deadlocks again this round re-enters it — so it can never grow
/// without bound on workloads where victims are invalidated by other
/// transactions instead of reappearing.
fn prune_deadlocked(deadlocked: &mut Vec<Instantiation>, candidates: &[Instantiation]) -> usize {
    let mut pool: HashMap<&Instantiation, usize> = HashMap::new();
    for c in candidates {
        *pool.entry(c).or_insert(0) += 1;
    }
    let mut retries = 0;
    for victim in deadlocked.drain(..) {
        if let Some(n) = pool.get_mut(&victim) {
            if *n > 0 {
                *n -= 1;
                retries += 1;
            }
        }
    }
    retries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{make_engine, EngineKind};
    use crate::pdb::ProductionDb;
    use ops5::ClassId;
    use relstore::tuple;

    fn setup(src: &str, kind: EngineKind) -> ConcurrentExecutor {
        let rs = ops5::compile(src).unwrap();
        let pdb = ProductionDb::new(rs).unwrap();
        ConcurrentExecutor::new(make_engine(kind, pdb), 4)
    }

    const COUNTER_RULES: &str = r#"
        (literalize Item n)
        (literalize Done n)
        (p Mark
            (Item ^n <N>)
            -(Done ^n <N>)
            -->
            (make Done ^n <N>))
    "#;

    #[test]
    fn concurrent_matches_sequential_outcome() {
        for kind in [EngineKind::Rete, EngineKind::Cond, EngineKind::Query] {
            let mut ex = setup(COUNTER_RULES, kind);
            {
                let eng = ex.engine();
                let mut g = eng.lock();
                for i in 0..8i64 {
                    g.insert(ClassId(0), tuple![i]);
                }
            }
            let stats = ex.run(1000);
            assert_eq!(stats.committed, 8, "{}", kind.label());
            let eng = ex.engine();
            let g = eng.lock();
            assert_eq!(g.pdb().wm_len(ClassId(1)), 8, "{}", kind.label());
            assert!(g.conflict_set().is_empty() || stats.halted);
        }
    }

    #[test]
    fn competing_deleters_fire_once_total() {
        // Two rules both want to remove the same tuple: serializability
        // means exactly one effective deletion and a consistent WM.
        let src = r#"
            (literalize A x)
            (literalize LogB x)
            (literalize LogC x)
            (p B (A ^x <V>) --> (remove 1) (make LogB ^x <V>))
            (p C (A ^x <V>) --> (remove 1) (make LogC ^x <V>))
        "#;
        let mut ex = setup(src, EngineKind::Rete);
        {
            let eng = ex.engine();
            let mut g = eng.lock();
            g.insert(ClassId(0), tuple![1]);
        }
        let stats = ex.run(100);
        let eng = ex.engine();
        let g = eng.lock();
        assert_eq!(g.pdb().wm_len(ClassId(0)), 0, "tuple deleted");
        let logs = g.pdb().wm_len(ClassId(1)) + g.pdb().wm_len(ClassId(2));
        // Both productions were applicable in Ψ1; per §5.2 the one that
        // loses the race still executes but cannot process the deleted
        // tuple. Our implementation skips it as invalidated, matching the
        // serial schedule where only one fires.
        assert_eq!(logs, 1, "exactly one log entry (stats: {stats:?})");
        assert_eq!(stats.committed, 1);
    }

    #[test]
    fn negative_dependence_is_checked() {
        // Mark fires once per Item even when many workers race: the
        // NOT EXISTS check under a relation lock prevents double Done.
        let mut ex = setup(COUNTER_RULES, EngineKind::Rete);
        {
            let eng = ex.engine();
            let mut g = eng.lock();
            for i in 0..4i64 {
                g.insert(ClassId(0), tuple![i % 2]); // duplicates!
            }
        }
        let _ = ex.run(100);
        let eng = ex.engine();
        let g = eng.lock();
        // Two distinct n values → exactly two Done tuples despite four
        // Items producing four instantiations initially.
        assert_eq!(g.pdb().wm_len(ClassId(1)), 2);
    }

    /// Regression: a deadlock victim whose instantiation never returns to
    /// the conflict set (another transaction invalidated it) used to stay
    /// in the victim list forever. Pruning runs against every candidate
    /// snapshot and clears the list each round.
    #[test]
    fn deadlock_victims_pruned_against_current_candidates() {
        let inst = |rule: usize, v: i64| rete::Instantiation {
            rule: ops5::RuleId(rule),
            wmes: vec![rete::Wme::new(ClassId(0), tuple![v])],
            why: rete::Provenance::default(),
        };
        // Victim 0 reappears in the candidates (a genuine retry); victim 1
        // was invalidated and must be dropped, not kept forever.
        let mut deadlocked = vec![inst(0, 1), inst(1, 2)];
        let candidates = vec![inst(0, 1), inst(2, 3)];
        let retries = prune_deadlocked(&mut deadlocked, &candidates);
        assert_eq!(retries, 1, "only the reappearing victim is a retry");
        assert!(deadlocked.is_empty(), "the victim list is always cleared");
        // Duplicate instantiations retire one victim each, not all at once.
        let mut deadlocked = vec![inst(0, 1), inst(0, 1)];
        let retries = prune_deadlocked(&mut deadlocked, &[inst(0, 1)]);
        assert_eq!(retries, 1, "multiset semantics: one candidate, one retry");
        assert!(deadlocked.is_empty());
    }

    /// Tentpole invariant: each committed §5 transaction performs exactly
    /// one set-oriented maintenance pass — one `BatchApplied` per
    /// `TxnCommit` — and every round emits one `RoundSpan`.
    #[test]
    fn one_batch_maintenance_per_committed_txn() {
        for kind in [EngineKind::Query, EngineKind::Rete] {
            let mut ex = setup(COUNTER_RULES, kind);
            {
                let eng = ex.engine();
                let mut g = eng.lock();
                for i in 0..6i64 {
                    g.insert(ClassId(0), tuple![i]);
                }
            }
            let tracer = obs::Tracer::new(obs::Sink::ring(4096));
            ex.set_tracer(tracer.clone());
            let stats = ex.run(1000);
            assert_eq!(stats.committed, 6, "{}", kind.label());
            let events = tracer.ring_events().unwrap();
            let commits = events.iter().filter(|e| e.kind() == "txn_commit").count();
            let batches = events
                .iter()
                .filter(|e| e.kind() == "batch_applied")
                .count();
            let rounds = events.iter().filter(|e| e.kind() == "round_span").count();
            assert_eq!(commits, stats.committed, "{}", kind.label());
            assert_eq!(
                batches,
                stats.committed,
                "{}: one maintain_delta per committed txn",
                kind.label()
            );
            assert_eq!(rounds, stats.rounds, "{}", kind.label());
            assert!(stats.critical_ns > 0, "{}", kind.label());
        }
    }

    /// Regression: `run(max_fired)` used to dispatch whole rounds and
    /// could overshoot the budget by up to a round's worth of commits.
    #[test]
    fn run_respects_fired_budget() {
        let mut ex = setup(COUNTER_RULES, EngineKind::Rete);
        {
            let eng = ex.engine();
            let mut g = eng.lock();
            for i in 0..8i64 {
                g.insert(ClassId(0), tuple![i]);
            }
        }
        let stats = ex.run(1);
        assert_eq!(stats.committed, 1, "budget of 1 means exactly 1 commit");
        let stats = ex.run(3);
        assert_eq!(stats.committed, 3, "resuming honors the new budget");
        let stats = ex.run(1000);
        assert_eq!(stats.committed, 4, "remainder drains to quiescence");
    }

    /// Regression: a committed `(halt)` only stopped *rounds*; queued
    /// instantiations of the same round all still executed. The shared
    /// halt flag stops in-round dispatch too.
    #[test]
    fn halt_stops_inround_dispatch() {
        // No `remove`, so all 8 instantiations stay valid: without the
        // in-round flag every one of them would commit in round 1.
        let src = r#"
            (literalize A x)
            (literalize Log x)
            (p Stop (A ^x <V>) --> (make Log ^x <V>) (halt))
        "#;
        let rs = ops5::compile(src).unwrap();
        let pdb = ProductionDb::new(rs).unwrap();
        let mut ex = ConcurrentExecutor::new(make_engine(EngineKind::Rete, pdb), 1);
        {
            let eng = ex.engine();
            let mut g = eng.lock();
            for i in 0..8i64 {
                g.insert(ClassId(0), tuple![i]);
            }
        }
        let stats = ex.run(1000);
        assert!(stats.halted);
        assert_eq!(
            stats.committed, 1,
            "single worker: halt stops the rest of the round's queue"
        );
    }

    #[test]
    fn halt_propagates() {
        let src = r#"
            (literalize A x)
            (p Stop (A ^x <V>) --> (remove 1) (halt))
        "#;
        let mut ex = setup(src, EngineKind::Rete);
        {
            let eng = ex.engine();
            let mut g = eng.lock();
            g.insert(ClassId(0), tuple![1]);
        }
        let stats = ex.run(100);
        assert!(stats.halted);
        assert_eq!(stats.committed, 1);
    }

    /// Firing keys `(rule_name, wmes)` in commit order, from a ring of
    /// recorded events.
    fn firing_keys(events: &[Event]) -> Vec<(String, String)> {
        let mut firings: Vec<(u64, String, String)> = events
            .iter()
            .filter_map(|e| match e {
                Event::Firing {
                    seq,
                    rule_name,
                    wmes,
                    ..
                } => Some((*seq, rule_name.clone(), wmes.clone())),
                _ => None,
            })
            .collect();
        firings.sort_by_key(|(seq, _, _)| *seq);
        firings.into_iter().map(|(_, r, w)| (r, w)).collect()
    }

    fn wm_snapshot(ex: &ConcurrentExecutor) -> Vec<(u32, String)> {
        let eng = ex.engine();
        let g = eng.lock();
        let mut out = Vec::new();
        for class in 0..g.pdb().class_count() {
            let cid = ClassId(class);
            for (_, t) in g.pdb().wm_scan(cid).unwrap() {
                out.push((class as u32, format!("{t:?}")));
            }
        }
        out.sort();
        out
    }

    /// Record a racy 4-worker run, then replay its commit schedule
    /// serially on a fresh executor: same firing sequence, same final WM.
    #[test]
    fn replay_reproduces_recorded_schedule() {
        let load = |ex: &mut ConcurrentExecutor| {
            let eng = ex.engine();
            let mut g = eng.lock();
            for i in 0..10i64 {
                g.insert(ClassId(0), tuple![i]);
            }
        };
        let mut rec = setup(COUNTER_RULES, EngineKind::Query);
        load(&mut rec);
        let tracer = obs::Tracer::new(obs::Sink::ring(65536));
        rec.set_tracer(tracer.clone());
        let rec_stats = rec.run(1000);
        assert_eq!(rec_stats.committed, 10);
        let keys = firing_keys(&tracer.ring_events().unwrap());
        assert_eq!(keys.len(), 10);

        let mut rep = setup(COUNTER_RULES, EngineKind::Query);
        load(&mut rep);
        let rep_tracer = obs::Tracer::new(obs::Sink::ring(65536));
        rep.set_tracer(rep_tracer.clone());
        rep.set_oracle(ScheduleOracle::new(keys.clone()));
        let rep_stats = rep.run(1000);
        assert_eq!(rep_stats.divergence, None);
        assert_eq!(rep_stats.committed, 10);
        assert_eq!(
            firing_keys(&rep_tracer.ring_events().unwrap()),
            keys,
            "replay reproduces the exact firing sequence"
        );
        assert_eq!(wm_snapshot(&rep), wm_snapshot(&rec), "final WM matches");
    }

    /// Replaying a schedule the current program cannot produce reports a
    /// divergence instead of panicking or spinning.
    #[test]
    fn replay_divergence_is_reported() {
        let mut ex = setup(COUNTER_RULES, EngineKind::Query);
        {
            let eng = ex.engine();
            let mut g = eng.lock();
            g.insert(ClassId(0), tuple![1]);
        }
        ex.set_oracle(ScheduleOracle::new(vec![(
            "Mark".into(),
            "no-such-wmes".into(),
        )]));
        let stats = ex.run(1000);
        assert_eq!(stats.committed, 0);
        let msg = stats.divergence.expect("divergence reported");
        assert!(msg.contains("no eligible instantiation"), "{msg}");
    }
}
