//! Property tests for the span profiler: random span trees are executed
//! for real (guards, drops, threads) and the aggregated profile must
//! reproduce their shape; merge is associative; the disabled path records
//! nothing; allocations are charged to the active span.

use std::collections::HashMap;
use std::sync::Mutex;

use proptest::prelude::*;

// Install the counting allocator in this test binary so allocation
// attribution is exercised end to end.
#[global_allocator]
static ALLOC: obs::alloc::CountingAlloc = obs::alloc::CountingAlloc;

/// The profiler is process-global; tests that enable it must not overlap.
static PROF_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    PROF_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

/// One step of a random well-nested span walk.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    /// Open span NAMES[i].
    Push(usize),
    /// Close the innermost open span (no-op on an empty stack).
    Pop,
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![2 => (0usize..NAMES.len()).prop_map(Op::Push), 1 => Just(Op::Pop)],
        1..48,
    )
}

/// Execute the walk with real guards and predict, per path, how many
/// times each span closes.
fn run_ops(ops: &[Op]) -> HashMap<Vec<&'static str>, u64> {
    let mut expected: HashMap<Vec<&'static str>, u64> = HashMap::new();
    let mut guards: Vec<obs::prof::SpanGuard> = Vec::new();
    let mut path: Vec<&'static str> = Vec::new();
    for op in ops {
        match *op {
            Op::Push(i) => {
                guards.push(obs::prof::span(NAMES[i]));
                path.push(NAMES[i]);
            }
            Op::Pop => {
                if let Some(g) = guards.pop() {
                    drop(g);
                    *expected.entry(path.clone()).or_default() += 1;
                    path.pop();
                }
            }
        }
    }
    // Close any spans still open, innermost first.
    while let Some(g) = guards.pop() {
        drop(g);
        *expected.entry(path.clone()).or_default() += 1;
        path.pop();
    }
    expected
}

/// Collect per-path call counts from a profile, checking the inclusive/
/// exclusive invariant at every node.
fn collect(p: &obs::Profile) -> HashMap<Vec<&'static str>, u64> {
    fn walk(
        n: &obs::prof::ProfNode,
        path: &mut Vec<&'static str>,
        out: &mut HashMap<Vec<&'static str>, u64>,
    ) {
        let name = NAMES
            .iter()
            .copied()
            .find(|s| *s == n.name)
            .expect("known span name");
        path.push(name);
        out.insert(path.clone(), n.calls);
        let kids: u64 = n.children.iter().map(|c| c.incl_ns).sum();
        assert!(
            n.incl_ns >= kids,
            "parent inclusive {} < children sum {} at {:?}",
            n.incl_ns,
            kids,
            path
        );
        assert_eq!(n.excl_ns(), n.incl_ns - kids, "exclusive = incl - children");
        for c in &n.children {
            walk(c, path, out);
        }
        path.pop();
    }
    let mut out = HashMap::new();
    let mut path = Vec::new();
    for r in &p.roots {
        walk(r, &mut path, &mut out);
    }
    out
}

/// Build a Profile directly from the ops (data only, no global state) —
/// input for the merge-associativity property.
fn profile_from_ops(ops: &[Op], scale: u64) -> obs::Profile {
    fn node(name: &str, ns: u64) -> obs::prof::ProfNode {
        obs::prof::ProfNode {
            name: name.to_string(),
            calls: 1,
            incl_ns: ns,
            allocs: 1,
            alloc_bytes: ns,
            children: Vec::new(),
        }
    }
    let mut root = node("", 0);
    let mut stack: Vec<obs::prof::ProfNode> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Push(n) => stack.push(node(NAMES[n], scale * (i as u64 + 1))),
            Op::Pop => {
                if let Some(done) = stack.pop() {
                    stack.last_mut().unwrap_or(&mut root).children.push(done);
                }
            }
        }
    }
    while let Some(done) = stack.pop() {
        stack.last_mut().unwrap_or(&mut root).children.push(done);
    }
    obs::Profile {
        roots: root.children,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn executed_tree_matches_profile(ops in ops_strategy()) {
        let _g = locked();
        obs::prof::reset();
        obs::prof::set_enabled(true);
        let expected = run_ops(&ops);
        obs::prof::set_enabled(false);
        let profile = obs::prof::take();
        let got = collect(&profile);
        // Every closed span path appears with its exact call count, and
        // nothing else does.
        prop_assert_eq!(got, expected);
        // Self times tile the tree: the sum of every node's exclusive
        // time equals the root total.
        let excl_sum: u64 = profile.hotspots(usize::MAX).iter().map(|h| h.self_ns).sum();
        prop_assert_eq!(excl_sum, profile.total_ns());
    }

    #[test]
    fn merge_is_associative(
        a in ops_strategy(),
        b in ops_strategy(),
        c in ops_strategy(),
    ) {
        let (pa, pb, pc) = (
            profile_from_ops(&a, 1),
            profile_from_ops(&b, 1000),
            profile_from_ops(&c, 1_000_000),
        );
        let mut left = pa.clone();
        left.merge(pb.clone());
        left.merge(pc.clone());
        let mut right_tail = pb;
        right_tail.merge(pc);
        let mut right = pa;
        right.merge(right_tail);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn disabled_path_records_nothing(ops in ops_strategy()) {
        let _g = locked();
        obs::prof::reset();
        obs::prof::set_enabled(false);
        run_ops(&ops);
        prop_assert!(obs::prof::take().is_empty());
    }
}

#[test]
fn cross_thread_merge_accumulates() {
    let _g = locked();
    obs::prof::reset();
    obs::prof::set_enabled(true);
    let handles: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(|| {
                obs::prof_span!("alpha");
                obs::prof_span!("beta");
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    obs::prof::set_enabled(false);
    let p = obs::prof::take();
    assert_eq!(p.find(&["alpha"]).expect("merged").calls, 4);
    assert_eq!(p.find(&["alpha", "beta"]).expect("nested").calls, 4);
}

#[test]
fn allocations_charge_the_active_span() {
    let _g = locked();
    obs::prof::reset();
    obs::alloc::reset();
    obs::prof::set_enabled(true);
    {
        obs::prof_span!("alloc_site");
        let v: Vec<u8> = Vec::with_capacity(1 << 16);
        std::hint::black_box(&v);
    }
    obs::prof::set_enabled(false);
    let p = obs::prof::take();
    let n = p.find(&["alloc_site"]).expect("span recorded");
    assert!(n.allocs >= 1, "allocs = {}", n.allocs);
    assert!(n.alloc_bytes >= 1 << 16, "alloc_bytes = {}", n.alloc_bytes);
    let stats = obs::alloc::stats();
    assert!(stats.bytes >= 1 << 16);
    assert!(stats.peak_bytes >= 1 << 16);
    assert!(stats.allocs >= 1);
}

#[test]
fn disabled_allocator_counts_nothing() {
    let _g = locked();
    obs::prof::reset();
    obs::prof::set_enabled(false);
    obs::alloc::reset();
    let v: Vec<u8> = Vec::with_capacity(4096);
    std::hint::black_box(&v);
    assert_eq!(obs::alloc::stats().bytes, 0);
    assert_eq!(obs::alloc::stats().allocs, 0);
}
