//! # obs — observability for the production-system runtime
//!
//! Dependency-free tracing, metrics, and reporting (std only, so every
//! other crate in the workspace — including `relstore` — can depend on it).

pub mod alloc;
pub mod event;
pub mod hist;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod prof;
pub mod report;
pub mod sink;
pub mod tracer;

pub use event::Event;
pub use hist::Log2Histogram;
pub use journal::{Journal, JournalMeta, LoadOp, LoadValue, JOURNAL_SCHEMA};
pub use metrics::MetricsRegistry;
pub use prof::Profile;
pub use report::RunReport;
pub use sink::{RingBuffer, Sink};
pub use tracer::Tracer;
