//! Where trace events go: nothing, a bounded ring, a JSONL stream, or a
//! human-readable watch printer. The enum (rather than a trait object)
//! keeps the disabled path a single discriminant check.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::event::Event;

/// Bounded in-memory event buffer; new events overwrite the oldest once
/// `capacity` is reached.
pub struct RingBuffer {
    capacity: usize,
    slots: Vec<Event>,
    /// Index of the slot the next push writes (once full).
    head: usize,
    /// Total events ever pushed (so `dropped()` is observable).
    pushed: u64,
}

impl RingBuffer {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingBuffer {
            capacity,
            slots: Vec::with_capacity(capacity),
            head: 0,
            pushed: 0,
        }
    }

    pub fn push(&mut self, event: Event) {
        self.pushed += 1;
        if self.slots.len() < self.capacity {
            self.slots.push(event);
        } else {
            self.slots[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Events ever pushed, including overwritten ones.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Events lost to overwriting.
    pub fn dropped(&self) -> u64 {
        self.pushed - self.slots.len() as u64
    }

    /// Buffered events, oldest first.
    pub fn to_vec(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.slots.len());
        out.extend_from_slice(&self.slots[self.head..]);
        out.extend_from_slice(&self.slots[..self.head]);
        out
    }
}

/// Streams one JSON object per line to any writer.
pub struct JsonlWriter {
    out: Box<dyn Write + Send>,
    seq: u64,
}

impl JsonlWriter {
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        JsonlWriter { out, seq: 0 }
    }

    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        Ok(JsonlWriter::new(Box::new(BufWriter::new(File::create(
            path,
        )?))))
    }

    pub fn write(&mut self, event: &Event) {
        let line = event.to_json(self.seq);
        self.seq += 1;
        // Trace output is best-effort; a full disk should not kill the run.
        let _ = self.out.write_all(line.as_bytes());
        let _ = self.out.write_all(b"\n");
    }

    pub fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// OPS5-`watch`-style human trace lines.
pub struct WatchPrinter {
    out: Box<dyn Write + Send>,
}

impl WatchPrinter {
    pub fn stdout() -> Self {
        WatchPrinter {
            out: Box::new(std::io::stdout()),
        }
    }

    pub fn new(out: Box<dyn Write + Send>) -> Self {
        WatchPrinter { out }
    }

    pub fn write(&mut self, event: &Event) {
        let _ = writeln!(self.out, "{}", event.watch_line());
    }

    pub fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// The sink behind a [`crate::Tracer`]. Mutexes make every variant Sync;
/// the `Null` path never touches them.
pub enum Sink {
    /// Drop every event (metrics may still be recorded by the tracer).
    Null,
    Ring(Mutex<RingBuffer>),
    Jsonl(Mutex<JsonlWriter>),
    Watch(Mutex<WatchPrinter>),
}

impl Sink {
    pub fn ring(capacity: usize) -> Self {
        Sink::Ring(Mutex::new(RingBuffer::new(capacity)))
    }

    pub fn jsonl_file<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        Ok(Sink::Jsonl(Mutex::new(JsonlWriter::create(path)?)))
    }

    pub fn jsonl_writer(out: Box<dyn Write + Send>) -> Self {
        Sink::Jsonl(Mutex::new(JsonlWriter::new(out)))
    }

    pub fn watch() -> Self {
        Sink::Watch(Mutex::new(WatchPrinter::stdout()))
    }

    pub fn accept(&self, event: Event) {
        match self {
            Sink::Null => {}
            Sink::Ring(ring) => ring.lock().expect("ring sink").push(event),
            Sink::Jsonl(w) => w.lock().expect("jsonl sink").write(&event),
            Sink::Watch(w) => w.lock().expect("watch sink").write(&event),
        }
    }

    pub fn flush(&self) {
        match self {
            Sink::Null | Sink::Ring(_) => {}
            Sink::Jsonl(w) => w.lock().expect("jsonl sink").flush(),
            Sink::Watch(w) => w.lock().expect("watch sink").flush(),
        }
    }

    /// Buffered events if this is a ring sink.
    pub fn ring_events(&self) -> Option<Vec<Event>> {
        match self {
            Sink::Ring(ring) => Some(ring.lock().expect("ring sink").to_vec()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64) -> Event {
        Event::CycleStart { cycle }
    }

    #[test]
    fn ring_wraps_oldest_first() {
        let mut r = RingBuffer::new(3);
        assert!(r.is_empty());
        for i in 0..5 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.total_pushed(), 5);
        assert_eq!(r.dropped(), 2);
        let got: Vec<u64> = r
            .to_vec()
            .iter()
            .map(|e| match e {
                Event::CycleStart { cycle } => *cycle,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(got, vec![2, 3, 4]);
    }

    #[test]
    fn ring_below_capacity_keeps_order() {
        let mut r = RingBuffer::new(8);
        r.push(ev(0));
        r.push(ev(1));
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.to_vec().len(), 2);
    }

    #[test]
    fn jsonl_writes_one_line_per_event_with_seq() {
        let buf: std::sync::Arc<Mutex<Vec<u8>>> = Default::default();
        struct Shared(std::sync::Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = Sink::jsonl_writer(Box::new(Shared(buf.clone())));
        sink.accept(ev(1));
        sink.accept(ev(2));
        sink.flush();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"seq\":0,"));
        assert!(lines[1].starts_with("{\"seq\":1,"));
    }
}
