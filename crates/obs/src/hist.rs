//! Lock-free log2-bucketed histogram for latency samples.
//!
//! Bucket `i` (for `i >= 1`) counts values in `[2^(i-1), 2^i)`; bucket 0
//! counts zeros. 64 buckets cover the whole `u64` range, so nanosecond
//! latencies up to ~584 years fit. Hand-rolled because the offline build
//! cannot pull in hdrhistogram.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::json::{u64_array, Obj};

/// Concurrent histogram with power-of-two buckets.
pub struct Log2Histogram {
    buckets: [AtomicU64; 65],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index: 0 for 0, otherwise 1 + floor(log2(v)).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

impl Log2Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Raw bucket counts, index 0..=64.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Non-empty buckets as `(lower_bound, upper_bound_exclusive, count)`.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.bucket_counts()
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, c)
            })
            .collect()
    }

    /// Approximate p-th percentile (0..=100), linearly interpolated
    /// within the bucket holding that rank so nearby percentiles don't
    /// collapse onto the same power-of-two step. Clamped to the observed
    /// max, so p100 is exact.
    pub fn percentile(&self, p: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * n as f64).clamp(1.0, n as f64);
        let mut seen = 0f64;
        for (i, &c) in self.bucket_counts().iter().enumerate() {
            if c == 0 {
                continue;
            }
            let cf = c as f64;
            if seen + cf >= rank {
                let (lo, hi) = bucket_bounds(i);
                let frac = ((rank - seen) / cf).clamp(0.0, 1.0);
                let v = lo + (frac * (hi - lo) as f64) as u64;
                return v.min(hi.saturating_sub(1)).min(self.max());
            }
            seen += cf;
        }
        self.max()
    }

    /// Render as a JSON object (count/sum/mean/max/p50/p95/p99 + buckets).
    pub fn to_json(&self) -> String {
        let counts = self.bucket_counts();
        let highest = counts.iter().rposition(|&c| c > 0).unwrap_or(0);
        Obj::new()
            .u64("count", self.count())
            .u64("sum", self.sum())
            .f64("mean", self.mean())
            .u64("max", self.max())
            .u64("p50", self.percentile(50.0))
            .u64("p95", self.percentile(95.0))
            .u64("p99", self.percentile(99.0))
            .raw("buckets", &u64_array(&counts[..=highest]))
            .finish()
    }
}

/// `(lower_bound, upper_bound_exclusive)` of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 1),
        64 => (1u64 << 63, u64::MAX),
        _ => (1u64 << (i - 1), 1u64 << i),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..=64 {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            assert!(lo < hi);
        }
    }

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index((1u64 << 63) - 1), 63);
        assert_eq!(bucket_index(1u64 << 63), 64);
    }

    #[test]
    fn percentile_interpolates_within_bucket() {
        let h = Log2Histogram::new();
        for _ in 0..100 {
            h.record(600); // all land in bucket [512, 1024)
        }
        let p10 = h.percentile(10.0);
        let p90 = h.percentile(90.0);
        assert!((512..=600).contains(&p10), "p10 = {p10}");
        assert!(p10 < p90, "interpolation, not a step: {p10} vs {p90}");
        assert_eq!(h.percentile(100.0), 600, "p100 clamps to observed max");
    }

    #[test]
    fn percentile_monotone() {
        let h = Log2Histogram::new();
        // Deterministic spread across many buckets, including 0.
        let mut v: u64 = 1;
        h.record(0);
        for _ in 0..200 {
            v = v
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            h.record(v >> 40);
        }
        let mut last = 0u64;
        for p in 0..=100 {
            let cur = h.percentile(p as f64);
            assert!(cur >= last, "p{p}: {cur} < {last}");
            last = cur;
        }
        assert_eq!(h.percentile(100.0), h.max());
    }

    #[test]
    fn record_and_stats() {
        let h = Log2Histogram::new();
        for v in [0u64, 1, 1, 5, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1007);
        assert_eq!(h.max(), 1000);
        let nz = h.nonzero_buckets();
        assert_eq!(nz, vec![(0, 1, 1), (1, 2, 2), (4, 8, 1), (512, 1024, 1)]);
        assert!(h.percentile(50.0) <= 7);
        assert!(h.percentile(100.0) >= 512);
        let json = h.to_json();
        assert!(json.contains("\"count\":5"), "{json}");
    }
}
