//! Hand-rolled JSON emission (the build environment is offline, so no
//! serde): string escaping plus tiny object/array builders that write
//! into a `String`.

/// Escape `s` per RFC 8259 and append it, including the surrounding
/// quotes.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Escaped, quoted copy of `s`.
pub fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(&mut out, s);
    out
}

/// Builder for one JSON object.
pub struct Obj {
    buf: String,
    first: bool,
}

impl Obj {
    pub fn new() -> Self {
        Obj {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        escape_into(&mut self.buf, k);
        self.buf.push(':');
    }

    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        escape_into(&mut self.buf, v);
        self
    }

    pub fn u64(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    pub fn i64(mut self, k: &str, v: i64) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    pub fn usize(self, k: &str, v: usize) -> Self {
        self.u64(k, v as u64)
    }

    pub fn f64(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        if v.is_finite() {
            self.buf.push_str(&format!("{v}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    pub fn bool(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Insert pre-rendered JSON (an object, array, or literal) verbatim.
    pub fn raw(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for Obj {
    fn default() -> Self {
        Obj::new()
    }
}

/// Builder for one JSON array of pre-rendered elements.
pub struct Arr {
    buf: String,
    first: bool,
}

impl Arr {
    pub fn new() -> Self {
        Arr {
            buf: String::from("["),
            first: true,
        }
    }

    /// Append pre-rendered JSON verbatim.
    pub fn raw(mut self, v: &str) -> Self {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push_str(v);
        self
    }

    pub fn finish(mut self) -> String {
        self.buf.push(']');
        self.buf
    }
}

impl Default for Arr {
    fn default() -> Self {
        Arr::new()
    }
}

/// Render a `u64` slice as a JSON array.
pub fn u64_array(vals: &[u64]) -> String {
    let mut a = Arr::new();
    for v in vals {
        a = a.raw(&v.to_string());
    }
    a.finish()
}

/// Parsed JSON value — the read side of this module, used by tooling
/// that must consume its own output (e.g. the bench regression gate
/// reading `BENCH_history.jsonl`). Minimal by design: numbers keep
/// their lexeme and convert on demand.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Number, kept as its source lexeme.
    Num(String),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse one JSON document. Rejects trailing non-whitespace.
pub fn parse(s: &str) -> Result<Value, String> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Value::Str(s) => s,
                    _ => return Err(format!("object key is not a string at byte {pos}")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                fields.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b't') => parse_lit(b, pos, "true").map(|_| Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false").map(|_| Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null").map(|_| Value::Null),
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
            {
                *pos += 1;
            }
            if *pos == start {
                return Err(format!("unexpected byte at {start}"));
            }
            let lex = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            // Validate the lexeme is a number before storing it.
            lex.parse::<f64>()
                .map_err(|_| format!("bad number {lex:?} at byte {start}"))?;
            Ok(Value::Num(lex.to_string()))
        }
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let cp =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        *pos += 4;
                        let ch = match cp {
                            0xD800..=0xDBFF => {
                                // Surrogate pair: expect \uDC00-\uDFFF next.
                                if b.get(*pos + 1..*pos + 3) != Some(b"\\u") {
                                    return Err("lone high surrogate".into());
                                }
                                let hex2 = b
                                    .get(*pos + 3..*pos + 7)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .ok_or("truncated low surrogate")?;
                                let lo = u32::from_str_radix(hex2, 16)
                                    .map_err(|_| "bad low surrogate digits")?;
                                if !(0xDC00..=0xDFFF).contains(&lo) {
                                    return Err("bad low surrogate".into());
                                }
                                *pos += 6;
                                char::from_u32(0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00))
                                    .ok_or("bad surrogate pair")?
                            }
                            0xDC00..=0xDFFF => return Err("lone low surrogate".into()),
                            cp => char::from_u32(cp).ok_or("bad codepoint")?,
                        };
                        out.push(ch);
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => return Err(format!("raw control byte at {pos}")),
            Some(_) => {
                // Copy one UTF-8 scalar (multi-byte sequences included).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escaped("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(escaped("\u{01}"), "\"\\u0001\"");
        assert_eq!(escaped("héllo"), "\"héllo\"");
    }

    #[test]
    fn object_and_array() {
        let inner = u64_array(&[1, 2, 3]);
        let json = Obj::new()
            .str("kind", "x\"y")
            .u64("n", 7)
            .bool("ok", true)
            .raw("buckets", &inner)
            .finish();
        assert_eq!(json, r#"{"kind":"x\"y","n":7,"ok":true,"buckets":[1,2,3]}"#);
    }

    #[test]
    fn parse_round_trips_builder_output() {
        let json = Obj::new()
            .str("kind", "x\"y\nz")
            .u64("n", 7)
            .f64("f", 1.5)
            .bool("ok", true)
            .raw("buckets", &u64_array(&[1, 2, 3]))
            .raw("null", "null")
            .finish();
        let v = parse(&json).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("x\"y\nz"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        let arr = v.get("buckets").unwrap().as_array().unwrap();
        assert_eq!(arr.iter().filter_map(Value::as_u64).sum::<u64>(), 6);
        assert_eq!(v.get("null"), Some(&Value::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_escapes_and_surrogates() {
        let v = parse(r#"{"s":"a\u0041\ud83d\ude00\t"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("aA😀\t"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("{\"a\":tru}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"\\ud800\"").is_err(), "lone surrogate");
        assert!(parse("--3").is_err(), "bad number lexeme");
    }

    #[test]
    fn parse_nested_and_whitespace() {
        let v = parse(" { \"a\" : [ { \"b\" : -2.5e1 } , null ] } ").unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].get("b").unwrap().as_f64(), Some(-25.0));
        assert_eq!(arr[1], Value::Null);
    }
}
