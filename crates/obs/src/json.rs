//! Hand-rolled JSON emission (the build environment is offline, so no
//! serde): string escaping plus tiny object/array builders that write
//! into a `String`.

/// Escape `s` per RFC 8259 and append it, including the surrounding
/// quotes.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Escaped, quoted copy of `s`.
pub fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(&mut out, s);
    out
}

/// Builder for one JSON object.
pub struct Obj {
    buf: String,
    first: bool,
}

impl Obj {
    pub fn new() -> Self {
        Obj {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        escape_into(&mut self.buf, k);
        self.buf.push(':');
    }

    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        escape_into(&mut self.buf, v);
        self
    }

    pub fn u64(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    pub fn i64(mut self, k: &str, v: i64) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    pub fn usize(self, k: &str, v: usize) -> Self {
        self.u64(k, v as u64)
    }

    pub fn f64(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        if v.is_finite() {
            self.buf.push_str(&format!("{v}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    pub fn bool(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Insert pre-rendered JSON (an object, array, or literal) verbatim.
    pub fn raw(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for Obj {
    fn default() -> Self {
        Obj::new()
    }
}

/// Builder for one JSON array of pre-rendered elements.
pub struct Arr {
    buf: String,
    first: bool,
}

impl Arr {
    pub fn new() -> Self {
        Arr {
            buf: String::from("["),
            first: true,
        }
    }

    /// Append pre-rendered JSON verbatim.
    pub fn raw(mut self, v: &str) -> Self {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push_str(v);
        self
    }

    pub fn finish(mut self) -> String {
        self.buf.push(']');
        self.buf
    }
}

impl Default for Arr {
    fn default() -> Self {
        Arr::new()
    }
}

/// Render a `u64` slice as a JSON array.
pub fn u64_array(vals: &[u64]) -> String {
    let mut a = Arr::new();
    for v in vals {
        a = a.raw(&v.to_string());
    }
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escaped("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(escaped("\u{01}"), "\"\\u0001\"");
        assert_eq!(escaped("héllo"), "\"héllo\"");
    }

    #[test]
    fn object_and_array() {
        let inner = u64_array(&[1, 2, 3]);
        let json = Obj::new()
            .str("kind", "x\"y")
            .u64("n", 7)
            .bool("ok", true)
            .raw("buckets", &inner)
            .finish();
        assert_eq!(json, r#"{"kind":"x\"y","n":7,"ok":true,"buckets":[1,2,3]}"#);
    }
}
