//! End-of-run JSON report: the metrics registry plus run-level facts the
//! caller knows (engine, workload, wall time, executor counters).

use crate::json::Obj;
use crate::metrics::MetricsRegistry;

/// Builder for the `--report` JSON document.
pub struct RunReport {
    engine: String,
    workload: String,
    wall_ns: u64,
    fired: u64,
    halted: bool,
    extra: Vec<(String, String)>,
}

impl RunReport {
    pub fn new(engine: &str, workload: &str) -> Self {
        RunReport {
            engine: engine.to_string(),
            workload: workload.to_string(),
            wall_ns: 0,
            fired: 0,
            halted: false,
            extra: Vec::new(),
        }
    }

    pub fn wall_ns(mut self, ns: u64) -> Self {
        self.wall_ns = ns;
        self
    }

    pub fn fired(mut self, fired: u64) -> Self {
        self.fired = fired;
        self
    }

    pub fn halted(mut self, halted: bool) -> Self {
        self.halted = halted;
        self
    }

    /// Attach a pre-rendered JSON value under `key`.
    pub fn section(mut self, key: &str, json: String) -> Self {
        self.extra.push((key.to_string(), json));
        self
    }

    /// Render, folding in everything the metrics registry aggregated.
    pub fn to_json(&self, metrics: &MetricsRegistry) -> String {
        let mut o = Obj::new()
            .str("engine", &self.engine)
            .str("workload", &self.workload)
            .u64("wall_ns", self.wall_ns)
            .u64("fired", self.fired)
            .bool("halted", self.halted)
            .raw("metrics", &metrics.to_json());
        for (k, v) in &self.extra {
            o = o.raw(k, v);
        }
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_embeds_metrics_and_sections() {
        let m = MetricsRegistry::new();
        m.record_fire(0, "R0", 50);
        let json = RunReport::new("cond", "paper-example-3")
            .wall_ns(1234)
            .fired(1)
            .section("concurrent", "{\"workers\":4}".to_string())
            .to_json(&m);
        assert!(json.starts_with("{\"engine\":\"cond\""), "{json}");
        assert!(json.contains("\"workload\":\"paper-example-3\""));
        assert!(json.contains("\"fires\":1"));
        assert!(json.contains("\"concurrent\":{\"workers\":4}"));
    }
}
