//! The trace vocabulary: one `Event` per interesting moment of the
//! recognize-act lifecycle (§3–§4 matching, OPS5 act phase, §5
//! transactions). Events carry only primitive ids and pre-rendered
//! strings so `obs` stays dependency-free and every crate can emit them.

use crate::json::Obj;

/// One traced moment. Field conventions: `class`/`rule` are the numeric
/// ids of the production DB, `*_name` the human names, durations are
/// nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A recognize-act cycle began.
    CycleStart { cycle: u64 },
    /// A recognize-act cycle finished (conflict-set size after act).
    CycleEnd {
        cycle: u64,
        conflict_len: usize,
        fired_total: u64,
    },
    /// A tuple entered working memory. `tid` is the packed storage tuple
    /// id it resolved to (0 when the emitter does not know it), so journal
    /// queries can join WM deltas against firing provenance.
    WmInsert {
        class: u32,
        class_name: String,
        tuple: String,
        tid: u64,
    },
    /// A tuple left working memory.
    WmRemove {
        class: u32,
        class_name: String,
        tuple: String,
        tid: u64,
    },
    /// One engine finished match maintenance for one WM change.
    /// `detect_ns`/`total_ns` are the §4.2.3 detect/maintain split when
    /// the engine reports it (0/0 otherwise).
    MatchMaintain {
        engine: &'static str,
        class: u32,
        insert: bool,
        adds: usize,
        removes: usize,
        detect_ns: u64,
        total_ns: u64,
    },
    /// One COND-store propagation partition finished (§4.2.3's
    /// parallelizable maintenance): the class whose store was updated,
    /// how many COND tuples the partition examined, its wall time, and
    /// whether it ran on its own thread.
    PropagateSpan {
        class: u32,
        class_name: String,
        scanned: u64,
        probes: u64,
        span_ns: u64,
        parallel: bool,
    },
    /// One whole delta batch finished maintenance (§4.2 set-oriented
    /// mode): how many WM inserts/deletes it carried and how many
    /// distinct rules its conflict deltas touched.
    BatchApplied {
        engine: &'static str,
        inserts: usize,
        deletes: usize,
        rules_awakened: usize,
        total_ns: u64,
    },
    /// One §5 synchronization round finished: how many candidate
    /// instantiations were dispatched to the workers, how many of them
    /// committed, how many aborted (deadlock victims, invalidations, or
    /// storage errors), and how much of the round's wall time
    /// (`span_ns`) was serialized inside the engine critical section
    /// (`critical_ns`, summed over the round's transactions).
    RoundSpan {
        round: u64,
        candidates: usize,
        committed: usize,
        aborted: usize,
        critical_ns: u64,
        span_ns: u64,
    },
    /// The conflict set gained or lost one instantiation. `support` is
    /// the provenance tuple-id list ("t3.1 t7.2") when the engine tracks
    /// it; `absent` the concrete negated patterns that must stay absent.
    ConflictDelta {
        add: bool,
        rule: u32,
        rule_name: String,
        wmes: String,
        support: String,
        absent: String,
    },
    /// Conflict resolution picked an instantiation to fire.
    RuleSelect {
        cycle: u64,
        rule: u32,
        rule_name: String,
        conflict_len: usize,
    },
    /// An instantiation's RHS ran to completion.
    RuleFire {
        cycle: u64,
        rule: u32,
        rule_name: String,
        rhs_ns: u64,
        inserts: usize,
        removes: usize,
    },
    /// Full derivation of one firing: which WM elements (by storage tuple
    /// id, when the engine tracks them) supported the instantiation, and
    /// which concrete patterns had to be absent (negated CEs).
    Derivation {
        rule: u32,
        rule_name: String,
        wmes: String,
        support: String,
        absent: String,
    },
    /// A §5 rule-transaction began.
    TxnBegin {
        txn: u64,
        rule: u32,
        rule_name: String,
    },
    /// A transaction had to wait for a lock.
    LockWait {
        txn: u64,
        target: String,
        mode: &'static str,
    },
    /// A lock was granted (wait_ns = 0 for an immediate grant).
    LockAcquire {
        txn: u64,
        target: String,
        mode: &'static str,
        wait_ns: u64,
    },
    /// The deadlock detector chose this transaction as victim.
    DeadlockVictim { txn: u64 },
    /// Snapshot of the waits-for graph at the moment a deadlock victim
    /// was chosen, so journals show *why* the transaction aborted. Each
    /// edge is rendered `t<waiter>->t<holder> <mode> <target>` and edges
    /// are `"; "`-joined.
    DeadlockGraph { victim: u64, edges: String },
    /// Contention summary for one lock-table shard over a run: how many
    /// lock requests blocked there and for how long in total. Emitted
    /// per shard with non-zero waits when a concurrent run finishes.
    ShardContention {
        shard: u32,
        waits: u64,
        wait_ns: u64,
    },
    /// One production committed its firing. `seq` is the global commit
    /// sequence number — assigned while the transaction still holds its
    /// locks, so for conflicting transactions it IS the serialization
    /// order and replaying firings serially in `seq` order reproduces
    /// the run. `round` is the §5 synchronization round (the cycle
    /// number under the sequential executor, where `txn` is 0).
    Firing {
        seq: u64,
        round: u64,
        txn: u64,
        rule: u32,
        rule_name: String,
        wmes: String,
        support: String,
    },
    /// A transaction rolled back. `reason` is `deadlock`, `invalidated`,
    /// or `error: …` with the storage error that forced the abort.
    TxnAbort { txn: u64, reason: String },
    /// A transaction committed.
    TxnCommit { txn: u64, writes: usize },
}

impl Event {
    /// Stable kind tag used as the JSONL discriminator.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::CycleStart { .. } => "cycle_start",
            Event::CycleEnd { .. } => "cycle_end",
            Event::WmInsert { .. } => "wm_insert",
            Event::WmRemove { .. } => "wm_remove",
            Event::MatchMaintain { .. } => "match_maintain",
            Event::PropagateSpan { .. } => "propagate_span",
            Event::BatchApplied { .. } => "batch_applied",
            Event::RoundSpan { .. } => "round_span",
            Event::ConflictDelta { .. } => "conflict_delta",
            Event::RuleSelect { .. } => "rule_select",
            Event::RuleFire { .. } => "rule_fire",
            Event::Derivation { .. } => "derivation",
            Event::TxnBegin { .. } => "txn_begin",
            Event::LockWait { .. } => "lock_wait",
            Event::LockAcquire { .. } => "lock_acquire",
            Event::DeadlockVictim { .. } => "deadlock_victim",
            Event::DeadlockGraph { .. } => "deadlock_graph",
            Event::ShardContention { .. } => "shard_contention",
            Event::Firing { .. } => "firing",
            Event::TxnAbort { .. } => "txn_abort",
            Event::TxnCommit { .. } => "txn_commit",
        }
    }

    /// Render as a single JSON object (one JSONL line, no newline).
    pub fn to_json(&self, seq: u64) -> String {
        let o = Obj::new().u64("seq", seq).str("event", self.kind());
        match self {
            Event::CycleStart { cycle } => o.u64("cycle", *cycle).finish(),
            Event::CycleEnd {
                cycle,
                conflict_len,
                fired_total,
            } => o
                .u64("cycle", *cycle)
                .usize("conflict_len", *conflict_len)
                .u64("fired_total", *fired_total)
                .finish(),
            Event::WmInsert {
                class,
                class_name,
                tuple,
                tid,
            }
            | Event::WmRemove {
                class,
                class_name,
                tuple,
                tid,
            } => o
                .u64("class", *class as u64)
                .str("class_name", class_name)
                .str("tuple", tuple)
                .u64("tid", *tid)
                .finish(),
            Event::MatchMaintain {
                engine,
                class,
                insert,
                adds,
                removes,
                detect_ns,
                total_ns,
            } => o
                .str("engine", engine)
                .u64("class", *class as u64)
                .bool("insert", *insert)
                .usize("adds", *adds)
                .usize("removes", *removes)
                .u64("detect_ns", *detect_ns)
                .u64("total_ns", *total_ns)
                .finish(),
            Event::PropagateSpan {
                class,
                class_name,
                scanned,
                probes,
                span_ns,
                parallel,
            } => o
                .u64("class", *class as u64)
                .str("class_name", class_name)
                .u64("scanned", *scanned)
                .u64("probes", *probes)
                .u64("span_ns", *span_ns)
                .bool("parallel", *parallel)
                .finish(),
            Event::BatchApplied {
                engine,
                inserts,
                deletes,
                rules_awakened,
                total_ns,
            } => o
                .str("engine", engine)
                .usize("inserts", *inserts)
                .usize("deletes", *deletes)
                .usize("rules_awakened", *rules_awakened)
                .u64("total_ns", *total_ns)
                .finish(),
            Event::RoundSpan {
                round,
                candidates,
                committed,
                aborted,
                critical_ns,
                span_ns,
            } => o
                .u64("round", *round)
                .usize("candidates", *candidates)
                .usize("committed", *committed)
                .usize("aborted", *aborted)
                .u64("critical_ns", *critical_ns)
                .u64("span_ns", *span_ns)
                .finish(),
            Event::ConflictDelta {
                add,
                rule,
                rule_name,
                wmes,
                support,
                absent,
            } => o
                .str("op", if *add { "add" } else { "remove" })
                .u64("rule", *rule as u64)
                .str("rule_name", rule_name)
                .str("wmes", wmes)
                .str("support", support)
                .str("absent", absent)
                .finish(),
            Event::RuleSelect {
                cycle,
                rule,
                rule_name,
                conflict_len,
            } => o
                .u64("cycle", *cycle)
                .u64("rule", *rule as u64)
                .str("rule_name", rule_name)
                .usize("conflict_len", *conflict_len)
                .finish(),
            Event::RuleFire {
                cycle,
                rule,
                rule_name,
                rhs_ns,
                inserts,
                removes,
            } => o
                .u64("cycle", *cycle)
                .u64("rule", *rule as u64)
                .str("rule_name", rule_name)
                .u64("rhs_ns", *rhs_ns)
                .usize("inserts", *inserts)
                .usize("removes", *removes)
                .finish(),
            Event::Derivation {
                rule,
                rule_name,
                wmes,
                support,
                absent,
            } => o
                .u64("rule", *rule as u64)
                .str("rule_name", rule_name)
                .str("wmes", wmes)
                .str("support", support)
                .str("absent", absent)
                .finish(),
            Event::TxnBegin {
                txn,
                rule,
                rule_name,
            } => o
                .u64("txn", *txn)
                .u64("rule", *rule as u64)
                .str("rule_name", rule_name)
                .finish(),
            Event::LockWait { txn, target, mode } => o
                .u64("txn", *txn)
                .str("target", target)
                .str("mode", mode)
                .finish(),
            Event::LockAcquire {
                txn,
                target,
                mode,
                wait_ns,
            } => o
                .u64("txn", *txn)
                .str("target", target)
                .str("mode", mode)
                .u64("wait_ns", *wait_ns)
                .finish(),
            Event::DeadlockVictim { txn } => o.u64("txn", *txn).finish(),
            Event::DeadlockGraph { victim, edges } => {
                o.u64("victim", *victim).str("edges", edges).finish()
            }
            Event::ShardContention {
                shard,
                waits,
                wait_ns,
            } => o
                .u64("shard", u64::from(*shard))
                .u64("waits", *waits)
                .u64("wait_ns", *wait_ns)
                .finish(),
            Event::Firing {
                seq: fseq,
                round,
                txn,
                rule,
                rule_name,
                wmes,
                support,
            } => o
                .u64("fseq", *fseq)
                .u64("round", *round)
                .u64("txn", *txn)
                .u64("rule", *rule as u64)
                .str("rule_name", rule_name)
                .str("wmes", wmes)
                .str("support", support)
                .finish(),
            Event::TxnAbort { txn, reason } => o.u64("txn", *txn).str("reason", reason).finish(),
            Event::TxnCommit { txn, writes } => {
                o.u64("txn", *txn).usize("writes", *writes).finish()
            }
        }
    }

    /// Render in the spirit of OPS5's `(watch 2)` trace: one short human
    /// line per event.
    pub fn watch_line(&self) -> String {
        match self {
            Event::CycleStart { cycle } => format!("-- cycle {cycle} --"),
            Event::CycleEnd {
                cycle,
                conflict_len,
                fired_total,
            } => {
                format!("   cycle {cycle} done: conflict={conflict_len} fired={fired_total}")
            }
            Event::WmInsert {
                class_name, tuple, ..
            } => {
                format!("=> wm: ({class_name}{tuple})")
            }
            Event::WmRemove {
                class_name, tuple, ..
            } => {
                format!("<= wm: ({class_name}{tuple})")
            }
            Event::MatchMaintain {
                engine,
                adds,
                removes,
                total_ns,
                ..
            } => {
                format!("   match[{engine}]: +{adds}/-{removes} in {total_ns}ns")
            }
            Event::PropagateSpan {
                class_name,
                scanned,
                probes,
                span_ns,
                parallel,
                ..
            } => {
                let mode = if *parallel { "par" } else { "seq" };
                format!(
                    "   prop[{mode}] COND-{class_name}: {scanned} scanned / {probes} probes in {span_ns}ns"
                )
            }
            Event::BatchApplied {
                engine,
                inserts,
                deletes,
                rules_awakened,
                total_ns,
            } => {
                format!(
                    "   batch[{engine}]: +{inserts}/-{deletes} wm -> {rules_awakened} rule(s) in {total_ns}ns"
                )
            }
            Event::RoundSpan {
                round,
                candidates,
                committed,
                aborted,
                critical_ns,
                span_ns,
            } => {
                format!(
                    "   round {round}: {committed}/{candidates} committed ({aborted} aborted), critical {critical_ns}ns of {span_ns}ns"
                )
            }
            Event::ConflictDelta {
                add,
                rule_name,
                wmes,
                ..
            } => {
                format!("   cs{} {rule_name}: {wmes}", if *add { '+' } else { '-' })
            }
            Event::RuleSelect {
                rule_name,
                conflict_len,
                ..
            } => {
                format!("   select {rule_name} (of {conflict_len})")
            }
            Event::RuleFire {
                cycle, rule_name, ..
            } => format!("{cycle}. {rule_name}"),
            Event::Derivation {
                rule_name,
                wmes,
                support,
                absent,
                ..
            } => {
                let mut line = format!("   because {rule_name}: {wmes}");
                if !support.is_empty() {
                    line.push_str(&format!(" [{support}]"));
                }
                if !absent.is_empty() {
                    line.push_str(&format!(" absent: {absent}"));
                }
                line
            }
            Event::TxnBegin { txn, rule_name, .. } => {
                format!("   txn{txn} begin ({rule_name})")
            }
            Event::LockWait { txn, target, mode } => {
                format!("   txn{txn} waits {mode} {target}")
            }
            Event::LockAcquire {
                txn,
                target,
                mode,
                wait_ns,
            } => {
                format!("   txn{txn} holds {mode} {target} (waited {wait_ns}ns)")
            }
            Event::DeadlockVictim { txn } => format!("   txn{txn} DEADLOCK victim"),
            Event::DeadlockGraph { victim, edges } => {
                format!("   txn{victim} deadlock graph: {edges}")
            }
            Event::ShardContention {
                shard,
                waits,
                wait_ns,
            } => {
                format!("   lock shard {shard}: {waits} waits, {wait_ns}ns blocked")
            }
            Event::Firing {
                seq,
                round,
                rule_name,
                wmes,
                ..
            } => {
                format!("{seq}. {rule_name} (round {round}): {wmes}")
            }
            Event::TxnAbort { txn, reason } => format!("   txn{txn} abort: {reason}"),
            Event::TxnCommit { txn, writes } => {
                format!("   txn{txn} commit ({writes} writes)")
            }
        }
    }

    /// Parse one JSONL line produced by [`Event::to_json`] back into the
    /// sink sequence number and the event — the read side of the
    /// `sellis88-journal/v1` schema. Every variant round-trips; unknown
    /// kinds and missing fields are errors, so journal readers fail
    /// loudly on schema drift instead of silently dropping records.
    pub fn from_json(line: &str) -> Result<(u64, Event), String> {
        let v = crate::json::parse(line)?;
        let seq = field_u64(&v, "seq")?;
        let kind = field_str(&v, "event")?;
        let event = match kind.as_str() {
            "cycle_start" => Event::CycleStart {
                cycle: field_u64(&v, "cycle")?,
            },
            "cycle_end" => Event::CycleEnd {
                cycle: field_u64(&v, "cycle")?,
                conflict_len: field_usize(&v, "conflict_len")?,
                fired_total: field_u64(&v, "fired_total")?,
            },
            "wm_insert" => Event::WmInsert {
                class: field_u64(&v, "class")? as u32,
                class_name: field_str(&v, "class_name")?,
                tuple: field_str(&v, "tuple")?,
                tid: field_u64(&v, "tid")?,
            },
            "wm_remove" => Event::WmRemove {
                class: field_u64(&v, "class")? as u32,
                class_name: field_str(&v, "class_name")?,
                tuple: field_str(&v, "tuple")?,
                tid: field_u64(&v, "tid")?,
            },
            "match_maintain" => Event::MatchMaintain {
                engine: field_static(&v, "engine", ENGINE_LABELS)?,
                class: field_u64(&v, "class")? as u32,
                insert: field_bool(&v, "insert")?,
                adds: field_usize(&v, "adds")?,
                removes: field_usize(&v, "removes")?,
                detect_ns: field_u64(&v, "detect_ns")?,
                total_ns: field_u64(&v, "total_ns")?,
            },
            "propagate_span" => Event::PropagateSpan {
                class: field_u64(&v, "class")? as u32,
                class_name: field_str(&v, "class_name")?,
                scanned: field_u64(&v, "scanned")?,
                probes: field_u64(&v, "probes")?,
                span_ns: field_u64(&v, "span_ns")?,
                parallel: field_bool(&v, "parallel")?,
            },
            "batch_applied" => Event::BatchApplied {
                engine: field_static(&v, "engine", ENGINE_LABELS)?,
                inserts: field_usize(&v, "inserts")?,
                deletes: field_usize(&v, "deletes")?,
                rules_awakened: field_usize(&v, "rules_awakened")?,
                total_ns: field_u64(&v, "total_ns")?,
            },
            "round_span" => Event::RoundSpan {
                round: field_u64(&v, "round")?,
                candidates: field_usize(&v, "candidates")?,
                committed: field_usize(&v, "committed")?,
                aborted: field_usize(&v, "aborted")?,
                critical_ns: field_u64(&v, "critical_ns")?,
                span_ns: field_u64(&v, "span_ns")?,
            },
            "conflict_delta" => Event::ConflictDelta {
                add: match field_str(&v, "op")?.as_str() {
                    "add" => true,
                    "remove" => false,
                    other => return Err(format!("bad conflict_delta op {other:?}")),
                },
                rule: field_u64(&v, "rule")? as u32,
                rule_name: field_str(&v, "rule_name")?,
                wmes: field_str(&v, "wmes")?,
                support: field_str(&v, "support")?,
                absent: field_str(&v, "absent")?,
            },
            "rule_select" => Event::RuleSelect {
                cycle: field_u64(&v, "cycle")?,
                rule: field_u64(&v, "rule")? as u32,
                rule_name: field_str(&v, "rule_name")?,
                conflict_len: field_usize(&v, "conflict_len")?,
            },
            "rule_fire" => Event::RuleFire {
                cycle: field_u64(&v, "cycle")?,
                rule: field_u64(&v, "rule")? as u32,
                rule_name: field_str(&v, "rule_name")?,
                rhs_ns: field_u64(&v, "rhs_ns")?,
                inserts: field_usize(&v, "inserts")?,
                removes: field_usize(&v, "removes")?,
            },
            "derivation" => Event::Derivation {
                rule: field_u64(&v, "rule")? as u32,
                rule_name: field_str(&v, "rule_name")?,
                wmes: field_str(&v, "wmes")?,
                support: field_str(&v, "support")?,
                absent: field_str(&v, "absent")?,
            },
            "txn_begin" => Event::TxnBegin {
                txn: field_u64(&v, "txn")?,
                rule: field_u64(&v, "rule")? as u32,
                rule_name: field_str(&v, "rule_name")?,
            },
            "lock_wait" => Event::LockWait {
                txn: field_u64(&v, "txn")?,
                target: field_str(&v, "target")?,
                mode: field_static(&v, "mode", LOCK_MODES)?,
            },
            "lock_acquire" => Event::LockAcquire {
                txn: field_u64(&v, "txn")?,
                target: field_str(&v, "target")?,
                mode: field_static(&v, "mode", LOCK_MODES)?,
                wait_ns: field_u64(&v, "wait_ns")?,
            },
            "deadlock_victim" => Event::DeadlockVictim {
                txn: field_u64(&v, "txn")?,
            },
            "deadlock_graph" => Event::DeadlockGraph {
                victim: field_u64(&v, "victim")?,
                edges: field_str(&v, "edges")?,
            },
            "shard_contention" => Event::ShardContention {
                shard: field_u64(&v, "shard")? as u32,
                waits: field_u64(&v, "waits")?,
                wait_ns: field_u64(&v, "wait_ns")?,
            },
            "firing" => Event::Firing {
                seq: field_u64(&v, "fseq")?,
                round: field_u64(&v, "round")?,
                txn: field_u64(&v, "txn")?,
                rule: field_u64(&v, "rule")? as u32,
                rule_name: field_str(&v, "rule_name")?,
                wmes: field_str(&v, "wmes")?,
                support: field_str(&v, "support")?,
            },
            "txn_abort" => Event::TxnAbort {
                txn: field_u64(&v, "txn")?,
                reason: field_str(&v, "reason")?,
            },
            "txn_commit" => Event::TxnCommit {
                txn: field_u64(&v, "txn")?,
                writes: field_usize(&v, "writes")?,
            },
            other => return Err(format!("unknown event kind {other:?}")),
        };
        Ok((seq, event))
    }
}

/// The `&'static str` engine labels events may carry. `from_json` interns
/// parsed labels against this table instead of leaking heap strings.
const ENGINE_LABELS: &[&str] = &["rete", "db-rete", "query", "cond", "marker"];
/// The `&'static str` lock modes events may carry.
const LOCK_MODES: &[&str] = &["shared", "exclusive"];

fn field<'a>(v: &'a crate::json::Value, k: &str) -> Result<&'a crate::json::Value, String> {
    v.get(k).ok_or_else(|| format!("missing field {k:?}"))
}

fn field_u64(v: &crate::json::Value, k: &str) -> Result<u64, String> {
    field(v, k)?
        .as_u64()
        .ok_or_else(|| format!("field {k:?} is not a u64"))
}

fn field_usize(v: &crate::json::Value, k: &str) -> Result<usize, String> {
    field_u64(v, k).map(|n| n as usize)
}

fn field_str(v: &crate::json::Value, k: &str) -> Result<String, String> {
    field(v, k)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("field {k:?} is not a string"))
}

fn field_bool(v: &crate::json::Value, k: &str) -> Result<bool, String> {
    match field(v, k)? {
        crate::json::Value::Bool(b) => Ok(*b),
        _ => Err(format!("field {k:?} is not a bool")),
    }
}

fn field_static(
    v: &crate::json::Value,
    k: &str,
    table: &[&'static str],
) -> Result<&'static str, String> {
    let s = field_str(v, k)?;
    table
        .iter()
        .find(|t| **t == s)
        .copied()
        .ok_or_else(|| format!("field {k:?} has unknown value {s:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_has_seq_and_kind() {
        let e = Event::RuleFire {
            cycle: 3,
            rule: 1,
            rule_name: "R\"1".into(),
            rhs_ns: 10,
            inserts: 1,
            removes: 2,
        };
        let line = e.to_json(9);
        assert!(
            line.starts_with("{\"seq\":9,\"event\":\"rule_fire\""),
            "{line}"
        );
        assert!(line.contains("\"rule_name\":\"R\\\"1\""), "{line}");
        assert!(!line.contains('\n'));
    }

    #[test]
    fn watch_lines_render() {
        let e = Event::DeadlockVictim { txn: 4 };
        assert!(e.watch_line().contains("DEADLOCK"));
    }
}
