//! The flight recorder's journal: a schema-stable (`sellis88-journal/v1`)
//! JSONL record of one run, self-contained enough to re-execute it.
//!
//! A journal file is one **meta** line (the program source, the initial
//! working-memory load, and the execution configuration) followed by one
//! [`Event`] line per traced moment, in total sink order. The meta line
//! makes replay self-contained: a reader needs nothing but the journal to
//! rebuild the production system, re-load WM, and re-drive the executor
//! along the recorded commit order (the `Firing` events).

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use crate::event::Event;
use crate::json::{self, Arr, Obj, Value};
use crate::sink::Sink;

/// The journal schema identifier carried by every meta line. Readers
/// reject other values, so schema drift fails loudly.
pub const JOURNAL_SCHEMA: &str = "sellis88-journal/v1";

/// One initial-load value. `obs` cannot depend on the storage layer's
/// value type (the dependency points the other way), so the journal
/// carries its own litte lattice and the recorder converts.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadValue {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
}

impl LoadValue {
    /// Render as a raw JSON value.
    fn to_json(&self) -> String {
        match self {
            LoadValue::Null => "null".to_string(),
            LoadValue::Bool(b) => b.to_string(),
            LoadValue::Int(i) => i.to_string(),
            // `{:?}` keeps a decimal point or exponent ("2.0", "1e300"),
            // so integers and floats stay distinguishable on re-read.
            LoadValue::Float(f) if f.is_finite() => format!("{f:?}"),
            LoadValue::Float(_) => "null".to_string(),
            LoadValue::Str(s) => json::escaped(s),
        }
    }

    fn from_json(v: &Value) -> Result<LoadValue, String> {
        Ok(match v {
            Value::Null => LoadValue::Null,
            Value::Bool(b) => LoadValue::Bool(*b),
            Value::Str(s) => LoadValue::Str(s.clone()),
            Value::Num(lex) => match lex.parse::<i64>() {
                Ok(i) => LoadValue::Int(i),
                Err(_) => LoadValue::Float(
                    lex.parse::<f64>()
                        .map_err(|_| format!("bad number {lex:?}"))?,
                ),
            },
            other => return Err(format!("bad load value {other:?}")),
        })
    }
}

/// One initial working-memory operation, applied before the run starts.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadOp {
    /// True for an insertion, false for a removal (by content).
    pub insert: bool,
    /// The numeric class id (the program's `literalize` order).
    pub class: u32,
    /// The tuple's values.
    pub values: Vec<LoadValue>,
}

impl LoadOp {
    fn to_json(&self) -> String {
        let mut vals = Arr::new();
        for v in &self.values {
            vals = vals.raw(&v.to_json());
        }
        Obj::new()
            .str("op", if self.insert { "insert" } else { "remove" })
            .u64("class", self.class as u64)
            .raw("values", &vals.finish())
            .finish()
    }

    fn from_json(v: &Value) -> Result<LoadOp, String> {
        let insert = match v.get("op").and_then(Value::as_str) {
            Some("insert") => true,
            Some("remove") => false,
            other => return Err(format!("bad load op {other:?}")),
        };
        let class = v
            .get("class")
            .and_then(Value::as_u64)
            .ok_or("load op missing class")? as u32;
        let values = v
            .get("values")
            .and_then(Value::as_array)
            .ok_or("load op missing values")?
            .iter()
            .map(LoadValue::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(LoadOp {
            insert,
            class,
            values,
        })
    }
}

/// The journal's header: everything needed to re-execute the recorded
/// run. Written as the file's first JSONL line.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalMeta {
    /// Matching-engine label (`rete`, `db-rete`, `query`, `cond`, `marker`).
    pub engine: String,
    /// `sequential` or `concurrent`.
    pub mode: String,
    /// Worker count of a concurrent run (1 for sequential).
    pub workers: usize,
    /// Whether §4.2 set-oriented batching was on.
    pub batching: bool,
    /// Conflict-resolution strategy name of a sequential run (`fifo`,
    /// `canonical`, …); replay re-instantiates it by name.
    pub strategy: String,
    /// The firing budget the run was given.
    pub max_fired: u64,
    /// Full OPS5 program source.
    pub program: String,
    /// Initial working-memory operations, in load order.
    pub load: Vec<LoadOp>,
}

impl JournalMeta {
    /// Render the meta line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut load = Arr::new();
        for op in &self.load {
            load = load.raw(&op.to_json());
        }
        Obj::new()
            .str("schema", JOURNAL_SCHEMA)
            .str("engine", &self.engine)
            .str("mode", &self.mode)
            .usize("workers", self.workers)
            .bool("batching", self.batching)
            .str("strategy", &self.strategy)
            .u64("max_fired", self.max_fired)
            .str("program", &self.program)
            .raw("load", &load.finish())
            .finish()
    }

    /// Parse a meta line; rejects schema identifiers other than
    /// [`JOURNAL_SCHEMA`].
    pub fn from_json(line: &str) -> Result<JournalMeta, String> {
        let v = json::parse(line)?;
        let schema = v
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("meta line has no schema field")?;
        if schema != JOURNAL_SCHEMA {
            return Err(format!(
                "unsupported journal schema {schema:?} (expected {JOURNAL_SCHEMA:?})"
            ));
        }
        let field = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("meta missing field {k:?}"))
        };
        let load = v
            .get("load")
            .and_then(Value::as_array)
            .ok_or("meta missing load")?
            .iter()
            .map(LoadOp::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(JournalMeta {
            engine: field("engine")?,
            mode: field("mode")?,
            workers: v
                .get("workers")
                .and_then(Value::as_u64)
                .ok_or("meta missing workers")? as usize,
            batching: match v.get("batching") {
                Some(Value::Bool(b)) => *b,
                _ => return Err("meta missing batching".into()),
            },
            strategy: field("strategy")?,
            max_fired: v
                .get("max_fired")
                .and_then(Value::as_u64)
                .ok_or("meta missing max_fired")?,
            program: field("program")?,
            load,
        })
    }
}

/// A parsed journal: the meta header plus every event, in sink order.
#[derive(Debug, Clone)]
pub struct Journal {
    pub meta: JournalMeta,
    /// `(sink sequence number, event)` pairs, in file order.
    pub events: Vec<(u64, Event)>,
}

impl Journal {
    /// Parse a whole journal text (meta line + event lines). Blank lines
    /// are skipped; any malformed line is an error with its line number.
    pub fn parse(text: &str) -> Result<Journal, String> {
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty());
        let (_, meta_line) = lines.next().ok_or("empty journal")?;
        let meta = JournalMeta::from_json(meta_line).map_err(|e| format!("line 1: {e}"))?;
        let mut events = Vec::new();
        for (i, line) in lines {
            let pair = Event::from_json(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            events.push(pair);
        }
        Ok(Journal { meta, events })
    }

    /// Read and parse a journal file.
    pub fn read_file<P: AsRef<Path>>(path: P) -> Result<Journal, String> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| format!("{}: {e}", path.as_ref().display()))?;
        Journal::parse(&text)
    }

    /// The run's committed firings in commit order (`Firing.seq`) — the
    /// serialization order a replay must reproduce.
    pub fn firings(&self) -> Vec<&Event> {
        let mut out: Vec<&Event> = self
            .events
            .iter()
            .filter(|(_, e)| matches!(e, Event::Firing { .. }))
            .map(|(_, e)| e)
            .collect();
        out.sort_by_key(|e| match e {
            Event::Firing { seq, .. } => *seq,
            _ => unreachable!(),
        });
        out
    }

    /// `(rule_name, wmes)` keys of the firings, in commit order — the
    /// schedule oracle fed to a replaying executor.
    pub fn firing_keys(&self) -> Vec<(String, String)> {
        self.firings()
            .iter()
            .map(|e| match e {
                Event::Firing {
                    rule_name, wmes, ..
                } => (rule_name.clone(), wmes.clone()),
                _ => unreachable!(),
            })
            .collect()
    }

    /// The final working memory implied by the journal's WM delta stream:
    /// a multiset of `(class, tuple)` rendered tuples. Zero-count entries
    /// are dropped, so two journals of equivalent runs compare equal.
    pub fn final_wm(&self) -> BTreeMap<(u32, String), i64> {
        self.wm_before(u64::MAX)
    }

    /// Working memory as of just before sink sequence number `seq`: the
    /// fold of every WM delta with an event sequence strictly below it.
    pub fn wm_before(&self, seq: u64) -> BTreeMap<(u32, String), i64> {
        let mut wm: BTreeMap<(u32, String), i64> = BTreeMap::new();
        for (s, e) in &self.events {
            if *s >= seq {
                continue;
            }
            match e {
                Event::WmInsert { class, tuple, .. } => {
                    *wm.entry((*class, tuple.clone())).or_insert(0) += 1;
                }
                Event::WmRemove { class, tuple, .. } => {
                    *wm.entry((*class, tuple.clone())).or_insert(0) -= 1;
                }
                _ => {}
            }
        }
        wm.retain(|_, n| *n != 0);
        wm
    }
}

/// A recording sink: writes the meta line, then streams events as JSONL
/// to the same writer. Install the returned [`Sink`] on a tracer and the
/// run records itself.
pub fn recording_sink_to(
    mut out: Box<dyn Write + Send>,
    meta: &JournalMeta,
) -> std::io::Result<Sink> {
    out.write_all(meta.to_json().as_bytes())?;
    out.write_all(b"\n")?;
    Ok(Sink::jsonl_writer(out))
}

/// [`recording_sink_to`] over a freshly created file.
pub fn recording_sink<P: AsRef<Path>>(path: P, meta: &JournalMeta) -> std::io::Result<Sink> {
    recording_sink_to(Box::new(BufWriter::new(File::create(path)?)), meta)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> JournalMeta {
        JournalMeta {
            engine: "query".into(),
            mode: "concurrent".into(),
            workers: 4,
            batching: true,
            strategy: "canonical".into(),
            max_fired: 100,
            program: "(literalize A x)\n(p R (A ^x <V>) --> (remove 1))".into(),
            load: vec![
                LoadOp {
                    insert: true,
                    class: 0,
                    values: vec![
                        LoadValue::Int(-3),
                        LoadValue::Str("a\"b".into()),
                        LoadValue::Float(2.5),
                        LoadValue::Null,
                        LoadValue::Bool(true),
                    ],
                },
                LoadOp {
                    insert: false,
                    class: 1,
                    values: vec![LoadValue::Float(2.0)],
                },
            ],
        }
    }

    #[test]
    fn meta_round_trips() {
        let m = meta();
        let line = m.to_json();
        let back = JournalMeta::from_json(&line).unwrap();
        assert_eq!(m, back);
        // Whole floats survive as floats, not ints.
        assert_eq!(back.load[1].values[0], LoadValue::Float(2.0));
    }

    #[test]
    fn meta_rejects_wrong_schema() {
        let line = meta().to_json().replace("journal/v1", "journal/v9");
        let err = JournalMeta::from_json(&line).unwrap_err();
        assert!(err.contains("unsupported journal schema"), "{err}");
    }

    #[test]
    fn journal_parses_and_folds_wm() {
        let mut text = meta().to_json();
        text.push('\n');
        let events = [
            Event::WmInsert {
                class: 0,
                class_name: "A".into(),
                tuple: "(1)".into(),
                tid: 7,
            },
            Event::WmInsert {
                class: 0,
                class_name: "A".into(),
                tuple: "(1)".into(),
                tid: 8,
            },
            Event::Firing {
                seq: 0,
                round: 1,
                txn: 3,
                rule: 0,
                rule_name: "R".into(),
                wmes: "A(1)".into(),
                support: "t0.0".into(),
            },
            Event::WmRemove {
                class: 0,
                class_name: "A".into(),
                tuple: "(1)".into(),
                tid: 7,
            },
        ];
        for (i, e) in events.iter().enumerate() {
            text.push_str(&e.to_json(i as u64));
            text.push('\n');
        }
        let j = Journal::parse(&text).unwrap();
        assert_eq!(j.events.len(), 4);
        assert_eq!(j.firing_keys(), vec![("R".to_string(), "A(1)".to_string())]);
        let wm = j.final_wm();
        assert_eq!(wm.get(&(0, "(1)".to_string())), Some(&1));
        // As of before the remove (seq 3): both inserts visible.
        assert_eq!(j.wm_before(3).get(&(0, "(1)".to_string())), Some(&2));
        assert_eq!(j.wm_before(0).len(), 0);
    }

    #[test]
    fn recording_sink_writes_meta_then_events() {
        use std::sync::{Arc, Mutex};
        let buf: Arc<Mutex<Vec<u8>>> = Default::default();
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = recording_sink_to(Box::new(Shared(buf.clone())), &meta()).unwrap();
        sink.accept(Event::CycleStart { cycle: 0 });
        sink.flush();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let j = Journal::parse(&text).unwrap();
        assert_eq!(j.meta, meta());
        assert_eq!(j.events.len(), 1);
    }
}
