//! In-process span profiler: thread-local scoped spans aggregated into a
//! call tree with inclusive/exclusive nanoseconds, call counts, and (via
//! [`crate::alloc::CountingAlloc`]) allocation attribution.
//!
//! Like [`crate::Tracer`], the disabled path is effectively free: one
//! relaxed atomic load per [`span`] call, no thread-local touch, no
//! allocation. When enabled, each thread builds its own interned call
//! tree (no locks on the hot path); trees are merged into a process-wide
//! accumulator when a thread exits or when [`take`] drains the calling
//! thread, so crossbeam COND partitions and concurrent-executor workers
//! fold into one profile.
//!
//! ```
//! obs::prof::set_enabled(true);
//! {
//!     obs::prof_span!("outer");
//!     obs::prof_span!("inner");
//! }
//! let p = obs::prof::take();
//! obs::prof::set_enabled(false);
//! assert_eq!(p.roots[0].name, "outer");
//! assert_eq!(p.roots[0].children[0].name, "inner");
//! ```

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::json::{Arr, Obj};

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: Mutex<Profile> = Mutex::new(Profile::new());

/// Is the profiler recording?
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn recording on or off. Turning it on does not clear previously
/// accumulated data; call [`take`] (or [`reset`]) first for a fresh run.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Drain and discard everything recorded so far (this thread + global).
pub fn reset() {
    let _ = take();
}

/// One interned node of a thread's call tree.
struct NodeRec {
    name: &'static str,
    parent: usize,
    calls: u64,
    incl_ns: u64,
    allocs: u64,
    alloc_bytes: u64,
}

/// Per-thread call tree. Node 0 is a synthetic root whose children are
/// the top-level spans seen on this thread.
struct ThreadProf {
    nodes: Vec<NodeRec>,
    index: HashMap<(usize, &'static str), usize>,
    cur: usize,
}

impl ThreadProf {
    fn new() -> Self {
        ThreadProf {
            nodes: vec![NodeRec {
                name: "",
                parent: 0,
                calls: 0,
                incl_ns: 0,
                allocs: 0,
                alloc_bytes: 0,
            }],
            index: HashMap::new(),
            cur: 0,
        }
    }

    fn intern(&mut self, parent: usize, name: &'static str) -> usize {
        if let Some(&i) = self.index.get(&(parent, name)) {
            return i;
        }
        let i = self.nodes.len();
        self.nodes.push(NodeRec {
            name,
            parent,
            calls: 0,
            incl_ns: 0,
            allocs: 0,
            alloc_bytes: 0,
        });
        self.index.insert((parent, name), i);
        i
    }

    /// Nest the flat arena into an owned [`Profile`].
    fn to_profile(&self) -> Profile {
        // Children of node i, in insertion order (nodes are appended, so a
        // forward scan preserves first-seen order).
        let mut out = Profile::new();
        let mut built: Vec<ProfNode> = self
            .nodes
            .iter()
            .map(|n| ProfNode {
                name: n.name.to_string(),
                calls: n.calls,
                incl_ns: n.incl_ns,
                allocs: n.allocs,
                alloc_bytes: n.alloc_bytes,
                children: Vec::new(),
            })
            .collect();
        // Attach children to parents from the deepest node up: a node's
        // children always have larger indices than the node itself.
        for i in (1..self.nodes.len()).rev() {
            let node = std::mem::replace(
                &mut built[i],
                ProfNode {
                    name: String::new(),
                    calls: 0,
                    incl_ns: 0,
                    allocs: 0,
                    alloc_bytes: 0,
                    children: Vec::new(),
                },
            );
            let parent = self.nodes[i].parent;
            built[parent].children.push(node);
        }
        // Reverse restores insertion order (children were pushed back-to-front).
        fn order(n: &mut ProfNode) {
            n.children.reverse();
            for c in &mut n.children {
                order(c);
            }
        }
        let mut root = built.swap_remove(0);
        order(&mut root);
        out.roots = root.children;
        out
    }
}

struct ProfCell(RefCell<Option<ThreadProf>>);

impl Drop for ProfCell {
    fn drop(&mut self) {
        // Thread exit: fold this thread's tree into the global profile so
        // scoped-thread and worker profiles survive their threads.
        if let Ok(mut b) = self.0.try_borrow_mut() {
            if let Some(tp) = b.take() {
                if let Ok(mut g) = GLOBAL.lock() {
                    g.merge(tp.to_profile());
                }
            }
        }
    }
}

thread_local! {
    static PROF: ProfCell = const { ProfCell(RefCell::new(None)) };
}

struct SpanData {
    start: Instant,
    node: usize,
    prev: usize,
}

/// RAII guard returned by [`span`]; records the span on drop.
pub struct SpanGuard(Option<SpanData>);

/// Open a scoped span. Free when the profiler is disabled. Use through
/// [`crate::prof_span!`] so the guard is named and dropped at scope end.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard(None);
    }
    SpanGuard(span_slow(name))
}

#[inline(never)]
fn span_slow(name: &'static str) -> Option<SpanData> {
    PROF.try_with(|c| {
        let mut b = c.0.try_borrow_mut().ok()?;
        let tp = b.get_or_insert_with(ThreadProf::new);
        let prev = tp.cur;
        let node = tp.intern(prev, name);
        tp.cur = node;
        Some(SpanData {
            start: Instant::now(),
            node,
            prev,
        })
    })
    .ok()
    .flatten()
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(d) = self.0.take() else { return };
        let elapsed = d.start.elapsed().as_nanos() as u64;
        let _ = PROF.try_with(|c| {
            if let Ok(mut b) = c.0.try_borrow_mut() {
                if let Some(tp) = b.as_mut() {
                    // take() may have swapped the tree out mid-span; the
                    // bounds checks make the stale guard a no-op.
                    if d.node < tp.nodes.len() {
                        tp.nodes[d.node].calls += 1;
                        tp.nodes[d.node].incl_ns += elapsed;
                    }
                    tp.cur = if d.prev < tp.nodes.len() { d.prev } else { 0 };
                }
            }
        });
    }
}

/// Charge an allocation to the active span of the calling thread. Called
/// by [`crate::alloc::CountingAlloc`]; safe to call from any context —
/// reentrant or destructor-time calls fall through to a no-op.
#[inline]
pub fn note_alloc(bytes: u64) {
    let _ = PROF.try_with(|c| {
        if let Ok(mut b) = c.0.try_borrow_mut() {
            if let Some(tp) = b.as_mut() {
                let cur = tp.cur;
                tp.nodes[cur].allocs += 1;
                tp.nodes[cur].alloc_bytes += bytes;
            }
        }
    });
}

/// Drain the calling thread's tree and the global accumulator into one
/// merged [`Profile`]. Threads still running keep their partial trees
/// (they merge on exit); call from the thread that owns the run after
/// worker/scoped threads have joined.
pub fn take() -> Profile {
    let _ = PROF.try_with(|c| {
        if let Ok(mut b) = c.0.try_borrow_mut() {
            if let Some(tp) = b.take() {
                if let Ok(mut g) = GLOBAL.lock() {
                    g.merge(tp.to_profile());
                }
            }
        }
    });
    match GLOBAL.lock() {
        Ok(mut g) => std::mem::take(&mut *g),
        Err(_) => Profile::new(),
    }
}

/// One aggregated span in a merged call tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfNode {
    pub name: String,
    pub calls: u64,
    /// Total nanoseconds with this span (or a descendant) open.
    pub incl_ns: u64,
    pub allocs: u64,
    pub alloc_bytes: u64,
    pub children: Vec<ProfNode>,
}

impl ProfNode {
    /// Self time: inclusive minus the children's inclusive time.
    pub fn excl_ns(&self) -> u64 {
        self.incl_ns
            .saturating_sub(self.children.iter().map(|c| c.incl_ns).sum())
    }

    fn merge_into(self, siblings: &mut Vec<ProfNode>) {
        let target = match siblings.iter().position(|t| t.name == self.name) {
            Some(i) => i,
            None => {
                // New name at this level: push an empty shell, then merge
                // our children one by one so duplicate same-name siblings
                // in the input collapse (keeps merge associative).
                siblings.push(ProfNode {
                    name: self.name,
                    calls: 0,
                    incl_ns: 0,
                    allocs: 0,
                    alloc_bytes: 0,
                    children: Vec::new(),
                });
                siblings.len() - 1
            }
        };
        let t = &mut siblings[target];
        t.calls += self.calls;
        t.incl_ns += self.incl_ns;
        t.allocs += self.allocs;
        t.alloc_bytes += self.alloc_bytes;
        for c in self.children {
            c.merge_into(&mut t.children);
        }
    }

    fn to_json_obj(&self) -> String {
        let mut kids = Arr::new();
        for c in &self.children {
            kids = kids.raw(&c.to_json_obj());
        }
        Obj::new()
            .str("name", &self.name)
            .u64("calls", self.calls)
            .u64("incl_ns", self.incl_ns)
            .u64("excl_ns", self.excl_ns())
            .u64("allocs", self.allocs)
            .u64("alloc_bytes", self.alloc_bytes)
            .raw("children", &kids.finish())
            .finish()
    }
}

/// One row of [`Profile::hotspots`]: a span path ranked by self time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hotspot {
    /// Semicolon-joined span path, e.g. `cond.maintain;probe`.
    pub path: String,
    pub self_ns: u64,
    pub calls: u64,
    pub allocs: u64,
    pub alloc_bytes: u64,
}

impl Hotspot {
    pub fn to_json(&self) -> String {
        Obj::new()
            .str("path", &self.path)
            .u64("self_ns", self.self_ns)
            .u64("calls", self.calls)
            .u64("allocs", self.allocs)
            .u64("alloc_bytes", self.alloc_bytes)
            .finish()
    }
}

/// A merged call tree (possibly from many threads / many runs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    pub roots: Vec<ProfNode>,
}

impl Profile {
    pub const fn new() -> Self {
        Profile { roots: Vec::new() }
    }

    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Fold `other` into `self`, summing nodes with equal paths. Both
    /// sides are canonicalized (duplicate same-name siblings collapse),
    /// which makes merging associative whatever the inputs.
    pub fn merge(&mut self, other: Profile) {
        let mine = std::mem::take(&mut self.roots);
        for r in mine {
            r.merge_into(&mut self.roots);
        }
        for r in other.roots {
            r.merge_into(&mut self.roots);
        }
    }

    /// Total inclusive nanoseconds across root spans — the profiler's
    /// attributed share of wall time.
    pub fn total_ns(&self) -> u64 {
        self.roots.iter().map(|r| r.incl_ns).sum()
    }

    /// Total bytes allocated under any span.
    pub fn total_alloc_bytes(&self) -> u64 {
        fn sum(n: &ProfNode) -> u64 {
            n.alloc_bytes + n.children.iter().map(sum).sum::<u64>()
        }
        self.roots.iter().map(sum).sum()
    }

    /// Look a node up by path.
    pub fn find(&self, path: &[&str]) -> Option<&ProfNode> {
        let mut nodes = &self.roots;
        let mut found = None;
        for name in path {
            found = nodes.iter().find(|n| n.name == *name)?.into();
            nodes = &found.unwrap().children;
        }
        found
    }

    /// Folded-stack lines (`inferno`/`flamegraph.pl` input): one line per
    /// span path carrying its *self* time, `prefix;a;b 1234`. Zero-self
    /// interior spans are skipped (their time lives in their children).
    pub fn folded(&self, prefix: &str) -> String {
        let mut out = String::new();
        fn walk(n: &ProfNode, stack: &mut String, out: &mut String) {
            let len = stack.len();
            if !stack.is_empty() {
                stack.push(';');
            }
            stack.push_str(&n.name);
            let excl = n.excl_ns();
            if excl > 0 {
                out.push_str(stack);
                out.push(' ');
                out.push_str(&excl.to_string());
                out.push('\n');
            }
            for c in &n.children {
                walk(c, stack, out);
            }
            stack.truncate(len);
        }
        let mut stack = String::from(prefix);
        for r in &self.roots {
            walk(r, &mut stack, &mut out);
        }
        out
    }

    /// The `n` span paths with the largest self time, descending.
    pub fn hotspots(&self, n: usize) -> Vec<Hotspot> {
        let mut all = Vec::new();
        fn walk(node: &ProfNode, path: &mut String, all: &mut Vec<Hotspot>) {
            let len = path.len();
            if !path.is_empty() {
                path.push(';');
            }
            path.push_str(&node.name);
            all.push(Hotspot {
                path: path.clone(),
                self_ns: node.excl_ns(),
                calls: node.calls,
                allocs: node.allocs,
                alloc_bytes: node.alloc_bytes,
            });
            for c in &node.children {
                walk(c, path, all);
            }
            path.truncate(len);
        }
        let mut path = String::new();
        for r in &self.roots {
            walk(r, &mut path, &mut all);
        }
        all.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.path.cmp(&b.path)));
        all.truncate(n);
        all
    }

    /// Render the call tree as a JSON array of nested span objects.
    pub fn to_json(&self) -> String {
        let mut a = Arr::new();
        for r in &self.roots {
            a = a.raw(&r.to_json_obj());
        }
        a.finish()
    }
}

#[macro_export]
macro_rules! prof_span {
    ($name:expr) => {
        let _obs_prof_span_guard = $crate::prof::span($name);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The profiler is process-global state; tests that enable it must not
    // interleave. (The integration suite has its own lock; unit tests
    // share this one.)
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = locked();
        reset();
        set_enabled(false);
        {
            crate::prof_span!("never");
        }
        assert!(take().is_empty());
    }

    #[test]
    fn nested_spans_build_a_tree() {
        let _g = locked();
        reset();
        set_enabled(true);
        {
            crate::prof_span!("a");
            for _ in 0..3 {
                crate::prof_span!("b");
            }
        }
        {
            crate::prof_span!("a");
        }
        set_enabled(false);
        let p = take();
        assert_eq!(p.roots.len(), 1);
        let a = &p.roots[0];
        assert_eq!(a.name, "a");
        assert_eq!(a.calls, 2);
        assert_eq!(a.children.len(), 1);
        assert_eq!(a.children[0].name, "b");
        assert_eq!(a.children[0].calls, 3);
        assert!(a.incl_ns >= a.children[0].incl_ns);
        assert_eq!(a.excl_ns(), a.incl_ns - a.children[0].incl_ns);
    }

    #[test]
    fn threads_merge_into_one_profile() {
        let _g = locked();
        reset();
        set_enabled(true);
        let h: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    crate::prof_span!("worker");
                    crate::prof_span!("inner");
                })
            })
            .collect();
        for t in h {
            t.join().unwrap();
        }
        set_enabled(false);
        let p = take();
        let w = p.find(&["worker"]).expect("merged worker span");
        assert_eq!(w.calls, 4);
        assert_eq!(p.find(&["worker", "inner"]).unwrap().calls, 4);
    }

    #[test]
    fn folded_and_hotspots_and_json() {
        let mut p = Profile::new();
        p.merge(Profile {
            roots: vec![ProfNode {
                name: "run".into(),
                calls: 1,
                incl_ns: 100,
                allocs: 2,
                alloc_bytes: 64,
                children: vec![ProfNode {
                    name: "probe".into(),
                    calls: 5,
                    incl_ns: 70,
                    allocs: 1,
                    alloc_bytes: 32,
                    children: vec![],
                }],
            }],
        });
        let folded = p.folded("cond");
        assert!(folded.contains("cond;run 30\n"), "{folded}");
        assert!(folded.contains("cond;run;probe 70\n"), "{folded}");
        let hs = p.hotspots(10);
        assert_eq!(hs[0].path, "run;probe");
        assert_eq!(hs[0].self_ns, 70);
        assert_eq!(hs[1].path, "run");
        assert_eq!(hs[1].self_ns, 30);
        let json = p.to_json();
        assert!(json.starts_with("[{\"name\":\"run\""), "{json}");
        assert!(json.contains("\"excl_ns\":30"), "{json}");
        assert_eq!(p.total_ns(), 100);
        assert_eq!(p.total_alloc_bytes(), 96);
    }

    #[test]
    fn merge_is_associative_on_fixed_trees() {
        fn leaf(name: &str, ns: u64) -> ProfNode {
            ProfNode {
                name: name.into(),
                calls: 1,
                incl_ns: ns,
                allocs: 0,
                alloc_bytes: ns,
                children: vec![],
            }
        }
        let a = Profile {
            roots: vec![leaf("x", 1)],
        };
        let b = Profile {
            roots: vec![leaf("x", 2), leaf("y", 4)],
        };
        let c = Profile {
            roots: vec![leaf("y", 8)],
        };
        let mut ab = a.clone();
        ab.merge(b.clone());
        let mut ab_c = ab.clone();
        ab_c.merge(c.clone());
        let mut bc = b;
        bc.merge(c);
        let mut a_bc = a;
        a_bc.merge(bc);
        assert_eq!(ab_c, a_bc);
    }
}
