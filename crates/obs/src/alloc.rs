//! Counting `#[global_allocator]` wrapper: process-wide allocation
//! totals plus per-span attribution through [`crate::prof`].
//!
//! `#[global_allocator]` is per-binary, so this crate only defines the
//! type; each binary that wants attribution installs it:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: obs::alloc::CountingAlloc = obs::alloc::CountingAlloc;
//! ```
//!
//! When the profiler is disabled the entire hook is one relaxed atomic
//! load per allocation; nothing is counted and no thread-local is
//! touched, so binaries that never enable profiling pay (almost) nothing.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE: AtomicI64 = AtomicI64::new(0);
static PEAK: AtomicI64 = AtomicI64::new(0);

/// Process-wide allocation counters since the last [`reset`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    /// Allocation calls observed (allocs + grow-reallocs).
    pub allocs: u64,
    /// Bytes requested across those calls.
    pub bytes: u64,
    /// Live bytes right now (clamped at 0: frees of pre-reset blocks).
    pub live_bytes: u64,
    /// High-water mark of `live_bytes`.
    pub peak_bytes: u64,
}

/// Snapshot the counters.
pub fn stats() -> AllocStats {
    AllocStats {
        allocs: ALLOCS.load(Ordering::Relaxed),
        bytes: BYTES.load(Ordering::Relaxed),
        live_bytes: LIVE.load(Ordering::Relaxed).max(0) as u64,
        peak_bytes: PEAK.load(Ordering::Relaxed).max(0) as u64,
    }
}

/// Zero all counters (start of a measured region).
pub fn reset() {
    ALLOCS.store(0, Ordering::Relaxed);
    BYTES.store(0, Ordering::Relaxed);
    LIVE.store(0, Ordering::Relaxed);
    PEAK.store(0, Ordering::Relaxed);
}

#[inline]
fn note_alloc(size: usize) {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    BYTES.fetch_add(size as u64, Ordering::Relaxed);
    let live = LIVE.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
    PEAK.fetch_max(live, Ordering::Relaxed);
    crate::prof::note_alloc(size as u64);
}

#[inline]
fn note_dealloc(size: usize) {
    LIVE.fetch_sub(size as i64, Ordering::Relaxed);
}

/// System-allocator wrapper that counts when the profiler is enabled.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() && crate::prof::enabled() {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() && crate::prof::enabled() {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        if crate::prof::enabled() {
            note_dealloc(layout.size());
        }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() && crate::prof::enabled() {
            note_dealloc(layout.size());
            note_alloc(new_size);
        }
        p
    }
}
