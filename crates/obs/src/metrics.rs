//! Aggregated run metrics, concurrently updatable: per-rule activity,
//! latency histograms for the match and act phases, per-COND-relation
//! propagation fan-out, a conflict-set-size timeline, detect/maintain
//! splits per engine, and lock-contention totals.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::hist::Log2Histogram;
use crate::json::{Arr, Obj};

/// Per-rule counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuleMetrics {
    pub name: String,
    /// RHS executions.
    pub fires: u64,
    /// Instantiations that entered the conflict set.
    pub instantiations_added: u64,
    /// Instantiations that left the conflict set.
    pub instantiations_removed: u64,
}

/// Per-COND-relation (class) propagation counters (§4.2).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClassMetrics {
    pub name: String,
    /// WM changes on this class.
    pub wm_changes: u64,
    /// Conflict-set deltas those changes fanned out to.
    pub fanout_deltas: u64,
}

/// Accumulated §4.2.3 detect/maintain split for one engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectSplit {
    pub detect_ns: u64,
    pub total_ns: u64,
    pub samples: u64,
}

/// The registry every layer records into. All methods take `&self`.
#[derive(Default)]
pub struct MetricsRegistry {
    rules: Mutex<HashMap<u32, RuleMetrics>>,
    classes: Mutex<HashMap<u32, ClassMetrics>>,
    splits: Mutex<HashMap<&'static str, DetectSplit>>,
    /// Latency of one match-maintenance call (ns).
    pub match_hist: Log2Histogram,
    /// Latency of one RHS execution (ns).
    pub rhs_hist: Log2Histogram,
    /// Latency of one COND-store propagation partition (ns), recorded per
    /// class partition whether it ran serially or on its own thread.
    pub propagate_hist: Log2Histogram,
    /// Time one §5 transaction held the engine critical section for its
    /// pre-commit maintenance pass (ns) — the serialized fraction of
    /// concurrent execution.
    pub critical_section_hist: Log2Histogram,
    /// `(cycle, conflict_len)` after each act phase.
    conflict_timeline: Mutex<Vec<(u64, usize)>>,
    cycles: AtomicU64,
    lock_waits: AtomicU64,
    lock_wait_ns: AtomicU64,
    deadlocks: AtomicU64,
    txn_commits: AtomicU64,
    txn_aborts: AtomicU64,
    /// σ-binding hash-index probes into COND pattern groups.
    pattern_probes: AtomicU64,
    /// Matching patterns examined across probe candidates and full scans.
    pattern_scanned: AtomicU64,
    /// Delta batches applied (§4.2 set-oriented maintenance).
    batches: AtomicU64,
    /// WM changes carried by those batches.
    batch_changes: AtomicU64,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record_fire(&self, rule: u32, name: &str, rhs_ns: u64) {
        let mut rules = self.rules.lock().expect("rules");
        let m = rules.entry(rule).or_default();
        if m.name.is_empty() {
            m.name = name.to_string();
        }
        m.fires += 1;
        drop(rules);
        self.rhs_hist.record(rhs_ns);
    }

    pub fn record_conflict_delta(&self, rule: u32, name: &str, add: bool) {
        let mut rules = self.rules.lock().expect("rules");
        let m = rules.entry(rule).or_default();
        if m.name.is_empty() {
            m.name = name.to_string();
        }
        if add {
            m.instantiations_added += 1;
        } else {
            m.instantiations_removed += 1;
        }
    }

    pub fn record_match(
        &self,
        engine: &'static str,
        class: u32,
        class_name: &str,
        deltas: usize,
        detect_ns: u64,
        total_ns: u64,
    ) {
        self.match_hist.record(total_ns);
        {
            let mut classes = self.classes.lock().expect("classes");
            let c = classes.entry(class).or_default();
            if c.name.is_empty() {
                c.name = class_name.to_string();
            }
            c.wm_changes += 1;
            c.fanout_deltas += deltas as u64;
        }
        let mut splits = self.splits.lock().expect("splits");
        let s = splits.entry(engine).or_default();
        s.detect_ns += detect_ns;
        s.total_ns += total_ns;
        s.samples += 1;
    }

    /// One COND propagation partition finished in `span_ns`.
    pub fn record_propagate(&self, span_ns: u64) {
        self.propagate_hist.record(span_ns);
    }

    /// One §5 transaction held the engine critical section for `ns`.
    pub fn record_critical_section(&self, ns: u64) {
        self.critical_section_hist.record(ns);
    }

    /// One COND pattern-group lookup: `probes` index probes (0 for a
    /// full scan) that examined `scanned` patterns.
    pub fn record_pattern_io(&self, probes: u64, scanned: u64) {
        self.pattern_probes.fetch_add(probes, Ordering::Relaxed);
        self.pattern_scanned.fetch_add(scanned, Ordering::Relaxed);
    }

    /// One delta batch of `changes` WM changes finished maintenance.
    pub fn record_batch(&self, changes: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_changes.fetch_add(changes, Ordering::Relaxed);
    }

    /// One WM change on `class` (batched path — per-change maintenance
    /// records the same count through [`MetricsRegistry::record_match`]).
    pub fn record_class_change(&self, class: u32, class_name: &str) {
        let mut classes = self.classes.lock().expect("classes");
        let c = classes.entry(class).or_default();
        if c.name.is_empty() {
            c.name = class_name.to_string();
        }
        c.wm_changes += 1;
    }

    pub fn record_cycle(&self, cycle: u64, conflict_len: usize) {
        self.cycles.fetch_max(cycle + 1, Ordering::Relaxed);
        self.conflict_timeline
            .lock()
            .expect("timeline")
            .push((cycle, conflict_len));
    }

    pub fn record_lock_wait(&self, wait_ns: u64) {
        self.lock_waits.fetch_add(1, Ordering::Relaxed);
        self.lock_wait_ns.fetch_add(wait_ns, Ordering::Relaxed);
    }

    pub fn record_deadlock(&self) {
        self.deadlocks.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_txn(&self, committed: bool) {
        if committed {
            self.txn_commits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.txn_aborts.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn rules(&self) -> Vec<(u32, RuleMetrics)> {
        let mut v: Vec<_> = self
            .rules
            .lock()
            .expect("rules")
            .iter()
            .map(|(k, m)| (*k, m.clone()))
            .collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }

    pub fn classes(&self) -> Vec<(u32, ClassMetrics)> {
        let mut v: Vec<_> = self
            .classes
            .lock()
            .expect("classes")
            .iter()
            .map(|(k, m)| (*k, m.clone()))
            .collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }

    pub fn splits(&self) -> Vec<(&'static str, DetectSplit)> {
        let mut v: Vec<_> = self
            .splits
            .lock()
            .expect("splits")
            .iter()
            .map(|(k, s)| (*k, *s))
            .collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }

    pub fn conflict_timeline(&self) -> Vec<(u64, usize)> {
        self.conflict_timeline.lock().expect("timeline").clone()
    }

    pub fn cycles(&self) -> u64 {
        self.cycles.load(Ordering::Relaxed)
    }

    pub fn lock_waits(&self) -> u64 {
        self.lock_waits.load(Ordering::Relaxed)
    }

    pub fn lock_wait_ns(&self) -> u64 {
        self.lock_wait_ns.load(Ordering::Relaxed)
    }

    pub fn deadlocks(&self) -> u64 {
        self.deadlocks.load(Ordering::Relaxed)
    }

    pub fn txn_commits(&self) -> u64 {
        self.txn_commits.load(Ordering::Relaxed)
    }

    pub fn txn_aborts(&self) -> u64 {
        self.txn_aborts.load(Ordering::Relaxed)
    }

    pub fn pattern_probes(&self) -> u64 {
        self.pattern_probes.load(Ordering::Relaxed)
    }

    pub fn pattern_scanned(&self) -> u64 {
        self.pattern_scanned.load(Ordering::Relaxed)
    }

    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    pub fn batch_changes(&self) -> u64 {
        self.batch_changes.load(Ordering::Relaxed)
    }

    /// Render the whole registry as a JSON object.
    pub fn to_json(&self) -> String {
        let mut rules = Arr::new();
        for (id, m) in self.rules() {
            rules = rules.raw(
                &Obj::new()
                    .u64("rule", id as u64)
                    .str("name", &m.name)
                    .u64("fires", m.fires)
                    .u64("instantiations_added", m.instantiations_added)
                    .u64("instantiations_removed", m.instantiations_removed)
                    .finish(),
            );
        }
        let mut classes = Arr::new();
        for (id, c) in self.classes() {
            classes = classes.raw(
                &Obj::new()
                    .u64("class", id as u64)
                    .str("name", &c.name)
                    .u64("wm_changes", c.wm_changes)
                    .u64("fanout_deltas", c.fanout_deltas)
                    .f64(
                        "mean_fanout",
                        if c.wm_changes == 0 {
                            0.0
                        } else {
                            c.fanout_deltas as f64 / c.wm_changes as f64
                        },
                    )
                    .finish(),
            );
        }
        let mut splits = Arr::new();
        for (engine, s) in self.splits() {
            splits = splits.raw(
                &Obj::new()
                    .str("engine", engine)
                    .u64("detect_ns", s.detect_ns)
                    .u64("total_ns", s.total_ns)
                    .u64("samples", s.samples)
                    .f64(
                        "detect_fraction",
                        if s.total_ns == 0 {
                            0.0
                        } else {
                            s.detect_ns as f64 / s.total_ns as f64
                        },
                    )
                    .finish(),
            );
        }
        let mut timeline = Arr::new();
        for (cycle, len) in self.conflict_timeline() {
            timeline = timeline.raw(&format!("[{cycle},{len}]"));
        }
        Obj::new()
            .u64("cycles", self.cycles())
            .raw("rules", &rules.finish())
            .raw("classes", &classes.finish())
            .raw("detect_split", &splits.finish())
            .raw("match_latency_ns", &self.match_hist.to_json())
            .raw("rhs_latency_ns", &self.rhs_hist.to_json())
            .raw("propagate_latency_ns", &self.propagate_hist.to_json())
            .raw("critical_section_ns", &self.critical_section_hist.to_json())
            .raw("conflict_timeline", &timeline.finish())
            .raw(
                "locks",
                &Obj::new()
                    .u64("waits", self.lock_waits())
                    .u64("wait_ns", self.lock_wait_ns())
                    .u64("deadlocks", self.deadlocks())
                    .finish(),
            )
            .raw(
                "txns",
                &Obj::new()
                    .u64("commits", self.txn_commits())
                    .u64("aborts", self.txn_aborts())
                    .finish(),
            )
            .raw(
                "pattern_store",
                &Obj::new()
                    .u64("probes", self.pattern_probes())
                    .u64("scanned", self.pattern_scanned())
                    .finish(),
            )
            .raw(
                "batches",
                &Obj::new()
                    .u64("count", self.batches())
                    .u64("wm_changes", self.batch_changes())
                    .finish(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_aggregate() {
        let m = MetricsRegistry::new();
        m.record_fire(1, "R1", 100);
        m.record_fire(1, "R1", 200);
        m.record_conflict_delta(1, "R1", true);
        m.record_conflict_delta(1, "R1", false);
        m.record_match("cond", 0, "C0", 3, 40, 100);
        m.record_cycle(0, 2);
        m.record_lock_wait(500);
        m.record_deadlock();
        m.record_txn(true);
        m.record_pattern_io(1, 4);
        m.record_pattern_io(0, 7);
        m.record_batch(3);
        m.record_critical_section(250);
        let rules = m.rules();
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].1.fires, 2);
        assert_eq!(rules[0].1.instantiations_added, 1);
        assert_eq!(m.classes()[0].1.fanout_deltas, 3);
        assert_eq!(m.splits()[0].1.detect_ns, 40);
        assert_eq!(m.lock_wait_ns(), 500);
        assert_eq!(m.pattern_probes(), 1);
        assert_eq!(m.pattern_scanned(), 11);
        assert_eq!((m.batches(), m.batch_changes()), (1, 3));
        let json = m.to_json();
        assert!(json.contains("\"fires\":2"), "{json}");
        assert!(json.contains("\"deadlocks\":1"), "{json}");
        assert!(
            json.contains("\"pattern_store\":{\"probes\":1,\"scanned\":11}"),
            "{json}"
        );
        assert!(
            json.contains("\"batches\":{\"count\":1,\"wm_changes\":3}"),
            "{json}"
        );
        assert!(json.contains("\"critical_section_ns\":"), "{json}");
        assert_eq!(m.critical_section_hist.count(), 1);
    }
}
