//! The handle every layer holds. A disabled tracer is a `None` — emitting
//! through it is one branch and the event closure is never even built,
//! which keeps the E1/E4 hot paths at their untraced cost.

use std::sync::Arc;

use crate::event::Event;
use crate::metrics::MetricsRegistry;
use crate::sink::Sink;

struct Shared {
    sink: Sink,
    metrics: MetricsRegistry,
}

/// Cheaply clonable tracing handle; all clones share one sink and one
/// metrics registry.
#[derive(Clone, Default)]
pub struct Tracer {
    shared: Option<Arc<Shared>>,
}

impl Tracer {
    /// The zero-cost tracer: `enabled()` is false, `emit` is a no-op.
    pub fn disabled() -> Self {
        Tracer { shared: None }
    }

    /// An enabled tracer writing events to `sink` (use [`Sink::Null`] to
    /// collect metrics only).
    pub fn new(sink: Sink) -> Self {
        Tracer {
            shared: Some(Arc::new(Shared {
                sink,
                metrics: MetricsRegistry::new(),
            })),
        }
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Emit one event; the closure only runs when tracing is enabled.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> Event) {
        if let Some(shared) = &self.shared {
            shared.sink.accept(f());
        }
    }

    /// The shared metrics registry, when enabled.
    #[inline]
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.shared.as_ref().map(|s| &s.metrics)
    }

    /// Buffered events if the sink is a ring buffer.
    pub fn ring_events(&self) -> Option<Vec<Event>> {
        self.shared.as_ref().and_then(|s| s.sink.ring_events())
    }

    pub fn flush(&self) {
        if let Some(shared) = &self.shared {
            shared.sink.flush();
        }
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Tracer({})",
            if self.enabled() {
                "enabled"
            } else {
                "disabled"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_never_builds_events() {
        let t = Tracer::disabled();
        let mut built = false;
        t.emit(|| {
            built = true;
            Event::CycleStart { cycle: 0 }
        });
        assert!(!built);
        assert!(t.metrics().is_none());
    }

    #[test]
    fn ring_tracer_collects() {
        let t = Tracer::new(Sink::ring(4));
        t.emit(|| Event::CycleStart { cycle: 7 });
        let events = t.ring_events().unwrap();
        assert_eq!(events, vec![Event::CycleStart { cycle: 7 }]);
        t.metrics().unwrap().record_cycle(7, 0);
        assert_eq!(t.metrics().unwrap().cycles(), 8);
    }
}
