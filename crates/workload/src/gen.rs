//! Deterministic synthetic rule-base and working-memory generators.
//!
//! The paper targets *large* production systems; these generators sweep
//! rule count, join arity, selectivity, negation mix and update mix while
//! staying reproducible from a seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use relstore::Tuple;
use relstore::Value;

/// Shape of a synthetic rule base.
#[derive(Debug, Clone)]
pub struct RuleGenConfig {
    /// Number of WM classes.
    pub classes: usize,
    /// Attributes per class.
    pub attrs: usize,
    /// Number of productions.
    pub rules: usize,
    /// Condition elements per production (join arity).
    pub ces_per_rule: usize,
    /// Size of the value domain for constant tests (larger → more
    /// selective alphas, fewer firings).
    pub domain: i64,
    /// Fraction (0..=1) of rules whose last CE is negated.
    pub negated_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RuleGenConfig {
    fn default() -> Self {
        RuleGenConfig {
            classes: 4,
            attrs: 4,
            rules: 32,
            ces_per_rule: 2,
            domain: 10,
            negated_fraction: 0.0,
            seed: 7,
        }
    }
}

impl RuleGenConfig {
    /// Generate the OPS5 source for this configuration.
    ///
    /// Rule shape: CE 1 carries a constant test on `a1`; each following
    /// CE equi-joins its `a0` to the previous CE's `a0` binding and adds
    /// its own constant test, i.e.
    ///
    /// ```text
    /// (p R7 (C0 ^a0 <V0> ^a1 3)
    ///       (C1 ^a0 <V0> ^a1 5)
    ///       --> (remove 1))
    /// ```
    pub fn source(&self) -> String {
        assert!(
            self.attrs >= 2,
            "generator needs at least attributes a0 and a1"
        );
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut src = String::new();
        for c in 0..self.classes {
            src.push_str(&format!("(literalize C{c}"));
            for a in 0..self.attrs {
                src.push_str(&format!(" a{a}"));
            }
            src.push_str(")\n");
        }
        for r in 0..self.rules {
            let negate_last =
                self.ces_per_rule > 1 && rng.gen_bool(self.negated_fraction.clamp(0.0, 1.0));
            src.push_str(&format!("(p R{r}\n"));
            for ce in 0..self.ces_per_rule {
                let class = (r + ce) % self.classes;
                let constant = rng.gen_range(0..self.domain);
                let neg = if negate_last && ce == self.ces_per_rule - 1 {
                    "-"
                } else {
                    ""
                };
                if ce == 0 {
                    src.push_str(&format!("    (C{class} ^a0 <V{r}x0> ^a1 {constant})\n"));
                } else {
                    src.push_str(&format!(
                        "    {neg}(C{class} ^a0 <V{r}x0> ^a1 {constant})\n"
                    ));
                }
            }
            src.push_str("    -->\n    (remove 1))\n");
        }
        src
    }

    /// Compile the generated source.
    pub fn rules(&self) -> ops5::RuleSet {
        ops5::compile(&self.source()).expect("generated source compiles")
    }
}

/// A single WM update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Insert the tuple.
    Insert(usize, Tuple),
    /// Remove one tuple equal to the payload.
    Remove(usize, Tuple),
}

impl Op {
    /// The class this operation touches.
    pub fn class(&self) -> usize {
        match self {
            Op::Insert(c, _) | Op::Remove(c, _) => *c,
        }
    }
}

/// Shape of a synthetic update trace.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Operations to generate.
    pub ops: usize,
    /// Probability that an op deletes a previously inserted live tuple.
    pub delete_fraction: f64,
    /// Value domain for `a0` (join attribute) — smaller → more joins.
    pub join_domain: i64,
    /// Value domain for `a1` (selection attribute) — must match the rule
    /// generator's `domain` for alphas to fire.
    pub select_domain: i64,
    /// RNG seed (runs are reproducible).
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            ops: 200,
            delete_fraction: 0.2,
            join_domain: 5,
            select_domain: 10,
            seed: 11,
        }
    }
}

impl TraceConfig {
    /// Generate a trace against `classes` classes of `attrs` attributes.
    /// Deletions always target a live tuple, so every `Remove` hits.
    pub fn trace(&self, classes: usize, attrs: usize) -> Vec<Op> {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut live: Vec<(usize, Tuple)> = Vec::new();
        let mut ops = Vec::with_capacity(self.ops);
        for _ in 0..self.ops {
            let delete = !live.is_empty() && rng.gen_bool(self.delete_fraction.clamp(0.0, 1.0));
            if delete {
                let idx = rng.gen_range(0..live.len());
                let (c, t) = live.swap_remove(idx);
                ops.push(Op::Remove(c, t));
            } else {
                let c = rng.gen_range(0..classes);
                let mut vals: Vec<Value> = Vec::with_capacity(attrs);
                vals.push(Value::Int(rng.gen_range(0..self.join_domain)));
                vals.push(Value::Int(rng.gen_range(0..self.select_domain)));
                for _ in 2..attrs {
                    vals.push(Value::Int(rng.gen_range(0..100)));
                }
                let t = Tuple::new(vals);
                live.push((c, t.clone()));
                ops.push(Op::Insert(c, t));
            }
        }
        ops
    }
}

/// The Figure 1 chain workload: one rule `C1 ∧ C2 ∧ … ∧ Cn` over a single
/// class, chained by `next = id` equi-joins, plus a WM that satisfies the
/// whole chain.
pub struct ChainWorkload {
    /// Number of condition elements in the chain.
    pub n: usize,
}

impl ChainWorkload {
    /// Create a new, empty instance.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        ChainWorkload { n }
    }

    /// `(literalize Link id next)` and a rule whose CE `i` joins
    /// `id = previous.next`.
    pub fn source(&self) -> String {
        let mut src = String::from("(literalize Link id next)\n(p Chain\n");
        for i in 0..self.n {
            if i == 0 {
                src.push_str("    (Link ^id 0 ^next <N0>)\n");
            } else {
                src.push_str(&format!("    (Link ^id <N{}> ^next <N{i}>)\n", i - 1));
            }
        }
        src.push_str("    -->\n    (remove 1))\n");
        src
    }

    /// Compile the chain rule.
    pub fn rules(&self) -> ops5::RuleSet {
        ops5::compile(&self.source()).expect("chain compiles")
    }

    /// Tuples 0→1→2→…→n completing the chain. Inserting them in order
    /// means the final insertion triggers the deepest propagation.
    pub fn links(&self) -> Vec<Tuple> {
        (0..self.n)
            .map(|i| relstore::tuple![i as i64, (i + 1) as i64])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_rules_compile_and_scale() {
        for rules in [1, 16, 64] {
            let cfg = RuleGenConfig {
                rules,
                ..Default::default()
            };
            let rs = cfg.rules();
            assert_eq!(rs.rules.len(), rules);
            assert_eq!(rs.classes.len(), 4);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = RuleGenConfig::default().source();
        let b = RuleGenConfig::default().source();
        assert_eq!(a, b);
        let c = RuleGenConfig {
            seed: 8,
            ..Default::default()
        }
        .source();
        assert_ne!(a, c);
    }

    #[test]
    fn negated_fraction_produces_negations() {
        let cfg = RuleGenConfig {
            negated_fraction: 1.0,
            rules: 8,
            ..Default::default()
        };
        let rs = cfg.rules();
        assert!(rs.rules.iter().all(|r| r.ces.last().unwrap().negated));
    }

    #[test]
    fn traces_only_delete_live_tuples() {
        let trace = TraceConfig {
            ops: 500,
            delete_fraction: 0.4,
            ..Default::default()
        }
        .trace(4, 4);
        let mut live: Vec<(usize, Tuple)> = Vec::new();
        for op in trace {
            match op {
                Op::Insert(c, t) => live.push((c, t)),
                Op::Remove(c, t) => {
                    let pos = live.iter().position(|(lc, lt)| *lc == c && *lt == t);
                    assert!(pos.is_some(), "removal of a dead tuple");
                    live.swap_remove(pos.unwrap());
                }
            }
        }
    }

    #[test]
    fn chain_workload_structure() {
        let w = ChainWorkload::new(5);
        let rs = w.rules();
        assert_eq!(rs.rules[0].ces.len(), 5);
        assert_eq!(w.links().len(), 5);
        // The chain fires when all links are present.
        let pdb = prodsys_test_support(rs, w.links());
        assert_eq!(pdb, 1);
    }

    /// Minimal inline check without depending on prodsys (avoids a dep
    /// cycle): evaluate the chain with the relstore query executor.
    fn prodsys_test_support(rs: ops5::RuleSet, links: Vec<Tuple>) -> usize {
        let db = relstore::Database::new();
        let rid = db
            .create_relation(relstore::Schema::new("Link", ["id", "next"]))
            .unwrap();
        for t in links {
            db.insert(rid, t).unwrap();
        }
        let q = rs.rules[0].to_query(&[rid]);
        relstore::QueryExecutor::new(&db)
            .exec(&q, None)
            .unwrap()
            .len()
    }
}
