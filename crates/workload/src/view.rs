//! Materialized-view maintenance as a production system.
//!
//! "The problem of maintaining a set of condition-action rules is the same
//! as the problem of maintaining materialized views and triggers" (§6).
//! This workload materializes the view
//!
//! ```sql
//! CREATE VIEW RichToyEmp AS
//!   SELECT e.name, e.salary, d.floor FROM Emp e, Dept d
//!   WHERE e.dno = d.dno AND d.dname = 'Toy' AND e.salary > 4000
//! ```
//!
//! with two productions: one inserts missing view rows, one deletes rows
//! whose base tuples vanished (the add/delete triggers of Buneman &
//! Clemons, §2.3).

use relstore::{tuple, Tuple};

/// Rules maintaining the `View` class from `Emp` and `Dept`.
pub const VIEW_RULES: &str = r#"
    (literalize Emp name salary dno)
    (literalize Dept dno dname floor)
    (literalize View name salary floor)
    (p AddToView
        (Emp ^name <N> ^salary {<S> > 4000} ^dno <D>)
        (Dept ^dno <D> ^dname Toy ^floor <F>)
        -(View ^name <N> ^salary <S> ^floor <F>)
        -->
        (make View ^name <N> ^salary <S> ^floor <F>))
    (p DropFromView
        (View ^name <N> ^salary <S> ^floor <F>)
        -(Emp ^name <N> ^salary <S>)
        -->
        (remove 1))
"#;

/// A base-relation load whose view should contain exactly `Mike` and
/// `Ann` (Jane earns too little, Bob is not in a Toy department).
pub fn base_load() -> Vec<(&'static str, Tuple)> {
    vec![
        ("Dept", tuple![1, "Toy", 3]),
        ("Dept", tuple![2, "Shoe", 1]),
        ("Emp", tuple!["Mike", 6000, 1]),
        ("Emp", tuple!["Ann", 5000, 1]),
        ("Emp", tuple!["Jane", 3000, 1]),
        ("Emp", tuple!["Bob", 9000, 2]),
    ]
}

/// The expected view contents after [`base_load`] reaches fixpoint.
pub fn expected_view() -> Vec<Tuple> {
    let mut v = vec![tuple!["Mike", 6000, 3], tuple!["Ann", 5000, 3]];
    v.sort();
    v
}

#[cfg(test)]
mod tests {
    #[test]
    fn view_rules_compile() {
        let rs = ops5::compile(super::VIEW_RULES).unwrap();
        assert_eq!(rs.rules.len(), 2);
        assert!(rs.rules[0].ces[2].negated);
        assert!(rs.rules[1].ces[1].negated);
    }
}
