//! The paper's own example programs, as runnable OPS5 sources with canned
//! working memories.

use ops5::RuleSet;
use relstore::{tuple, Tuple};

/// Example 2 (§3.1): algebraic simplification rules PlusOX and TimesOX.
pub const EXAMPLE2: &str = r#"
    (literalize Goal Type Object)
    (literalize Expression Name Arg1 Op Arg2)
    (p PlusOX
        (Goal ^Type Simplify ^Object <N>)
        (Expression ^Name <N> ^Arg1 0 ^Op + ^Arg2 <X>)
        -->
        (modify 2 ^Op nil ^Arg1 nil))
    (p TimesOX
        (Goal ^Type Simplify ^Object <N>)
        (Expression ^Name <N> ^Arg1 0 ^Op '*' ^Arg2 <X>)
        -->
        (modify 2 ^Op nil ^Arg2 nil))
"#;

/// Example 3 (§3.2): the Emp/Dept rules R1 and R2.
pub const EXAMPLE3: &str = r#"
    (literalize Emp name salary manager dno)
    (literalize Dept dno dname floor manager)
    (p R1
        (Emp ^name Mike ^salary <S> ^manager <M>)
        (Emp ^name <M> ^salary {<S1> < <S>})
        -->
        (remove 1))
    (p R2
        (Emp ^dno <D>)
        (Dept ^dno <D> ^dname Toy ^floor 1)
        -->
        (remove 1))
"#;

/// Example 4 (§4.2.1): Rule-1 over classes A, B, C (three-way join via
/// `<x>`, `<y>`, `<z>`).
pub const EXAMPLE4: &str = r#"
    (literalize A a1 a2 a3)
    (literalize B b1 b2 b3)
    (literalize C c1 c2 c3)
    (p Rule-1
        (A ^a1 <x> ^a2 a ^a3 <z>)
        (B ^b1 <x> ^b2 <y> ^b3 b)
        (C ^c1 c ^c2 <y> ^c3 <z>)
        -->
        (remove 1))
"#;

/// Example 5's insertion sequence: B(4,5,b), C(c,7,8), A(4,a,8), B(4,7,b).
/// Rule-1 must enter the conflict set exactly on the last insertion.
pub fn example5_inserts() -> Vec<(&'static str, Tuple)> {
    vec![
        ("B", tuple![4, 5, "b"]),
        ("C", tuple!["c", 7, 8]),
        ("A", tuple![4, "a", 8]),
        ("B", tuple![4, 7, "b"]),
    ]
}

/// A canned Example 3 working memory where R1 and R2 both apply.
pub fn example3_wm() -> Vec<(&'static str, Tuple)> {
    vec![
        ("Emp", tuple!["Sam", 5000, "Root", 1]),
        ("Emp", tuple!["Mike", 6000, "Sam", 1]),
        ("Emp", tuple!["Jane", 4000, "Sam", 2]),
        ("Dept", tuple![1, "Toy", 1, "Sam"]),
        ("Dept", tuple![2, "Shoe", 2, "Ann"]),
    ]
}

/// Compile Example 2.
pub fn example2_rules() -> RuleSet {
    ops5::compile(EXAMPLE2).expect("example 2 compiles")
}

/// Compile Example 3.
pub fn example3_rules() -> RuleSet {
    ops5::compile(EXAMPLE3).expect("example 3 compiles")
}

/// Compile Example 4.
pub fn example4_rules() -> RuleSet {
    ops5::compile(EXAMPLE4).expect("example 4 compiles")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_paper_programs_compile() {
        assert_eq!(example2_rules().rules.len(), 2);
        assert_eq!(example3_rules().rules.len(), 2);
        assert_eq!(example4_rules().rules.len(), 1);
        assert_eq!(example5_inserts().len(), 4);
        assert_eq!(example3_wm().len(), 5);
    }
}
