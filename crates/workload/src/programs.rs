//! Complete multi-cycle production programs (beyond the paper's two-rule
//! examples): classic OPS5-style planning and bookkeeping workloads that
//! exercise `modify`-heavy recognize-act chains.

use relstore::{tuple, Tuple};

/// A compact monkey-and-bananas planner: walk to the ladder, push it
/// under the bananas, climb, grab. Four rules, four deterministic
/// recognize-act cycles under FIFO selection.
pub const MONKEY_BANANAS: &str = r#"
    (literalize Monkey at on holds)
    (literalize Object name at height)
    (literalize Goal status type object)

    (p Walk-To-Ladder
        (Goal ^status active ^type holds ^object bananas)
        (Object ^name ladder ^at <P>)
        (Monkey ^at {<> <P>} ^holds nil)
        -->
        (modify 3 ^at <P>)
        (write monkey walks to <P>))

    (p Push-Ladder
        (Goal ^status active ^type holds ^object bananas)
        (Object ^name bananas ^at <BP>)
        (Object ^name ladder ^at {<LP> <> <BP>})
        (Monkey ^at <LP> ^holds nil)
        -->
        (modify 3 ^at <BP>)
        (modify 4 ^at <BP>)
        (write monkey pushes ladder to <BP>))

    (p Climb
        (Goal ^status active ^type holds ^object bananas)
        (Object ^name bananas ^at <BP>)
        (Object ^name ladder ^at <BP>)
        (Monkey ^at <BP> ^on floor ^holds nil)
        -->
        (modify 4 ^on ladder)
        (write monkey climbs the ladder))

    (p Grab
        (Goal ^status active ^type holds ^object bananas)
        (Object ^name bananas ^at <BP> ^height high)
        (Monkey ^at <BP> ^on ladder ^holds nil)
        -->
        (modify 3 ^holds bananas)
        (modify 1 ^status satisfied)
        (write monkey grabs the bananas)
        (halt))
"#;

/// Initial world: monkey in the corner, ladder elsewhere, bananas hung
/// high across the room.
pub fn monkey_bananas_wm() -> Vec<(&'static str, Tuple)> {
    vec![
        ("Monkey", tuple!["corner", "floor", relstore::Value::Null]),
        ("Object", tuple!["ladder", "wall", "low"]),
        ("Object", tuple!["bananas", "center", "high"]),
        ("Goal", tuple!["active", "holds", "bananas"]),
    ]
}

/// The deterministic plan the program must produce (FIFO selection).
pub fn monkey_bananas_plan() -> Vec<&'static str> {
    vec![
        "monkey walks to wall",
        "monkey pushes ladder to center",
        "monkey climbs the ladder",
        "monkey grabs the bananas",
    ]
}

/// An inventory-reordering workflow: products below their reorder point
/// raise purchase orders; receiving stock clears them. Exercises
/// negation, multi-class joins and chained firings.
pub const INVENTORY: &str = r#"
    (literalize Product sku stock reorder)
    (literalize PO sku state)
    (literalize Receipt sku qty)

    ; Raise a purchase order when stock dips below the reorder point.
    (p Raise-PO
        (Product ^sku <S> ^stock <Q> ^reorder {> <Q>})
        -(PO ^sku <S>)
        -->
        (make PO ^sku <S> ^state open)
        (write raised po for <S>))

    ; Receiving stock replenishes the product and closes the PO.
    (p Receive
        (Receipt ^sku <S> ^qty <Q>)
        (Product ^sku <S>)
        (PO ^sku <S> ^state open)
        -->
        (remove 1)
        (modify 2 ^stock <Q>)
        (modify 3 ^state closed)
        (write received <S>))
"#;

/// Initial stock levels: widget and sprocket are below reorder.
pub fn inventory_wm() -> Vec<(&'static str, Tuple)> {
    vec![
        ("Product", tuple!["widget", 2, 10]),
        ("Product", tuple!["gadget", 50, 10]),
        ("Product", tuple!["sprocket", 0, 5]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programs_compile() {
        let mb = ops5::compile(MONKEY_BANANAS).unwrap();
        assert_eq!(mb.rules.len(), 4);
        let inv = ops5::compile(INVENTORY).unwrap();
        assert_eq!(inv.rules.len(), 2);
        assert!(inv.rules[0].ces[1].negated);
        assert_eq!(monkey_bananas_wm().len(), 4);
        assert_eq!(monkey_bananas_plan().len(), 4);
        assert_eq!(inventory_wm().len(), 3);
    }
}
