//! # workload — rule bases and update traces for tests and experiments
//!
//! * [`paper`] — the SIGMOD '88 paper's own Examples 2–5, runnable;
//! * [`gen`] — seeded synthetic rule-base/trace generators and the
//!   Figure 1 chain workload;
//! * [`view`] — materialized-view maintenance expressed as productions.

pub mod gen;
pub mod paper;
pub mod programs;
pub mod tables;
pub mod view;

pub use gen::{ChainWorkload, Op, RuleGenConfig, TraceConfig};
