//! Render the paper's COND-relation and RULE-DEF tables (§4.1.1) from a
//! compiled rule set, for the T1/T2 reproductions.

use ops5::{ClassId, RuleSet};

/// Rows of the COND relation for `class`: one per condition element
/// referring to it. Columns: Rule-ID, CEN, then one pattern cell per
/// attribute (`'const'`, `<var>`, or `*` for don't-care).
pub fn cond_relation(rules: &RuleSet, class: ClassId) -> Vec<Vec<String>> {
    let arity = rules.class(class).arity();
    let mut rows = Vec::new();
    for rule in &rules.rules {
        for (cen, ce) in rule.ces.iter().enumerate() {
            if ce.class != class {
                continue;
            }
            let mut cells = vec![rule.name.clone(), (cen + 1).to_string()];
            for attr in 0..arity {
                // Constant test?
                if let Some(sel) = ce.alpha.tests.iter().find(|s| s.attr == attr) {
                    cells.push(format!(
                        "{}{}",
                        if sel.op == relstore::CompOp::Eq {
                            String::new()
                        } else {
                            sel.op.to_string()
                        },
                        sel.value
                    ));
                    continue;
                }
                // Variable binding?
                if let Some((_, name)) = ce.bindings.iter().find(|(a, _)| *a == attr) {
                    cells.push(format!("<{name}>"));
                    continue;
                }
                // Join-test-only or untested attribute.
                if let Some(j) = ce.joins.iter().find(|j| j.my_attr == attr) {
                    let other = &rule.ces[j.other_ce];
                    let bound = other
                        .bindings
                        .iter()
                        .find(|(a, _)| *a == j.other_attr)
                        .map(|(_, n)| format!("<{n}>"))
                        .unwrap_or_else(|| format!("ce{}.{}", j.other_ce + 1, j.other_attr));
                    if j.op == relstore::CompOp::Eq {
                        cells.push(bound);
                    } else {
                        cells.push(format!("{}{}", j.op, bound));
                    }
                    continue;
                }
                cells.push("*".to_string());
            }
            rows.push(cells);
        }
    }
    rows
}

/// The RULE-DEF relation: one row per condition of each rule, with the
/// Check bit (always rendered unset here — bits are runtime state).
pub fn rule_def(rules: &RuleSet) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for rule in &rules.rules {
        for (cen, ce) in rule.ces.iter().enumerate() {
            rows.push(vec![
                rule.name.clone(),
                (cen + 1).to_string(),
                rules.class(ce.class).name.clone(),
                if ce.negated {
                    "negated".into()
                } else {
                    "0".into()
                },
            ]);
        }
    }
    rows
}

/// Format rows as a fixed-width text table with a header.
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
            .collect::<Vec<_>>()
            .join(" | ")
    };
    let mut out = String::new();
    out.push_str(&fmt_row(
        &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 3 * widths.len().saturating_sub(1)));
    out.push('\n');
    for r in rows {
        out.push_str(&fmt_row(r));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    /// §4.1.1's COND-Goal table: both rules contribute the row
    /// (rule, Simplify, <N>).
    #[test]
    fn t1_cond_goal_and_expression() {
        let rs = paper::example2_rules();
        let goal = cond_relation(&rs, rs.class_id("Goal").unwrap());
        assert_eq!(goal.len(), 2);
        assert_eq!(goal[0], vec!["PlusOX", "1", "Simplify", "<N>"]);
        assert_eq!(goal[1], vec!["TimesOX", "1", "Simplify", "<N>"]);

        let expr = cond_relation(&rs, rs.class_id("Expression").unwrap());
        assert_eq!(expr.len(), 2);
        // Name joins <N>; Arg1 = 0; Op constant; Arg2 binds <X>.
        assert_eq!(expr[0], vec!["PlusOX", "2", "<N>", "0", "+", "<X>"]);
        assert_eq!(expr[1], vec!["TimesOX", "2", "<N>", "0", "*", "<X>"]);
    }

    /// §4.1.1's RULE-DEF: one tuple per condition of each rule.
    #[test]
    fn t2_rule_def() {
        let rs = paper::example2_rules();
        let rows = rule_def(&rs);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0], vec!["PlusOX", "1", "Goal", "0"]);
        assert_eq!(rows[1], vec!["PlusOX", "2", "Expression", "0"]);
        assert_eq!(rows[2], vec!["TimesOX", "1", "Goal", "0"]);
        assert_eq!(rows[3], vec!["TimesOX", "2", "Expression", "0"]);
    }

    /// Example 4's initial COND-A/B/C rows (T3).
    #[test]
    fn t3_example4_initial_cond() {
        let rs = paper::example4_rules();
        let a = cond_relation(&rs, rs.class_id("A").unwrap());
        assert_eq!(
            a,
            vec![vec![
                "Rule-1".to_string(),
                "1".into(),
                "<x>".into(),
                "a".into(),
                "<z>".into()
            ]]
        );
        let b = cond_relation(&rs, rs.class_id("B").unwrap());
        assert_eq!(b[0], vec!["Rule-1", "2", "<x>", "<y>", "b"]);
        let c = cond_relation(&rs, rs.class_id("C").unwrap());
        assert_eq!(c[0], vec!["Rule-1", "3", "c", "<y>", "<z>"]);
    }

    #[test]
    fn format_table_aligns() {
        let rows = vec![vec!["a".to_string(), "bb".to_string()]];
        let t = format_table(&["col1", "c2"], &rows);
        assert!(t.contains("col1 | c2"));
        assert!(t.lines().count() == 3);
    }
}
