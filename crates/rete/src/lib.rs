//! # rete — Rete match networks
//!
//! Two runtimes over one compiled topology ([`NetworkPlan`]):
//!
//! * [`ReteNetwork`] — the classic in-memory algorithm of OPS5 (§3.1 of
//!   Sellis/Lin/Raschid, SIGMOD '88): shared alpha nodes, two-input join
//!   nodes with token memories, negative nodes with match counts, and
//!   incremental conflict-set deltas.
//! * [`DbReteNetwork`] — the paper's §3.2 "straightforward implementation
//!   … in a DBMS environment": every memory is a LEFT/RIGHT relation in a
//!   [`relstore::Database`], so the approach's logical I/O is measurable.
//!
//! Both produce identical [`ConflictDelta`] streams for identical inputs
//! (property-tested in the workspace integration suite).
//!
//! ```
//! use ops5::ClassId;
//! use rete::{ReteNetwork, Wme};
//! use relstore::tuple;
//!
//! let rules = ops5::compile(r#"
//!     (literalize Emp name dno)
//!     (literalize Dept dno)
//!     (p R (Emp ^dno <D>) (Dept ^dno <D>) --> (remove 1))
//! "#).unwrap();
//! let mut net = ReteNetwork::new(&rules);
//! // The Emp token queues at the join, waiting for a matching Dept.
//! assert!(net.insert(Wme::new(ClassId(0), tuple!["Ann", 7])).is_empty());
//! let deltas = net.insert(Wme::new(ClassId(1), tuple![7]));
//! assert_eq!(deltas.len(), 1);       // rule R enters the conflict set
//! assert_eq!(net.conflict_set().len(), 1);
//! ```

pub mod compile;
pub mod dbrete;
pub mod network;
pub mod wme;

pub use compile::{AlphaSpec, BJoinTest, BetaKind, BetaSpec, NetworkPlan};
pub use dbrete::DbReteNetwork;
pub use network::{OpMetrics, ReteNetwork};
pub use wme::{AbsentPattern, ConflictDelta, ConflictSet, Instantiation, Provenance, Wme};
