//! The paper's straightforward DBMS implementation of the Rete network
//! (§3.2): "the only place where tokens have to be stored is two-input
//! merge nodes … We will denote the two relations used to store the tokens
//! that correspond to the left and right input of a two-input merge node by
//! LEFT and RIGHT respectively."
//!
//! Concretely: each alpha memory becomes a RIGHT relation (the filtered
//! copy of a class), each two-input node's output token memory becomes a
//! LEFT relation, and every activation runs as selections/insertions
//! against a [`relstore::Database`] — so the logical I/O this design costs
//! shows up in [`Database::stats`]. Topology (including node sharing)
//! comes from the same [`NetworkPlan`] as the in-memory runtime, and both
//! runtimes produce identical conflict sets.

use std::collections::HashMap;
use std::sync::Arc;

use ops5::{ClassId, RuleId, RuleSet};
use relstore::{Database, Restriction, Schema, Selection, Tuple, Value};

use crate::compile::{BJoinTest, BetaKind, NetworkPlan};
use crate::wme::{ConflictDelta, ConflictSet, Instantiation, Wme};

type WmeId = i64;

/// Column layout of a beta node's LEFT relation: `wids` id columns, then
/// the concatenated attribute values of each token WME, then (negative
/// nodes only) a trailing match-count column.
#[derive(Debug, Clone, Default)]
struct Layout {
    classes: Vec<ClassId>,
    offsets: Vec<usize>,
    width: usize,
}

impl Layout {
    fn extended(&self, class: ClassId, arity: usize) -> Layout {
        let mut l = self.clone();
        l.offsets.push(l.width);
        l.classes.push(class);
        l.width += arity;
        l
    }

    fn wids(&self) -> usize {
        self.classes.len()
    }

    /// Column of token position `pos`, attribute `attr`.
    fn col(&self, pos: usize, attr: usize) -> usize {
        self.wids() + self.offsets[pos] + attr
    }

    /// Columns of the value block of position `pos`.
    fn value_range(&self, pos: usize, arity: usize) -> std::ops::Range<usize> {
        let start = self.wids() + self.offsets[pos];
        start..start + arity
    }
}

/// DB-backed Rete network.
pub struct DbReteNetwork {
    db: Arc<Database>,
    plan: NetworkPlan,
    rules: RuleSet,
    alpha_rel: Vec<relstore::RelId>,
    beta_rel: Vec<Option<relstore::RelId>>,
    layouts: Vec<Layout>,
    by_content: HashMap<Wme, Vec<WmeId>>,
    next_wid: WmeId,
    conflict: ConflictSet,
}

impl DbReteNetwork {
    /// Build the LEFT/RIGHT relations for a rule set inside `db`.
    ///
    /// Relation names are prefixed `__rete_` to stay clear of WM classes.
    pub fn new(db: Arc<Database>, rules: &RuleSet) -> relstore::Result<Self> {
        let plan = NetworkPlan::compile(rules);
        // RIGHT relations: one per alpha memory.
        let mut alpha_rel = Vec::with_capacity(plan.alphas.len());
        for (i, a) in plan.alphas.iter().enumerate() {
            let arity = rules.class(a.class).arity();
            let mut cols = vec!["wid".to_string()];
            cols.extend((0..arity).map(|k| format!("v{k}")));
            let rid = db.create_relation(Schema::new(format!("__rete_alpha{i}"), cols))?;
            // Index the wid column for retraction.
            db.write(rid, |r| r.create_hash_index(0))??;
            alpha_rel.push(rid);
        }
        // LEFT relations: one per two-input/production node.
        let mut layouts: Vec<Layout> = vec![Layout::default(); plan.betas.len()];
        let mut beta_rel: Vec<Option<relstore::RelId>> = vec![None; plan.betas.len()];
        // Root's layout is empty; compute layouts top-down (children come
        // after parents in the plan's vector by construction).
        for b in 0..plan.betas.len() {
            let layout = match &plan.betas[b].kind {
                BetaKind::Root => Layout::default(),
                BetaKind::Join { parent, alpha, .. } => {
                    let class = plan.alphas[*alpha].class;
                    layouts[*parent].extended(class, rules.class(class).arity())
                }
                BetaKind::Negative { parent, .. } | BetaKind::Production { parent, .. } => {
                    layouts[*parent].clone()
                }
            };
            if !matches!(plan.betas[b].kind, BetaKind::Root) {
                let mut cols: Vec<String> = (0..layout.wids()).map(|k| format!("wid{k}")).collect();
                cols.extend((0..layout.width).map(|k| format!("v{k}")));
                if matches!(plan.betas[b].kind, BetaKind::Negative { .. }) {
                    cols.push("negcount".into());
                }
                let rid = db.create_relation(Schema::new(format!("__rete_beta{b}"), cols))?;
                if layout.wids() > 0 {
                    db.write(rid, |r| r.create_hash_index(layout.wids() - 1))??;
                }
                beta_rel[b] = Some(rid);
            }
            layouts[b] = layout;
        }
        Ok(DbReteNetwork {
            db,
            plan,
            rules: rules.clone(),
            alpha_rel,
            beta_rel,
            layouts,
            by_content: HashMap::new(),
            next_wid: 0,
            conflict: ConflictSet::new(),
        })
    }

    /// Attach to a database that already contains this rule set's
    /// LEFT/RIGHT relations (e.g. restored from a snapshot). All network
    /// state lives in the database, so the conflict set, WME identity map
    /// and id counter are reconstructed from the stored rows.
    pub fn attach(db: Arc<Database>, rules: &RuleSet) -> relstore::Result<Self> {
        let plan = NetworkPlan::compile(rules);
        let mut alpha_rel = Vec::with_capacity(plan.alphas.len());
        for i in 0..plan.alphas.len() {
            alpha_rel.push(db.rel_id(&format!("__rete_alpha{i}"))?);
        }
        let mut layouts: Vec<Layout> = vec![Layout::default(); plan.betas.len()];
        let mut beta_rel: Vec<Option<relstore::RelId>> = vec![None; plan.betas.len()];
        for b in 0..plan.betas.len() {
            let layout = match &plan.betas[b].kind {
                BetaKind::Root => Layout::default(),
                BetaKind::Join { parent, alpha, .. } => {
                    let class = plan.alphas[*alpha].class;
                    layouts[*parent].extended(class, rules.class(class).arity())
                }
                BetaKind::Negative { parent, .. } | BetaKind::Production { parent, .. } => {
                    layouts[*parent].clone()
                }
            };
            if !matches!(plan.betas[b].kind, BetaKind::Root) {
                beta_rel[b] = Some(db.rel_id(&format!("__rete_beta{b}"))?);
            }
            layouts[b] = layout;
        }
        // Rebuild WME identities from the alpha (RIGHT) relations.
        let mut by_content: HashMap<Wme, Vec<WmeId>> = HashMap::new();
        let mut seen = std::collections::HashSet::new();
        let mut next_wid: WmeId = 0;
        for (i, &rid) in alpha_rel.iter().enumerate() {
            let class = plan.alphas[i].class;
            for (_, row) in db.select(rid, &Restriction::default())? {
                let Value::Int(wid) = row[0] else { continue };
                next_wid = next_wid.max(wid + 1);
                if seen.insert(wid) {
                    let wme = Wme::new(class, Tuple::new(row.values()[1..].to_vec()));
                    by_content.entry(wme).or_default().push(wid);
                }
            }
        }
        let mut net = DbReteNetwork {
            db,
            plan,
            rules: rules.clone(),
            alpha_rel,
            beta_rel,
            layouts,
            by_content,
            next_wid,
            conflict: ConflictSet::new(),
        };
        // Rebuild the conflict set from the production-node relations.
        let mut deltas = Vec::new();
        for b in 0..net.plan.betas.len() {
            if let BetaKind::Production { rule, .. } = net.plan.betas[b].kind {
                let rid = net.beta_rel[b].expect("production relation");
                for (_, row) in net.db.select(rid, &Restriction::default())? {
                    deltas.push(ConflictDelta::Add(net.instantiation(rule, b, &row)));
                }
            }
        }
        net.conflict.apply_all(&deltas);
        Ok(net)
    }

    /// The compiled network topology.
    pub fn plan(&self) -> &NetworkPlan {
        &self.plan
    }

    /// The maintained conflict set.
    pub fn conflict_set(&self) -> &ConflictSet {
        &self.conflict
    }

    /// Tuples stored in LEFT and RIGHT relations — the paper's redundancy
    /// metric for this design.
    pub fn stored_entries(&self) -> usize {
        let alpha: usize = self
            .alpha_rel
            .iter()
            .map(|&r| self.db.relation_len(r))
            .sum();
        let beta: usize = self
            .beta_rel
            .iter()
            .flatten()
            .map(|&r| self.db.relation_len(r))
            .sum();
        alpha + beta
    }

    /// Approximate bytes in LEFT/RIGHT relations.
    pub fn approx_bytes(&self) -> usize {
        let mut total = 0;
        for &r in self.alpha_rel.iter().chain(self.beta_rel.iter().flatten()) {
            total += self
                .db
                .read(r, |rel| rel.approx_bytes().unwrap_or(0))
                .unwrap_or(0);
        }
        total
    }

    fn alpha_row(wid: WmeId, wme: &Wme) -> Tuple {
        let mut v = Vec::with_capacity(1 + wme.tuple.arity());
        v.push(Value::Int(wid));
        v.extend(wme.tuple.values().iter().cloned());
        Tuple::new(v)
    }

    /// Selections on a parent LEFT relation induced by join tests against
    /// a new right WME: `token[token_attr] op.flip() wme[my_attr]`.
    fn parent_selections(&self, parent: usize, tests: &[BJoinTest], wme: &Wme) -> Vec<Selection> {
        let layout = &self.layouts[parent];
        tests
            .iter()
            .map(|t| {
                Selection::new(
                    layout.col(t.token_pos, t.token_attr),
                    t.op.flip(),
                    wme.tuple[t.my_attr].clone(),
                )
            })
            .collect()
    }

    /// Selections on an alpha (RIGHT) relation induced by join tests
    /// against an existing token row: `alpha[1 + my_attr] op token_value`.
    fn alpha_selections(&self, node: usize, tests: &[BJoinTest], token: &Tuple) -> Vec<Selection> {
        let (BetaKind::Join { parent, .. } | BetaKind::Negative { parent, .. }) =
            self.plan.betas[node].kind
        else {
            unreachable!()
        };
        let layout = &self.layouts[parent];
        tests
            .iter()
            .map(|t| {
                Selection::new(
                    1 + t.my_attr,
                    t.op,
                    token[layout.col(t.token_pos, t.token_attr)].clone(),
                )
            })
            .collect()
    }

    /// Extend a parent token row with a right WME.
    fn extend_row(&self, node: usize, parent_row: &Tuple, wid: WmeId, wme: &Wme) -> Tuple {
        let parent_layout = {
            let BetaKind::Join { parent, .. } = self.plan.betas[node].kind else {
                unreachable!()
            };
            &self.layouts[parent]
        };
        let pw = parent_layout.wids();
        let mut v: Vec<Value> = Vec::with_capacity(self.layouts[node].width + pw + 1);
        v.extend(parent_row.values()[..pw].iter().cloned());
        v.push(Value::Int(wid));
        v.extend(
            parent_row.values()[pw..pw + parent_layout.width]
                .iter()
                .cloned(),
        );
        v.extend(wme.tuple.values().iter().cloned());
        Tuple::new(v)
    }

    /// Is this parent row currently passing (negative parents only pass
    /// rows with a zero count)? The root "relation" is virtual.
    fn parent_rows(&self, parent: usize, extra: Vec<Selection>) -> Vec<Tuple> {
        match self.plan.betas[parent].kind {
            BetaKind::Root => {
                if extra.is_empty() {
                    vec![Tuple::new(Vec::new())]
                } else {
                    Vec::new()
                }
            }
            BetaKind::Negative { .. } => {
                let rid = self.beta_rel[parent].expect("negative has relation");
                let count_col = self.layouts[parent].wids() + self.layouts[parent].width;
                let mut sels = extra;
                sels.push(Selection::eq(count_col, 0));
                self.db
                    .select(rid, &Restriction::new(sels))
                    .expect("catalog relation")
                    .into_iter()
                    // Strip the negcount column so children see a plain token row.
                    .map(|(_, t)| Tuple::new(t.values()[..count_col].to_vec()))
                    .collect()
            }
            _ => {
                let rid = self.beta_rel[parent].expect("join has relation");
                self.db
                    .select(rid, &Restriction::new(extra))
                    .expect("catalog relation")
                    .into_iter()
                    .map(|(_, t)| t)
                    .collect()
            }
        }
    }

    /// Insert a WME.
    pub fn insert(&mut self, wme: Wme) -> Vec<ConflictDelta> {
        let wid = self.next_wid;
        self.next_wid += 1;
        self.by_content.entry(wme.clone()).or_default().push(wid);
        let mut deltas = Vec::new();
        for a in 0..self.plan.alphas.len() {
            let spec = &self.plan.alphas[a];
            if spec.class != wme.class || !spec.restriction.matches(&wme.tuple) {
                continue;
            }
            self.db
                .insert(self.alpha_rel[a], Self::alpha_row(wid, &wme))
                .expect("alpha insert");
            for s in self.plan.alpha_successors[a].clone() {
                self.right_activate(s, wid, &wme, &mut deltas);
            }
        }
        self.conflict.apply_all(&deltas);
        deltas
    }

    fn right_activate(
        &mut self,
        node: usize,
        wid: WmeId,
        wme: &Wme,
        deltas: &mut Vec<ConflictDelta>,
    ) {
        match self.plan.betas[node].kind.clone() {
            BetaKind::Join { parent, tests, .. } => {
                let sels = self.parent_selections(parent, &tests, wme);
                for row in self.parent_rows(parent, sels) {
                    let out = self.extend_row(node, &row, wid, wme);
                    self.emit_row(node, out, deltas);
                }
            }
            BetaKind::Negative { parent, tests, .. } => {
                let rid = self.beta_rel[node].expect("negative relation");
                let count_col = self.layouts[parent].wids() + self.layouts[parent].width;
                // Tokens in this node's memory whose tests match the new
                // right WME get their count bumped.
                let sels = self.parent_selections(parent, &tests, wme);
                let hits = self
                    .db
                    .select(rid, &Restriction::new(sels))
                    .expect("neg select");
                for (tid, row) in hits {
                    let Value::Int(c) = row[count_col] else {
                        unreachable!("count column")
                    };
                    self.db.delete(rid, tid).expect("neg delete");
                    self.db
                        .insert(rid, row.with_value(count_col, Value::Int(c + 1)))
                        .expect("neg reinsert");
                    if c == 0 {
                        let token = Tuple::new(row.values()[..count_col].to_vec());
                        for ch in self.plan.betas[node].children.clone() {
                            self.retract_exact(ch, &token, deltas);
                        }
                    }
                }
            }
            _ => unreachable!("alpha feeds two-input nodes"),
        }
    }

    fn emit_row(&mut self, node: usize, row: Tuple, deltas: &mut Vec<ConflictDelta>) {
        let rid = self.beta_rel[node].expect("join relation");
        self.db.insert(rid, row.clone()).expect("token insert");
        for c in self.plan.betas[node].children.clone() {
            self.token_arrived(c, &row, deltas);
        }
    }

    fn token_arrived(&mut self, node: usize, token: &Tuple, deltas: &mut Vec<ConflictDelta>) {
        match self.plan.betas[node].kind.clone() {
            BetaKind::Join { alpha, tests, .. } => {
                let sels = self.alpha_selections(node, &tests, token);
                let rights = self
                    .db
                    .select(self.alpha_rel[alpha], &Restriction::new(sels))
                    .expect("alpha select");
                for (_, arow) in rights {
                    let Value::Int(wid) = arow[0] else {
                        unreachable!("wid column")
                    };
                    let class = self.plan.alphas[alpha].class;
                    let wme = Wme::new(class, Tuple::new(arow.values()[1..].to_vec()));
                    let out = self.extend_row(node, token, wid, &wme);
                    self.emit_row(node, out, deltas);
                }
            }
            BetaKind::Negative { alpha, tests, .. } => {
                let sels = self.alpha_selections(node, &tests, token);
                let count = self
                    .db
                    .select(self.alpha_rel[alpha], &Restriction::new(sels))
                    .expect("alpha select")
                    .len() as i64;
                let rid = self.beta_rel[node].expect("negative relation");
                let mut v = token.values().to_vec();
                v.push(Value::Int(count));
                self.db
                    .insert(rid, Tuple::new(v))
                    .expect("neg token insert");
                if count == 0 {
                    for c in self.plan.betas[node].children.clone() {
                        self.token_arrived(c, token, deltas);
                    }
                }
            }
            BetaKind::Production { rule, .. } => {
                let rid = self.beta_rel[node].expect("production relation");
                self.db
                    .insert(rid, token.clone())
                    .expect("instantiation insert");
                deltas.push(ConflictDelta::Add(self.instantiation(rule, node, token)));
            }
            BetaKind::Root => unreachable!(),
        }
    }

    /// Remove one WME equal to `wme`.
    pub fn remove(&mut self, wme: &Wme) -> Vec<ConflictDelta> {
        let Some(ids) = self.by_content.get_mut(wme) else {
            return Vec::new();
        };
        let wid = ids.pop().expect("non-empty");
        if ids.is_empty() {
            self.by_content.remove(wme);
        }
        let mut deltas = Vec::new();
        for a in 0..self.plan.alphas.len() {
            let spec = &self.plan.alphas[a];
            if spec.class != wme.class || !spec.restriction.matches(&wme.tuple) {
                continue;
            }
            // Delete from the RIGHT relation.
            let rid = self.alpha_rel[a];
            let rows = self
                .db
                .select(rid, &Restriction::new(vec![Selection::eq(0, wid)]))
                .expect("alpha select");
            for (tid, _) in rows {
                self.db.delete(rid, tid).expect("alpha delete");
            }
            for s in self.plan.alpha_successors[a].clone() {
                if matches!(self.plan.betas[s].kind, BetaKind::Join { .. }) {
                    self.retract_with_last(s, wid, &mut deltas);
                }
            }
        }
        for a in 0..self.plan.alphas.len() {
            let spec = &self.plan.alphas[a];
            if spec.class != wme.class || !spec.restriction.matches(&wme.tuple) {
                continue;
            }
            for s in self.plan.alpha_successors[a].clone() {
                if matches!(self.plan.betas[s].kind, BetaKind::Negative { .. }) {
                    self.negative_right_removal(s, wid, wme, &mut deltas);
                }
            }
        }
        self.conflict.apply_all(&deltas);
        deltas
    }

    fn retract_with_last(&mut self, node: usize, wid: WmeId, deltas: &mut Vec<ConflictDelta>) {
        let rid = self.beta_rel[node].expect("join relation");
        let last = self.layouts[node].wids() - 1;
        let rows = self
            .db
            .select(rid, &Restriction::new(vec![Selection::eq(last, wid)]))
            .expect("token select");
        for (tid, row) in rows {
            self.db.delete(rid, tid).expect("token delete");
            for c in self.plan.betas[node].children.clone() {
                self.retract_exact(c, &row, deltas);
            }
        }
    }

    /// Retract all rows of `node` whose token prefix equals `token`.
    fn retract_exact(&mut self, node: usize, token: &Tuple, deltas: &mut Vec<ConflictDelta>) {
        // Prefix match on wid columns identifies descendants uniquely.
        let parent_wids = match self.plan.betas[node].kind {
            BetaKind::Join { parent, .. }
            | BetaKind::Negative { parent, .. }
            | BetaKind::Production { parent, .. } => self.layouts[parent].wids(),
            BetaKind::Root => return,
        };
        let sels: Vec<Selection> = (0..parent_wids)
            .map(|k| Selection::eq(k, token[k].clone()))
            .collect();
        match self.plan.betas[node].kind.clone() {
            BetaKind::Join { .. } => {
                let rid = self.beta_rel[node].expect("join relation");
                let rows = self
                    .db
                    .select(rid, &Restriction::new(sels))
                    .expect("select");
                for (tid, row) in rows {
                    self.db.delete(rid, tid).expect("delete");
                    for c in self.plan.betas[node].children.clone() {
                        self.retract_exact(c, &row, deltas);
                    }
                }
            }
            BetaKind::Negative { parent, .. } => {
                let rid = self.beta_rel[node].expect("neg relation");
                let count_col = self.layouts[parent].wids() + self.layouts[parent].width;
                let rows = self
                    .db
                    .select(rid, &Restriction::new(sels))
                    .expect("select");
                for (tid, row) in rows {
                    self.db.delete(rid, tid).expect("delete");
                    let Value::Int(c) = row[count_col] else {
                        unreachable!()
                    };
                    if c == 0 {
                        let t = Tuple::new(row.values()[..count_col].to_vec());
                        for ch in self.plan.betas[node].children.clone() {
                            self.retract_exact(ch, &t, deltas);
                        }
                    }
                }
            }
            BetaKind::Production { rule, .. } => {
                let rid = self.beta_rel[node].expect("production relation");
                let rows = self
                    .db
                    .select(rid, &Restriction::new(sels))
                    .expect("select");
                for (tid, row) in rows {
                    self.db.delete(rid, tid).expect("delete");
                    deltas.push(ConflictDelta::Remove(self.instantiation(rule, node, &row)));
                }
            }
            BetaKind::Root => {}
        }
    }

    fn negative_right_removal(
        &mut self,
        node: usize,
        _wid: WmeId,
        wme: &Wme,
        deltas: &mut Vec<ConflictDelta>,
    ) {
        let BetaKind::Negative { parent, tests, .. } = self.plan.betas[node].kind.clone() else {
            unreachable!()
        };
        let rid = self.beta_rel[node].expect("neg relation");
        let count_col = self.layouts[parent].wids() + self.layouts[parent].width;
        let sels = self.parent_selections(parent, &tests, wme);
        let hits = self
            .db
            .select(rid, &Restriction::new(sels))
            .expect("neg select");
        for (tid, row) in hits {
            let Value::Int(c) = row[count_col] else {
                unreachable!()
            };
            debug_assert!(c > 0, "count underflow");
            self.db.delete(rid, tid).expect("neg delete");
            self.db
                .insert(rid, row.with_value(count_col, Value::Int(c - 1)))
                .expect("neg reinsert");
            if c == 1 {
                let token = Tuple::new(row.values()[..count_col].to_vec());
                for ch in self.plan.betas[node].children.clone() {
                    self.token_arrived(ch, &token, deltas);
                }
            }
        }
    }

    fn instantiation(&self, rule: RuleId, node: usize, row: &Tuple) -> Instantiation {
        let layout = &self.layouts[node];
        let wmes = (0..layout.wids())
            .map(|pos| {
                let class = layout.classes[pos];
                let arity = self.rules.class(class).arity();
                let range = layout.value_range(pos, arity);
                Wme::new(class, Tuple::new(row.values()[range].to_vec()))
            })
            .collect();
        Instantiation::new(rule, wmes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::ReteNetwork;
    use relstore::tuple;

    fn example3_rules() -> RuleSet {
        ops5::compile(
            r#"
            (literalize Emp name salary manager dno)
            (literalize Dept dno dname floor manager)
            (p R1
                (Emp ^name Mike ^salary <S> ^manager <M>)
                (Emp ^name <M> ^salary {<S1> < <S>})
                -->
                (remove 1))
            (p R2
                (Emp ^dno <D>)
                (Dept ^dno <D> ^dname Toy ^floor 1)
                -->
                (remove 1))
            "#,
        )
        .unwrap()
    }

    #[test]
    fn matches_in_memory_rete_on_example_3() {
        let rules = example3_rules();
        let db = Arc::new(Database::new());
        let mut dbnet = DbReteNetwork::new(db.clone(), &rules).unwrap();
        let mut memnet = ReteNetwork::new(&rules);
        let ops: Vec<(bool, Wme)> = vec![
            (
                true,
                Wme::new(ops5::ClassId(0), tuple!["Sam", 5000, "Root", 1]),
            ),
            (
                true,
                Wme::new(ops5::ClassId(0), tuple!["Mike", 6000, "Sam", 1]),
            ),
            (true, Wme::new(ops5::ClassId(1), tuple![1, "Toy", 1, "Sam"])),
            (
                true,
                Wme::new(ops5::ClassId(0), tuple!["Ann", 1000, "Sam", 1]),
            ),
            (
                false,
                Wme::new(ops5::ClassId(0), tuple!["Mike", 6000, "Sam", 1]),
            ),
            (
                false,
                Wme::new(ops5::ClassId(1), tuple![1, "Toy", 1, "Sam"]),
            ),
        ];
        for (is_insert, w) in ops {
            let (a, b) = if is_insert {
                (dbnet.insert(w.clone()), memnet.insert(w))
            } else {
                (dbnet.remove(&w), memnet.remove(&w))
            };
            let mut a: Vec<_> = a.iter().map(|d| format!("{d:?}")).collect();
            let mut b: Vec<_> = b.iter().map(|d| format!("{d:?}")).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b);
            assert_eq!(
                dbnet.conflict_set().sorted(),
                memnet.conflict_set().sorted()
            );
        }
    }

    #[test]
    fn left_right_relations_accumulate_tokens() {
        // "RIGHT1 will contain all tuples inserted in the Emp relation, as
        // all of them are potential matches" (§3.2).
        let rules = example3_rules();
        let db = Arc::new(Database::new());
        let mut net = DbReteNetwork::new(db.clone(), &rules).unwrap();
        let before = net.stored_entries();
        net.insert(Wme::new(ops5::ClassId(0), tuple!["Ann", 1000, "Sam", 7]));
        assert!(
            net.stored_entries() > before,
            "alpha memories persist the tuple"
        );
        assert!(net.approx_bytes() > 0);
    }

    #[test]
    fn logical_io_is_accounted() {
        let rules = example3_rules();
        let db = Arc::new(Database::new());
        let mut net = DbReteNetwork::new(db.clone(), &rules).unwrap();
        let before = db.stats().snapshot();
        net.insert(Wme::new(ops5::ClassId(0), tuple!["Sam", 5000, "Root", 1]));
        net.insert(Wme::new(ops5::ClassId(0), tuple!["Mike", 6000, "Sam", 1]));
        let cost = db.stats().snapshot().since(&before);
        assert!(cost.tuples_inserted > 0);
        assert!(cost.logical_io() > 0);
    }

    #[test]
    fn negation_parity_with_memory_rete() {
        let rules = ops5::compile(
            r#"
            (literalize Emp dno)
            (literalize Dept dno)
            (p NoDept (Emp ^dno <D>) -(Dept ^dno <D>) --> (remove 1))
            "#,
        )
        .unwrap();
        let db = Arc::new(Database::new());
        let mut dbnet = DbReteNetwork::new(db.clone(), &rules).unwrap();
        let mut memnet = ReteNetwork::new(&rules);
        let ops: Vec<(bool, Wme)> = vec![
            (true, Wme::new(ops5::ClassId(0), tuple![7])),
            (true, Wme::new(ops5::ClassId(1), tuple![7])),
            (true, Wme::new(ops5::ClassId(1), tuple![7])),
            (false, Wme::new(ops5::ClassId(1), tuple![7])),
            (false, Wme::new(ops5::ClassId(1), tuple![7])),
            (true, Wme::new(ops5::ClassId(0), tuple![8])),
            (false, Wme::new(ops5::ClassId(0), tuple![7])),
        ];
        for (is_insert, w) in ops {
            if is_insert {
                dbnet.insert(w.clone());
                memnet.insert(w);
            } else {
                dbnet.remove(&w);
                memnet.remove(&w);
            }
            assert_eq!(
                dbnet.conflict_set().sorted(),
                memnet.conflict_set().sorted()
            );
        }
    }
}
