//! Working-memory elements and conflict-set change records.

use std::fmt;
use std::hash::{Hash, Hasher};

use ops5::{ClassId, RuleId, RuleSet};
use relstore::{CompOp, Tuple, TupleId, Value};

/// A working-memory element: a tuple of a declared class.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Wme {
    /// The class (relation) involved.
    pub class: ClassId,
    /// The tuple involved.
    pub tuple: Tuple,
}

impl Wme {
    /// Create a new, empty instance.
    pub fn new(class: ClassId, tuple: Tuple) -> Self {
        Wme { class, tuple }
    }
}

impl fmt::Display for Wme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}{}", self.class.0, self.tuple)
    }
}

/// One negated CE instantiated with a concrete binding: the pattern whose
/// *absence* supports an instantiation (§4.2.2's negative condition
/// handling). Tests carry the negated CE's constant selections plus its
/// join tests with the joined value substituted from the binding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbsentPattern {
    /// Class of the negated condition element.
    pub class: ClassId,
    /// `(attribute index, comparison, concrete value)` tests; no tuple of
    /// `class` satisfying all of them exists in working memory.
    pub tests: Vec<(usize, CompOp, Value)>,
}

impl AbsentPattern {
    /// Render as OPS5-ish source, e.g. `-(Dept ^dno = 99)`.
    pub fn display(&self, rules: &RuleSet) -> String {
        let class = rules.class(self.class);
        let mut s = format!("-({}", class.name);
        for (attr, op, value) in &self.tests {
            let name = class.attrs.get(*attr).map_or("?", String::as_str);
            s.push_str(&format!(" ^{name} {op} {value}"));
        }
        s.push(')');
        s
    }
}

/// Why an instantiation holds: the storage identities of its supporting
/// WM elements and, per negated CE, the pattern whose absence holds.
///
/// Deliberately **excluded** from the instantiation's equality, ordering
/// and hashing: engines identify instantiations by `(rule, wmes)` content
/// (the conflict set is a content-keyed multiset, and the two Rete
/// variants track WMEs by content rather than by storage id), so
/// provenance rides along without perturbing conflict-set semantics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Provenance {
    /// Packed [`TupleId`]s aligned with `wmes`; empty when the engine
    /// does not track storage ids (the in-memory Rete variants).
    pub support: Vec<u64>,
    /// The absent patterns, one per negated CE of the rule.
    pub absent: Vec<AbsentPattern>,
}

impl Provenance {
    /// True when the engine supplied no provenance at all.
    pub fn is_empty(&self) -> bool {
        self.support.is_empty() && self.absent.is_empty()
    }

    /// Space-joined supporting tuple ids (`t3.1 t7.2`), aligned with the
    /// instantiation's WMEs.
    pub fn support_display(&self) -> String {
        self.support
            .iter()
            .map(|&p| TupleId::unpack(p).to_string())
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Space-joined absent patterns, rendered with class/attribute names.
    pub fn absent_display(&self, rules: &RuleSet) -> String {
        self.absent
            .iter()
            .map(|a| a.display(rules))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// One satisfied production: the rule plus the WM elements matched by its
/// positive condition elements, in CE order.
///
/// This is an entry of the paper's *conflict set* — "information on all
/// applicable rules and the data elements (tuples) that cause these rules
/// to fire" (§3.1).
///
/// Equality, ordering and hashing compare only `(rule, wmes)`; see
/// [`Provenance`] for why the provenance field is excluded.
#[derive(Debug, Clone)]
pub struct Instantiation {
    /// The owning rule.
    pub rule: RuleId,
    /// Matched WMEs aligned with the rule's *positive* CEs, in order.
    pub wmes: Vec<Wme>,
    /// Supporting tuple ids / absent patterns, when the engine tracks them.
    pub why: Provenance,
}

impl PartialEq for Instantiation {
    fn eq(&self, other: &Self) -> bool {
        self.rule == other.rule && self.wmes == other.wmes
    }
}

impl Eq for Instantiation {}

impl Hash for Instantiation {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.rule.hash(state);
        self.wmes.hash(state);
    }
}

impl PartialOrd for Instantiation {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Instantiation {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.rule
            .cmp(&other.rule)
            .then_with(|| self.wmes.cmp(&other.wmes))
    }
}

impl Instantiation {
    /// Create an instantiation without provenance.
    pub fn new(rule: RuleId, wmes: Vec<Wme>) -> Self {
        Instantiation {
            rule,
            wmes,
            why: Provenance::default(),
        }
    }

    /// Attach provenance.
    pub fn with_provenance(mut self, why: Provenance) -> Self {
        self.why = why;
        self
    }

    /// Render using rule names, for traces and tests.
    pub fn display(&self, rules: &RuleSet) -> String {
        let mut s = format!("{}:", rules.rule(self.rule).name);
        for w in &self.wmes {
            s.push(' ');
            s.push_str(&format!("{}{}", rules.class(w.class).name, w.tuple));
        }
        s
    }

    /// The matched WMEs rendered with class names (`Emp(Mike,6000,...)`),
    /// space-joined — the same form the conflict-delta trace uses.
    pub fn wmes_display(&self, rules: &RuleSet) -> String {
        let mut s = String::new();
        for w in &self.wmes {
            if !s.is_empty() {
                s.push(' ');
            }
            s.push_str(&rules.class(w.class).name);
            s.push_str(&w.tuple.to_string());
        }
        s
    }
}

/// An incremental change to the conflict set — the output arrows of the
/// paper's Figure 2 ("changes to conflict set").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConflictDelta {
    /// The instantiation entered the conflict set.
    Add(Instantiation),
    /// Remove one tuple equal to the payload.
    Remove(Instantiation),
}

impl ConflictDelta {
    /// The instantiation this delta adds or removes.
    pub fn instantiation(&self) -> &Instantiation {
        match self {
            ConflictDelta::Add(i) | ConflictDelta::Remove(i) => i,
        }
    }

    /// Is this an addition to the conflict set?
    pub fn is_add(&self) -> bool {
        matches!(self, ConflictDelta::Add(_))
    }
}

/// A maintained conflict set: applies deltas, iterates instantiations.
///
/// Semantically a **multiset**: OPS5 WMEs carry identity (time tags), so
/// two content-identical WM elements yield two separate instantiations.
/// Engines identify instantiations by content here, so duplicates are
/// tracked by multiplicity.
#[derive(Debug, Clone, Default)]
pub struct ConflictSet {
    items: Vec<Instantiation>,
}

impl ConflictSet {
    /// Create a new, empty instance.
    pub fn new() -> Self {
        ConflictSet::default()
    }

    /// Apply one delta (multiset semantics).
    pub fn apply(&mut self, delta: &ConflictDelta) {
        match delta {
            ConflictDelta::Add(i) => self.items.push(i.clone()),
            ConflictDelta::Remove(i) => {
                if let Some(pos) = self.items.iter().position(|x| x == i) {
                    self.items.remove(pos);
                }
            }
        }
    }

    /// Apply a sequence of deltas in order.
    pub fn apply_all<'a>(&mut self, deltas: impl IntoIterator<Item = &'a ConflictDelta>) {
        for d in deltas {
            self.apply(d);
        }
    }

    /// The current instantiations, in arrival order.
    pub fn items(&self) -> &[Instantiation] {
        &self.items
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Is this instantiation currently in the conflict set?
    pub fn contains(&self, i: &Instantiation) -> bool {
        self.items.contains(i)
    }

    /// Canonically sorted copy, for equivalence tests across engines.
    pub fn sorted(&self) -> Vec<Instantiation> {
        let mut v = self.items.clone();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::tuple;

    fn inst(rule: usize, vals: &[i64]) -> Instantiation {
        Instantiation::new(
            RuleId(rule),
            vals.iter()
                .map(|&v| Wme::new(ClassId(0), tuple![v]))
                .collect(),
        )
    }

    #[test]
    fn conflict_set_is_a_multiset() {
        let mut cs = ConflictSet::new();
        cs.apply(&ConflictDelta::Add(inst(0, &[1])));
        cs.apply(&ConflictDelta::Add(inst(0, &[1])));
        assert_eq!(cs.len(), 2, "identical WMEs yield separate instantiations");
        cs.apply(&ConflictDelta::Remove(inst(0, &[1])));
        assert_eq!(cs.len(), 1);
        cs.apply(&ConflictDelta::Remove(inst(0, &[1])));
        assert!(cs.is_empty());
        cs.apply(&ConflictDelta::Remove(inst(0, &[1])));
        assert!(cs.is_empty(), "removing from empty is a no-op");
    }

    #[test]
    fn sorted_is_canonical() {
        let mut a = ConflictSet::new();
        a.apply(&ConflictDelta::Add(inst(1, &[2])));
        a.apply(&ConflictDelta::Add(inst(0, &[1])));
        let mut b = ConflictSet::new();
        b.apply(&ConflictDelta::Add(inst(0, &[1])));
        b.apply(&ConflictDelta::Add(inst(1, &[2])));
        assert_eq!(a.sorted(), b.sorted());
    }

    #[test]
    fn delta_accessors() {
        let d = ConflictDelta::Add(inst(0, &[1]));
        assert!(d.is_add());
        assert_eq!(d.instantiation().rule, RuleId(0));
    }

    /// Provenance is carried but invisible to equality/ordering, so the
    /// conflict-set multiset removes provenance-free duplicates of an
    /// annotated instantiation and vice versa.
    #[test]
    fn provenance_does_not_affect_identity() {
        let plain = inst(0, &[1]);
        let annotated = plain.clone().with_provenance(Provenance {
            support: vec![TupleId::new(3, 1).pack()],
            absent: vec![AbsentPattern {
                class: ClassId(1),
                tests: vec![(0, CompOp::Eq, Value::Int(9))],
            }],
        });
        assert_eq!(plain, annotated);
        assert_eq!(plain.cmp(&annotated), std::cmp::Ordering::Equal);
        let mut cs = ConflictSet::new();
        cs.apply(&ConflictDelta::Add(annotated.clone()));
        cs.apply(&ConflictDelta::Remove(plain));
        assert!(cs.is_empty());
        assert_eq!(annotated.why.support_display(), "t3.1");
    }
}
