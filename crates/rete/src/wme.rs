//! Working-memory elements and conflict-set change records.

use std::fmt;

use ops5::{ClassId, RuleId, RuleSet};
use relstore::Tuple;

/// A working-memory element: a tuple of a declared class.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Wme {
    /// The class (relation) involved.
    pub class: ClassId,
    /// The tuple involved.
    pub tuple: Tuple,
}

impl Wme {
    /// Create a new, empty instance.
    pub fn new(class: ClassId, tuple: Tuple) -> Self {
        Wme { class, tuple }
    }
}

impl fmt::Display for Wme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}{}", self.class.0, self.tuple)
    }
}

/// One satisfied production: the rule plus the WM elements matched by its
/// positive condition elements, in CE order.
///
/// This is an entry of the paper's *conflict set* — "information on all
/// applicable rules and the data elements (tuples) that cause these rules
/// to fire" (§3.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Instantiation {
    /// The owning rule.
    pub rule: RuleId,
    /// Matched WMEs aligned with the rule's *positive* CEs, in order.
    pub wmes: Vec<Wme>,
}

impl Instantiation {
    /// Render using rule names, for traces and tests.
    pub fn display(&self, rules: &RuleSet) -> String {
        let mut s = format!("{}:", rules.rule(self.rule).name);
        for w in &self.wmes {
            s.push(' ');
            s.push_str(&format!("{}{}", rules.class(w.class).name, w.tuple));
        }
        s
    }
}

/// An incremental change to the conflict set — the output arrows of the
/// paper's Figure 2 ("changes to conflict set").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConflictDelta {
    /// The instantiation entered the conflict set.
    Add(Instantiation),
    /// Remove one tuple equal to the payload.
    Remove(Instantiation),
}

impl ConflictDelta {
    /// The instantiation this delta adds or removes.
    pub fn instantiation(&self) -> &Instantiation {
        match self {
            ConflictDelta::Add(i) | ConflictDelta::Remove(i) => i,
        }
    }

    /// Is this an addition to the conflict set?
    pub fn is_add(&self) -> bool {
        matches!(self, ConflictDelta::Add(_))
    }
}

/// A maintained conflict set: applies deltas, iterates instantiations.
///
/// Semantically a **multiset**: OPS5 WMEs carry identity (time tags), so
/// two content-identical WM elements yield two separate instantiations.
/// Engines identify instantiations by content here, so duplicates are
/// tracked by multiplicity.
#[derive(Debug, Clone, Default)]
pub struct ConflictSet {
    items: Vec<Instantiation>,
}

impl ConflictSet {
    /// Create a new, empty instance.
    pub fn new() -> Self {
        ConflictSet::default()
    }

    /// Apply one delta (multiset semantics).
    pub fn apply(&mut self, delta: &ConflictDelta) {
        match delta {
            ConflictDelta::Add(i) => self.items.push(i.clone()),
            ConflictDelta::Remove(i) => {
                if let Some(pos) = self.items.iter().position(|x| x == i) {
                    self.items.remove(pos);
                }
            }
        }
    }

    /// Apply a sequence of deltas in order.
    pub fn apply_all<'a>(&mut self, deltas: impl IntoIterator<Item = &'a ConflictDelta>) {
        for d in deltas {
            self.apply(d);
        }
    }

    /// The current instantiations, in arrival order.
    pub fn items(&self) -> &[Instantiation] {
        &self.items
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Is this instantiation currently in the conflict set?
    pub fn contains(&self, i: &Instantiation) -> bool {
        self.items.contains(i)
    }

    /// Canonically sorted copy, for equivalence tests across engines.
    pub fn sorted(&self) -> Vec<Instantiation> {
        let mut v = self.items.clone();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::tuple;

    fn inst(rule: usize, vals: &[i64]) -> Instantiation {
        Instantiation {
            rule: RuleId(rule),
            wmes: vals
                .iter()
                .map(|&v| Wme::new(ClassId(0), tuple![v]))
                .collect(),
        }
    }

    #[test]
    fn conflict_set_is_a_multiset() {
        let mut cs = ConflictSet::new();
        cs.apply(&ConflictDelta::Add(inst(0, &[1])));
        cs.apply(&ConflictDelta::Add(inst(0, &[1])));
        assert_eq!(cs.len(), 2, "identical WMEs yield separate instantiations");
        cs.apply(&ConflictDelta::Remove(inst(0, &[1])));
        assert_eq!(cs.len(), 1);
        cs.apply(&ConflictDelta::Remove(inst(0, &[1])));
        assert!(cs.is_empty());
        cs.apply(&ConflictDelta::Remove(inst(0, &[1])));
        assert!(cs.is_empty(), "removing from empty is a no-op");
    }

    #[test]
    fn sorted_is_canonical() {
        let mut a = ConflictSet::new();
        a.apply(&ConflictDelta::Add(inst(1, &[2])));
        a.apply(&ConflictDelta::Add(inst(0, &[1])));
        let mut b = ConflictSet::new();
        b.apply(&ConflictDelta::Add(inst(0, &[1])));
        b.apply(&ConflictDelta::Add(inst(1, &[2])));
        assert_eq!(a.sorted(), b.sorted());
    }

    #[test]
    fn delta_accessors() {
        let d = ConflictDelta::Add(inst(0, &[1]));
        assert!(d.is_add());
        assert_eq!(d.instantiation().rule, RuleId(0));
    }
}
