//! The classic in-memory Rete runtime (§3.1).
//!
//! Tokens flow from the root through one-input (alpha) tests into
//! two-input nodes whose memories hold partial joins; tokens reaching a
//! production node enter the conflict set. Insertions are `+` tokens,
//! deletions `-` tokens; modifications are a deletion followed by an
//! insertion (§3.1). Negated condition elements are negative nodes with
//! per-token match counts.

use std::collections::HashMap;

use ops5::{RuleId, RuleSet};

use crate::compile::{BJoinTest, BetaKind, NetworkPlan};
use crate::wme::{ConflictDelta, ConflictSet, Instantiation, Wme};

type WmeId = u32;

/// A token suspended at (or output by) a beta node.
#[derive(Debug, Clone)]
struct TokenEntry {
    wmes: Vec<WmeId>,
    /// For negative nodes: number of alpha WMEs currently matching.
    negcount: u32,
}

/// Per-operation cost metrics (reset on every insert/remove).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpMetrics {
    /// Beta-node activations (left or right).
    pub activations: u64,
    /// Join tests evaluated.
    pub join_tests: u64,
    /// Alpha restrictions evaluated.
    pub alpha_tests: u64,
    /// New tokens created.
    pub tokens_created: u64,
    /// Deepest beta node touched — the sequential propagation delay the
    /// paper's Figure 1 argument concerns.
    pub max_depth: usize,
}

impl OpMetrics {
    /// Fold another operation's metrics into this one.
    pub fn accumulate(&mut self, other: &OpMetrics) {
        self.activations += other.activations;
        self.join_tests += other.join_tests;
        self.alpha_tests += other.alpha_tests;
        self.tokens_created += other.tokens_created;
        self.max_depth = self.max_depth.max(other.max_depth);
    }
}

/// The in-memory Rete network.
pub struct ReteNetwork {
    plan: NetworkPlan,
    wmes: Vec<Option<Wme>>,
    free: Vec<WmeId>,
    by_content: HashMap<Wme, Vec<WmeId>>,
    alpha_mem: Vec<Vec<WmeId>>,
    /// Position of each WME inside its alpha memory, so a removal is a
    /// swap_remove instead of an O(|alpha|) retain scan.
    alpha_pos: Vec<HashMap<WmeId, usize>>,
    beta_mem: Vec<Vec<TokenEntry>>,
    /// Join nodes only: token indexes keyed by the token's last WME —
    /// the entry point of WME-driven retraction. Without it, every
    /// retraction partitions the node's whole memory, and a workload
    /// that fires deletes against a large WM pays O(WM) per firing.
    by_last: Vec<HashMap<WmeId, Vec<usize>>>,
    conflict: ConflictSet,
    metrics: OpMetrics,
}

impl ReteNetwork {
    /// Compile and instantiate a network for a rule set.
    pub fn new(rules: &RuleSet) -> Self {
        let plan = NetworkPlan::compile(rules);
        Self::from_plan(plan)
    }

    /// Instantiate a runtime over an already-compiled plan.
    pub fn from_plan(plan: NetworkPlan) -> Self {
        let alpha_mem = vec![Vec::new(); plan.alphas.len()];
        let mut beta_mem = vec![Vec::new(); plan.betas.len()];
        // The root holds the single empty token.
        beta_mem[plan.root()] = vec![TokenEntry {
            wmes: Vec::new(),
            negcount: 0,
        }];
        let alpha_pos = vec![HashMap::new(); plan.alphas.len()];
        let by_last = vec![HashMap::new(); plan.betas.len()];
        ReteNetwork {
            plan,
            wmes: Vec::new(),
            free: Vec::new(),
            by_content: HashMap::new(),
            alpha_mem,
            alpha_pos,
            beta_mem,
            by_last,
            conflict: ConflictSet::new(),
            metrics: OpMetrics::default(),
        }
    }

    /// The compiled network topology.
    pub fn plan(&self) -> &NetworkPlan {
        &self.plan
    }

    /// The maintained conflict set.
    pub fn conflict_set(&self) -> &ConflictSet {
        &self.conflict
    }

    /// Metrics of the most recent insert/remove.
    pub fn last_metrics(&self) -> OpMetrics {
        self.metrics
    }

    /// Number of live WMEs.
    pub fn wme_count(&self) -> usize {
        self.wmes.iter().flatten().count()
    }

    /// Stored tokens across all beta memories plus alpha memory postings —
    /// the Rete space metric for E2 ("an inherently redundant storage
    /// structure", §2.2).
    pub fn stored_entries(&self) -> usize {
        let alpha: usize = self.alpha_mem.iter().map(Vec::len).sum();
        let beta: usize = self.beta_mem.iter().map(Vec::len).sum();
        alpha + beta
    }

    /// Approximate bytes held in memories (tokens and postings).
    pub fn approx_bytes(&self) -> usize {
        let alpha = self.alpha_mem.iter().map(Vec::len).sum::<usize>() * 4;
        let beta: usize = self
            .beta_mem
            .iter()
            .flatten()
            .map(|t| 16 + t.wmes.len() * 4)
            .sum();
        let wmes: usize = self
            .wmes
            .iter()
            .flatten()
            .map(|w| w.tuple.approx_bytes() + 8)
            .sum();
        alpha + beta + wmes
    }

    fn wme(&self, id: WmeId) -> &Wme {
        self.wmes[id as usize].as_ref().expect("live wme")
    }

    fn tests_ok(&mut self, tests: &[BJoinTest], token: &[WmeId], right: WmeId) -> bool {
        self.metrics.join_tests += tests.len() as u64;
        let rw = self.wmes[right as usize].as_ref().expect("live wme");
        for t in tests {
            let lw = self.wmes[token[t.token_pos] as usize]
                .as_ref()
                .expect("live wme");
            let (Some(rv), Some(lv)) = (rw.tuple.get(t.my_attr), lw.tuple.get(t.token_attr)) else {
                return false;
            };
            if !t.op.eval(rv, lv) {
                return false;
            }
        }
        true
    }

    fn touch(&mut self, beta: usize) {
        self.metrics.activations += 1;
        self.metrics.max_depth = self.metrics.max_depth.max(self.plan.betas[beta].depth);
    }

    /// Insert a WME, returning conflict-set deltas.
    pub fn insert(&mut self, wme: Wme) -> Vec<ConflictDelta> {
        self.metrics = OpMetrics::default();
        let id = match self.free.pop() {
            Some(id) => {
                self.wmes[id as usize] = Some(wme.clone());
                id
            }
            None => {
                self.wmes.push(Some(wme.clone()));
                (self.wmes.len() - 1) as WmeId
            }
        };
        self.by_content.entry(wme.clone()).or_default().push(id);

        let mut deltas = Vec::new();
        for a in 0..self.plan.alphas.len() {
            let spec = &self.plan.alphas[a];
            self.metrics.alpha_tests += 1;
            if spec.class != wme.class || !spec.restriction.matches(&wme.tuple) {
                continue;
            }
            self.alpha_mem[a].push(id);
            self.alpha_pos[a].insert(id, self.alpha_mem[a].len() - 1);
            for s in self.plan.alpha_successors[a].clone() {
                self.right_activate(s, id, &mut deltas);
            }
        }
        self.conflict.apply_all(&deltas);
        deltas
    }

    /// Remove one WME equal to `wme` (multiset semantics). Returns the
    /// conflict-set deltas, empty when no such WME exists.
    pub fn remove(&mut self, wme: &Wme) -> Vec<ConflictDelta> {
        self.metrics = OpMetrics::default();
        let Some(ids) = self.by_content.get_mut(wme) else {
            return Vec::new();
        };
        let id = ids.pop().expect("content map entries are non-empty");
        if ids.is_empty() {
            self.by_content.remove(wme);
        }

        let mut deltas = Vec::new();
        // Pass 1: retract tokens that contain this WME (it was appended at
        // the join nodes fed by its alpha memories).
        for a in 0..self.plan.alphas.len() {
            let spec = &self.plan.alphas[a];
            if spec.class != wme.class || !spec.restriction.matches(&wme.tuple) {
                continue;
            }
            if let Some(pos) = self.alpha_pos[a].remove(&id) {
                self.alpha_mem[a].swap_remove(pos);
                if pos < self.alpha_mem[a].len() {
                    let moved = self.alpha_mem[a][pos];
                    self.alpha_pos[a].insert(moved, pos);
                }
            }
            for s in self.plan.alpha_successors[a].clone() {
                if matches!(self.plan.betas[s].kind, BetaKind::Join { .. }) {
                    self.retract_with_last(s, id, &mut deltas);
                }
            }
        }
        // Pass 2: negative nodes lose a matching right WME; suspended
        // tokens may come back to life.
        for a in 0..self.plan.alphas.len() {
            let spec = &self.plan.alphas[a];
            if spec.class != wme.class || !spec.restriction.matches(&wme.tuple) {
                continue;
            }
            for s in self.plan.alpha_successors[a].clone() {
                if matches!(self.plan.betas[s].kind, BetaKind::Negative { .. }) {
                    self.negative_right_removal(s, id, &mut deltas);
                }
            }
        }
        self.wmes[id as usize] = None;
        self.free.push(id);
        self.conflict.apply_all(&deltas);
        deltas
    }

    /// A new WME arrived in the alpha memory feeding `beta`.
    fn right_activate(&mut self, beta: usize, wid: WmeId, deltas: &mut Vec<ConflictDelta>) {
        self.touch(beta);
        match self.plan.betas[beta].kind.clone() {
            BetaKind::Join { parent, tests, .. } => {
                let parent_tokens = self.passing_tokens(parent);
                for t in parent_tokens {
                    if self.tests_ok(&tests, &t, wid) {
                        let mut out = t.clone();
                        out.push(wid);
                        self.emit_token(beta, out, deltas);
                    }
                }
            }
            BetaKind::Negative { tests, .. } => {
                // Right activation of a negative node: suspend newly
                // contradicted tokens.
                let mut newly_suspended = Vec::new();
                let entries = std::mem::take(&mut self.beta_mem[beta]);
                let mut kept = Vec::with_capacity(entries.len());
                for mut e in entries {
                    if self.tests_ok(&tests, &e.wmes, wid) {
                        e.negcount += 1;
                        if e.negcount == 1 {
                            newly_suspended.push(e.wmes.clone());
                        }
                    }
                    kept.push(e);
                }
                self.beta_mem[beta] = kept;
                for t in newly_suspended {
                    for c in self.plan.betas[beta].children.clone() {
                        self.retract_exact(c, &t, deltas);
                    }
                }
            }
            BetaKind::Root | BetaKind::Production { .. } => {
                unreachable!("alpha memories feed only two-input nodes")
            }
        }
    }

    /// Tokens a node passes to its children (negative nodes filter by
    /// count).
    fn passing_tokens(&self, beta: usize) -> Vec<Vec<WmeId>> {
        let filter_neg = matches!(self.plan.betas[beta].kind, BetaKind::Negative { .. });
        self.beta_mem[beta]
            .iter()
            .filter(|e| !filter_neg || e.negcount == 0)
            .map(|e| e.wmes.clone())
            .collect()
    }

    /// A token arrives at `beta` from its parent.
    fn token_arrived(&mut self, beta: usize, token: Vec<WmeId>, deltas: &mut Vec<ConflictDelta>) {
        self.touch(beta);
        match self.plan.betas[beta].kind.clone() {
            BetaKind::Join { alpha, tests, .. } => {
                for wid in self.alpha_mem[alpha].clone() {
                    if self.tests_ok(&tests, &token, wid) {
                        let mut out = token.clone();
                        out.push(wid);
                        self.emit_token(beta, out, deltas);
                    }
                }
                // Join memories are implicit: children read this node's
                // emitted tokens, stored by emit_token.
            }
            BetaKind::Negative { alpha, tests, .. } => {
                let count = self.alpha_mem[alpha]
                    .clone()
                    .into_iter()
                    .filter(|&wid| self.tests_ok(&tests, &token, wid))
                    .count() as u32;
                self.beta_mem[beta].push(TokenEntry {
                    wmes: token.clone(),
                    negcount: count,
                });
                self.metrics.tokens_created += 1;
                if count == 0 {
                    for c in self.plan.betas[beta].children.clone() {
                        self.token_arrived(c, token.clone(), deltas);
                    }
                }
            }
            BetaKind::Production { rule, .. } => {
                self.beta_mem[beta].push(TokenEntry {
                    wmes: token.clone(),
                    negcount: 0,
                });
                deltas.push(ConflictDelta::Add(self.instantiation(rule, &token)));
            }
            BetaKind::Root => unreachable!("root receives no tokens"),
        }
    }

    /// Store a token produced by join node `beta` and propagate it.
    fn emit_token(&mut self, beta: usize, token: Vec<WmeId>, deltas: &mut Vec<ConflictDelta>) {
        self.metrics.tokens_created += 1;
        let last = *token.last().expect("join tokens are non-empty");
        let idx = self.beta_mem[beta].len();
        self.beta_mem[beta].push(TokenEntry {
            wmes: token.clone(),
            negcount: 0,
        });
        self.by_last[beta].entry(last).or_default().push(idx);
        for c in self.plan.betas[beta].children.clone() {
            self.token_arrived(c, token.clone(), deltas);
        }
    }

    /// Remove one token of join node `beta` by index, keeping the
    /// last-WME index consistent across the swap_remove.
    fn remove_token_at(&mut self, beta: usize, idx: usize) -> TokenEntry {
        let entry = self.beta_mem[beta].swap_remove(idx);
        let last = *entry.wmes.last().expect("join tokens are non-empty");
        if let Some(slots) = self.by_last[beta].get_mut(&last) {
            if let Some(p) = slots.iter().position(|&x| x == idx) {
                slots.swap_remove(p);
            }
            if slots.is_empty() {
                self.by_last[beta].remove(&last);
            }
        }
        // The former tail now lives at `idx`: repoint its index entry.
        let old_tail = self.beta_mem[beta].len();
        if idx < old_tail {
            let moved_last = *self.beta_mem[beta][idx]
                .wmes
                .last()
                .expect("join tokens are non-empty");
            if let Some(slots) = self.by_last[beta].get_mut(&moved_last) {
                if let Some(p) = slots.iter().position(|&x| x == old_tail) {
                    slots[p] = idx;
                }
            }
        }
        entry
    }

    /// Remove the tokens of join node `beta` at `idxs`, highest first so
    /// each swap_remove only disturbs indexes we either already handled
    /// or retarget on the spot.
    fn take_tokens_at(&mut self, beta: usize, mut idxs: Vec<usize>) -> Vec<TokenEntry> {
        idxs.sort_unstable_by(|a, b| b.cmp(a));
        let mut out = Vec::with_capacity(idxs.len());
        let mut i = 0;
        while i < idxs.len() {
            let t = idxs[i];
            let tail = self.beta_mem[beta].len() - 1;
            if t != tail {
                // The tail element moves into `t`; if it is itself a
                // pending removal target, chase it to its new position.
                if let Some(p) = idxs[i + 1..].iter().position(|&x| x == tail) {
                    idxs[i + 1 + p] = t;
                }
            }
            out.push(self.remove_token_at(beta, t));
            i += 1;
        }
        out
    }

    /// Remove tokens of join node `beta` whose last element is `wid`.
    fn retract_with_last(&mut self, beta: usize, wid: WmeId, deltas: &mut Vec<ConflictDelta>) {
        self.touch(beta);
        let Some(idxs) = self.by_last[beta].get(&wid).cloned() else {
            return;
        };
        let gone = self.take_tokens_at(beta, idxs);
        for e in gone {
            for c in self.plan.betas[beta].children.clone() {
                self.retract_exact(c, &e.wmes, deltas);
            }
        }
    }

    /// Retract descendants of a token: at `beta`, remove entries whose
    /// prefix equals `token` (join nodes extend by one; negative and
    /// production nodes store it unchanged).
    fn retract_exact(&mut self, beta: usize, token: &[WmeId], deltas: &mut Vec<ConflictDelta>) {
        self.touch(beta);
        match self.plan.betas[beta].kind.clone() {
            BetaKind::Join { .. } => {
                let idxs: Vec<usize> = self.beta_mem[beta]
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.wmes.len() == token.len() + 1 && e.wmes.starts_with(token))
                    .map(|(i, _)| i)
                    .collect();
                let gone = self.take_tokens_at(beta, idxs);
                for e in gone {
                    for c in self.plan.betas[beta].children.clone() {
                        self.retract_exact(c, &e.wmes, deltas);
                    }
                }
            }
            BetaKind::Negative { .. } => {
                let mem = std::mem::take(&mut self.beta_mem[beta]);
                let (gone, kept): (Vec<_>, Vec<_>) = mem.into_iter().partition(|e| e.wmes == token);
                self.beta_mem[beta] = kept;
                for e in gone {
                    if e.negcount == 0 {
                        for c in self.plan.betas[beta].children.clone() {
                            self.retract_exact(c, &e.wmes, deltas);
                        }
                    }
                }
            }
            BetaKind::Production { rule, .. } => {
                let before = self.beta_mem[beta].len();
                self.beta_mem[beta].retain(|e| e.wmes != token);
                if self.beta_mem[beta].len() != before {
                    deltas.push(ConflictDelta::Remove(self.instantiation(rule, token)));
                }
            }
            BetaKind::Root => {}
        }
    }

    /// A right WME vanished from a negative node's alpha memory.
    fn negative_right_removal(&mut self, beta: usize, wid: WmeId, deltas: &mut Vec<ConflictDelta>) {
        self.touch(beta);
        let BetaKind::Negative { tests, .. } = self.plan.betas[beta].kind.clone() else {
            unreachable!()
        };
        let mut revived = Vec::new();
        let entries = std::mem::take(&mut self.beta_mem[beta]);
        let mut kept = Vec::with_capacity(entries.len());
        for mut e in entries {
            if self.tests_ok(&tests, &e.wmes, wid) {
                debug_assert!(e.negcount > 0, "count underflow");
                e.negcount -= 1;
                if e.negcount == 0 {
                    revived.push(e.wmes.clone());
                }
            }
            kept.push(e);
        }
        self.beta_mem[beta] = kept;
        for t in revived {
            for c in self.plan.betas[beta].children.clone() {
                self.token_arrived(c, t.clone(), deltas);
            }
        }
    }

    fn instantiation(&self, rule: RuleId, token: &[WmeId]) -> Instantiation {
        // WMEs are interned by content here; storage-level provenance
        // (tuple ids) is only available to the recompute-based engines.
        Instantiation::new(rule, token.iter().map(|&id| self.wme(id).clone()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ops5::ClassId;
    use relstore::tuple;

    fn example3() -> (RuleSet, ReteNetwork) {
        let rs = ops5::compile(
            r#"
            (literalize Emp name salary manager dno)
            (literalize Dept dno dname floor manager)
            (p R1
                (Emp ^name Mike ^salary <S> ^manager <M>)
                (Emp ^name <M> ^salary {<S1> < <S>})
                -->
                (remove 1))
            (p R2
                (Emp ^dno <D>)
                (Dept ^dno <D> ^dname Toy ^floor 1)
                -->
                (remove 1))
            "#,
        )
        .unwrap();
        let net = ReteNetwork::new(&rs);
        (rs, net)
    }

    #[test]
    fn r1_fires_when_mike_outearns_manager() {
        let (_, mut net) = example3();
        let emp = ClassId(0);
        assert!(net
            .insert(Wme::new(emp, tuple!["Sam", 5000, "Root", 1]))
            .is_empty());
        let deltas = net.insert(Wme::new(emp, tuple!["Mike", 6000, "Sam", 1]));
        assert_eq!(deltas.len(), 1);
        assert!(deltas[0].is_add());
        assert_eq!(deltas[0].instantiation().rule, RuleId(0));
        assert_eq!(net.conflict_set().len(), 1);
    }

    #[test]
    fn r1_does_not_fire_when_manager_earns_more() {
        let (_, mut net) = example3();
        let emp = ClassId(0);
        net.insert(Wme::new(emp, tuple!["Sam", 9000, "Root", 1]));
        let deltas = net.insert(Wme::new(emp, tuple!["Mike", 6000, "Sam", 1]));
        assert!(deltas.is_empty());
    }

    #[test]
    fn out_of_order_arrival_matches_eventually() {
        // Tuples "queue up at the network waiting for a future arrival of
        // a matching tuple" (§3.1).
        let (_, mut net) = example3();
        let emp = ClassId(0);
        let dept = ClassId(1);
        assert!(net
            .insert(Wme::new(emp, tuple!["Ann", 1000, "Sam", 7]))
            .is_empty());
        let deltas = net.insert(Wme::new(dept, tuple![7, "Toy", 1, "Sam"]));
        assert_eq!(deltas.len(), 1, "R2 fires once the Dept tuple arrives");
        assert_eq!(deltas[0].instantiation().rule, RuleId(1));
    }

    #[test]
    fn removal_retracts_instantiations() {
        let (_, mut net) = example3();
        let emp = ClassId(0);
        let dept = ClassId(1);
        net.insert(Wme::new(emp, tuple!["Ann", 1000, "Sam", 7]));
        net.insert(Wme::new(dept, tuple![7, "Toy", 1, "Sam"]));
        assert_eq!(net.conflict_set().len(), 1);
        let deltas = net.remove(&Wme::new(dept, tuple![7, "Toy", 1, "Sam"]));
        assert_eq!(deltas.len(), 1);
        assert!(!deltas[0].is_add());
        assert!(net.conflict_set().is_empty());
        assert_eq!(net.wme_count(), 1);
    }

    #[test]
    fn remove_unknown_wme_is_noop() {
        let (_, mut net) = example3();
        assert!(net
            .remove(&Wme::new(ClassId(0), tuple!["Ghost", 0, "X", 0]))
            .is_empty());
    }

    #[test]
    fn duplicate_wmes_are_multiset() {
        let (_, mut net) = example3();
        let emp = ClassId(0);
        let dept = ClassId(1);
        net.insert(Wme::new(dept, tuple![7, "Toy", 1, "Sam"]));
        net.insert(Wme::new(emp, tuple!["Ann", 1000, "Sam", 7]));
        net.insert(Wme::new(emp, tuple!["Ann", 1000, "Sam", 7]));
        assert_eq!(
            net.conflict_set().len(),
            2,
            "two identical emps, two instantiations"
        );
        net.remove(&Wme::new(emp, tuple!["Ann", 1000, "Sam", 7]));
        assert_eq!(net.conflict_set().len(), 1);
    }

    #[test]
    fn negation_suspends_and_revives() {
        let rs = ops5::compile(
            r#"
            (literalize Emp name dno)
            (literalize Dept dno)
            (p Orphan (Emp ^name <N> ^dno <D>) -(Dept ^dno <D>) --> (remove 1))
            "#,
        )
        .unwrap();
        let mut net = ReteNetwork::new(&rs);
        let emp = ClassId(0);
        let dept = ClassId(1);
        // Emp with no dept → fires.
        let d1 = net.insert(Wme::new(emp, tuple!["Ann", 7]));
        assert_eq!(d1.len(), 1);
        assert!(d1[0].is_add());
        // Matching dept arrives → retracts.
        let d2 = net.insert(Wme::new(dept, tuple![7]));
        assert_eq!(d2.len(), 1);
        assert!(!d2[0].is_add());
        assert!(net.conflict_set().is_empty());
        // Dept removed again → revives.
        let d3 = net.remove(&Wme::new(dept, tuple![7]));
        assert_eq!(d3.len(), 1);
        assert!(d3[0].is_add());
        assert_eq!(net.conflict_set().len(), 1);
        // Unrelated dept does nothing.
        assert!(net.insert(Wme::new(dept, tuple![8])).is_empty());
    }

    #[test]
    fn negation_counts_multiple_blockers() {
        let rs = ops5::compile(
            r#"
            (literalize Emp dno)
            (literalize Dept dno)
            (p NoDept (Emp ^dno <D>) -(Dept ^dno <D>) --> (remove 1))
            "#,
        )
        .unwrap();
        let mut net = ReteNetwork::new(&rs);
        net.insert(Wme::new(ClassId(0), tuple![7]));
        net.insert(Wme::new(ClassId(1), tuple![7]));
        net.insert(Wme::new(ClassId(1), tuple![7]));
        assert!(net.conflict_set().is_empty());
        net.remove(&Wme::new(ClassId(1), tuple![7]));
        assert!(net.conflict_set().is_empty(), "one blocker remains");
        net.remove(&Wme::new(ClassId(1), tuple![7]));
        assert_eq!(net.conflict_set().len(), 1, "all blockers gone");
    }

    #[test]
    fn metrics_track_depth() {
        let (_, mut net) = example3();
        let emp = ClassId(0);
        net.insert(Wme::new(emp, tuple!["Sam", 5000, "Root", 1]));
        net.insert(Wme::new(emp, tuple!["Mike", 6000, "Sam", 1]));
        let m = net.last_metrics();
        assert!(m.max_depth >= 3, "token reached a production node");
        assert!(m.activations > 0);
        assert!(m.alpha_tests > 0);
        assert!(net.stored_entries() > 0);
        assert!(net.approx_bytes() > 0);
    }

    #[test]
    fn insert_remove_inverse_restores_state() {
        let (_, mut net) = example3();
        let emp = ClassId(0);
        let dept = ClassId(1);
        net.insert(Wme::new(dept, tuple![7, "Toy", 1, "Sam"]));
        let baseline_entries = net.stored_entries();
        let baseline_cs = net.conflict_set().sorted();
        let w = Wme::new(emp, tuple!["Ann", 1000, "Sam", 7]);
        net.insert(w.clone());
        net.remove(&w);
        assert_eq!(net.stored_entries(), baseline_entries);
        assert_eq!(net.conflict_set().sorted(), baseline_cs);
    }
}
