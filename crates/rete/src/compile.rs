//! Rule-set → Rete network compilation.
//!
//! "Rule definitions are compiled and the discrimination network is
//! produced" (§3.1). The compiler builds:
//!
//! * a shared **alpha network**: one node per distinct `(class,
//!   one-input tests)` pair — identical condition elements across rules
//!   share a single alpha memory (Figure 3 shows the two Example 2 rules
//!   sharing their `Goal` tests);
//! * a **beta network** of two-input nodes: join nodes for positive CEs,
//!   negative nodes for `-` CEs, and a production node per rule. Beta
//!   prefixes are hash-consed, so rules with a common LHS prefix share
//!   join nodes.
//!
//! Negative nodes are emitted after all positive CEs of their rule (NOT
//! EXISTS is commutative, so this reordering preserves semantics while
//! letting negated CEs reference any positive binding).

use std::collections::HashMap;

use ops5::{ClassId, CondElem, Rule, RuleId, RuleSet};
use relstore::{CompOp, Restriction};

/// One alpha node: class filter plus one-input tests. Its memory holds
/// every WME passing the tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlphaSpec {
    /// The class (relation) involved.
    pub class: ClassId,
    /// The variable-free tests on this term.
    pub restriction: Restriction,
}

/// A two-input-node test: `right_wme[my_attr] op token[token_pos][token_attr]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BJoinTest {
    /// Attribute of this condition element.
    pub my_attr: usize,
    /// The comparison operator.
    pub op: CompOp,
    /// Position of the referenced WME within the token.
    pub token_pos: usize,
    /// Attribute of the referenced token WME.
    pub token_attr: usize,
}

/// Kind of a beta node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BetaKind {
    /// The dummy top node holding the single empty token.
    Root,
    /// Two-input join: extend parent tokens with WMEs from `alpha`.
    Join {
        parent: usize,
        alpha: usize,
        tests: Vec<BJoinTest>,
    },
    /// Negated CE: pass parent tokens through only while no WME in
    /// `alpha` matches the tests.
    Negative {
        parent: usize,
        alpha: usize,
        tests: Vec<BJoinTest>,
    },
    /// Terminal: tokens reaching here are instantiations of `rule`.
    Production { parent: usize, rule: RuleId },
}

/// A beta node with its children and distance from the root.
#[derive(Debug, Clone)]
pub struct BetaSpec {
    /// Which variant of behaviour applies.
    pub kind: BetaKind,
    /// Child node indexes.
    pub children: Vec<usize>,
    /// Distance from the root.
    pub depth: usize,
}

/// The compiled network shared by the in-memory and DB-backed runtimes.
#[derive(Debug, Clone)]
pub struct NetworkPlan {
    /// The shared alpha nodes.
    pub alphas: Vec<AlphaSpec>,
    /// Beta nodes fed by each alpha node.
    pub alpha_successors: Vec<Vec<usize>>,
    /// Beta nodes; index 0 is the root.
    pub betas: Vec<BetaSpec>,
    /// `rule_token_pos[rule][orig_ce]` = position of that CE's WME in a
    /// token (`None` for negated CEs, which contribute no WME).
    pub rule_token_pos: Vec<Vec<Option<usize>>>,
    /// Production beta node of each rule.
    pub rule_production: Vec<usize>,
}

impl NetworkPlan {
    /// Compile a rule set.
    pub fn compile(rules: &RuleSet) -> Self {
        Compiler::default().run(rules)
    }

    /// Index of the dummy root node (always 0).
    pub fn root(&self) -> usize {
        0
    }

    /// Number of two-input (join + negative) nodes — a Figure 3 metric.
    pub fn two_input_nodes(&self) -> usize {
        self.betas
            .iter()
            .filter(|b| matches!(b.kind, BetaKind::Join { .. } | BetaKind::Negative { .. }))
            .count()
    }

    /// Number of production (terminal) nodes.
    pub fn production_nodes(&self) -> usize {
        self.betas
            .iter()
            .filter(|b| matches!(b.kind, BetaKind::Production { .. }))
            .count()
    }

    /// Longest root→production path — the propagation depth the paper's
    /// Figure 1 argument is about.
    pub fn max_depth(&self) -> usize {
        self.betas.iter().map(|b| b.depth).max().unwrap_or(0)
    }
}

#[derive(Default)]
struct Compiler {
    alphas: Vec<AlphaSpec>,
    alpha_successors: Vec<Vec<usize>>,
    betas: Vec<BetaSpec>,
    /// Hash-consing for alpha nodes.
    alpha_index: HashMap<(ClassId, String), usize>,
    /// Hash-consing for beta nodes keyed on (kind)-shape.
    beta_index: HashMap<BetaKind, usize>,
}

impl Compiler {
    fn run(mut self, rules: &RuleSet) -> NetworkPlan {
        // Root node.
        self.betas.push(BetaSpec {
            kind: BetaKind::Root,
            children: Vec::new(),
            depth: 0,
        });
        let mut rule_token_pos = Vec::with_capacity(rules.rules.len());
        let mut rule_production = Vec::with_capacity(rules.rules.len());
        for rule in &rules.rules {
            let (pos_map, prod) = self.compile_rule(rule);
            rule_token_pos.push(pos_map);
            rule_production.push(prod);
        }
        NetworkPlan {
            alphas: self.alphas,
            alpha_successors: self.alpha_successors,
            betas: self.betas,
            rule_token_pos,
            rule_production,
        }
    }

    fn intern_alpha(&mut self, class: ClassId, restriction: &Restriction) -> usize {
        // Restrictions hash via their display form (stable and canonical
        // enough: resolution emits tests in source order).
        let key = (class, format!("{restriction}"));
        if let Some(&id) = self.alpha_index.get(&key) {
            return id;
        }
        let id = self.alphas.len();
        self.alphas.push(AlphaSpec {
            class,
            restriction: restriction.clone(),
        });
        self.alpha_successors.push(Vec::new());
        self.alpha_index.insert(key, id);
        id
    }

    fn intern_beta(&mut self, kind: BetaKind) -> usize {
        // Production nodes are never shared.
        if let Some(&id) = self.beta_index.get(&kind) {
            return id;
        }
        let id = self.betas.len();
        let (parent, alpha) = match &kind {
            BetaKind::Join { parent, alpha, .. } | BetaKind::Negative { parent, alpha, .. } => {
                (*parent, Some(*alpha))
            }
            BetaKind::Production { parent, .. } => (*parent, None),
            BetaKind::Root => unreachable!("root is pre-allocated"),
        };
        let depth = self.betas[parent].depth + 1;
        self.betas.push(BetaSpec {
            kind: kind.clone(),
            children: Vec::new(),
            depth,
        });
        self.betas[parent].children.push(id);
        if let Some(a) = alpha {
            self.alpha_successors[a].push(id);
        }
        if !matches!(kind, BetaKind::Production { .. }) {
            self.beta_index.insert(kind, id);
        }
        id
    }

    fn tests_for(ce: &CondElem, pos_of: &[Option<usize>]) -> Vec<BJoinTest> {
        ce.joins
            .iter()
            .map(|j| BJoinTest {
                my_attr: j.my_attr,
                op: j.op,
                token_pos: pos_of[j.other_ce].expect("joins reference positive CEs"),
                token_attr: j.other_attr,
            })
            .collect()
    }

    fn compile_rule(&mut self, rule: &Rule) -> (Vec<Option<usize>>, usize) {
        let mut pos_of: Vec<Option<usize>> = vec![None; rule.ces.len()];
        let mut next_pos = 0usize;
        for (i, ce) in rule.ces.iter().enumerate() {
            if !ce.negated {
                pos_of[i] = Some(next_pos);
                next_pos += 1;
            }
        }
        let mut current = 0; // root
                             // Positive CEs first, in order.
        for ce in rule.ces.iter().filter(|ce| !ce.negated) {
            let alpha = self.intern_alpha(ce.class, &ce.alpha);
            let tests = Self::tests_for(ce, &pos_of);
            current = self.intern_beta(BetaKind::Join {
                parent: current,
                alpha,
                tests,
            });
        }
        // Then negative nodes.
        for ce in rule.ces.iter().filter(|ce| ce.negated) {
            let alpha = self.intern_alpha(ce.class, &ce.alpha);
            let tests = Self::tests_for(ce, &pos_of);
            current = self.intern_beta(BetaKind::Negative {
                parent: current,
                alpha,
                tests,
            });
        }
        let prod = self.intern_beta(BetaKind::Production {
            parent: current,
            rule: rule.id,
        });
        (pos_of, prod)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 3: the compiled network for the two Example 2 rules.
    #[test]
    fn figure_3_topology_with_sharing() {
        let rs = ops5::compile(
            r#"
            (literalize Goal Type Object)
            (literalize Expression Name Arg1 Op Arg2)
            (p PlusOX
                (Goal ^Type Simplify ^Object <N>)
                (Expression ^Name <N> ^Arg1 0 ^Op + ^Arg2 <X>)
                -->
                (modify 2 ^Op nil ^Arg1 nil))
            (p TimesOX
                (Goal ^Type Simplify ^Object <N>)
                (Expression ^Name <N> ^Arg1 0 ^Op '*' ^Arg2 <X>)
                -->
                (modify 2 ^Op nil ^Arg2 nil))
            "#,
        )
        .unwrap();
        let plan = NetworkPlan::compile(&rs);
        // Alpha sharing: the identical Goal CE is interned once; the two
        // Expression CEs differ in their Op constant → 3 alpha nodes.
        assert_eq!(plan.alphas.len(), 3);
        // Beta sharing: the Goal join is shared; one Expression join per
        // rule → 3 two-input nodes, plus 2 production nodes.
        assert_eq!(plan.two_input_nodes(), 3);
        assert_eq!(plan.production_nodes(), 2);
        // Depth: root(0) → goal join(1) → expr join(2) → production(3).
        assert_eq!(plan.max_depth(), 3);
        assert_eq!(plan.rule_production.len(), 2);
        assert_ne!(plan.rule_production[0], plan.rule_production[1]);
    }

    #[test]
    fn chain_depth_grows_linearly() {
        // C1 ∧ C2 ∧ ... ∧ Cn (Figure 1): depth must be n + 1.
        for n in [1usize, 4, 16] {
            let mut src = String::from("(literalize C x)\n(p Chain ");
            for i in 0..n {
                if i == 0 {
                    src.push_str("(C ^x <V0>)");
                } else {
                    src.push_str(&format!("(C ^x {{> <V{}> <V{}>}})", i - 1, i));
                }
            }
            src.push_str(" --> (halt))");
            let rs = ops5::compile(&src).unwrap();
            let plan = NetworkPlan::compile(&rs);
            assert_eq!(plan.max_depth(), n + 1, "n = {n}");
            assert_eq!(plan.two_input_nodes(), n);
        }
    }

    #[test]
    fn negative_nodes_follow_positives() {
        let rs = ops5::compile(
            r#"
            (literalize Emp name dno)
            (literalize Dept dno)
            (p Orphan (Emp ^name <N> ^dno <D>) -(Dept ^dno <D>) --> (remove 1))
            "#,
        )
        .unwrap();
        let plan = NetworkPlan::compile(&rs);
        let neg = plan
            .betas
            .iter()
            .find(|b| matches!(b.kind, BetaKind::Negative { .. }))
            .expect("has negative node");
        assert_eq!(neg.depth, 2, "negative node sits after the positive join");
        // Its test references token position 0 (the Emp CE).
        if let BetaKind::Negative { tests, .. } = &neg.kind {
            assert_eq!(tests[0].token_pos, 0);
            assert_eq!(tests[0].token_attr, 1);
        }
        assert_eq!(plan.rule_token_pos[0], vec![Some(0), None]);
    }

    #[test]
    fn no_sharing_between_different_restrictions() {
        let rs = ops5::compile(
            r#"
            (literalize A x)
            (p R1 (A ^x 1) --> (remove 1))
            (p R2 (A ^x 2) --> (remove 1))
            (p R3 (A ^x 1) --> (halt))
            "#,
        )
        .unwrap();
        let plan = NetworkPlan::compile(&rs);
        assert_eq!(plan.alphas.len(), 2, "R1 and R3 share an alpha node");
        assert_eq!(plan.two_input_nodes(), 2, "R1 and R3 share their join node");
        assert_eq!(plan.production_nodes(), 3, "production nodes never shared");
    }
}
