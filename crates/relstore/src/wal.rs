//! Write-ahead logging and recovery.
//!
//! A persistent working memory needs more than snapshots: the paper's
//! §3.2 "persistent WM" claim implies surviving a crash between
//! checkpoints. `relstore` logs every logical change (relation creation,
//! index creation, tuple insert/delete) as a compact binary record;
//! [`recover`] replays a log on top of an optional snapshot.
//!
//! Deletions are logged *by content*, matching OPS5 `remove` semantics —
//! tuple ids are physical slot handles and not stable across replay.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use parking_lot::Mutex;

use crate::database::Database;
use crate::error::{Error, Result};
use crate::schema::{RelId, Schema};
use crate::tuple::Tuple;
use crate::value::Value;

const REC_CREATE: u8 = 1;
const REC_HASH_INDEX: u8 = 2;
const REC_ORD_INDEX: u8 = 3;
const REC_INSERT: u8 = 4;
const REC_DELETE: u8 = 5;

/// A logical change, as logged.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A relation was created.
    CreateRelation { name: String, attrs: Vec<String> },
    /// A hash index was created.
    CreateHashIndex { rel: RelId, attr: usize },
    /// An ordered index was created.
    CreateOrdIndex { rel: RelId, attr: usize },
    /// Insert the tuple.
    Insert { rel: RelId, tuple: Tuple },
    /// Delete one tuple equal to `tuple` (multiset semantics).
    Delete { rel: RelId, tuple: Tuple },
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String> {
    if buf.remaining() < 4 {
        return Err(Error::Corrupt("wal string length"));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(Error::Corrupt("wal string body"));
    }
    String::from_utf8(buf.copy_to_bytes(len).to_vec()).map_err(|_| Error::Corrupt("wal utf8"))
}

fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(0),
        Value::Bool(b) => {
            buf.put_u8(1);
            buf.put_u8(u8::from(*b));
        }
        Value::Int(i) => {
            buf.put_u8(2);
            buf.put_i64_le(*i);
        }
        Value::Float(f) => {
            buf.put_u8(3);
            buf.put_f64_le(*f);
        }
        Value::Str(s) => {
            buf.put_u8(4);
            put_str(buf, s);
        }
    }
}

fn get_value(buf: &mut Bytes) -> Result<Value> {
    if !buf.has_remaining() {
        return Err(Error::Corrupt("wal value tag"));
    }
    match buf.get_u8() {
        0 => Ok(Value::Null),
        1 => {
            if !buf.has_remaining() {
                return Err(Error::Corrupt("wal bool"));
            }
            Ok(Value::Bool(buf.get_u8() != 0))
        }
        2 => {
            if buf.remaining() < 8 {
                return Err(Error::Corrupt("wal int"));
            }
            Ok(Value::Int(buf.get_i64_le()))
        }
        3 => {
            if buf.remaining() < 8 {
                return Err(Error::Corrupt("wal float"));
            }
            Ok(Value::Float(buf.get_f64_le()))
        }
        4 => Ok(Value::from(get_str(buf)?)),
        _ => Err(Error::Corrupt("wal value tag")),
    }
}

fn put_tuple(buf: &mut BytesMut, t: &Tuple) {
    buf.put_u32_le(t.arity() as u32);
    for v in t.values() {
        put_value(buf, v);
    }
}

fn get_tuple(buf: &mut Bytes) -> Result<Tuple> {
    if buf.remaining() < 4 {
        return Err(Error::Corrupt("wal tuple arity"));
    }
    let n = buf.get_u32_le() as usize;
    let mut vals = Vec::with_capacity(n);
    for _ in 0..n {
        vals.push(get_value(buf)?);
    }
    Ok(Tuple::new(vals))
}

impl WalRecord {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            WalRecord::CreateRelation { name, attrs } => {
                buf.put_u8(REC_CREATE);
                put_str(buf, name);
                buf.put_u32_le(attrs.len() as u32);
                for a in attrs {
                    put_str(buf, a);
                }
            }
            WalRecord::CreateHashIndex { rel, attr } => {
                buf.put_u8(REC_HASH_INDEX);
                buf.put_u32_le(rel.0);
                buf.put_u32_le(*attr as u32);
            }
            WalRecord::CreateOrdIndex { rel, attr } => {
                buf.put_u8(REC_ORD_INDEX);
                buf.put_u32_le(rel.0);
                buf.put_u32_le(*attr as u32);
            }
            WalRecord::Insert { rel, tuple } => {
                buf.put_u8(REC_INSERT);
                buf.put_u32_le(rel.0);
                put_tuple(buf, tuple);
            }
            WalRecord::Delete { rel, tuple } => {
                buf.put_u8(REC_DELETE);
                buf.put_u32_le(rel.0);
                put_tuple(buf, tuple);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<WalRecord> {
        if !buf.has_remaining() {
            return Err(Error::Corrupt("wal record tag"));
        }
        let tag = buf.get_u8();
        let rec = match tag {
            REC_CREATE => {
                let name = get_str(buf)?;
                if buf.remaining() < 4 {
                    return Err(Error::Corrupt("wal attr count"));
                }
                let n = buf.get_u32_le() as usize;
                let mut attrs = Vec::with_capacity(n);
                for _ in 0..n {
                    attrs.push(get_str(buf)?);
                }
                WalRecord::CreateRelation { name, attrs }
            }
            REC_HASH_INDEX | REC_ORD_INDEX => {
                if buf.remaining() < 8 {
                    return Err(Error::Corrupt("wal index record"));
                }
                let rel = RelId(buf.get_u32_le());
                let attr = buf.get_u32_le() as usize;
                if tag == REC_HASH_INDEX {
                    WalRecord::CreateHashIndex { rel, attr }
                } else {
                    WalRecord::CreateOrdIndex { rel, attr }
                }
            }
            REC_INSERT | REC_DELETE => {
                if buf.remaining() < 4 {
                    return Err(Error::Corrupt("wal rel id"));
                }
                let rel = RelId(buf.get_u32_le());
                let tuple = get_tuple(buf)?;
                if tag == REC_INSERT {
                    WalRecord::Insert { rel, tuple }
                } else {
                    WalRecord::Delete { rel, tuple }
                }
            }
            _ => return Err(Error::Corrupt("unknown wal record")),
        };
        Ok(rec)
    }
}

/// An append-only in-memory log buffer (the durable medium is the
/// caller's concern — write [`Wal::bytes`] wherever fsync lives).
#[derive(Debug, Default)]
pub struct Wal {
    buf: Mutex<BytesMut>,
}

impl Wal {
    /// Create a new, empty instance.
    pub fn new() -> Self {
        Wal::default()
    }

    /// Append a record to the log.
    pub fn append(&self, rec: &WalRecord) {
        let mut buf = self.buf.lock();
        rec.encode(&mut buf);
    }

    /// The encoded log so far.
    pub fn bytes(&self) -> Bytes {
        self.buf.lock().clone().freeze()
    }

    /// Truncate after a checkpoint (snapshot taken).
    pub fn truncate(&self) {
        self.buf.lock().clear();
    }

    /// True when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.buf.lock().is_empty()
    }

    /// Decode a log into records.
    pub fn decode_all(mut bytes: Bytes) -> Result<Vec<WalRecord>> {
        let mut out = Vec::new();
        while bytes.has_remaining() {
            out.push(WalRecord::decode(&mut bytes)?);
        }
        Ok(out)
    }
}

/// Rebuild a database from an optional snapshot plus a log.
pub fn recover(snapshot: Option<Bytes>, log: Bytes) -> Result<Database> {
    let db = match snapshot {
        Some(s) => crate::snapshot::load(s)?,
        None => Database::new(),
    };
    for rec in Wal::decode_all(log)? {
        match rec {
            WalRecord::CreateRelation { name, attrs } => {
                db.create_relation(Schema::new(&name, attrs))?;
            }
            WalRecord::CreateHashIndex { rel, attr } => {
                db.write(rel, |r| r.create_hash_index(attr))??;
            }
            WalRecord::CreateOrdIndex { rel, attr } => {
                db.write(rel, |r| r.create_ord_index(attr))??;
            }
            WalRecord::Insert { rel, tuple } => {
                db.insert(rel, tuple)?;
            }
            WalRecord::Delete { rel, tuple } => {
                db.delete_equal(rel, &tuple)?;
            }
        }
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::{Restriction, Selection};
    use crate::tuple;

    #[test]
    fn record_roundtrip() {
        let records = vec![
            WalRecord::CreateRelation {
                name: "Emp".into(),
                attrs: vec!["a".into(), "b".into()],
            },
            WalRecord::CreateHashIndex {
                rel: RelId(0),
                attr: 1,
            },
            WalRecord::CreateOrdIndex {
                rel: RelId(0),
                attr: 0,
            },
            WalRecord::Insert {
                rel: RelId(0),
                tuple: tuple!["Mike", 6000.5],
            },
            WalRecord::Delete {
                rel: RelId(0),
                tuple: tuple![Value::Null, true],
            },
        ];
        let wal = Wal::new();
        for r in &records {
            wal.append(r);
        }
        let decoded = Wal::decode_all(wal.bytes()).unwrap();
        assert_eq!(decoded, records);
    }

    #[test]
    fn recover_from_log_only() {
        let wal = Wal::new();
        wal.append(&WalRecord::CreateRelation {
            name: "Emp".into(),
            attrs: vec!["name".into(), "salary".into()],
        });
        wal.append(&WalRecord::CreateHashIndex {
            rel: RelId(0),
            attr: 0,
        });
        wal.append(&WalRecord::Insert {
            rel: RelId(0),
            tuple: tuple!["Mike", 6000],
        });
        wal.append(&WalRecord::Insert {
            rel: RelId(0),
            tuple: tuple!["Sam", 5000],
        });
        wal.append(&WalRecord::Delete {
            rel: RelId(0),
            tuple: tuple!["Mike", 6000],
        });

        let db = recover(None, wal.bytes()).unwrap();
        let emp = db.rel_id("Emp").unwrap();
        assert_eq!(db.relation_len(emp), 1);
        assert!(db.read(emp, |r| r.has_hash_index(0)).unwrap());
        let rows = db
            .select(emp, &Restriction::new(vec![Selection::eq(0, "Sam")]))
            .unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn corrupt_log_rejected() {
        assert!(Wal::decode_all(Bytes::from_static(b"\xFF")).is_err());
        assert!(Wal::decode_all(Bytes::from_static(b"\x04\x00\x00")).is_err());
        assert!(Wal::decode_all(Bytes::new()).unwrap().is_empty());
    }

    #[test]
    fn truncate_after_checkpoint() {
        let wal = Wal::new();
        wal.append(&WalRecord::Insert {
            rel: RelId(0),
            tuple: tuple![1],
        });
        assert!(!wal.is_empty());
        wal.truncate();
        assert!(wal.is_empty());
        assert!(Wal::decode_all(wal.bytes()).unwrap().is_empty());
    }
}
