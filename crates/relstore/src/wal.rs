//! Write-ahead logging and recovery.
//!
//! A persistent working memory needs more than snapshots: the paper's
//! §3.2 "persistent WM" claim implies surviving a crash between
//! checkpoints. `relstore` logs every logical change (relation creation,
//! index creation, tuple insert/delete) as a framed binary record;
//! [`recover`] replays a log on top of an optional snapshot.
//!
//! Each record is framed as `[lsn u64][payload len u32][crc32 u32][payload]`,
//! with the checksum covering the LSN, length, and payload. The frame makes
//! two crash-safety properties checkable:
//!
//! * **Torn tails are tolerated.** A crash mid-append leaves a partial
//!   final frame; [`Wal::decode_prefix`] replays every whole record and
//!   reports how many trailing bytes were dropped instead of rejecting
//!   the entire log.
//! * **Write-ahead ordering is enforceable.** Every append returns its
//!   LSN; heap pages carry the LSN of the last record that touched them,
//!   and the buffer pool calls [`Wal::sync_to`] before a dirty page may
//!   reach disk.
//!
//! The log may be purely in-memory ([`Wal::new`], the default for
//! in-memory databases, where "durable" is a publish point with no
//! device behind it) or file-backed ([`Wal::create`] / [`Wal::open`]),
//! in which case [`Wal::sync`] appends new bytes and fsyncs.
//!
//! Deletions are logged *by content*, matching OPS5 `remove` semantics —
//! tuple ids are physical slot handles and not stable across replay.

use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use parking_lot::Mutex;

use crate::codec::{get_str, get_tuple, put_str, put_tuple, Crc32};
use crate::database::Database;
use crate::error::{Error, Result};
use crate::schema::{RelId, Schema};
use crate::tuple::Tuple;

const REC_CREATE: u8 = 1;
const REC_HASH_INDEX: u8 = 2;
const REC_ORD_INDEX: u8 = 3;
const REC_INSERT: u8 = 4;
const REC_DELETE: u8 = 5;

/// Size of the per-record frame header: LSN (8) + payload length (4) +
/// CRC-32 (4).
pub const FRAME_HEADER: usize = 16;

/// Sanity bound on a single frame's payload; a length field above this
/// is treated as corruption rather than attempted as an allocation.
const MAX_FRAME_PAYLOAD: usize = 64 << 20;

/// A logical change, as logged.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A relation was created.
    CreateRelation { name: String, attrs: Vec<String> },
    /// A hash index was created.
    CreateHashIndex { rel: RelId, attr: usize },
    /// An ordered index was created.
    CreateOrdIndex { rel: RelId, attr: usize },
    /// Insert the tuple.
    Insert { rel: RelId, tuple: Tuple },
    /// Delete one tuple equal to `tuple` (multiset semantics).
    Delete { rel: RelId, tuple: Tuple },
}

impl WalRecord {
    fn encode(&self, buf: &mut BytesMut) -> Result<()> {
        match self {
            WalRecord::CreateRelation { name, attrs } => {
                buf.put_u8(REC_CREATE);
                put_str(buf, name)?;
                buf.put_u32_le(attrs.len() as u32);
                for a in attrs {
                    put_str(buf, a)?;
                }
            }
            WalRecord::CreateHashIndex { rel, attr } => {
                buf.put_u8(REC_HASH_INDEX);
                buf.put_u32_le(rel.0);
                buf.put_u32_le(*attr as u32);
            }
            WalRecord::CreateOrdIndex { rel, attr } => {
                buf.put_u8(REC_ORD_INDEX);
                buf.put_u32_le(rel.0);
                buf.put_u32_le(*attr as u32);
            }
            WalRecord::Insert { rel, tuple } => {
                buf.put_u8(REC_INSERT);
                buf.put_u32_le(rel.0);
                put_tuple(buf, tuple)?;
            }
            WalRecord::Delete { rel, tuple } => {
                buf.put_u8(REC_DELETE);
                buf.put_u32_le(rel.0);
                put_tuple(buf, tuple)?;
            }
        }
        Ok(())
    }

    fn decode(buf: &mut Bytes) -> Result<WalRecord> {
        if !buf.has_remaining() {
            return Err(Error::Corrupt("wal record tag"));
        }
        let tag = buf.get_u8();
        let rec = match tag {
            REC_CREATE => {
                let name = get_str(buf)?;
                if buf.remaining() < 4 {
                    return Err(Error::Corrupt("wal attr count"));
                }
                let n = buf.get_u32_le() as usize;
                let mut attrs = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    attrs.push(get_str(buf)?);
                }
                WalRecord::CreateRelation { name, attrs }
            }
            REC_HASH_INDEX | REC_ORD_INDEX => {
                if buf.remaining() < 8 {
                    return Err(Error::Corrupt("wal index record"));
                }
                let rel = RelId(buf.get_u32_le());
                let attr = buf.get_u32_le() as usize;
                if tag == REC_HASH_INDEX {
                    WalRecord::CreateHashIndex { rel, attr }
                } else {
                    WalRecord::CreateOrdIndex { rel, attr }
                }
            }
            REC_INSERT | REC_DELETE => {
                if buf.remaining() < 4 {
                    return Err(Error::Corrupt("wal rel id"));
                }
                let rel = RelId(buf.get_u32_le());
                let tuple = get_tuple(buf)?;
                if tag == REC_INSERT {
                    WalRecord::Insert { rel, tuple }
                } else {
                    WalRecord::Delete { rel, tuple }
                }
            }
            _ => return Err(Error::Corrupt("unknown wal record")),
        };
        Ok(rec)
    }
}

/// Report of a torn tail found while decoding a log: the log was valid up
/// to `valid_bytes` and the remaining `dropped_bytes` were discarded.
/// What [`Wal::open`] found on disk: the log handle, the decoded records
/// of the valid prefix (in LSN order, for replay), and the torn-tail
/// report if the file ended mid-frame.
pub type WalOpened = (Wal, Vec<(u64, WalRecord)>, Option<TornTail>);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TornTail {
    /// Length of the valid prefix, in bytes.
    pub valid_bytes: usize,
    /// Bytes past the valid prefix that were dropped.
    pub dropped_bytes: usize,
    /// What the first invalid frame failed on.
    pub reason: &'static str,
}

/// Position of an incremental reader over the log, used by
/// [`Wal::bytes_since`]. [`Wal::truncate`] starts a new epoch; a cursor
/// from an older epoch restarts from the beginning of the current one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalCursor {
    epoch: u64,
    offset: usize,
}

impl WalCursor {
    /// A cursor positioned before the first byte ever logged.
    pub fn start() -> Self {
        WalCursor {
            epoch: 0,
            offset: 0,
        }
    }
}

impl Default for WalCursor {
    fn default() -> Self {
        Self::start()
    }
}

#[derive(Debug)]
struct WalInner {
    /// Encoded frames of the current epoch (since the last truncate).
    buf: BytesMut,
    /// Bytes of `buf` already written to `file`.
    flushed: usize,
    /// LSN the next append will receive. Starts at 1 and is monotonic
    /// across truncates, so a page's LSN is meaningful for its lifetime.
    next_lsn: u64,
    /// LSN of the most recent append (0 before any).
    last_lsn: u64,
    /// Highest LSN known durable (flushed + fsynced, or published for an
    /// in-memory log).
    durable_lsn: u64,
    /// Bumped by truncate; lets [`WalCursor`]s detect resets.
    epoch: u64,
    /// Backing file, when the log is durable at all.
    file: Option<File>,
    /// Path of the backing file (for atomic rewrites on truncate).
    path: Option<PathBuf>,
    /// Set when a write/fsync failed. After a failed fsync the kernel
    /// may silently drop the dirty pages, so a bare retry could report
    /// durability the device never provided (the "fsyncgate" pattern);
    /// a poisoned log refuses further durability claims until it is
    /// wholly rewritten ([`Wal::truncate_through`]) or reopened.
    poisoned: bool,
}

/// An append-only log of logical changes, optionally file-backed.
#[derive(Debug)]
pub struct Wal {
    inner: Mutex<WalInner>,
}

impl Default for Wal {
    fn default() -> Self {
        Wal::new()
    }
}

impl Wal {
    fn from_parts(buf: BytesMut, next_lsn: u64, file: Option<File>, path: Option<PathBuf>) -> Self {
        let flushed = buf.len();
        Wal {
            inner: Mutex::new(WalInner {
                buf,
                flushed,
                next_lsn,
                last_lsn: next_lsn - 1,
                durable_lsn: next_lsn - 1,
                epoch: 0,
                file,
                path,
                poisoned: false,
            }),
        }
    }

    /// Create a new, empty in-memory log.
    pub fn new() -> Self {
        Wal::from_parts(BytesMut::new(), 1, None, None)
    }

    /// Create a fresh file-backed log, truncating any existing file.
    pub fn create(path: &Path) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.sync_data()?;
        Ok(Wal::from_parts(
            BytesMut::new(),
            1,
            Some(file),
            Some(path.to_path_buf()),
        ))
    }

    /// Open an existing file-backed log (creating it if absent), decode
    /// its valid prefix, and physically truncate any torn tail so the
    /// file and the in-memory buffer agree.
    ///
    /// Returns the records of the valid prefix (for replay) and the torn
    /// tail report, if one was found.
    pub fn open(path: &Path) -> Result<WalOpened> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        let (records, torn) = Wal::decode_prefix(&raw);
        let valid = torn.map_or(raw.len(), |t| t.valid_bytes);
        if valid < raw.len() {
            file.set_len(valid as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(valid as u64))?;
        let next_lsn = records.last().map_or(1, |(lsn, _)| lsn + 1);
        let mut buf = BytesMut::with_capacity(valid);
        buf.put_slice(&raw[..valid]);
        Ok((
            Wal::from_parts(buf, next_lsn, Some(file), Some(path.to_path_buf())),
            records,
            torn,
        ))
    }

    /// Append a record to the log and return its LSN. The record is
    /// buffered; it becomes durable at the next [`Wal::sync`].
    pub fn append(&self, rec: &WalRecord) -> Result<u64> {
        let mut payload = BytesMut::new();
        rec.encode(&mut payload)?;
        let mut g = self.inner.lock();
        let lsn = g.next_lsn;
        let mut hdr = [0u8; 12];
        hdr[..8].copy_from_slice(&lsn.to_le_bytes());
        hdr[8..].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        let mut crc = Crc32::new();
        crc.update(&hdr);
        crc.update(payload.as_ref());
        g.buf.put_slice(&hdr);
        g.buf.put_u32_le(crc.finish());
        g.buf.put_slice(payload.as_ref());
        g.next_lsn += 1;
        g.last_lsn = lsn;
        Ok(lsn)
    }

    fn sync_locked(g: &mut WalInner) -> Result<()> {
        if g.poisoned {
            return Err(Error::Io(
                "wal poisoned by an earlier sync failure: durability unknown".into(),
            ));
        }
        if let Some(file) = g.file.as_mut() {
            let from = g.flushed;
            let res = file
                .write_all(&g.buf.as_ref()[from..])
                .and_then(|()| file.sync_data());
            if let Err(e) = res {
                // `flushed` has NOT advanced: a retry would rewrite the
                // suffix rather than re-fsyncing possibly-dropped pages.
                // But the kernel may already have discarded this write's
                // dirty pages while clearing the error, so no retry can
                // be trusted — poison the handle instead.
                g.poisoned = true;
                return Err(e.into());
            }
        }
        // In-memory log: "durable" is a publish point, not a device.
        g.flushed = g.buf.len();
        g.durable_lsn = g.last_lsn;
        Ok(())
    }

    /// Make every appended record durable: write the unflushed suffix to
    /// the backing file and fsync. O(new bytes), not O(log).
    pub fn sync(&self) -> Result<()> {
        Wal::sync_locked(&mut self.inner.lock())
    }

    /// Ensure records up to and including `lsn` are durable — the
    /// write-ahead gate the buffer pool calls before flushing a dirty
    /// page whose `page_lsn` is `lsn`. No-op when already durable.
    pub fn sync_to(&self, lsn: u64) -> Result<()> {
        let mut g = self.inner.lock();
        if g.durable_lsn >= lsn {
            return Ok(());
        }
        Wal::sync_locked(&mut g)
    }

    /// Highest LSN known durable.
    pub fn durable_lsn(&self) -> u64 {
        self.inner.lock().durable_lsn
    }

    /// LSN of the most recent append (0 before any).
    pub fn last_lsn(&self) -> u64 {
        self.inner.lock().last_lsn
    }

    /// Raise the LSN sequence so the next append is at least `floor + 1`.
    /// Used after recovery when a checkpoint snapshot's watermark exceeds
    /// every surviving log record's LSN — the records at or below the
    /// floor live on in the snapshot and count as durable.
    pub fn bump_lsn(&self, floor: u64) {
        let mut g = self.inner.lock();
        if g.next_lsn <= floor {
            g.next_lsn = floor + 1;
            g.last_lsn = floor;
            g.durable_lsn = floor;
        }
    }

    /// The encoded log of the current epoch, as one contiguous buffer.
    ///
    /// This copies the whole epoch and exists for recovery and tests;
    /// incremental consumers (checkpointers, shippers) should use
    /// [`Wal::bytes_since`], which is O(new bytes).
    pub fn bytes(&self) -> Bytes {
        let g = self.inner.lock();
        Bytes::from(g.buf.as_ref())
    }

    /// The bytes appended since `cursor` last observed the log, advancing
    /// the cursor. If the log was truncated since, the cursor restarts at
    /// the current epoch's beginning (the caller sees a full fresh copy).
    pub fn bytes_since(&self, cursor: &mut WalCursor) -> Bytes {
        let g = self.inner.lock();
        if cursor.epoch != g.epoch || cursor.offset > g.buf.len() {
            cursor.epoch = g.epoch;
            cursor.offset = 0;
        }
        let out = Bytes::from(&g.buf.as_ref()[cursor.offset..]);
        cursor.offset = g.buf.len();
        out
    }

    /// Drop every record with `lsn <= watermark` — superseded by a
    /// checkpoint snapshot carrying that watermark — and keep the suffix
    /// (records committed while the checkpoint was writing its files).
    ///
    /// File-backed logs are rewritten atomically: the suffix goes to a
    /// sibling temp file (fsynced) that is renamed over the log, so a
    /// crash leaves either the old full log (recovery skips the prefix
    /// via the snapshot's watermark) or the new suffix — never a
    /// partially truncated file. Because the whole remaining buffer is
    /// written and fsynced, a successful rewrite also clears a poisoned
    /// handle. Starts a new epoch; LSNs keep counting.
    pub fn truncate_through(&self, watermark: u64) -> Result<()> {
        let mut g = self.inner.lock();
        // Find the first frame past the watermark (LSNs in the buffer
        // are strictly increasing, so the cut is a prefix boundary).
        let mut at = 0usize;
        {
            let bytes = g.buf.as_ref();
            while at + FRAME_HEADER <= bytes.len() {
                let lsn = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
                if lsn > watermark {
                    break;
                }
                let len = u32::from_le_bytes(bytes[at + 8..at + 12].try_into().unwrap()) as usize;
                at += FRAME_HEADER + len;
            }
        }
        let at = at.min(g.buf.len());
        let mut tail = BytesMut::with_capacity(g.buf.len() - at);
        tail.put_slice(&g.buf.as_ref()[at..]);
        g.buf = tail;
        g.epoch += 1;
        // Keep flushed consistent with the shrunk buffer until the file
        // rewrite lands; on any file error the handle is poisoned, so a
        // stale value can never be trusted afterwards.
        g.flushed = g.flushed.saturating_sub(at).min(g.buf.len());
        if g.file.is_some() {
            let path = g.path.clone().expect("file-backed wal has a path");
            let tmp = path.with_extension("tmp");
            let rewrite = (|| -> Result<File> {
                {
                    let mut f = File::create(&tmp)?;
                    f.write_all(g.buf.as_ref())?;
                    f.sync_data()?;
                }
                std::fs::rename(&tmp, &path)?;
                let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
                file.seek(SeekFrom::End(0))?;
                Ok(file)
            })();
            match rewrite {
                Ok(file) => g.file = Some(file),
                Err(e) => {
                    g.poisoned = true;
                    return Err(e);
                }
            }
        }
        g.flushed = g.buf.len();
        g.durable_lsn = g.last_lsn;
        g.poisoned = false;
        Ok(())
    }

    /// Truncate after a checkpoint (snapshot taken). Starts a new epoch;
    /// LSNs keep counting so page LSNs stay meaningful.
    pub fn truncate(&self) -> Result<()> {
        let mut g = self.inner.lock();
        g.buf.clear();
        g.flushed = 0;
        g.epoch += 1;
        // Everything logged so far is superseded by the checkpoint, so
        // it is trivially "durable" for write-ahead purposes.
        g.durable_lsn = g.last_lsn;
        if let Some(file) = g.file.as_mut() {
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.sync_data()?;
        }
        Ok(())
    }

    /// True when there are no entries in the current epoch.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().buf.is_empty()
    }

    /// Walk frames; returns the decoded records, the length of the valid
    /// prefix, and what the first invalid frame failed on (if any).
    fn parse_frames(bytes: &[u8]) -> (Vec<(u64, WalRecord)>, usize, Option<&'static str>) {
        let mut out = Vec::new();
        let mut at = 0;
        while at < bytes.len() {
            if bytes.len() - at < FRAME_HEADER {
                return (out, at, Some("torn frame header"));
            }
            let lsn = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
            let len = u32::from_le_bytes(bytes[at + 8..at + 12].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(bytes[at + 12..at + 16].try_into().unwrap());
            if len > MAX_FRAME_PAYLOAD {
                return (out, at, Some("frame length over limit"));
            }
            if bytes.len() - at - FRAME_HEADER < len {
                return (out, at, Some("torn frame payload"));
            }
            let payload = &bytes[at + FRAME_HEADER..at + FRAME_HEADER + len];
            let mut check = Crc32::new();
            check.update(&bytes[at..at + 12]);
            check.update(payload);
            if check.finish() != crc {
                return (out, at, Some("frame checksum mismatch"));
            }
            let mut pb = Bytes::from(payload);
            match WalRecord::decode(&mut pb) {
                Ok(rec) if !pb.has_remaining() => out.push((lsn, rec)),
                _ => return (out, at, Some("frame payload undecodable")),
            }
            at += FRAME_HEADER + len;
        }
        (out, at, None)
    }

    /// Decode a log strictly: any invalid byte rejects the whole log.
    /// Recovery paths want [`Wal::decode_prefix`] instead.
    pub fn decode_all(bytes: Bytes) -> Result<Vec<WalRecord>> {
        let (records, _, err) = Wal::parse_frames(&bytes);
        match err {
            Some(msg) => Err(Error::Corrupt(msg)),
            None => Ok(records.into_iter().map(|(_, r)| r).collect()),
        }
    }

    /// Decode the valid prefix of a log, tolerating a torn tail: every
    /// whole, checksummed record is returned; the first invalid frame and
    /// everything after it are reported as a [`TornTail`].
    pub fn decode_prefix(bytes: &[u8]) -> (Vec<(u64, WalRecord)>, Option<TornTail>) {
        let (records, valid, err) = Wal::parse_frames(bytes);
        let torn = err.map(|reason| TornTail {
            valid_bytes: valid,
            dropped_bytes: bytes.len() - valid,
            reason,
        });
        (records, torn)
    }
}

/// Replay one logged record against a database.
pub(crate) fn apply_record(db: &Database, rec: WalRecord) -> Result<()> {
    match rec {
        WalRecord::CreateRelation { name, attrs } => {
            db.create_relation(Schema::new(&name, attrs))?;
        }
        WalRecord::CreateHashIndex { rel, attr } => {
            db.write(rel, |r| r.create_hash_index(attr))??;
        }
        WalRecord::CreateOrdIndex { rel, attr } => {
            db.write(rel, |r| r.create_ord_index(attr))??;
        }
        WalRecord::Insert { rel, tuple } => {
            db.insert(rel, tuple)?;
        }
        WalRecord::Delete { rel, tuple } => {
            db.delete_equal(rel, &tuple)?;
        }
    }
    Ok(())
}

/// Rebuild a database from an optional snapshot plus a log. A torn tail
/// in the log is truncated silently; use [`recover_with_report`] to
/// observe it.
pub fn recover(snapshot: Option<Bytes>, log: Bytes) -> Result<Database> {
    recover_with_report(snapshot, log).map(|(db, _)| db)
}

/// Like [`recover`], also reporting whether a torn tail was dropped.
///
/// Log records at or below the snapshot's LSN watermark are already
/// reflected in the snapshot image and are skipped, so recovering from
/// a snapshot plus a log that was never truncated (e.g. a crash between
/// the checkpoint's snapshot rename and its log truncation) does not
/// double-apply the prefix.
pub fn recover_with_report(
    snapshot: Option<Bytes>,
    log: Bytes,
) -> Result<(Database, Option<TornTail>)> {
    let (db, watermark) = match snapshot {
        Some(s) => {
            let db = Database::new();
            let watermark = crate::snapshot::load_into(s, &db)?;
            (db, watermark)
        }
        None => (Database::new(), 0),
    };
    let (records, torn) = Wal::decode_prefix(&log);
    for (lsn, rec) in records {
        if lsn > watermark {
            apply_record(&db, rec)?;
        }
    }
    Ok((db, torn))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::{Restriction, Selection};
    use crate::tuple;
    use crate::value::Value;

    #[test]
    fn record_roundtrip() {
        let records = vec![
            WalRecord::CreateRelation {
                name: "Emp".into(),
                attrs: vec!["a".into(), "b".into()],
            },
            WalRecord::CreateHashIndex {
                rel: RelId(0),
                attr: 1,
            },
            WalRecord::CreateOrdIndex {
                rel: RelId(0),
                attr: 0,
            },
            WalRecord::Insert {
                rel: RelId(0),
                tuple: tuple!["Mike", 6000.5],
            },
            WalRecord::Delete {
                rel: RelId(0),
                tuple: tuple![Value::Null, true],
            },
        ];
        let wal = Wal::new();
        for r in &records {
            wal.append(r).unwrap();
        }
        let decoded = Wal::decode_all(wal.bytes()).unwrap();
        assert_eq!(decoded, records);
    }

    #[test]
    fn lsns_are_sequential_and_survive_truncate() {
        let wal = Wal::new();
        let rec = WalRecord::Insert {
            rel: RelId(0),
            tuple: tuple![1],
        };
        assert_eq!(wal.append(&rec).unwrap(), 1);
        assert_eq!(wal.append(&rec).unwrap(), 2);
        wal.truncate().unwrap();
        // LSNs keep counting across epochs.
        assert_eq!(wal.append(&rec).unwrap(), 3);
        assert_eq!(wal.durable_lsn(), 2);
        wal.sync().unwrap();
        assert_eq!(wal.durable_lsn(), 3);
    }

    #[test]
    fn recover_from_log_only() {
        let wal = Wal::new();
        wal.append(&WalRecord::CreateRelation {
            name: "Emp".into(),
            attrs: vec!["name".into(), "salary".into()],
        })
        .unwrap();
        wal.append(&WalRecord::CreateHashIndex {
            rel: RelId(0),
            attr: 0,
        })
        .unwrap();
        wal.append(&WalRecord::Insert {
            rel: RelId(0),
            tuple: tuple!["Mike", 6000],
        })
        .unwrap();
        wal.append(&WalRecord::Insert {
            rel: RelId(0),
            tuple: tuple!["Sam", 5000],
        })
        .unwrap();
        wal.append(&WalRecord::Delete {
            rel: RelId(0),
            tuple: tuple!["Mike", 6000],
        })
        .unwrap();

        let db = recover(None, wal.bytes()).unwrap();
        let emp = db.rel_id("Emp").unwrap();
        assert_eq!(db.relation_len(emp), 1);
        assert!(db.read(emp, |r| r.has_hash_index(0)).unwrap());
        let rows = db
            .select(emp, &Restriction::new(vec![Selection::eq(0, "Sam")]))
            .unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn corrupt_log_rejected() {
        assert!(Wal::decode_all(Bytes::from_static(b"\xFF")).is_err());
        assert!(Wal::decode_all(Bytes::from_static(b"\x04\x00\x00")).is_err());
        assert!(Wal::decode_all(Bytes::new()).unwrap().is_empty());
    }

    #[test]
    fn flipped_bit_caught_by_checksum() {
        let wal = Wal::new();
        wal.append(&WalRecord::Insert {
            rel: RelId(0),
            tuple: tuple!["abc", 42],
        })
        .unwrap();
        let good = wal.bytes();
        for i in 0..good.len() {
            let mut bad = good.to_vec();
            bad[i] ^= 0x40;
            let (records, torn) = Wal::decode_prefix(&bad);
            assert!(records.is_empty(), "flip at {i} produced a record");
            assert!(torn.is_some(), "flip at {i} not reported");
        }
    }

    #[test]
    fn torn_tail_tolerated_at_every_offset() {
        let wal = Wal::new();
        let recs = [
            WalRecord::CreateRelation {
                name: "T".into(),
                attrs: vec!["x".into()],
            },
            WalRecord::Insert {
                rel: RelId(0),
                tuple: tuple![1],
            },
            WalRecord::Insert {
                rel: RelId(0),
                tuple: tuple![2],
            },
        ];
        let mut boundaries = vec![0];
        for r in &recs {
            wal.append(r).unwrap();
            boundaries.push(wal.bytes().len());
        }
        let log = wal.bytes();
        for cut in 0..=log.len() {
            let (records, torn) = Wal::decode_prefix(&log[..cut]);
            let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(records.len(), whole, "cut at {cut}");
            assert_eq!(torn.is_none(), boundaries.contains(&cut), "cut at {cut}");
            if let Some(t) = torn {
                assert_eq!(t.valid_bytes, boundaries[whole]);
                assert_eq!(t.valid_bytes + t.dropped_bytes, cut);
            }
        }
    }

    #[test]
    fn bytes_since_is_incremental_and_epoch_aware() {
        let wal = Wal::new();
        let rec = WalRecord::Insert {
            rel: RelId(0),
            tuple: tuple![7],
        };
        let mut cur = WalCursor::start();
        assert!(wal.bytes_since(&mut cur).is_empty());
        wal.append(&rec).unwrap();
        let first = wal.bytes_since(&mut cur);
        assert_eq!(first, wal.bytes());
        // Nothing new: empty delta, no copy of the old bytes.
        assert!(wal.bytes_since(&mut cur).is_empty());
        wal.append(&rec).unwrap();
        let second = wal.bytes_since(&mut cur);
        assert_eq!(first.len() + second.len(), wal.bytes().len());
        // Truncate starts a new epoch; a stale cursor sees the fresh log
        // from its beginning.
        wal.truncate().unwrap();
        wal.append(&rec).unwrap();
        assert_eq!(wal.bytes_since(&mut cur), wal.bytes());
    }

    #[test]
    fn truncate_after_checkpoint() {
        let wal = Wal::new();
        wal.append(&WalRecord::Insert {
            rel: RelId(0),
            tuple: tuple![1],
        })
        .unwrap();
        assert!(!wal.is_empty());
        wal.truncate().unwrap();
        assert!(wal.is_empty());
        assert!(Wal::decode_all(wal.bytes()).unwrap().is_empty());
    }

    #[test]
    fn file_backed_log_persists_and_truncates_torn_tail() {
        let dir = std::env::temp_dir().join(format!("relstore-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.log");
        {
            let wal = Wal::create(&path).unwrap();
            wal.append(&WalRecord::CreateRelation {
                name: "T".into(),
                attrs: vec!["x".into()],
            })
            .unwrap();
            wal.append(&WalRecord::Insert {
                rel: RelId(0),
                tuple: tuple![1],
            })
            .unwrap();
            wal.sync().unwrap();
        }
        // Simulate a crash mid-append: chop 3 bytes off the tail.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let (wal, records, torn) = Wal::open(&path).unwrap();
        assert_eq!(records.len(), 1, "only the whole record survives");
        let torn = torn.expect("torn tail reported");
        assert!(torn.dropped_bytes > 0);
        // The file was physically truncated to the valid prefix and new
        // appends continue the LSN sequence.
        assert_eq!(std::fs::read(&path).unwrap().len(), torn.valid_bytes);
        let lsn = wal
            .append(&WalRecord::Insert {
                rel: RelId(0),
                tuple: tuple![2],
            })
            .unwrap();
        assert_eq!(lsn, 2);
        wal.sync().unwrap();
        let (_, records, torn) = Wal::open(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert!(torn.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_through_keeps_suffix_and_lsn_sequence() {
        let wal = Wal::new();
        let rec = |i: i64| WalRecord::Insert {
            rel: RelId(0),
            tuple: tuple![i],
        };
        for i in 1..=4i64 {
            assert_eq!(wal.append(&rec(i)).unwrap(), i as u64);
        }
        wal.truncate_through(2).unwrap();
        let (records, torn) = Wal::decode_prefix(&wal.bytes());
        assert!(torn.is_none());
        let lsns: Vec<u64> = records.iter().map(|(l, _)| *l).collect();
        assert_eq!(lsns, vec![3, 4], "records past the watermark survive");
        assert_eq!(wal.last_lsn(), 4);
        assert_eq!(wal.durable_lsn(), 4, "surviving suffix counts as durable");
        assert_eq!(wal.append(&rec(5)).unwrap(), 5, "LSNs keep counting");
        // A watermark covering everything empties the log.
        wal.truncate_through(5).unwrap();
        assert!(wal.is_empty());
        assert_eq!(wal.append(&rec(6)).unwrap(), 6);
    }

    #[test]
    fn truncate_through_file_backed_rewrites_and_reopens() {
        let dir = std::env::temp_dir().join(format!(
            "relstore-wal-tt-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.log");
        let rec = |i: i64| WalRecord::Insert {
            rel: RelId(0),
            tuple: tuple![i],
        };
        {
            let wal = Wal::create(&path).unwrap();
            for i in 1..=4i64 {
                wal.append(&rec(i)).unwrap();
            }
            wal.sync().unwrap();
            wal.truncate_through(2).unwrap();
            // The on-disk file holds exactly the surviving suffix.
            let bytes = std::fs::read(&path).unwrap();
            let (records, torn) = Wal::decode_prefix(&bytes);
            assert!(torn.is_none());
            let lsns: Vec<u64> = records.iter().map(|(l, _)| *l).collect();
            assert_eq!(lsns, vec![3, 4]);
            // The rewritten handle keeps appending in place.
            wal.append(&rec(5)).unwrap();
            wal.sync().unwrap();
        }
        let (wal, records, torn) = Wal::open(&path).unwrap();
        assert!(torn.is_none());
        let lsns: Vec<u64> = records.iter().map(|(l, _)| *l).collect();
        assert_eq!(lsns, vec![3, 4, 5]);
        assert_eq!(wal.append(&rec(6)).unwrap(), 6);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bump_lsn_raises_floor_only_forward() {
        let wal = Wal::new();
        wal.bump_lsn(10);
        assert_eq!(wal.last_lsn(), 10);
        let lsn = wal
            .append(&WalRecord::Insert {
                rel: RelId(0),
                tuple: tuple![1],
            })
            .unwrap();
        assert_eq!(lsn, 11, "appends continue past the floor");
        wal.bump_lsn(5);
        assert_eq!(wal.last_lsn(), 11, "a lower floor is a no-op");
    }

    #[test]
    fn recover_skips_records_at_or_below_snapshot_watermark() {
        let db = Database::new();
        let wal = db.enable_wal();
        let rid = db.create_relation(Schema::new("R", ["v"])).unwrap();
        db.insert(rid, tuple![1]).unwrap();
        db.insert(rid, tuple![2]).unwrap();
        // Snapshot taken but the log NOT truncated — exactly the state a
        // crash between a checkpoint's snapshot rename and its WAL
        // truncation leaves behind.
        let snap = crate::snapshot::save(&db).unwrap();
        db.insert(rid, tuple![3]).unwrap();
        let back = recover(Some(snap), wal.bytes()).unwrap();
        let r2 = back.rel_id("R").unwrap();
        assert_eq!(
            back.relation_len(r2),
            3,
            "pre-snapshot records skipped, post-snapshot record replayed"
        );
    }
}
