//! Tuples and tuple identifiers.

use std::fmt;
use std::ops::Index;
use std::sync::Arc;

use crate::value::Value;

/// Identifier of a live tuple within one relation (slot number).
///
/// Ids are assigned by the relation and never reused while the tuple is
/// live; after deletion the slot may be recycled with a fresh generation,
/// so a `TupleId` also carries a generation counter to make stale ids
/// detectable (the classic slotted-page "tombstone" problem).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleId {
    /// Slot (position) within the relation.
    pub slot: u32,
    /// Generation, bumped when the slot is recycled.
    pub gen: u32,
}

impl TupleId {
    /// Create a new, empty instance.
    pub fn new(slot: u32, gen: u32) -> Self {
        TupleId { slot, gen }
    }

    /// Pack into a single u64 (snapshot encoding).
    pub fn pack(self) -> u64 {
        ((self.slot as u64) << 32) | self.gen as u64
    }

    /// Inverse of [`TupleId::pack`].
    pub fn unpack(raw: u64) -> Self {
        TupleId {
            slot: (raw >> 32) as u32,
            gen: raw as u32,
        }
    }
}

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}.{}", self.slot, self.gen)
    }
}

/// An immutable tuple of values.
///
/// Tuples are shared (`Arc`) between working-memory relations, Rete
/// memories, and conflict-set instantiations; cloning a `Tuple` only bumps
/// a refcount, matching the paper's observation that a single WM element may
/// simultaneously satisfy several rule conditions.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    values: Arc<[Value]>,
}

impl Tuple {
    /// Create a new, empty instance.
    pub fn new(values: impl Into<Vec<Value>>) -> Self {
        Tuple {
            values: Arc::from(values.into().into_boxed_slice()),
        }
    }

    /// Number of values in the tuple.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The tuple's values, in attribute order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The value at attribute `idx`, or `None` when out of range.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Approximate footprint for the space experiments.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Tuple>() + self.values.iter().map(Value::approx_bytes).sum::<usize>()
    }

    /// Build a new tuple with `idx` replaced by `value` (used by `modify`).
    pub fn with_value(&self, idx: usize, value: Value) -> Tuple {
        let mut v: Vec<Value> = self.values.to_vec();
        v[idx] = value;
        Tuple::new(v)
    }
}

impl Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        &self.values[idx]
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Convenience constructor: `tuple!["Mike", 32, 5000, 7]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_macro_and_access() {
        let t = tuple!["Mike", 32, 5000.0, true];
        assert_eq!(t.arity(), 4);
        assert_eq!(t[0], Value::str("Mike"));
        assert_eq!(t[1], Value::Int(32));
        assert_eq!(t.get(4), None);
        assert_eq!(t.to_string(), "(Mike, 32, 5000, true)");
    }

    #[test]
    fn with_value_is_persistent() {
        let t = tuple![1, 2, 3];
        let u = t.with_value(1, Value::Int(9));
        assert_eq!(t[1], Value::Int(2));
        assert_eq!(u[1], Value::Int(9));
    }

    #[test]
    fn tuple_id_pack_roundtrip() {
        let id = TupleId::new(0xDEAD_BEEF, 42);
        assert_eq!(TupleId::unpack(id.pack()), id);
        assert_eq!(id.to_string(), "t3735928559.42");
    }

    #[test]
    fn clone_shares_storage() {
        let t = tuple!["a", "b"];
        let u = t.clone();
        assert!(Arc::ptr_eq(&t.values, &u.values));
    }
}
