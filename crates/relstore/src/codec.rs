//! Shared binary codec for values, tuples, and strings.
//!
//! The WAL ([`crate::wal`]), the snapshot writer ([`crate::snapshot`]),
//! and the heap pages ([`crate::page`]) all serialize the same value
//! vocabulary; earlier revisions each carried a private copy of these
//! helpers, and each copy silently truncated string lengths with
//! `len as u32` — an oversized string produced an undecodable record.
//! This module is the single implementation, with an explicit length cap
//! enforced at encode time, plus the CRC-32 used to frame WAL records.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::{Error, Result};
use crate::tuple::Tuple;
use crate::value::Value;

/// Longest encodable string, in bytes. Far below `u32::MAX` so the cap is
/// testable, and far above any OPS5 symbol a production system stores.
pub const MAX_STR_BYTES: usize = 16 << 20; // 16 MiB

/// Append a length-prefixed string; rejects strings over
/// [`MAX_STR_BYTES`] instead of truncating the length prefix.
pub fn put_str(buf: &mut BytesMut, s: &str) -> Result<()> {
    if s.len() > MAX_STR_BYTES {
        return Err(Error::TooLarge("string exceeds the 16 MiB codec limit"));
    }
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
    Ok(())
}

/// Decode a string written by [`put_str`].
pub fn get_str(buf: &mut Bytes) -> Result<String> {
    if buf.remaining() < 4 {
        return Err(Error::Corrupt("string length"));
    }
    let len = buf.get_u32_le() as usize;
    if len > MAX_STR_BYTES {
        return Err(Error::Corrupt("string length over codec limit"));
    }
    if buf.remaining() < len {
        return Err(Error::Corrupt("string body"));
    }
    String::from_utf8(buf.copy_to_bytes(len).to_vec()).map_err(|_| Error::Corrupt("string utf8"))
}

/// Append one tagged value.
pub fn put_value(buf: &mut BytesMut, v: &Value) -> Result<()> {
    match v {
        Value::Null => buf.put_u8(0),
        Value::Bool(b) => {
            buf.put_u8(1);
            buf.put_u8(u8::from(*b));
        }
        Value::Int(i) => {
            buf.put_u8(2);
            buf.put_i64_le(*i);
        }
        Value::Float(f) => {
            buf.put_u8(3);
            buf.put_f64_le(*f);
        }
        Value::Str(s) => {
            buf.put_u8(4);
            put_str(buf, s)?;
        }
    }
    Ok(())
}

/// Decode a value written by [`put_value`].
pub fn get_value(buf: &mut Bytes) -> Result<Value> {
    if !buf.has_remaining() {
        return Err(Error::Corrupt("value tag"));
    }
    match buf.get_u8() {
        0 => Ok(Value::Null),
        1 => {
            if !buf.has_remaining() {
                return Err(Error::Corrupt("bool body"));
            }
            Ok(Value::Bool(buf.get_u8() != 0))
        }
        2 => {
            if buf.remaining() < 8 {
                return Err(Error::Corrupt("int body"));
            }
            Ok(Value::Int(buf.get_i64_le()))
        }
        3 => {
            if buf.remaining() < 8 {
                return Err(Error::Corrupt("float body"));
            }
            Ok(Value::Float(buf.get_f64_le()))
        }
        4 => Ok(Value::from(get_str(buf)?)),
        _ => Err(Error::Corrupt("unknown value tag")),
    }
}

/// Append an arity-prefixed tuple.
pub fn put_tuple(buf: &mut BytesMut, t: &Tuple) -> Result<()> {
    buf.put_u32_le(t.arity() as u32);
    for v in t.values() {
        put_value(buf, v)?;
    }
    Ok(())
}

/// Decode a tuple written by [`put_tuple`].
pub fn get_tuple(buf: &mut Bytes) -> Result<Tuple> {
    if buf.remaining() < 4 {
        return Err(Error::Corrupt("tuple arity"));
    }
    let n = buf.get_u32_le() as usize;
    let mut vals = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        vals.push(get_value(buf)?);
    }
    Ok(Tuple::new(vals))
}

/// Encode a tuple standalone (heap-page record payloads).
pub fn encode_tuple(t: &Tuple) -> Result<Bytes> {
    let mut buf = BytesMut::new();
    put_tuple(&mut buf, t)?;
    Ok(buf.freeze())
}

/// Decode a standalone tuple payload written by [`encode_tuple`].
pub fn decode_tuple(bytes: &[u8]) -> Result<Tuple> {
    let mut b = Bytes::from(bytes);
    get_tuple(&mut b)
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) lookup table, built at
/// compile time — the frame checksum must not pull in a dependency.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Incremental CRC-32 over several byte slices.
#[derive(Debug, Clone, Copy)]
pub struct Crc32(u32);

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Start a fresh checksum.
    pub fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    /// Feed bytes into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.0;
        for &b in bytes {
            c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.0 = c;
    }

    /// Finish and return the checksum value.
    pub fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn crc32_known_vectors() {
        // The canonical IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Incremental == one-shot.
        let mut inc = Crc32::new();
        inc.update(b"1234");
        inc.update(b"56789");
        assert_eq!(inc.finish(), 0xCBF4_3926);
    }

    #[test]
    fn tuple_roundtrip() {
        let t = tuple!["Mike", 6000.5, Value::Null, true, -3];
        let enc = encode_tuple(&t).unwrap();
        assert_eq!(decode_tuple(&enc).unwrap(), t);
    }

    #[test]
    fn oversized_string_rejected_not_truncated() {
        let big = "x".repeat(MAX_STR_BYTES + 1);
        let mut buf = BytesMut::new();
        assert!(matches!(put_str(&mut buf, &big), Err(Error::TooLarge(_))));
        assert!(buf.is_empty(), "nothing written on rejection");
        let t = Tuple::new(vec![Value::from(big)]);
        assert!(matches!(encode_tuple(&t), Err(Error::TooLarge(_))));
        // A string at the limit still encodes.
        let ok = "x".repeat(64);
        let mut buf = BytesMut::new();
        put_str(&mut buf, &ok).unwrap();
        assert_eq!(get_str(&mut buf.freeze()).unwrap(), ok);
    }

    #[test]
    fn truncated_payloads_reported_corrupt() {
        let t = tuple![1, "abc"];
        let enc = encode_tuple(&t).unwrap();
        for cut in 0..enc.len() {
            assert!(decode_tuple(&enc[..cut]).is_err(), "cut at {cut}");
        }
    }
}
