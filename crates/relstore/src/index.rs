//! Secondary indexes over a single attribute.
//!
//! Two flavors:
//!
//! * [`HashIndex`] — equality probes, the workhorse behind index
//!   nested-loop joins.
//! * [`OrdIndex`] — an ordered index (BTree) supporting range scans. It is
//!   also where *index interval locking* hooks in (§2.3, Basic Locking):
//!   the engine-layer marker scheme records key intervals inspected here so
//!   later insertions into the interval can be detected (the phantom
//!   problem).

use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

use crate::pred::CompOp;
use crate::tuple::TupleId;
use crate::value::Value;

/// Equality index: value → postings list of tuple ids.
#[derive(Debug, Default, Clone)]
pub struct HashIndex {
    map: HashMap<Value, Vec<TupleId>>,
    entries: usize,
}

impl HashIndex {
    /// Create a new, empty instance.
    pub fn new() -> Self {
        HashIndex::default()
    }

    /// Add a (key, tuple id) posting.
    pub fn insert(&mut self, key: Value, tid: TupleId) {
        self.map.entry(key).or_default().push(tid);
        self.entries += 1;
    }

    /// Remove one (key, tuple id) posting; no-op when absent.
    pub fn remove(&mut self, key: &Value, tid: TupleId) {
        if let Some(list) = self.map.get_mut(key) {
            if let Some(pos) = list.iter().position(|t| *t == tid) {
                list.swap_remove(pos);
                self.entries -= 1;
            }
            if list.is_empty() {
                self.map.remove(key);
            }
        }
    }

    /// All tuple ids whose indexed attribute equals `key`.
    pub fn probe(&self, key: &Value) -> &[TupleId] {
        self.map.get(key).map_or(&[], Vec::as_slice)
    }

    /// Number of (key, tid) postings.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Number of distinct keys — drives join-selectivity estimates.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

/// Ordered index: supports equality and range probes.
#[derive(Debug, Default, Clone)]
pub struct OrdIndex {
    map: BTreeMap<Value, Vec<TupleId>>,
    entries: usize,
}

impl OrdIndex {
    /// Create a new, empty instance.
    pub fn new() -> Self {
        OrdIndex::default()
    }

    /// Add a (key, tuple id) posting.
    pub fn insert(&mut self, key: Value, tid: TupleId) {
        self.map.entry(key).or_default().push(tid);
        self.entries += 1;
    }

    pub fn remove(&mut self, key: &Value, tid: TupleId) {
        if let Some(list) = self.map.get_mut(key) {
            if let Some(pos) = list.iter().position(|t| *t == tid) {
                list.swap_remove(pos);
                self.entries -= 1;
            }
            if list.is_empty() {
                self.map.remove(key);
            }
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Tuple ids satisfying `attr op key`, in key order.
    ///
    /// `Ne` degenerates to a full scan of the index and is included for
    /// completeness; planners should prefer a relation scan for it.
    pub fn probe_op(&self, op: CompOp, key: &Value) -> Vec<TupleId> {
        let mut out = Vec::new();
        match op {
            CompOp::Eq => {
                if let Some(list) = self.map.get(key) {
                    out.extend_from_slice(list);
                }
            }
            CompOp::Ne => {
                for (k, list) in &self.map {
                    if k != key {
                        out.extend_from_slice(list);
                    }
                }
            }
            CompOp::Lt => self.collect_range(&mut out, Bound::Unbounded, Bound::Excluded(key)),
            CompOp::Le => self.collect_range(&mut out, Bound::Unbounded, Bound::Included(key)),
            CompOp::Gt => self.collect_range(&mut out, Bound::Excluded(key), Bound::Unbounded),
            CompOp::Ge => self.collect_range(&mut out, Bound::Included(key), Bound::Unbounded),
        }
        out
    }

    /// Tuple ids with keys in `[lo, hi]` (inclusive bounds may be None for
    /// open ends).
    pub fn probe_range(&self, lo: Option<&Value>, hi: Option<&Value>) -> Vec<TupleId> {
        let lo_b = lo.map_or(Bound::Unbounded, Bound::Included);
        let hi_b = hi.map_or(Bound::Unbounded, Bound::Included);
        let mut out = Vec::new();
        self.collect_range(&mut out, lo_b, hi_b);
        out
    }

    fn collect_range(&self, out: &mut Vec<TupleId>, lo: Bound<&Value>, hi: Bound<&Value>) {
        // An inverted bound pair panics in BTreeMap::range; treat as empty.
        if let (Bound::Included(a) | Bound::Excluded(a), Bound::Included(b) | Bound::Excluded(b)) =
            (lo, hi)
        {
            if a > b {
                return;
            }
        }
        for (_, list) in self.map.range::<Value, _>((lo, hi)) {
            out.extend_from_slice(list);
        }
    }

    /// Smallest and largest key currently present.
    pub fn key_bounds(&self) -> Option<(&Value, &Value)> {
        let first = self.map.keys().next()?;
        let last = self.map.keys().next_back()?;
        Some((first, last))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(n: u32) -> TupleId {
        TupleId::new(n, 0)
    }

    #[test]
    fn hash_index_probe_and_remove() {
        let mut idx = HashIndex::new();
        idx.insert(Value::Int(5), tid(1));
        idx.insert(Value::Int(5), tid(2));
        idx.insert(Value::str("x"), tid(3));
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.distinct_keys(), 2);
        assert_eq!(idx.probe(&Value::Int(5)).len(), 2);
        idx.remove(&Value::Int(5), tid(1));
        assert_eq!(idx.probe(&Value::Int(5)), &[tid(2)]);
        idx.remove(&Value::Int(5), tid(2));
        assert!(idx.probe(&Value::Int(5)).is_empty());
        assert_eq!(idx.distinct_keys(), 1);
    }

    #[test]
    fn removing_missing_posting_is_noop() {
        let mut idx = HashIndex::new();
        idx.insert(Value::Int(1), tid(1));
        idx.remove(&Value::Int(2), tid(1));
        idx.remove(&Value::Int(1), tid(9));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn ord_index_operators() {
        let mut idx = OrdIndex::new();
        for i in 0..10 {
            idx.insert(Value::Int(i), tid(i as u32));
        }
        assert_eq!(idx.probe_op(CompOp::Eq, &Value::Int(4)), vec![tid(4)]);
        assert_eq!(idx.probe_op(CompOp::Lt, &Value::Int(3)).len(), 3);
        assert_eq!(idx.probe_op(CompOp::Le, &Value::Int(3)).len(), 4);
        assert_eq!(idx.probe_op(CompOp::Gt, &Value::Int(7)).len(), 2);
        assert_eq!(idx.probe_op(CompOp::Ge, &Value::Int(7)).len(), 3);
        assert_eq!(idx.probe_op(CompOp::Ne, &Value::Int(0)).len(), 9);
    }

    #[test]
    fn ord_index_range_and_bounds() {
        let mut idx = OrdIndex::new();
        for i in [2, 4, 6, 8] {
            idx.insert(Value::Int(i), tid(i as u32));
        }
        assert_eq!(
            idx.probe_range(Some(&Value::Int(3)), Some(&Value::Int(7)))
                .len(),
            2
        );
        assert_eq!(idx.probe_range(None, Some(&Value::Int(4))).len(), 2);
        assert_eq!(idx.probe_range(Some(&Value::Int(9)), None).len(), 0);
        // inverted range is empty rather than panicking
        assert!(idx
            .probe_range(Some(&Value::Int(7)), Some(&Value::Int(3)))
            .is_empty());
        let (lo, hi) = idx.key_bounds().unwrap();
        assert_eq!((lo, hi), (&Value::Int(2), &Value::Int(8)));
    }
}
