//! # relstore — relational storage substrate
//!
//! An in-memory relational engine with the features the Sellis/Lin/Raschid
//! SIGMOD '88 paper assumes of its host DBMS:
//!
//! * relations with slotted tuple storage and secondary (hash + ordered)
//!   indexes ([`Relation`]);
//! * conjunctive-query evaluation with greedy join ordering, seeded
//!   execution and negated terms ([`query`]);
//! * strict two-phase locking with shared/exclusive modes at tuple and
//!   relation granularity, deadlock detection, and undo-based aborts
//!   ([`txn`]);
//! * logical I/O accounting ([`Stats`]) so experiments can report
//!   device-independent costs;
//! * snapshot persistence ([`snapshot`]).
//!
//! ```
//! use relstore::{Database, Schema, Restriction, Selection, tuple};
//!
//! let db = Database::new();
//! let emp = db.create_relation(Schema::new("Emp", ["name", "salary"])).unwrap();
//! db.insert(emp, tuple!["Mike", 6000]).unwrap();
//! db.insert(emp, tuple!["Sam", 5000]).unwrap();
//! let rich = db.select(emp, &Restriction::new(vec![
//!     Selection::new(1, relstore::CompOp::Gt, 5500),
//! ])).unwrap();
//! assert_eq!(rich.len(), 1);
//! ```

pub mod analyze;
pub mod codec;
pub mod database;
pub mod error;
pub mod index;
pub mod journal;
pub mod page;
pub mod pool;
pub mod pred;
pub mod query;
pub mod relation;
pub mod schema;
pub mod snapshot;
pub mod stats;
pub mod tuple;
pub mod txn;
pub mod value;
pub mod wal;

pub use analyze::{
    analyze, AnalyzeRegistry, AnalyzeSnapshot, AttrStats, ObservedCounts, RelationProfile,
};
pub use database::{Database, RecoveryReport};
pub use error::{Error, Result};
pub use journal::{ingest, wm_as_of, JournalRels};
pub use page::{Page, PageId, PAGE_SIZE};
pub use pool::{BufferPool, PageManager};
pub use pred::{AttrTest, CompOp, Restriction, Selection};
pub use query::{
    BatchExecutor, Binding, ConjunctiveQuery, ExecProfile, JoinAlgo, JoinPred, Plan, Planner,
    QueryExecutor, QueryTerm,
};
pub use relation::Relation;
pub use schema::{AttrIdx, Attribute, RelId, Schema};
pub use stats::{OpSnapshot, Stats};
pub use tuple::{Tuple, TupleId};
pub use txn::{LockManager, LockMode, LockShardStats, LockTarget, Txn, TxnId, DEFAULT_LOCK_SHARDS};
pub use value::{Value, ValueType};
pub use wal::{recover, recover_with_report, TornTail, Wal, WalCursor, WalRecord};
