//! Journal ingest: load a `sellis88-journal/v1` flight-recorder file
//! (see [`obs::journal`]) into ordinary relations, so the query engine
//! can answer time-travel questions about a past run — which
//! instantiation fired at a cycle, what supported it, what working
//! memory looked like just before.
//!
//! This is the paper's own thesis applied to the runtime itself: the
//! DBMS that hosts the production system also hosts its execution
//! history. One relation per record family, `seq` everywhere, so joins
//! against the total event order are ordinary equi/range predicates.

use std::collections::BTreeMap;

use obs::{Event, Journal};

use crate::database::Database;
use crate::error::Result;
use crate::pred::{CompOp, Restriction, Selection};
use crate::schema::{RelId, Schema};
use crate::tuple;
use crate::value::Value;

/// Relation ids of an ingested journal.
#[derive(Debug, Clone, Copy)]
pub struct JournalRels {
    /// `j_event(seq, kind, line)` — every record, with its OPS5-style
    /// watch line. The spine of the total order.
    pub event: RelId,
    /// `j_wm_delta(seq, op, class, class_name, tid, tuple)` — WM
    /// inserts/removes ("insert" / "remove").
    pub wm_delta: RelId,
    /// `j_firing(fseq, seq, round, txn, rule, rule_name, wmes, support)`
    /// — committed firings in serialization (`fseq`) order.
    pub firing: RelId,
    /// `j_conflict(seq, op, rule, rule_name, wmes, support, absent)` —
    /// conflict-set adds/retires with provenance.
    pub conflict: RelId,
    /// `j_txn(seq, op, txn, detail)` — txn begin/commit/abort; `detail`
    /// is the rule name, the write count, or the abort reason.
    pub txn: RelId,
    /// `j_lock(seq, op, txn, target, mode, wait_ns)` — lock waits and
    /// grants ("wait" / "acquire").
    pub lock: RelId,
    /// `j_deadlock(seq, victim, edges)` — waits-for-graph snapshots
    /// taken when a deadlock victim was chosen.
    pub deadlock: RelId,
}

/// Load a parsed journal into `db`, creating the seven `j_*` relations.
///
/// `seq` is stored as `Int`, so the relations inherit relstore's ordered
/// indexes and range predicates; every event lands in `j_event` and the
/// typed families additionally land in their own relation.
pub fn ingest(db: &Database, journal: &Journal) -> Result<JournalRels> {
    let rels = JournalRels {
        event: db.create_relation(Schema::new("j_event", ["seq", "kind", "line"]))?,
        wm_delta: db.create_relation(Schema::new(
            "j_wm_delta",
            ["seq", "op", "class", "class_name", "tid", "tuple"],
        ))?,
        firing: db.create_relation(Schema::new(
            "j_firing",
            [
                "fseq",
                "seq",
                "round",
                "txn",
                "rule",
                "rule_name",
                "wmes",
                "support",
            ],
        ))?,
        conflict: db.create_relation(Schema::new(
            "j_conflict",
            [
                "seq",
                "op",
                "rule",
                "rule_name",
                "wmes",
                "support",
                "absent",
            ],
        ))?,
        txn: db.create_relation(Schema::new("j_txn", ["seq", "op", "txn", "detail"]))?,
        lock: db.create_relation(Schema::new(
            "j_lock",
            ["seq", "op", "txn", "target", "mode", "wait_ns"],
        ))?,
        deadlock: db.create_relation(Schema::new("j_deadlock", ["seq", "victim", "edges"]))?,
    };
    for (seq, event) in &journal.events {
        let seq = *seq as i64;
        db.insert(rels.event, tuple![seq, event.kind(), event.watch_line()])?;
        match event {
            Event::WmInsert {
                class,
                class_name,
                tuple,
                tid,
            } => {
                db.insert(
                    rels.wm_delta,
                    tuple![
                        seq,
                        "insert",
                        *class as i64,
                        class_name.as_str(),
                        *tid as i64,
                        tuple.as_str()
                    ],
                )?;
            }
            Event::WmRemove {
                class,
                class_name,
                tuple,
                tid,
            } => {
                db.insert(
                    rels.wm_delta,
                    tuple![
                        seq,
                        "remove",
                        *class as i64,
                        class_name.as_str(),
                        *tid as i64,
                        tuple.as_str()
                    ],
                )?;
            }
            Event::Firing {
                seq: fseq,
                round,
                txn,
                rule,
                rule_name,
                wmes,
                support,
            } => {
                db.insert(
                    rels.firing,
                    tuple![
                        *fseq as i64,
                        seq,
                        *round as i64,
                        *txn as i64,
                        *rule as i64,
                        rule_name.as_str(),
                        wmes.as_str(),
                        support.as_str()
                    ],
                )?;
            }
            Event::ConflictDelta {
                add,
                rule,
                rule_name,
                wmes,
                support,
                absent,
            } => {
                db.insert(
                    rels.conflict,
                    tuple![
                        seq,
                        if *add { "add" } else { "remove" },
                        *rule as i64,
                        rule_name.as_str(),
                        wmes.as_str(),
                        support.as_str(),
                        absent.as_str()
                    ],
                )?;
            }
            Event::TxnBegin { txn, rule_name, .. } => {
                db.insert(
                    rels.txn,
                    tuple![seq, "begin", *txn as i64, rule_name.as_str()],
                )?;
            }
            Event::TxnCommit { txn, writes } => {
                db.insert(
                    rels.txn,
                    tuple![seq, "commit", *txn as i64, format!("{writes} writes")],
                )?;
            }
            Event::TxnAbort { txn, reason } => {
                db.insert(rels.txn, tuple![seq, "abort", *txn as i64, reason.as_str()])?;
            }
            Event::LockWait { txn, target, mode } => {
                db.insert(
                    rels.lock,
                    tuple![seq, "wait", *txn as i64, target.as_str(), *mode, 0i64],
                )?;
            }
            Event::LockAcquire {
                txn,
                target,
                mode,
                wait_ns,
            } => {
                db.insert(
                    rels.lock,
                    tuple![
                        seq,
                        "acquire",
                        *txn as i64,
                        target.as_str(),
                        *mode,
                        *wait_ns as i64
                    ],
                )?;
            }
            Event::DeadlockGraph { victim, edges } => {
                db.insert(rels.deadlock, tuple![seq, *victim as i64, edges.as_str()])?;
            }
            _ => {}
        }
    }
    Ok(rels)
}

/// Working memory as of just before journal sequence number `seq`,
/// reconstructed by a range query over the ingested `j_wm_delta`
/// relation: multiset counts keyed by `(class, tuple_text)`, zero
/// counts dropped.
///
/// Equivalent to [`obs::Journal::wm_before`], but computed inside the
/// DBMS — the form `--why-not` uses so the answer demonstrably comes
/// from the journal relations.
pub fn wm_as_of(
    db: &Database,
    rels: &JournalRels,
    seq: u64,
) -> Result<BTreeMap<(i64, String), i64>> {
    let deltas = db.select(
        rels.wm_delta,
        &Restriction::new(vec![Selection::new(0, CompOp::Lt, seq as i64)]),
    )?;
    let mut wm: BTreeMap<(i64, String), i64> = BTreeMap::new();
    for (_, t) in deltas {
        let v = t.values();
        let class = match &v[2] {
            Value::Int(n) => *n,
            _ => 0,
        };
        let text = match &v[5] {
            Value::Str(s) => s.to_string(),
            _ => String::new(),
        };
        let insert = matches!(&v[1], Value::Str(s) if s.as_ref() == "insert");
        *wm.entry((class, text)).or_insert(0) += if insert { 1 } else { -1 };
    }
    wm.retain(|_, n| *n != 0);
    Ok(wm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::{JournalMeta, LoadOp, LoadValue};

    fn meta() -> JournalMeta {
        JournalMeta {
            engine: "query".into(),
            mode: "concurrent".into(),
            workers: 2,
            batching: true,
            strategy: "canonical".into(),
            max_fired: 100,
            program: "(literalize A x)".into(),
            load: vec![LoadOp {
                insert: true,
                class: 0,
                values: vec![LoadValue::Int(1)],
            }],
        }
    }

    fn sample_journal() -> Journal {
        Journal {
            meta: meta(),
            events: vec![
                (
                    0,
                    Event::WmInsert {
                        class: 0,
                        class_name: "A".into(),
                        tuple: " ^x 1".into(),
                        tid: 77,
                    },
                ),
                (
                    1,
                    Event::ConflictDelta {
                        add: true,
                        rule: 0,
                        rule_name: "R".into(),
                        wmes: "(A ^x 1)".into(),
                        support: "t0.1".into(),
                        absent: String::new(),
                    },
                ),
                (
                    2,
                    Event::TxnBegin {
                        txn: 1,
                        rule: 0,
                        rule_name: "R".into(),
                    },
                ),
                (
                    3,
                    Event::LockAcquire {
                        txn: 1,
                        target: "rel0[t0.1]".into(),
                        mode: "shared",
                        wait_ns: 0,
                    },
                ),
                (
                    4,
                    Event::Firing {
                        seq: 0,
                        round: 1,
                        txn: 1,
                        rule: 0,
                        rule_name: "R".into(),
                        wmes: "(A ^x 1)".into(),
                        support: "t0.1".into(),
                    },
                ),
                (
                    5,
                    Event::WmRemove {
                        class: 0,
                        class_name: "A".into(),
                        tuple: " ^x 1".into(),
                        tid: 77,
                    },
                ),
                (6, Event::TxnCommit { txn: 1, writes: 1 }),
                (
                    7,
                    Event::DeadlockGraph {
                        victim: 2,
                        edges: "t2->t1 exclusive rel0[t0.1]".into(),
                    },
                ),
            ],
        }
    }

    #[test]
    fn ingest_populates_typed_relations() {
        let db = Database::new();
        let rels = ingest(&db, &sample_journal()).unwrap();
        let all = |rel| db.select(rel, &Restriction::default()).unwrap().len();
        assert_eq!(all(rels.event), 8, "every record lands in j_event");
        assert_eq!(all(rels.wm_delta), 2);
        assert_eq!(all(rels.firing), 1);
        assert_eq!(all(rels.conflict), 1);
        assert_eq!(all(rels.txn), 2, "begin + commit");
        assert_eq!(all(rels.lock), 1);
        assert_eq!(all(rels.deadlock), 1);
        // Firings are queryable by name via ordinary predicates.
        let firings = db
            .select(
                rels.firing,
                &Restriction::new(vec![Selection::new(5, CompOp::Eq, "R")]),
            )
            .unwrap();
        assert_eq!(firings.len(), 1);
        assert!(matches!(&firings[0].1.values()[7], Value::Str(s) if s.as_ref() == "t0.1"));
    }

    #[test]
    fn wm_as_of_is_a_range_query() {
        let db = Database::new();
        let rels = ingest(&db, &sample_journal()).unwrap();
        // Before the remove at seq 5 the tuple is present…
        let wm = wm_as_of(&db, &rels, 5).unwrap();
        assert_eq!(wm.get(&(0, " ^x 1".to_string())), Some(&1));
        // …after it, working memory is empty again.
        let wm = wm_as_of(&db, &rels, u64::MAX).unwrap();
        assert!(wm.is_empty());
    }
}
