//! Set-oriented batch execution of conjunctive queries.
//!
//! The nested-loop [`QueryExecutor`](super::QueryExecutor) extends one
//! partial binding at a time, probing the next term's relation once per
//! binding. For large working memories that is the dominant cost of the
//! DBMS-side engines: every extension re-reads the relation. The
//! [`BatchExecutor`] instead carries the whole *set* of partial bindings
//! through the plan and evaluates each step with one relation read:
//!
//! * **hash join** for steps equi-joined into the bound set — build a
//!   hash table keyed on the join attributes over the smaller side
//!   (spill-free: both sides are already in memory; the build side is
//!   picked from actual cardinalities, the hash-vs-nested-loop decision
//!   itself from the planner's ANALYZE-driven estimates);
//! * **hash semi-join** for seeded delta terms — the §4.1.2 evaluation
//!   around *every* WM element a cycle inserted, in one pass per
//!   (rule, seeded-term) pair instead of one pass per element;
//! * **hash anti-join** for negated condition elements — one read of the
//!   negated relation filters every surviving binding, instead of one
//!   existence probe per binding.
//!
//! Results are exactly those of the nested-loop executor (a property test
//! at the workspace level checks the equivalence on random queries); only
//! the evaluation order and I/O profile differ.

use std::collections::HashMap;

use super::exec::{bound_preds, Binding};
use super::plan::{JoinAlgo, Planner};
use super::ConjunctiveQuery;
use crate::database::Database;
use crate::error::Result;
use crate::pred::CompOp;
use crate::schema::AttrIdx;
use crate::tuple::{Tuple, TupleId};
use crate::value::Value;

/// One partial-binding row carried between plan steps.
type Partial = Vec<Option<(TupleId, Tuple)>>;

/// Executes conjunctive queries set-at-a-time against a [`Database`].
pub struct BatchExecutor<'a> {
    db: &'a Database,
}

impl<'a> BatchExecutor<'a> {
    /// Create a new, empty instance.
    pub fn new(db: &'a Database) -> Self {
        BatchExecutor { db }
    }

    /// Evaluate the query, optionally seeded with one tuple — the same
    /// contract as [`QueryExecutor::exec`](super::QueryExecutor::exec).
    pub fn exec(
        &self,
        query: &ConjunctiveQuery,
        seed: Option<(usize, TupleId, &Tuple)>,
    ) -> Result<Vec<Binding>> {
        match seed {
            Some((t, tid, tuple)) => {
                let seeds = [(tid, tuple.clone())];
                self.exec_seeded_batch(query, t, &seeds)
            }
            None => self.run(query, None),
        }
    }

    /// Evaluate the LHS around every seed tuple of term `t` in one
    /// set-oriented pass (hash semi-join over the delta): the batched form
    /// of the §4.1.2 seeded evaluation. Equivalent to concatenating
    /// per-seed [`BatchExecutor::exec`] calls, at one relation read per
    /// plan step instead of one per seed.
    pub fn exec_seeded_batch(
        &self,
        query: &ConjunctiveQuery,
        t: usize,
        seeds: &[(TupleId, Tuple)],
    ) -> Result<Vec<Binding>> {
        self.run(query, Some((t, seeds)))
    }

    fn run(
        &self,
        query: &ConjunctiveQuery,
        seeded: Option<(usize, &[(TupleId, Tuple)])>,
    ) -> Result<Vec<Binding>> {
        obs::prof_span!("batch");
        if query.terms.is_empty() {
            return Ok(Vec::new());
        }
        let arity = query.terms.len();
        let plan = Planner::new(self.db).plan_seeded(
            query,
            seeded.map(|(t, _)| t),
            seeded.map_or(1.0, |(_, seeds)| seeds.len() as f64),
        );
        let mut partials: Vec<Partial> = match seeded {
            // Seeds failing their own term's restriction yield nothing.
            Some((t, seeds)) => seeds
                .iter()
                .filter(|(_, tuple)| query.terms[t].restriction.matches(tuple))
                .map(|(tid, tuple)| {
                    let mut p: Partial = vec![None; arity];
                    p[t] = Some((*tid, tuple.clone()));
                    p
                })
                .collect(),
            None => vec![vec![None; arity]],
        };
        let start = usize::from(seeded.is_some());
        for step in start..plan.order.len() {
            if partials.is_empty() {
                return Ok(Vec::new());
            }
            partials = self.extend_all(query, plan.order[step], plan.algos[step], partials)?;
        }
        let planner = Planner::new(self.db);
        for t in query.negated_terms() {
            if partials.is_empty() {
                break;
            }
            let algo = planner.anti_algo(query, t, partials.len() as f64);
            partials = self.anti_filter(query, t, algo, partials)?;
        }
        Ok(partials
            .into_iter()
            .map(|slots| Binding { slots })
            .collect())
    }

    /// Join predicates of `t` against terms bound in `shape`, split into
    /// equi-joins (hashable) and the residual non-eq predicates.
    #[allow(clippy::type_complexity)]
    fn split_joins(
        query: &ConjunctiveQuery,
        t: usize,
        shape: &Partial,
    ) -> (
        Vec<(AttrIdx, usize, AttrIdx)>,
        Vec<(AttrIdx, CompOp, usize, AttrIdx)>,
    ) {
        let mut eqs = Vec::new();
        let mut residual = Vec::new();
        for j in query.joins_of(t) {
            let Some((my_attr, op, other, other_attr)) = j.oriented(t) else {
                continue;
            };
            if shape[other].is_none() {
                continue;
            }
            if op == CompOp::Eq {
                eqs.push((my_attr, other, other_attr));
            } else {
                residual.push((my_attr, op, other, other_attr));
            }
        }
        (eqs, residual)
    }

    /// `row[my_attr] op partial[other].1[other_attr]` for every residual.
    fn residuals_hold(
        residual: &[(AttrIdx, CompOp, usize, AttrIdx)],
        row: &Tuple,
        partial: &Partial,
    ) -> bool {
        residual.iter().all(|&(my_attr, op, other, other_attr)| {
            let other_tuple = &partial[other].as_ref().expect("bound term").1;
            op.eval(&row[my_attr], &other_tuple[other_attr])
        })
    }

    /// Extend every partial binding through positive term `t`: one
    /// relation read plus a hash table when the planner chose
    /// [`JoinAlgo::Hash`], an index nested loop probing per binding —
    /// exactly as [`QueryExecutor`] does — otherwise.
    fn extend_all(
        &self,
        query: &ConjunctiveQuery,
        t: usize,
        algo: JoinAlgo,
        partials: Vec<Partial>,
    ) -> Result<Vec<Partial>> {
        let rel = query.terms[t].rel;
        let registry = self.db.analyze_registry();
        let (eqs, residual) = Self::split_joins(query, t, &partials[0]);
        if algo != JoinAlgo::Hash || eqs.is_empty() {
            // Index nested loop: probe once per binding with the bound
            // join predicates pushed into the read, so only the matching
            // index bucket is touched. Cheaper than building a table
            // whenever bindings are fewer than the join key's distincts.
            obs::prof_span!("nl");
            let mut out = Vec::new();
            for p in &partials {
                let bound = bound_preds(query, t, p);
                let joined = !bound.is_empty();
                let (input, rows) = self.db.read(rel, |r| -> Result<_> {
                    Ok((r.len(), r.select_with(&query.terms[t].restriction, &bound)?))
                })??;
                registry.observe(rel, joined, input as u64, rows.len() as u64);
                for (tid, tuple) in rows {
                    let mut ext = p.clone();
                    ext[t] = Some((tid, tuple));
                    out.push(ext);
                }
            }
            return Ok(out);
        }
        let (input, rows) = {
            obs::prof_span!("build");
            self.db.read(rel, |r| -> Result<_> {
                Ok((r.len(), r.select(&query.terms[t].restriction)?))
            })??
        };
        registry.observe_scan(rel, input as u64, rows.len() as u64);
        let mut out = Vec::new();
        {
            // Build over the smaller side; both fit in memory (spill-free),
            // so the choice only trades hashing work for probing work.
            let row_key = |tuple: &Tuple| -> Vec<Value> {
                eqs.iter().map(|&(a, _, _)| tuple[a].clone()).collect()
            };
            let partial_key = |p: &Partial| -> Vec<Value> {
                eqs.iter()
                    .map(|&(_, other, oa)| p[other].as_ref().expect("bound term").1[oa].clone())
                    .collect()
            };
            if rows.len() <= partials.len() {
                let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
                {
                    obs::prof_span!("build");
                    for (i, (_, tuple)) in rows.iter().enumerate() {
                        table.entry(row_key(tuple)).or_default().push(i);
                    }
                }
                obs::prof_span!("probe");
                for p in &partials {
                    if let Some(hits) = table.get(&partial_key(p)) {
                        for &i in hits {
                            let (tid, tuple) = &rows[i];
                            if Self::residuals_hold(&residual, tuple, p) {
                                let mut ext = p.clone();
                                ext[t] = Some((*tid, tuple.clone()));
                                out.push(ext);
                            }
                        }
                    }
                }
            } else {
                let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
                {
                    obs::prof_span!("build");
                    for (i, p) in partials.iter().enumerate() {
                        table.entry(partial_key(p)).or_default().push(i);
                    }
                }
                obs::prof_span!("probe");
                for (tid, tuple) in &rows {
                    if let Some(hits) = table.get(&row_key(tuple)) {
                        for &i in hits {
                            let p = &partials[i];
                            if Self::residuals_hold(&residual, tuple, p) {
                                let mut ext = p.clone();
                                ext[t] = Some((*tid, tuple.clone()));
                                out.push(ext);
                            }
                        }
                    }
                }
                // Probe-side emission follows row order; restore binding
                // order so results are independent of the build side.
                out.sort_by(|a, b| {
                    let key = |p: &Partial| {
                        p.iter()
                            .map(|s| s.as_ref().map(|(tid, _)| tid.pack()))
                            .collect::<Vec<_>>()
                    };
                    key(a).cmp(&key(b))
                });
            }
            registry.observe(rel, true, partials.len() as u64, out.len() as u64);
        }
        Ok(out)
    }

    /// Drop every partial binding blocked by negated term `t`: one
    /// relation read and a hash anti-join when the planner chose
    /// [`JoinAlgo::Hash`], one index existence probe per binding —
    /// exactly as [`QueryExecutor`] does — otherwise.
    fn anti_filter(
        &self,
        query: &ConjunctiveQuery,
        t: usize,
        algo: JoinAlgo,
        partials: Vec<Partial>,
    ) -> Result<Vec<Partial>> {
        obs::prof_span!("anti");
        let rel = query.terms[t].rel;
        let registry = self.db.analyze_registry();
        let (eqs, residual) = Self::split_joins(query, t, &partials[0]);
        let mut out = Vec::new();
        if algo != JoinAlgo::Hash || eqs.is_empty() {
            for p in partials {
                let bound = bound_preds(query, t, &p);
                let hit = self.db.read(rel, |r| -> Result<bool> {
                    Ok(!r
                        .select_ids_with(&query.terms[t].restriction, &bound)?
                        .is_empty())
                })??;
                registry.observe_anti(rel, hit);
                if !hit {
                    out.push(p);
                }
            }
            return Ok(out);
        }
        let rows = self
            .db
            .read(rel, |r| r.select(&query.terms[t].restriction))??;
        let blocked = |p: &Partial, candidates: &[usize]| -> bool {
            candidates
                .iter()
                .any(|&i| Self::residuals_hold(&residual, &rows[i].1, p))
        };
        let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for (i, (_, tuple)) in rows.iter().enumerate() {
            let key: Vec<Value> = eqs.iter().map(|&(a, _, _)| tuple[a].clone()).collect();
            table.entry(key).or_default().push(i);
        }
        for p in partials {
            let key: Vec<Value> = eqs
                .iter()
                .map(|&(_, other, oa)| p[other].as_ref().expect("bound term").1[oa].clone())
                .collect();
            let hit = table.get(&key).is_some_and(|c| blocked(&p, c));
            registry.observe_anti(rel, hit);
            if !hit {
                out.push(p);
            }
        }
        Ok(out)
    }

    /// Existence check: true when at least one binding satisfies the
    /// query. Set-at-a-time evaluation has no per-binding early exit, so
    /// this delegates to the tuple-at-a-time executor's first-witness
    /// search ([`QueryExecutor::exists`]) instead of materializing and
    /// discarding every binding.
    pub fn exists(
        &self,
        query: &ConjunctiveQuery,
        seed: Option<(usize, TupleId, &Tuple)>,
    ) -> Result<bool> {
        super::QueryExecutor::new(self.db).exists(query, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::{Restriction, Selection};
    use crate::query::{JoinPred, QueryExecutor, QueryTerm};
    use crate::schema::Schema;
    use crate::tuple;

    fn example3_db() -> (Database, crate::schema::RelId, crate::schema::RelId) {
        let db = Database::new();
        let emp = db
            .create_relation(Schema::new("Emp", ["name", "salary", "manager", "dno"]))
            .unwrap();
        let dept = db
            .create_relation(Schema::new("Dept", ["dno", "dname", "floor", "manager"]))
            .unwrap();
        db.insert(emp, tuple!["Mike", 6000, "Sam", 1]).unwrap();
        db.insert(emp, tuple!["Sam", 5000, "Root", 1]).unwrap();
        db.insert(emp, tuple!["Jane", 4000, "Sam", 2]).unwrap();
        db.insert(dept, tuple![1, "Toy", 1, "Sam"]).unwrap();
        db.insert(dept, tuple![2, "Shoe", 2, "Ann"]).unwrap();
        (db, emp, dept)
    }

    fn sorted_tids(bindings: &[Binding]) -> Vec<Vec<Option<u64>>> {
        let mut v: Vec<Vec<Option<u64>>> = bindings
            .iter()
            .map(|b| {
                b.slots
                    .iter()
                    .map(|s| s.as_ref().map(|(tid, _)| tid.pack()))
                    .collect()
            })
            .collect();
        v.sort();
        v
    }

    fn assert_equivalent(db: &Database, q: &ConjunctiveQuery) {
        let nl = QueryExecutor::new(db).exec(q, None).unwrap();
        let batch = BatchExecutor::new(db).exec(q, None).unwrap();
        assert_eq!(sorted_tids(&nl), sorted_tids(&batch));
    }

    #[test]
    fn equi_join_matches_nested_loop() {
        let (db, emp, dept) = example3_db();
        let q = ConjunctiveQuery::new(
            vec![
                QueryTerm::new(emp, Restriction::default()),
                QueryTerm::new(dept, Restriction::default()),
            ],
            vec![JoinPred::eq(0, 3, 1, 0)],
        );
        assert_equivalent(&db, &q);
    }

    #[test]
    fn non_eq_join_and_selection() {
        // Mike earns more than his manager (example 3, rule r1).
        let (db, emp, _) = example3_db();
        let q = ConjunctiveQuery::new(
            vec![
                QueryTerm::new(emp, Restriction::new(vec![Selection::eq(0, "Mike")])),
                QueryTerm::new(emp, Restriction::default()),
            ],
            vec![
                JoinPred::eq(0, 2, 1, 0),
                JoinPred {
                    left_term: 1,
                    left_attr: 1,
                    op: CompOp::Lt,
                    right_term: 0,
                    right_attr: 1,
                },
            ],
        );
        let res = BatchExecutor::new(&db).exec(&q, None).unwrap();
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].tuple(1)[0], crate::Value::str("Sam"));
        assert_equivalent(&db, &q);
    }

    #[test]
    fn negated_term_anti_join() {
        let (db, emp, dept) = example3_db();
        let q = ConjunctiveQuery::new(
            vec![
                QueryTerm::new(emp, Restriction::default()),
                QueryTerm::negated(dept, Restriction::default()),
            ],
            vec![JoinPred::eq(0, 3, 1, 0)],
        );
        assert!(BatchExecutor::new(&db).exec(&q, None).unwrap().is_empty());
        db.insert(emp, tuple!["Orphan", 1000, "Sam", 99]).unwrap();
        let res = BatchExecutor::new(&db).exec(&q, None).unwrap();
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].tuple(0)[0], crate::Value::str("Orphan"));
        assert!(res[0].slots[1].is_none());
        assert_equivalent(&db, &q);
    }

    #[test]
    fn seeded_batch_equals_per_seed_union() {
        let (db, emp, dept) = example3_db();
        let q = ConjunctiveQuery::new(
            vec![
                QueryTerm::new(emp, Restriction::default()),
                QueryTerm::new(dept, Restriction::new(vec![Selection::eq(1, "Toy")])),
            ],
            vec![JoinPred::eq(0, 3, 1, 0)],
        );
        let emps = db.read(emp, |r| r.scan()).unwrap().unwrap();
        let mut per_seed = Vec::new();
        for (tid, t) in &emps {
            per_seed.extend(
                QueryExecutor::new(&db)
                    .exec(&q, Some((0, *tid, t)))
                    .unwrap(),
            );
        }
        let batched = BatchExecutor::new(&db)
            .exec_seeded_batch(&q, 0, &emps)
            .unwrap();
        assert_eq!(sorted_tids(&per_seed), sorted_tids(&batched));
        assert!(!batched.is_empty());
    }

    #[test]
    fn seed_failing_restriction_yields_nothing() {
        let (db, emp, _) = example3_db();
        let q = ConjunctiveQuery::new(
            vec![QueryTerm::new(
                emp,
                Restriction::new(vec![Selection::eq(0, "Mike")]),
            )],
            vec![],
        );
        let emps = db.read(emp, |r| r.scan()).unwrap().unwrap();
        let sam = emps
            .iter()
            .find(|(_, t)| t[0] == crate::Value::str("Sam"))
            .unwrap();
        let res = BatchExecutor::new(&db)
            .exec(&q, Some((0, sam.0, &sam.1)))
            .unwrap();
        assert!(res.is_empty());
    }

    #[test]
    fn three_way_join_with_skew() {
        // Enough rows to clear the hash threshold on at least one step.
        let db = Database::new();
        let a = db.create_relation(Schema::new("A", ["k", "v"])).unwrap();
        let b = db.create_relation(Schema::new("B", ["k", "w"])).unwrap();
        let c = db.create_relation(Schema::new("C", ["w"])).unwrap();
        for i in 0..60i64 {
            db.insert(a, tuple![i % 5, i]).unwrap();
            db.insert(b, tuple![i % 5, i % 7]).unwrap();
        }
        for i in 0..7i64 {
            db.insert(c, tuple![i]).unwrap();
        }
        let q = ConjunctiveQuery::new(
            vec![
                QueryTerm::new(a, Restriction::default()),
                QueryTerm::new(b, Restriction::default()),
                QueryTerm::new(c, Restriction::default()),
            ],
            vec![JoinPred::eq(0, 0, 1, 0), JoinPred::eq(1, 1, 2, 0)],
        );
        assert_equivalent(&db, &q);
    }

    #[test]
    fn empty_query_returns_nothing() {
        let db = Database::new();
        let q = ConjunctiveQuery::default();
        assert!(BatchExecutor::new(&db).exec(&q, None).unwrap().is_empty());
    }
}
