//! Conjunctive queries over several relations.
//!
//! A production LHS is "equivalent to a retrieval operation in a DBMS
//! context" (§2.2). This module gives those retrievals a first-class
//! representation: a set of terms (one per condition element), each with a
//! variable-free [`Restriction`], plus inter-term
//! join predicates. Terms may be *negated* (OPS5 `-` condition elements):
//! a binding qualifies only if no tuple satisfies the negated term.
//!
//! The planner (`plan`) picks a join order greedily; the executor (`exec`)
//! runs index nested-loop joins and can be *seeded* with a specific tuple
//! for one term — exactly what the simplified algorithm of §4.1.2 needs
//! when a newly inserted WM element fills one condition element.

mod batch;
mod exec;
mod plan;

pub use batch::BatchExecutor;
pub use exec::{Binding, ExecProfile, QueryExecutor};
pub(crate) use plan::HASH_THRESHOLD;
pub use plan::{JoinAlgo, Plan, Planner};

use crate::pred::{CompOp, Restriction};
use crate::schema::{AttrIdx, RelId};

/// One condition element: a relation plus its variable-free tests.
#[derive(Debug, Clone)]
pub struct QueryTerm {
    /// The relation involved.
    pub rel: RelId,
    /// The variable-free tests on this term.
    pub restriction: Restriction,
    /// OPS5 negated condition element: satisfied by *absence* of matches.
    pub negated: bool,
}

impl QueryTerm {
    /// Create a new, empty instance.
    pub fn new(rel: RelId, restriction: Restriction) -> Self {
        QueryTerm {
            rel,
            restriction,
            negated: false,
        }
    }

    /// A negated term: the binding survives only if nothing matches.
    pub fn negated(rel: RelId, restriction: Restriction) -> Self {
        QueryTerm {
            rel,
            restriction,
            negated: true,
        }
    }
}

/// An inter-term join predicate `terms[left].left_attr op terms[right].right_attr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinPred {
    /// Index of the left term.
    pub left_term: usize,
    /// Attribute of the left term.
    pub left_attr: AttrIdx,
    /// The comparison operator.
    pub op: CompOp,
    /// Index of the right term.
    pub right_term: usize,
    /// Attribute of the right term.
    pub right_attr: AttrIdx,
}

impl JoinPred {
    /// Equi-join between two terms' attributes.
    pub fn eq(
        left_term: usize,
        left_attr: AttrIdx,
        right_term: usize,
        right_attr: AttrIdx,
    ) -> Self {
        JoinPred {
            left_term,
            left_attr,
            op: CompOp::Eq,
            right_term,
            right_attr,
        }
    }

    /// Does this predicate touch term `t`?
    pub fn touches(&self, t: usize) -> bool {
        self.left_term == t || self.right_term == t
    }

    /// The other endpoint, if this predicate touches `t`.
    pub fn other(&self, t: usize) -> Option<usize> {
        if self.left_term == t {
            Some(self.right_term)
        } else if self.right_term == t {
            Some(self.left_term)
        } else {
            None
        }
    }

    /// View the predicate from `t`'s side: returns (attr of t, op oriented
    /// so that `t.attr op other.attr`, other term, other attr).
    pub fn oriented(&self, t: usize) -> Option<(AttrIdx, CompOp, usize, AttrIdx)> {
        if self.left_term == t {
            Some((self.left_attr, self.op, self.right_term, self.right_attr))
        } else if self.right_term == t {
            Some((
                self.right_attr,
                self.op.flip(),
                self.left_term,
                self.left_attr,
            ))
        } else {
            None
        }
    }
}

/// A conjunctive (possibly partially negated) query.
#[derive(Debug, Clone, Default)]
pub struct ConjunctiveQuery {
    /// One term per condition element.
    pub terms: Vec<QueryTerm>,
    /// Join tests to other condition elements.
    pub joins: Vec<JoinPred>,
}

impl ConjunctiveQuery {
    /// Create a new, empty instance.
    pub fn new(terms: Vec<QueryTerm>, joins: Vec<JoinPred>) -> Self {
        ConjunctiveQuery { terms, joins }
    }

    /// Indexes of the positive (non-negated) terms.
    pub fn positive_terms(&self) -> Vec<usize> {
        (0..self.terms.len())
            .filter(|&i| !self.terms[i].negated)
            .collect()
    }

    /// Indexes of the negated terms.
    pub fn negated_terms(&self) -> Vec<usize> {
        (0..self.terms.len())
            .filter(|&i| self.terms[i].negated)
            .collect()
    }

    /// Join predicates touching term `t`.
    pub fn joins_of(&self, t: usize) -> impl Iterator<Item = &JoinPred> {
        self.joins.iter().filter(move |j| j.touches(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::Selection;

    #[test]
    fn oriented_flips_ops() {
        let j = JoinPred {
            left_term: 0,
            left_attr: 2,
            op: CompOp::Lt,
            right_term: 1,
            right_attr: 3,
        };
        assert_eq!(j.oriented(0), Some((2, CompOp::Lt, 1, 3)));
        assert_eq!(j.oriented(1), Some((3, CompOp::Gt, 0, 2)));
        assert_eq!(j.oriented(2), None);
        assert_eq!(j.other(0), Some(1));
        assert_eq!(j.other(5), None);
    }

    #[test]
    fn term_partition() {
        let q = ConjunctiveQuery::new(
            vec![
                QueryTerm::new(RelId(0), Restriction::default()),
                QueryTerm::negated(RelId(1), Restriction::new(vec![Selection::eq(0, 1)])),
                QueryTerm::new(RelId(2), Restriction::default()),
            ],
            vec![JoinPred::eq(0, 0, 1, 0)],
        );
        assert_eq!(q.positive_terms(), vec![0, 2]);
        assert_eq!(q.negated_terms(), vec![1]);
        assert_eq!(q.joins_of(1).count(), 1);
        assert_eq!(q.joins_of(2).count(), 0);
    }
}
