//! Index nested-loop execution of conjunctive queries.

use super::plan::Planner;
use super::ConjunctiveQuery;
use crate::database::Database;
use crate::error::Result;
use crate::pred::CompOp;
use crate::schema::AttrIdx;
use crate::tuple::{Tuple, TupleId};
use crate::value::Value;

/// One result of a conjunctive query: a tuple per positive term, aligned to
/// `query.terms` (negated terms stay `None`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Binding {
    /// Per-term bindings aligned with the query's terms.
    pub slots: Vec<Option<(TupleId, Tuple)>>,
}

impl Binding {
    /// The bound tuple of term `t`, panicking on negated/unbound terms.
    pub fn tuple(&self, t: usize) -> &Tuple {
        &self.slots[t].as_ref().expect("term is bound").1
    }

    /// The bound tuple id of term `t` (panics on negated/unbound terms).
    pub fn tid(&self, t: usize) -> TupleId {
        self.slots[t].as_ref().expect("term is bound").0
    }
}

/// One profiled execution, for EXPLAIN ANALYZE: the results plus a row
/// count per query term — partial bindings produced at a positive term's
/// plan step, bindings blocked by a negated term.
#[derive(Debug, Clone)]
pub struct ExecProfile {
    /// The query results, as from [`QueryExecutor::exec`].
    pub bindings: Vec<Binding>,
    /// Per-term counts, aligned with `query.terms`.
    pub rows: Vec<u64>,
}

/// Executes conjunctive queries against a [`Database`].
pub struct QueryExecutor<'a> {
    db: &'a Database,
}

impl<'a> QueryExecutor<'a> {
    /// Create a new, empty instance.
    pub fn new(db: &'a Database) -> Self {
        QueryExecutor { db }
    }

    /// Evaluate the query. When `seed` is given, term `seed.0` is fixed to
    /// the provided tuple (which must belong to that term's relation); this
    /// is the §4.1.2 path where an inserted WM element fills one condition
    /// element and the rest of the LHS is evaluated around it.
    pub fn exec(
        &self,
        query: &ConjunctiveQuery,
        seed: Option<(usize, TupleId, &Tuple)>,
    ) -> Result<Vec<Binding>> {
        obs::prof_span!("query.exec");
        let mut out = Vec::new();
        if query.terms.is_empty() {
            return Ok(out);
        }
        // A seed that fails its own term's restriction yields nothing.
        if let Some((t, _, tuple)) = seed {
            if !query.terms[t].restriction.matches(tuple) {
                return Ok(out);
            }
        }
        let plan = Planner::new(self.db).plan(query, seed.map(|(t, _, _)| t));
        let mut partial: Vec<Option<(TupleId, Tuple)>> = vec![None; query.terms.len()];
        if let Some((t, tid, tuple)) = seed {
            partial[t] = Some((tid, tuple.clone()));
        }
        let start = usize::from(seed.is_some());
        self.extend(query, &plan.order, start, &mut partial, &mut out)?;
        Ok(out)
    }

    /// Recursive extension along the plan order.
    fn extend(
        &self,
        query: &ConjunctiveQuery,
        order: &[usize],
        step: usize,
        partial: &mut Vec<Option<(TupleId, Tuple)>>,
        out: &mut Vec<Binding>,
    ) -> Result<()> {
        if step == order.len() {
            if self.negated_terms_clear(query, partial)? {
                out.push(Binding {
                    slots: partial.clone(),
                });
            }
            return Ok(());
        }
        let t = order[step];
        for (tid, tuple) in self.candidates(query, t, partial)? {
            partial[t] = Some((tid, tuple));
            self.extend(query, order, step + 1, partial, out)?;
            partial[t] = None;
        }
        Ok(())
    }

    /// Tuples of term `t` consistent with the bound part of `partial`.
    /// Feeds the observed selection/join selectivities of the ANALYZE
    /// registry ([`crate::analyze`]) as a side effect.
    fn candidates(
        &self,
        query: &ConjunctiveQuery,
        t: usize,
        partial: &[Option<(TupleId, Tuple)>],
    ) -> Result<Vec<(TupleId, Tuple)>> {
        let bound = bound_preds(query, t, partial);
        let joined = !bound.is_empty();
        let rel = query.terms[t].rel;
        let (input, rows) = self.db.read(rel, |r| -> Result<_> {
            Ok((r.len(), r.select_with(&query.terms[t].restriction, &bound)?))
        })??;
        self.db
            .analyze_registry()
            .observe(rel, joined, input as u64, rows.len() as u64);
        Ok(rows)
    }

    /// Check every negated term: a binding survives only if no tuple
    /// matches the negated term's restriction plus its joins into the
    /// bound positive terms.
    fn negated_terms_clear(
        &self,
        query: &ConjunctiveQuery,
        partial: &[Option<(TupleId, Tuple)>],
    ) -> Result<bool> {
        for t in query.negated_terms() {
            if self.negated_term_blocks(query, t, partial)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Does negated term `t` block the bound part of `partial`?
    fn negated_term_blocks(
        &self,
        query: &ConjunctiveQuery,
        t: usize,
        partial: &[Option<(TupleId, Tuple)>],
    ) -> Result<bool> {
        let bound = bound_preds(query, t, partial);
        let rel = query.terms[t].rel;
        let found = self.db.read(rel, |r| -> Result<bool> {
            Ok(!r
                .select_ids_with(&query.terms[t].restriction, &bound)?
                .is_empty())
        })??;
        self.db.analyze_registry().observe_anti(rel, found);
        Ok(found)
    }

    /// Evaluate the positive terms in the caller's `order` (which must
    /// cover exactly the positive terms), counting rows per term — the
    /// EXPLAIN ANALYZE entry point. Unlike [`QueryExecutor::exec`], the
    /// join order is imposed, so an engine that freezes CE order at
    /// compile time can be profiled under its own order.
    pub fn exec_explain(&self, query: &ConjunctiveQuery, order: &[usize]) -> Result<ExecProfile> {
        let mut profile = ExecProfile {
            bindings: Vec::new(),
            rows: vec![0; query.terms.len()],
        };
        if !order.is_empty() {
            let mut partial: Vec<Option<(TupleId, Tuple)>> = vec![None; query.terms.len()];
            self.extend_counted(query, order, 0, &mut partial, &mut profile)?;
        }
        Ok(profile)
    }

    /// [`QueryExecutor::extend`] with per-term row counting.
    fn extend_counted(
        &self,
        query: &ConjunctiveQuery,
        order: &[usize],
        step: usize,
        partial: &mut Vec<Option<(TupleId, Tuple)>>,
        profile: &mut ExecProfile,
    ) -> Result<()> {
        if step == order.len() {
            for t in query.negated_terms() {
                if self.negated_term_blocks(query, t, partial)? {
                    profile.rows[t] += 1;
                    return Ok(());
                }
            }
            profile.bindings.push(Binding {
                slots: partial.clone(),
            });
            return Ok(());
        }
        let t = order[step];
        for (tid, tuple) in self.candidates(query, t, partial)? {
            profile.rows[t] += 1;
            partial[t] = Some((tid, tuple));
            self.extend_counted(query, order, step + 1, partial, profile)?;
            partial[t] = None;
        }
        Ok(())
    }

    /// Existence check: true when at least one binding satisfies the
    /// query. Stops at the first witness instead of materializing every
    /// binding — at each plan step the search returns as soon as one
    /// candidate extends to a full, negation-clear binding.
    pub fn exists(
        &self,
        query: &ConjunctiveQuery,
        seed: Option<(usize, TupleId, &Tuple)>,
    ) -> Result<bool> {
        obs::prof_span!("query.exists");
        if query.terms.is_empty() {
            return Ok(false);
        }
        if let Some((t, _, tuple)) = seed {
            if !query.terms[t].restriction.matches(tuple) {
                return Ok(false);
            }
        }
        let plan = Planner::new(self.db).plan(query, seed.map(|(t, _, _)| t));
        let mut partial: Vec<Option<(TupleId, Tuple)>> = vec![None; query.terms.len()];
        if let Some((t, tid, tuple)) = seed {
            partial[t] = Some((tid, tuple.clone()));
        }
        let start = usize::from(seed.is_some());
        self.extend_first(query, &plan.order, start, &mut partial)
    }

    /// [`QueryExecutor::extend`] that stops at the first full binding.
    fn extend_first(
        &self,
        query: &ConjunctiveQuery,
        order: &[usize],
        step: usize,
        partial: &mut Vec<Option<(TupleId, Tuple)>>,
    ) -> Result<bool> {
        if step == order.len() {
            return self.negated_terms_clear(query, partial);
        }
        let t = order[step];
        for (tid, tuple) in self.candidates(query, t, partial)? {
            partial[t] = Some((tid, tuple));
            let found = self.extend_first(query, order, step + 1, partial)?;
            partial[t] = None;
            if found {
                return Ok(true);
            }
        }
        Ok(false)
    }
}

/// Join predicates of term `t` whose other endpoint is bound in
/// `partial`, as borrowed `(my_attr, op, bound value)` tests. Shared by
/// the nested-loop and batch executors; borrowing the values (instead of
/// cloning the base restriction plus one `Selection` per join, as earlier
/// revisions did) keeps binding extension allocation-free.
pub(crate) fn bound_preds<'p>(
    query: &ConjunctiveQuery,
    t: usize,
    partial: &'p [Option<(TupleId, Tuple)>],
) -> Vec<(AttrIdx, CompOp, &'p Value)> {
    let mut bound = Vec::new();
    for j in query.joins_of(t) {
        let Some((my_attr, op, other, other_attr)) = j.oriented(t) else {
            continue;
        };
        if let Some((_, other_tuple)) = &partial[other] {
            bound.push((my_attr, op, &other_tuple[other_attr]));
        }
    }
    bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::{Restriction, Selection};
    use crate::query::{JoinPred, QueryTerm};
    use crate::schema::Schema;
    use crate::tuple;

    /// Example 3 of the paper: Emp(name, salary, manager, dno) and
    /// Dept(dno, dname, floor, manager).
    fn example3_db() -> (Database, crate::schema::RelId, crate::schema::RelId) {
        let db = Database::new();
        let emp = db
            .create_relation(Schema::new("Emp", ["name", "salary", "manager", "dno"]))
            .unwrap();
        let dept = db
            .create_relation(Schema::new("Dept", ["dno", "dname", "floor", "manager"]))
            .unwrap();
        db.insert(emp, tuple!["Mike", 6000, "Sam", 1]).unwrap();
        db.insert(emp, tuple!["Sam", 5000, "Root", 1]).unwrap();
        db.insert(emp, tuple!["Jane", 4000, "Sam", 2]).unwrap();
        db.insert(dept, tuple![1, "Toy", 1, "Sam"]).unwrap();
        db.insert(dept, tuple![2, "Shoe", 2, "Ann"]).unwrap();
        (db, emp, dept)
    }

    #[test]
    fn rule_r1_mike_earns_more_than_manager() {
        // (Emp ^name Mike ^salary <S> ^manager <M>)
        // (Emp ^name <M> ^salary {<S1> < <S>})
        let (db, emp, _) = example3_db();
        let q = ConjunctiveQuery::new(
            vec![
                QueryTerm::new(emp, Restriction::new(vec![Selection::eq(0, "Mike")])),
                QueryTerm::new(emp, Restriction::default()),
            ],
            vec![
                JoinPred::eq(0, 2, 1, 0), // manager name join
                JoinPred {
                    left_term: 1,
                    left_attr: 1,
                    op: CompOp::Lt,
                    right_term: 0,
                    right_attr: 1,
                },
            ],
        );
        let res = QueryExecutor::new(&db).exec(&q, None).unwrap();
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].tuple(0)[0], crate::Value::str("Mike"));
        assert_eq!(res[0].tuple(1)[0], crate::Value::str("Sam"));
    }

    #[test]
    fn rule_r2_toy_first_floor() {
        // (Emp ^dno <D>) (Dept ^dno <D> ^dname Toy ^floor 1)
        let (db, emp, dept) = example3_db();
        let q = ConjunctiveQuery::new(
            vec![
                QueryTerm::new(emp, Restriction::default()),
                QueryTerm::new(
                    dept,
                    Restriction::new(vec![Selection::eq(1, "Toy"), Selection::eq(2, 1)]),
                ),
            ],
            vec![JoinPred::eq(0, 3, 1, 0)],
        );
        let res = QueryExecutor::new(&db).exec(&q, None).unwrap();
        // Mike and Sam are in dno 1 (Toy, floor 1); Jane is not.
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn seeded_execution_matches_unseeded() {
        let (db, emp, dept) = example3_db();
        let q = ConjunctiveQuery::new(
            vec![
                QueryTerm::new(emp, Restriction::default()),
                QueryTerm::new(dept, Restriction::new(vec![Selection::eq(1, "Toy")])),
            ],
            vec![JoinPred::eq(0, 3, 1, 0)],
        );
        let all = QueryExecutor::new(&db).exec(&q, None).unwrap();
        // Seed each Emp tuple in turn; union must equal the full result.
        let emps = db.read(emp, |r| r.scan()).unwrap().unwrap();
        let mut seeded = Vec::new();
        for (tid, t) in &emps {
            seeded.extend(
                QueryExecutor::new(&db)
                    .exec(&q, Some((0, *tid, t)))
                    .unwrap(),
            );
        }
        assert_eq!(all.len(), seeded.len());
    }

    #[test]
    fn seed_failing_restriction_yields_nothing() {
        let (db, emp, _) = example3_db();
        let q = ConjunctiveQuery::new(
            vec![QueryTerm::new(
                emp,
                Restriction::new(vec![Selection::eq(0, "Mike")]),
            )],
            vec![],
        );
        let emps = db.read(emp, |r| r.scan()).unwrap().unwrap();
        let sam = emps
            .iter()
            .find(|(_, t)| t[0] == crate::Value::str("Sam"))
            .unwrap();
        let res = QueryExecutor::new(&db)
            .exec(&q, Some((0, sam.0, &sam.1)))
            .unwrap();
        assert!(res.is_empty());
    }

    #[test]
    fn negated_term_blocks_bindings() {
        // Emps with no department tuple: (Emp ^dno <D>) -(Dept ^dno <D>)
        let (db, emp, dept) = example3_db();
        let q = ConjunctiveQuery::new(
            vec![
                QueryTerm::new(emp, Restriction::default()),
                QueryTerm::negated(dept, Restriction::default()),
            ],
            vec![JoinPred::eq(0, 3, 1, 0)],
        );
        let res = QueryExecutor::new(&db).exec(&q, None).unwrap();
        assert!(res.is_empty(), "every emp has a dept");

        db.insert(emp, tuple!["Orphan", 1000, "Sam", 99]).unwrap();
        let res = QueryExecutor::new(&db).exec(&q, None).unwrap();
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].tuple(0)[0], crate::Value::str("Orphan"));
        assert!(res[0].slots[1].is_none(), "negated term stays unbound");
    }

    #[test]
    fn three_way_join() {
        // Example 4's shape: A(a1,a2,a3), B(b1,b2,b3), C(c1,c2,c3)
        // A.a1 = B.b1, B.b2 = C.c2, A.a3 = C.c3.
        let db = Database::new();
        let a = db
            .create_relation(Schema::new("A", ["a1", "a2", "a3"]))
            .unwrap();
        let b = db
            .create_relation(Schema::new("B", ["b1", "b2", "b3"]))
            .unwrap();
        let c = db
            .create_relation(Schema::new("C", ["c1", "c2", "c3"]))
            .unwrap();
        db.insert(a, tuple![4, "a", 8]).unwrap();
        db.insert(b, tuple![4, 5, "b"]).unwrap();
        db.insert(b, tuple![4, 7, "b"]).unwrap();
        db.insert(c, tuple!["c", 7, 8]).unwrap();
        let q = ConjunctiveQuery::new(
            vec![
                QueryTerm::new(a, Restriction::new(vec![Selection::eq(1, "a")])),
                QueryTerm::new(b, Restriction::new(vec![Selection::eq(2, "b")])),
                QueryTerm::new(c, Restriction::new(vec![Selection::eq(0, "c")])),
            ],
            vec![
                JoinPred::eq(0, 0, 1, 0),
                JoinPred::eq(1, 1, 2, 1),
                JoinPred::eq(0, 2, 2, 2),
            ],
        );
        let res = QueryExecutor::new(&db).exec(&q, None).unwrap();
        assert_eq!(res.len(), 1, "only B(4,7,b) completes the join");
        assert_eq!(res[0].tuple(1)[1], crate::Value::Int(7));
    }

    #[test]
    fn exists_shortcut() {
        let (db, emp, _) = example3_db();
        let q = ConjunctiveQuery::new(
            vec![QueryTerm::new(
                emp,
                Restriction::new(vec![Selection::eq(0, "Mike")]),
            )],
            vec![],
        );
        assert!(QueryExecutor::new(&db).exists(&q, None).unwrap());
        let none = ConjunctiveQuery::new(
            vec![QueryTerm::new(
                emp,
                Restriction::new(vec![Selection::eq(0, "Nobody")]),
            )],
            vec![],
        );
        assert!(!QueryExecutor::new(&db).exists(&none, None).unwrap());
    }

    #[test]
    fn exists_touches_fewer_tuples_than_exec() {
        // Unindexed A ⋈ B where every pair joins: exec materializes the
        // full cross product, exists must stop at the first witness.
        let db = Database::new();
        let a = db.create_relation(Schema::new("A", ["k"])).unwrap();
        let b = db.create_relation(Schema::new("B", ["k"])).unwrap();
        for _ in 0..50 {
            db.insert(a, tuple![1]).unwrap();
            db.insert(b, tuple![1]).unwrap();
        }
        let q = ConjunctiveQuery::new(
            vec![
                QueryTerm::new(a, Restriction::default()),
                QueryTerm::new(b, Restriction::default()),
            ],
            vec![JoinPred::eq(0, 0, 1, 0)],
        );
        let s0 = db.stats().snapshot();
        let res = QueryExecutor::new(&db).exec(&q, None).unwrap();
        let exec_reads = db.stats().snapshot().since(&s0).tuples_read;
        assert_eq!(res.len(), 2500);
        let s1 = db.stats().snapshot();
        assert!(QueryExecutor::new(&db).exists(&q, None).unwrap());
        let exists_reads = db.stats().snapshot().since(&s1).tuples_read;
        assert!(
            exists_reads * 10 < exec_reads,
            "exists read {exists_reads} tuples vs exec's {exec_reads}"
        );
        // The batch executor's exists takes the same first-witness path.
        let s2 = db.stats().snapshot();
        assert!(crate::query::BatchExecutor::new(&db)
            .exists(&q, None)
            .unwrap());
        let batch_reads = db.stats().snapshot().since(&s2).tuples_read;
        assert!(batch_reads * 10 < exec_reads);
    }

    #[test]
    fn empty_query_returns_nothing() {
        let db = Database::new();
        let q = ConjunctiveQuery::default();
        assert!(QueryExecutor::new(&db).exec(&q, None).unwrap().is_empty());
    }

    #[test]
    fn explain_counts_rows_per_step_and_blocked_bindings() {
        // (Emp ^dno <D>) -(Dept ^dno <D>): 3 Emps scanned, all blocked
        // until an orphan appears.
        let (db, emp, dept) = example3_db();
        let q = ConjunctiveQuery::new(
            vec![
                QueryTerm::new(emp, Restriction::default()),
                QueryTerm::negated(dept, Restriction::default()),
            ],
            vec![JoinPred::eq(0, 3, 1, 0)],
        );
        let profile = QueryExecutor::new(&db).exec_explain(&q, &[0]).unwrap();
        assert_eq!(profile.rows, vec![3, 3], "3 Emp rows, all 3 blocked");
        assert!(profile.bindings.is_empty());

        db.insert(emp, tuple!["Orphan", 1000, "Sam", 99]).unwrap();
        let profile = QueryExecutor::new(&db).exec_explain(&q, &[0]).unwrap();
        assert_eq!(profile.rows, vec![4, 3]);
        assert_eq!(profile.bindings.len(), 1);
        // The imposed order matches the planner-ordered exec results.
        assert_eq!(
            profile.bindings,
            QueryExecutor::new(&db).exec(&q, None).unwrap()
        );
    }

    #[test]
    fn executor_feeds_analyze_registry() {
        let (db, emp, dept) = example3_db();
        let q = ConjunctiveQuery::new(
            vec![
                QueryTerm::new(emp, Restriction::default()),
                QueryTerm::new(
                    dept,
                    Restriction::new(vec![Selection::eq(1, "Toy"), Selection::eq(2, 1)]),
                ),
            ],
            vec![JoinPred::eq(0, 3, 1, 0)],
        );
        QueryExecutor::new(&db).exec(&q, None).unwrap();
        let dept_obs = db.analyze_registry().observed(dept);
        // Dept was probed via the join side (bound dno from each Emp) or
        // scanned first, depending on the plan — either way something was
        // observed on both relations.
        let emp_obs = db.analyze_registry().observed(emp);
        assert!(emp_obs.selection_in + emp_obs.join_in > 0);
        assert!(dept_obs.selection_in + dept_obs.join_in > 0);
    }
}
