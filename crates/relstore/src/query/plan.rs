//! Greedy join-order planning.
//!
//! §3.2 of the paper criticizes the Rete network for freezing one access
//! plan at compile time and notes that "database technology provides more
//! efficient ways of generating efficient access plans". The planner here
//! implements the standard greedy heuristic: start from the seeded or most
//! selective term, then repeatedly append the cheapest term that is
//! connected to the bound set by an equi-join (falling back to the smallest
//! unconnected term, i.e. a cross product, only when forced).

use super::ConjunctiveQuery;
use crate::database::Database;
use crate::pred::CompOp;

/// An ordered execution plan over the positive terms of a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    /// Visit order (indexes into `query.terms`); negated terms excluded.
    pub order: Vec<usize>,
    /// Term seeded with a known tuple, if any. Always first in `order`.
    pub seed: Option<usize>,
}

/// Plans conjunctive queries against a database's current statistics.
pub struct Planner<'a> {
    db: &'a Database,
}

impl<'a> Planner<'a> {
    /// Create a new, empty instance.
    pub fn new(db: &'a Database) -> Self {
        Planner { db }
    }

    /// Estimated result size of evaluating just term `t`'s restriction.
    /// Public so EXPLAIN can report the same estimates the planner
    /// ordered by.
    pub fn term_cardinality(&self, query: &ConjunctiveQuery, t: usize) -> f64 {
        let term = &query.terms[t];
        let n = self.db.relation_len(term.rel) as f64;
        n * term.restriction.selectivity().max(1e-6)
    }

    /// Plan the positive terms. `seed`, when given, fixes the first term
    /// (the condition element filled by the tuple that just arrived).
    pub fn plan(&self, query: &ConjunctiveQuery, seed: Option<usize>) -> Plan {
        let positives = query.positive_terms();
        let mut remaining: Vec<usize> = positives
            .iter()
            .copied()
            .filter(|&t| Some(t) != seed)
            .collect();
        let mut order: Vec<usize> = Vec::with_capacity(positives.len());
        if let Some(s) = seed {
            debug_assert!(!query.terms[s].negated, "seed must be a positive term");
            order.push(s);
        }

        // If no seed, start from the cheapest term.
        if order.is_empty() && !remaining.is_empty() {
            let best = remaining
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    self.term_cardinality(query, a)
                        .total_cmp(&self.term_cardinality(query, b))
                })
                .expect("nonempty");
            remaining.retain(|&t| t != best);
            order.push(best);
        }

        while !remaining.is_empty() {
            // Prefer terms equi-joined to the bound set (cheapest first),
            // then any joined term, then the cheapest cross product.
            let connected = |t: usize, eq_only: bool| -> bool {
                query.joins_of(t).any(|j| {
                    (!eq_only || j.op == CompOp::Eq)
                        && j.other(t).is_some_and(|o| order.contains(&o))
                })
            };
            let pick = remaining
                .iter()
                .copied()
                .filter(|&t| connected(t, true))
                .min_by(|&a, &b| {
                    self.term_cardinality(query, a)
                        .total_cmp(&self.term_cardinality(query, b))
                })
                .or_else(|| {
                    remaining
                        .iter()
                        .copied()
                        .filter(|&t| connected(t, false))
                        .min_by(|&a, &b| {
                            self.term_cardinality(query, a)
                                .total_cmp(&self.term_cardinality(query, b))
                        })
                })
                .or_else(|| {
                    remaining.iter().copied().min_by(|&a, &b| {
                        self.term_cardinality(query, a)
                            .total_cmp(&self.term_cardinality(query, b))
                    })
                })
                .expect("nonempty remaining");
            remaining.retain(|&t| t != pick);
            order.push(pick);
        }

        Plan { order, seed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::{Restriction, Selection};
    use crate::query::{JoinPred, QueryTerm};
    use crate::schema::Schema;
    use crate::tuple;

    fn db_with_sizes(sizes: &[usize]) -> Database {
        let db = Database::new();
        for (i, &n) in sizes.iter().enumerate() {
            let rid = db
                .create_relation(Schema::new(format!("R{i}"), ["a", "b"]))
                .unwrap();
            for k in 0..n {
                db.insert(rid, tuple![k as i64, (k % 7) as i64]).unwrap();
            }
        }
        db
    }

    #[test]
    fn seed_goes_first() {
        let db = db_with_sizes(&[100, 10, 1000]);
        let q = ConjunctiveQuery::new(
            (0..3)
                .map(|i| QueryTerm::new(crate::schema::RelId(i), Restriction::default()))
                .collect(),
            vec![JoinPred::eq(0, 0, 1, 0), JoinPred::eq(1, 1, 2, 1)],
        );
        let plan = Planner::new(&db).plan(&q, Some(2));
        assert_eq!(plan.order[0], 2);
        assert_eq!(plan.order.len(), 3);
        // Term 1 is joined to 2; it should come before the unjoined-to-2 term 0.
        assert_eq!(plan.order[1], 1);
    }

    #[test]
    fn unseeded_starts_cheapest_and_follows_joins() {
        let db = db_with_sizes(&[1000, 5, 500]);
        let q = ConjunctiveQuery::new(
            (0..3)
                .map(|i| QueryTerm::new(crate::schema::RelId(i), Restriction::default()))
                .collect(),
            vec![JoinPred::eq(0, 0, 1, 0), JoinPred::eq(0, 1, 2, 1)],
        );
        let plan = Planner::new(&db).plan(&q, None);
        assert_eq!(plan.order[0], 1, "smallest relation first");
        assert_eq!(plan.order[1], 0, "must follow the join edge");
    }

    #[test]
    fn selective_restriction_lowers_cardinality() {
        let db = db_with_sizes(&[100, 100]);
        let q = ConjunctiveQuery::new(
            vec![
                QueryTerm::new(crate::schema::RelId(0), Restriction::default()),
                QueryTerm::new(
                    crate::schema::RelId(1),
                    Restriction::new(vec![Selection::eq(0, 1)]),
                ),
            ],
            vec![JoinPred::eq(0, 0, 1, 0)],
        );
        let plan = Planner::new(&db).plan(&q, None);
        assert_eq!(plan.order[0], 1, "restricted term is cheaper");
    }

    #[test]
    fn negated_terms_excluded_from_order() {
        let db = db_with_sizes(&[10, 10]);
        let q = ConjunctiveQuery::new(
            vec![
                QueryTerm::new(crate::schema::RelId(0), Restriction::default()),
                QueryTerm::negated(crate::schema::RelId(1), Restriction::default()),
            ],
            vec![JoinPred::eq(0, 0, 1, 0)],
        );
        let plan = Planner::new(&db).plan(&q, None);
        assert_eq!(plan.order, vec![0]);
    }
}
