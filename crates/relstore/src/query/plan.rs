//! Greedy join-order planning.
//!
//! §3.2 of the paper criticizes the Rete network for freezing one access
//! plan at compile time and notes that "database technology provides more
//! efficient ways of generating efficient access plans". The planner here
//! implements the standard greedy heuristic: start from the seeded or most
//! selective term, then repeatedly append the cheapest term that is
//! connected to the bound set by an equi-join (falling back to the smallest
//! unconnected term, i.e. a cross product, only when forced).

use super::ConjunctiveQuery;
use crate::database::Database;
use crate::pred::CompOp;

/// Join algorithm chosen for one plan step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinAlgo {
    /// Index nested-loop: probe the step's relation once per outer
    /// binding (the seed executor's only strategy before the batch
    /// executor existed).
    NestedLoop,
    /// Build/probe hash join over the step's equi-join attributes,
    /// evaluated set-at-a-time by the batch executor.
    Hash,
}

impl JoinAlgo {
    /// Stable label used in EXPLAIN renderings and JSON.
    pub fn label(self) -> &'static str {
        match self {
            JoinAlgo::NestedLoop => "nested-loop",
            JoinAlgo::Hash => "hash",
        }
    }
}

/// Estimated step cardinality above which hashing the step's input beats
/// re-probing it per outer binding. Shared with [`crate::Txn`]'s batched
/// re-selection, which faces the same probe-vs-build choice.
pub(crate) const HASH_THRESHOLD: f64 = 8.0;

/// An ordered execution plan over the positive terms of a query.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Visit order (indexes into `query.terms`); negated terms excluded.
    pub order: Vec<usize>,
    /// Per-step join algorithm, aligned with `order`. The first step is a
    /// scan and always [`JoinAlgo::NestedLoop`].
    pub algos: Vec<JoinAlgo>,
    /// Estimated cardinality of each step's term, aligned with `order`.
    pub estimates: Vec<f64>,
    /// Term seeded with a known tuple, if any. Always first in `order`.
    pub seed: Option<usize>,
}

/// Plans conjunctive queries against a database's current statistics.
pub struct Planner<'a> {
    db: &'a Database,
}

impl<'a> Planner<'a> {
    /// Create a new, empty instance.
    pub fn new(db: &'a Database) -> Self {
        Planner { db }
    }

    /// Estimated result size of evaluating just term `t`'s restriction.
    /// Prefers the selection selectivity the executors have *observed* on
    /// the relation (ANALYZE registry) over the per-operator default,
    /// falling back to the default until something has been observed.
    /// Public so EXPLAIN can report the same estimates the planner
    /// ordered by.
    pub fn term_cardinality(&self, query: &ConjunctiveQuery, t: usize) -> f64 {
        let term = &query.terms[t];
        let n = self.db.relation_len(term.rel) as f64;
        let default = term.restriction.selectivity();
        let sel = if term.restriction.tests.is_empty() {
            default
        } else {
            self.db
                .analyze_registry()
                .observed(term.rel)
                .selection_selectivity()
                .unwrap_or(default)
        };
        n * sel.max(1e-6)
    }

    /// The most selective (largest) distinct count among `t`'s equi-join
    /// attributes into `bound` — the per-probe bucket size of an index
    /// nested loop is about `|t| / d`. `None` when no equi-join connects
    /// `t` to the bound set.
    fn eq_join_distinct(
        &self,
        query: &ConjunctiveQuery,
        t: usize,
        bound: &[usize],
    ) -> Option<usize> {
        query
            .joins_of(t)
            .filter_map(|j| {
                let (my_attr, op, other, _) = j.oriented(t)?;
                if op == CompOp::Eq && bound.contains(&other) {
                    self.db
                        .read(query.terms[t].rel, |r| r.distinct_estimate(my_attr))
                        .ok()
                } else {
                    None
                }
            })
            .max()
    }

    /// Join algorithm for evaluating term `t` after `bound` terms are
    /// bound, with `bindings` partial bindings estimated to probe it.
    ///
    /// An index nested loop reads about `bindings * |t| / d` tuples (`d`
    /// the join attribute's distinct count); a hash join reads `|t|` once
    /// to build. Hash therefore pays off when `bindings > d` — many
    /// bindings funnel through few keys, the skew case — and the build
    /// side clears a minimum size. Otherwise probing a few index buckets
    /// is strictly cheaper and the nested loop wins.
    pub fn step_algo(
        &self,
        query: &ConjunctiveQuery,
        t: usize,
        bound: &[usize],
        bindings: f64,
    ) -> JoinAlgo {
        match self.eq_join_distinct(query, t, bound) {
            Some(d) if self.term_cardinality(query, t) >= HASH_THRESHOLD && bindings > d as f64 => {
                JoinAlgo::Hash
            }
            _ => JoinAlgo::NestedLoop,
        }
    }

    /// Join algorithm for checking negated term `t` against `bindings`
    /// complete bindings (anti-join). Same cost model as
    /// [`Planner::step_algo`], with the whole positive set as the bound
    /// side.
    pub fn anti_algo(&self, query: &ConjunctiveQuery, t: usize, bindings: f64) -> JoinAlgo {
        let positives = query.positive_terms();
        match self.eq_join_distinct(query, t, &positives) {
            Some(d) if self.term_cardinality(query, t) >= HASH_THRESHOLD && bindings > d as f64 => {
                JoinAlgo::Hash
            }
            _ => JoinAlgo::NestedLoop,
        }
    }

    /// Estimated bindings term `t` contributes after `bound` terms are
    /// bound: its restricted size, divided per equi-join into the bound
    /// set by the join attribute's distinct count (ANALYZE stats).
    fn step_estimate(&self, query: &ConjunctiveQuery, t: usize, bound: &[usize]) -> f64 {
        let mut est = self.term_cardinality(query, t);
        for j in query.joins_of(t) {
            if let Some((my_attr, op, other, _)) = j.oriented(t) {
                if op == CompOp::Eq && bound.contains(&other) {
                    let d = self
                        .db
                        .read(query.terms[t].rel, |r| r.distinct_estimate(my_attr))
                        .unwrap_or(1);
                    est /= d.max(1) as f64;
                }
            }
        }
        est
    }

    /// Plan the positive terms. `seed`, when given, fixes the first term
    /// (the condition element filled by the tuple that just arrived).
    pub fn plan(&self, query: &ConjunctiveQuery, seed: Option<usize>) -> Plan {
        self.plan_seeded(query, seed, 1.0)
    }

    /// [`Planner::plan`] for a *batch* of `seed_bindings` seed tuples
    /// filling the seed term at once: the binding-count estimates that
    /// drive each step's join-algorithm choice start from the batch size
    /// instead of a single tuple.
    pub fn plan_seeded(
        &self,
        query: &ConjunctiveQuery,
        seed: Option<usize>,
        seed_bindings: f64,
    ) -> Plan {
        let positives = query.positive_terms();
        let mut remaining: Vec<usize> = positives
            .iter()
            .copied()
            .filter(|&t| Some(t) != seed)
            .collect();
        let mut order: Vec<usize> = Vec::with_capacity(positives.len());
        let mut algos: Vec<JoinAlgo> = Vec::with_capacity(positives.len());
        let mut estimates: Vec<f64> = Vec::with_capacity(positives.len());
        // Cumulative binding-count estimate as the plan grows; the
        // hash-vs-nested-loop choice of each step depends on it.
        let mut cum = seed_bindings.max(1.0);
        if let Some(s) = seed {
            debug_assert!(!query.terms[s].negated, "seed must be a positive term");
            algos.push(self.step_algo(query, s, &order, cum));
            estimates.push(1.0);
            order.push(s);
        }

        // If no seed, start from the cheapest term.
        if order.is_empty() && !remaining.is_empty() {
            let best = remaining
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    self.term_cardinality(query, a)
                        .total_cmp(&self.term_cardinality(query, b))
                })
                .expect("nonempty");
            remaining.retain(|&t| t != best);
            algos.push(self.step_algo(query, best, &order, cum));
            estimates.push(self.term_cardinality(query, best));
            cum *= self.step_estimate(query, best, &order);
            order.push(best);
        }

        while !remaining.is_empty() {
            // Prefer terms equi-joined to the bound set (cheapest first),
            // then any joined term, then the cheapest cross product.
            let connected = |t: usize, eq_only: bool| -> bool {
                query.joins_of(t).any(|j| {
                    (!eq_only || j.op == CompOp::Eq)
                        && j.other(t).is_some_and(|o| order.contains(&o))
                })
            };
            let pick = remaining
                .iter()
                .copied()
                .filter(|&t| connected(t, true))
                .min_by(|&a, &b| {
                    self.term_cardinality(query, a)
                        .total_cmp(&self.term_cardinality(query, b))
                })
                .or_else(|| {
                    remaining
                        .iter()
                        .copied()
                        .filter(|&t| connected(t, false))
                        .min_by(|&a, &b| {
                            self.term_cardinality(query, a)
                                .total_cmp(&self.term_cardinality(query, b))
                        })
                })
                .or_else(|| {
                    remaining.iter().copied().min_by(|&a, &b| {
                        self.term_cardinality(query, a)
                            .total_cmp(&self.term_cardinality(query, b))
                    })
                })
                .expect("nonempty remaining");
            remaining.retain(|&t| t != pick);
            algos.push(self.step_algo(query, pick, &order, cum));
            estimates.push(self.term_cardinality(query, pick));
            cum *= self.step_estimate(query, pick, &order);
            order.push(pick);
        }

        Plan {
            order,
            algos,
            estimates,
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::{Restriction, Selection};
    use crate::query::{JoinPred, QueryTerm};
    use crate::schema::Schema;
    use crate::tuple;

    fn db_with_sizes(sizes: &[usize]) -> Database {
        let db = Database::new();
        for (i, &n) in sizes.iter().enumerate() {
            let rid = db
                .create_relation(Schema::new(format!("R{i}"), ["a", "b"]))
                .unwrap();
            for k in 0..n {
                db.insert(rid, tuple![k as i64, (k % 7) as i64]).unwrap();
            }
        }
        db
    }

    #[test]
    fn seed_goes_first() {
        let db = db_with_sizes(&[100, 10, 1000]);
        let q = ConjunctiveQuery::new(
            (0..3)
                .map(|i| QueryTerm::new(crate::schema::RelId(i), Restriction::default()))
                .collect(),
            vec![JoinPred::eq(0, 0, 1, 0), JoinPred::eq(1, 1, 2, 1)],
        );
        let plan = Planner::new(&db).plan(&q, Some(2));
        assert_eq!(plan.order[0], 2);
        assert_eq!(plan.order.len(), 3);
        // Term 1 is joined to 2; it should come before the unjoined-to-2 term 0.
        assert_eq!(plan.order[1], 1);
    }

    #[test]
    fn unseeded_starts_cheapest_and_follows_joins() {
        let db = db_with_sizes(&[1000, 5, 500]);
        let q = ConjunctiveQuery::new(
            (0..3)
                .map(|i| QueryTerm::new(crate::schema::RelId(i), Restriction::default()))
                .collect(),
            vec![JoinPred::eq(0, 0, 1, 0), JoinPred::eq(0, 1, 2, 1)],
        );
        let plan = Planner::new(&db).plan(&q, None);
        assert_eq!(plan.order[0], 1, "smallest relation first");
        assert_eq!(plan.order[1], 0, "must follow the join edge");
    }

    #[test]
    fn selective_restriction_lowers_cardinality() {
        let db = db_with_sizes(&[100, 100]);
        let q = ConjunctiveQuery::new(
            vec![
                QueryTerm::new(crate::schema::RelId(0), Restriction::default()),
                QueryTerm::new(
                    crate::schema::RelId(1),
                    Restriction::new(vec![Selection::eq(0, 1)]),
                ),
            ],
            vec![JoinPred::eq(0, 0, 1, 0)],
        );
        let plan = Planner::new(&db).plan(&q, None);
        assert_eq!(plan.order[0], 1, "restricted term is cheaper");
    }

    #[test]
    fn negated_terms_excluded_from_order() {
        let db = db_with_sizes(&[10, 10]);
        let q = ConjunctiveQuery::new(
            vec![
                QueryTerm::new(crate::schema::RelId(0), Restriction::default()),
                QueryTerm::negated(crate::schema::RelId(1), Restriction::default()),
            ],
            vec![JoinPred::eq(0, 0, 1, 0)],
        );
        let plan = Planner::new(&db).plan(&q, None);
        assert_eq!(plan.order, vec![0]);
    }
}
