//! Logical operation accounting.
//!
//! The paper assumes working memory lives on secondary storage; on 2026
//! hardware an in-memory build would hide the algorithmic differences the
//! paper argues about. Every storage operation therefore bumps a shared
//! counter set, and the experiments report *logical I/O* (tuples read and
//! written, index probes, scans) alongside wall time.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared counters. Cheap to clone (an `Arc`); safe to bump from the
/// parallel propagation threads.
#[derive(Debug, Default)]
pub struct Counters {
    /// Tuples materialized out of a relation (scan or index fetch).
    pub tuples_read: AtomicU64,
    /// Tuples inserted.
    pub tuples_inserted: AtomicU64,
    /// Tuples deleted.
    pub tuples_deleted: AtomicU64,
    /// Hash/ordered index point probes.
    pub index_probes: AtomicU64,
    /// Full relation scans started.
    pub scans: AtomicU64,
    /// Predicate evaluations (selection tests applied to a tuple).
    pub pred_evals: AtomicU64,
    /// Logical locks acquired (transaction experiments).
    pub locks_acquired: AtomicU64,
    /// Lock requests that had to block before being granted.
    pub lock_waits: AtomicU64,
    /// Total nanoseconds spent blocked on lock requests.
    pub lock_wait_ns: AtomicU64,
    /// Transactions aborted (deadlock victims or rule-level aborts).
    pub aborts: AtomicU64,
    /// Pages read from the page file (buffer pool misses).
    pub page_reads: AtomicU64,
    /// Pages written to the page file (eviction or flush).
    pub page_writes: AtomicU64,
    /// Page requests satisfied from the buffer pool.
    pub pool_hits: AtomicU64,
    /// Frames evicted to make room for another page.
    pub pool_evictions: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpSnapshot {
    /// Tuples materialized out of relations.
    pub tuples_read: u64,
    /// Tuples inserted.
    pub tuples_inserted: u64,
    /// Tuples deleted.
    pub tuples_deleted: u64,
    /// Index point probes.
    pub index_probes: u64,
    /// Full relation scans.
    pub scans: u64,
    /// Predicate evaluations.
    pub pred_evals: u64,
    /// Logical locks acquired.
    pub locks_acquired: u64,
    /// Lock requests that had to block.
    pub lock_waits: u64,
    /// Nanoseconds spent blocked on lock requests.
    pub lock_wait_ns: u64,
    /// Transactions aborted.
    pub aborts: u64,
    /// Pages read from the page file.
    pub page_reads: u64,
    /// Pages written to the page file.
    pub page_writes: u64,
    /// Page requests satisfied from the buffer pool.
    pub pool_hits: u64,
    /// Buffer-pool frames evicted.
    pub pool_evictions: u64,
}

impl OpSnapshot {
    /// Total logical I/O: reads plus writes plus probes.
    pub fn logical_io(&self) -> u64 {
        self.tuples_read + self.tuples_inserted + self.tuples_deleted + self.index_probes
    }

    /// Difference since an earlier snapshot. Saturating: a [`Stats::reset`]
    /// between the two snapshots yields zeros instead of a debug-mode
    /// underflow panic.
    pub fn since(&self, earlier: &OpSnapshot) -> OpSnapshot {
        OpSnapshot {
            tuples_read: self.tuples_read.saturating_sub(earlier.tuples_read),
            tuples_inserted: self.tuples_inserted.saturating_sub(earlier.tuples_inserted),
            tuples_deleted: self.tuples_deleted.saturating_sub(earlier.tuples_deleted),
            index_probes: self.index_probes.saturating_sub(earlier.index_probes),
            scans: self.scans.saturating_sub(earlier.scans),
            pred_evals: self.pred_evals.saturating_sub(earlier.pred_evals),
            locks_acquired: self.locks_acquired.saturating_sub(earlier.locks_acquired),
            lock_waits: self.lock_waits.saturating_sub(earlier.lock_waits),
            lock_wait_ns: self.lock_wait_ns.saturating_sub(earlier.lock_wait_ns),
            aborts: self.aborts.saturating_sub(earlier.aborts),
            page_reads: self.page_reads.saturating_sub(earlier.page_reads),
            page_writes: self.page_writes.saturating_sub(earlier.page_writes),
            pool_hits: self.pool_hits.saturating_sub(earlier.pool_hits),
            pool_evictions: self.pool_evictions.saturating_sub(earlier.pool_evictions),
        }
    }
}

impl fmt::Display for OpSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads={} ins={} del={} probes={} scans={} preds={} locks={} waits={} wait_ns={} aborts={} pg_r={} pg_w={} pool_hit={} evict={}",
            self.tuples_read,
            self.tuples_inserted,
            self.tuples_deleted,
            self.index_probes,
            self.scans,
            self.pred_evals,
            self.locks_acquired,
            self.lock_waits,
            self.lock_wait_ns,
            self.aborts,
            self.page_reads,
            self.page_writes,
            self.pool_hits,
            self.pool_evictions
        )
    }
}

/// Handle to a counter set.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    inner: Arc<Counters>,
}

impl Stats {
    /// Create a new, empty instance.
    pub fn new() -> Self {
        Stats::default()
    }

    /// Count `n` tuples read.
    #[inline]
    pub fn read_tuples(&self, n: u64) {
        self.inner.tuples_read.fetch_add(n, Ordering::Relaxed);
    }

    /// Count one tuple insertion.
    #[inline]
    pub fn inserted(&self) {
        self.inner.tuples_inserted.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one tuple deletion.
    #[inline]
    pub fn deleted(&self) {
        self.inner.tuples_deleted.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one index point probe.
    #[inline]
    pub fn index_probe(&self) {
        self.inner.index_probes.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one full relation scan.
    #[inline]
    pub fn scan(&self) {
        self.inner.scans.fetch_add(1, Ordering::Relaxed);
    }

    /// Count `n` predicate evaluations.
    #[inline]
    pub fn pred_evals(&self, n: u64) {
        self.inner.pred_evals.fetch_add(n, Ordering::Relaxed);
    }

    /// Count one logical lock acquisition.
    #[inline]
    pub fn lock_acquired(&self) {
        self.inner.locks_acquired.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one blocked lock request and the nanoseconds it waited.
    #[inline]
    pub fn lock_waited(&self, ns: u64) {
        self.inner.lock_waits.fetch_add(1, Ordering::Relaxed);
        self.inner.lock_wait_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Count one transaction abort.
    #[inline]
    pub fn abort(&self) {
        self.inner.aborts.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one page read from the page file.
    #[inline]
    pub fn page_read(&self) {
        self.inner.page_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one page write to the page file.
    #[inline]
    pub fn page_write(&self) {
        self.inner.page_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one buffer-pool hit.
    #[inline]
    pub fn pool_hit(&self) {
        self.inner.pool_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one buffer-pool eviction.
    #[inline]
    pub fn pool_eviction(&self) {
        self.inner.pool_evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy out the current values.
    pub fn snapshot(&self) -> OpSnapshot {
        OpSnapshot {
            tuples_read: self.inner.tuples_read.load(Ordering::Relaxed),
            tuples_inserted: self.inner.tuples_inserted.load(Ordering::Relaxed),
            tuples_deleted: self.inner.tuples_deleted.load(Ordering::Relaxed),
            index_probes: self.inner.index_probes.load(Ordering::Relaxed),
            scans: self.inner.scans.load(Ordering::Relaxed),
            pred_evals: self.inner.pred_evals.load(Ordering::Relaxed),
            locks_acquired: self.inner.locks_acquired.load(Ordering::Relaxed),
            lock_waits: self.inner.lock_waits.load(Ordering::Relaxed),
            lock_wait_ns: self.inner.lock_wait_ns.load(Ordering::Relaxed),
            aborts: self.inner.aborts.load(Ordering::Relaxed),
            page_reads: self.inner.page_reads.load(Ordering::Relaxed),
            page_writes: self.inner.page_writes.load(Ordering::Relaxed),
            pool_hits: self.inner.pool_hits.load(Ordering::Relaxed),
            pool_evictions: self.inner.pool_evictions.load(Ordering::Relaxed),
        }
    }

    /// Reset everything to zero (between experiment runs).
    pub fn reset(&self) {
        self.inner.tuples_read.store(0, Ordering::Relaxed);
        self.inner.tuples_inserted.store(0, Ordering::Relaxed);
        self.inner.tuples_deleted.store(0, Ordering::Relaxed);
        self.inner.index_probes.store(0, Ordering::Relaxed);
        self.inner.scans.store(0, Ordering::Relaxed);
        self.inner.pred_evals.store(0, Ordering::Relaxed);
        self.inner.locks_acquired.store(0, Ordering::Relaxed);
        self.inner.lock_waits.store(0, Ordering::Relaxed);
        self.inner.lock_wait_ns.store(0, Ordering::Relaxed);
        self.inner.aborts.store(0, Ordering::Relaxed);
        self.inner.page_reads.store(0, Ordering::Relaxed);
        self.inner.page_writes.store(0, Ordering::Relaxed);
        self.inner.pool_hits.store(0, Ordering::Relaxed);
        self.inner.pool_evictions.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_snapshot_delta() {
        let s = Stats::new();
        s.read_tuples(10);
        s.inserted();
        s.index_probe();
        let a = s.snapshot();
        assert_eq!(a.tuples_read, 10);
        assert_eq!(a.logical_io(), 12);

        s.read_tuples(5);
        s.deleted();
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.tuples_read, 5);
        assert_eq!(d.tuples_deleted, 1);
        assert_eq!(d.tuples_inserted, 0);
    }

    #[test]
    fn clone_shares_counters() {
        let s = Stats::new();
        let t = s.clone();
        t.scan();
        assert_eq!(s.snapshot().scans, 1);
    }

    #[test]
    fn reset_zeroes() {
        let s = Stats::new();
        s.inserted();
        s.abort();
        s.reset();
        assert_eq!(s.snapshot(), OpSnapshot::default());
    }

    #[test]
    fn since_saturates_across_reset() {
        let s = Stats::new();
        s.read_tuples(10);
        s.lock_acquired();
        s.lock_waited(500);
        let before = s.snapshot();
        s.reset();
        s.read_tuples(3);
        // The later snapshot is numerically smaller; the delta must clamp
        // to zero rather than underflow.
        let d = s.snapshot().since(&before);
        assert_eq!(d.tuples_read, 0);
        assert_eq!(d.lock_waits, 0);
        assert_eq!(d.lock_wait_ns, 0);
    }

    #[test]
    fn concurrent_bumps() {
        let s = Stats::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = s.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        s.read_tuples(1);
                    }
                });
            }
        });
        assert_eq!(s.snapshot().tuples_read, 4000);
    }
}
