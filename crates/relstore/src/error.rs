//! Error type shared by every storage-layer operation.

use std::fmt;

use crate::schema::RelId;
use crate::txn::TxnId;

/// Errors produced by the storage engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A relation name was not found in the catalog.
    UnknownRelation(String),
    /// A relation id was out of range for this database.
    BadRelId(RelId),
    /// An attribute name was not found in a schema.
    UnknownAttribute { relation: String, attribute: String },
    /// An attribute index was out of range for a schema.
    BadAttrIndex { relation: String, index: usize },
    /// A tuple had the wrong arity for its target relation.
    ArityMismatch {
        relation: String,
        expected: usize,
        got: usize,
    },
    /// A tuple id did not name a live tuple.
    NoSuchTuple(RelId, u64),
    /// A relation with this name already exists.
    DuplicateRelation(String),
    /// The transaction was chosen as a deadlock victim and must abort.
    Deadlock(TxnId),
    /// The transaction has already committed or aborted.
    TxnFinished(TxnId),
    /// A lock request conflicted with the 2PL protocol (e.g. acquiring
    /// after the shrink phase started).
    LockProtocol(&'static str),
    /// Snapshot, WAL, or page bytes were malformed.
    Corrupt(&'static str),
    /// A value exceeded an encode-time size limit (e.g. a string longer
    /// than [`crate::codec::MAX_STR_BYTES`]); rejected up front rather
    /// than written as an undecodable record.
    TooLarge(&'static str),
    /// An operating-system I/O failure from the page file or log file.
    Io(String),
    /// A query referenced a term index that does not exist.
    BadQueryTerm(usize),
    /// A fault armed via [`crate::Database::inject_fault_after`] fired —
    /// only ever produced by the test hook, never by real storage.
    Injected(&'static str),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
            Error::BadRelId(rid) => write!(f, "relation id {} out of range", rid.0),
            Error::UnknownAttribute {
                relation,
                attribute,
            } => {
                write!(f, "relation `{relation}` has no attribute `{attribute}`")
            }
            Error::BadAttrIndex { relation, index } => {
                write!(
                    f,
                    "attribute index {index} out of range for relation `{relation}`"
                )
            }
            Error::ArityMismatch {
                relation,
                expected,
                got,
            } => {
                write!(
                    f,
                    "relation `{relation}` expects {expected} attributes, tuple has {got}"
                )
            }
            Error::NoSuchTuple(rid, tid) => {
                write!(f, "no live tuple {tid} in relation {}", rid.0)
            }
            Error::DuplicateRelation(name) => write!(f, "relation `{name}` already exists"),
            Error::Deadlock(txn) => write!(f, "transaction {} aborted: deadlock victim", txn.0),
            Error::TxnFinished(txn) => write!(f, "transaction {} already finished", txn.0),
            Error::LockProtocol(msg) => write!(f, "lock protocol violation: {msg}"),
            Error::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            Error::TooLarge(msg) => write!(f, "value too large to encode: {msg}"),
            Error::Io(msg) => write!(f, "storage i/o error: {msg}"),
            Error::BadQueryTerm(i) => write!(f, "query references unknown term {i}"),
            Error::Injected(msg) => write!(f, "injected fault: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;
