//! The database: a catalog of relations plus shared services (statistics,
//! lock manager, transaction manager).
//!
//! Physical access uses per-relation reader/writer latches; *logical*
//! isolation is the transaction layer's job ([`crate::txn`]). Matching
//! engines that run single-threaded go straight through [`Database::read`]
//! / [`Database::write`]; the concurrent executor goes through
//! [`Database::begin`].

use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::analyze::AnalyzeRegistry;
use crate::error::{Error, Result};
use crate::pool::BufferPool;
use crate::pred::Restriction;
use crate::relation::Relation;
use crate::schema::{RelId, Schema};
use crate::stats::Stats;
use crate::tuple::{Tuple, TupleId};
use crate::txn::{LockManager, Txn, TxnManager};
use crate::wal::{TornTail, Wal, WalRecord};

/// Paged-mode state: the storage directory and the buffer pool every
/// relation of this database draws pages from.
#[derive(Debug)]
struct PagedMeta {
    dir: PathBuf,
    pool: Arc<BufferPool>,
}

/// What [`Database::open_paged`] found on disk and did about it.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryReport {
    /// Logical WAL records replayed on top of the checkpoint.
    pub records_replayed: usize,
    /// WAL records skipped because the checkpoint snapshot already
    /// contained them (`lsn <=` the snapshot's watermark). Non-zero
    /// means a checkpoint crashed between publishing its snapshot and
    /// truncating the log; recovery finishes the truncation.
    pub records_skipped: usize,
    /// A torn tail found (and truncated) in the log file, if any.
    pub torn: Option<TornTail>,
    /// Whether a checkpoint snapshot was present and loaded.
    pub snapshot_loaded: bool,
}

/// A shared, thread-safe database.
pub struct Database {
    relations: RwLock<Vec<Arc<RwLock<Relation>>>>,
    names: RwLock<HashMap<String, RelId>>,
    stats: Stats,
    locks: LockManager,
    txns: TxnManager,
    analyze: AnalyzeRegistry,
    wal: RwLock<Option<Arc<Wal>>>,
    paged: Option<PagedMeta>,
    /// Simulated secondary-storage latency per tuple touched by the
    /// database-level access paths, in nanoseconds (0 = off). Sleeping
    /// rather than spinning, so concurrent transactions overlap their
    /// "I/O" exactly as the paper's §5 concurrency argument assumes.
    io_cost_ns: AtomicU64,
    /// Fault-injection countdown armed by [`Database::inject_fault_after`];
    /// negative = disarmed. Transactional operations tick it down and the
    /// one that reaches zero fails with [`Error::Injected`].
    fault_after: AtomicI64,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// Create a new, empty instance with the default lock-shard count
    /// ([`crate::DEFAULT_LOCK_SHARDS`]).
    pub fn new() -> Self {
        Self::new_with_shards(crate::DEFAULT_LOCK_SHARDS)
    }

    /// Create a new, empty instance whose lock manager is partitioned
    /// into `shards` lock-table shards (relations hash onto shards, so
    /// transactions over disjoint relations never contend on one table).
    pub fn new_with_shards(shards: usize) -> Self {
        let stats = Stats::new();
        Database {
            relations: RwLock::new(Vec::new()),
            names: RwLock::new(HashMap::new()),
            locks: LockManager::with_shards(stats.clone(), shards),
            txns: TxnManager::new(),
            analyze: AnalyzeRegistry::new(),
            stats,
            wal: RwLock::new(None),
            paged: None,
            io_cost_ns: AtomicU64::new(0),
            fault_after: AtomicI64::new(-1),
        }
    }

    /// Create a paged database rooted at directory `path`: tuple storage
    /// on heap pages in `data.pages` behind a `pool_pages`-frame buffer
    /// pool, with a file-backed WAL (`wal.log`) attached from the start.
    /// Any prior state in the directory is discarded; use
    /// [`Database::open_paged`] to recover instead.
    pub fn new_paged(path: impl AsRef<Path>, pool_pages: usize) -> Result<Database> {
        let dir = path.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let mut db = Database::new();
        let pool = Arc::new(BufferPool::create(
            &dir.join("data.pages"),
            pool_pages,
            db.stats.clone(),
        )?);
        let wal = Arc::new(Wal::create(&dir.join("wal.log"))?);
        pool.set_wal(wal.clone());
        // Remove any stale checkpoint so a later open_paged can't resurrect
        // state this fresh database never held.
        let _ = std::fs::remove_file(dir.join("checkpoint.snap"));
        *db.wal.get_mut() = Some(wal);
        db.paged = Some(PagedMeta { dir, pool });
        Ok(db)
    }

    /// Recover a paged database from directory `path`: load the
    /// checkpoint snapshot if present, replay the WAL's valid prefix
    /// (truncating any torn tail), and resume logging where the LSN
    /// sequence left off. The page file is rebuilt during replay — pages
    /// are a runtime overflow medium, the checkpoint + WAL are the
    /// durable source of truth.
    pub fn open_paged(
        path: impl AsRef<Path>,
        pool_pages: usize,
    ) -> Result<(Database, RecoveryReport)> {
        let dir = path.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let (wal, records, torn) = Wal::open(&dir.join("wal.log"))?;
        let mut db = Database::new();
        let pool = Arc::new(BufferPool::create(
            &dir.join("data.pages"),
            pool_pages,
            db.stats.clone(),
        )?);
        db.paged = Some(PagedMeta {
            dir: dir.clone(),
            pool: pool.clone(),
        });
        // A checkpoint that crashed before its rename leaves a stale tmp.
        let _ = std::fs::remove_file(dir.join("checkpoint.tmp"));
        let snap_path = dir.join("checkpoint.snap");
        let snapshot_loaded = snap_path.exists();
        let mut watermark = 0u64;
        if snapshot_loaded {
            let bytes = std::fs::read(&snap_path)?;
            watermark = crate::snapshot::load_into(bytes.into(), &db)?;
        }
        // Replay with the WAL still detached so replayed operations are
        // not re-logged; LSNs continue from the recovered position.
        // Records at or below the snapshot's watermark are already in the
        // restored state — a checkpoint that crashed after renaming its
        // snapshot but before truncating the log leaves exactly such a
        // prefix behind, and replaying it would double every change.
        let mut records_replayed = 0;
        let mut records_skipped = 0;
        for (lsn, rec) in records {
            if lsn <= watermark {
                records_skipped += 1;
                continue;
            }
            crate::wal::apply_record(&db, rec)?;
            records_replayed += 1;
        }
        let wal = Arc::new(wal);
        // New records must outrank the snapshot's watermark even if the
        // log file was empty (fresh LSN sequence).
        wal.bump_lsn(watermark);
        if records_skipped > 0 {
            // Finish the interrupted checkpoint: drop the already-
            // snapshotted prefix so the next crash doesn't re-skip it.
            wal.truncate_through(watermark)?;
        }
        pool.set_wal(wal.clone());
        *db.wal.write() = Some(wal);
        Ok((
            db,
            RecoveryReport {
                records_replayed,
                records_skipped,
                torn,
                snapshot_loaded,
            },
        ))
    }

    /// True when tuple storage lives on heap pages.
    pub fn is_paged(&self) -> bool {
        self.paged.is_some()
    }

    /// Checkpoint a paged database: take a quiesced snapshot (every
    /// relation latched, so no writer can straddle the cut), write it
    /// atomically (tmp + fsync + rename), flush dirty pages WAL-first,
    /// and drop the log prefix the snapshot covers. The snapshot embeds
    /// the WAL watermark of its cut, so a crash *anywhere* in this
    /// sequence recovers exactly the committed state: before the rename,
    /// the old snapshot + full log; after it, the new snapshot with
    /// replay skipping records the image already contains.
    pub fn checkpoint(&self) -> Result<()> {
        let paged = self
            .paged
            .as_ref()
            .ok_or_else(|| Error::Io("checkpoint requires a paged database".into()))?;
        let (bytes, watermark) = crate::snapshot::save_with_watermark(self)?;
        let tmp = paged.dir.join("checkpoint.tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, paged.dir.join("checkpoint.snap"))?;
        paged.pool.flush_all()?;
        if let Some(wal) = self.wal_handle() {
            // Keep the suffix: records committed while the snapshot was
            // being written to disk are not in the image.
            wal.truncate_through(watermark)?;
        }
        Ok(())
    }

    /// Run `f` with the whole database quiesced: the catalog and every
    /// relation write-latched (in id order, so this cannot deadlock with
    /// writers, which hold at most one relation latch), plus the WAL's
    /// last LSN at that point. While `f` runs no relation can be created
    /// and no tuple can change, so the LSN is an exact cut: everything
    /// at or below it is visible to `f`, nothing above it is.
    pub(crate) fn with_quiesced<R>(&self, f: impl FnOnce(&[&Relation], u64) -> R) -> R {
        let _names = self.names.read();
        let rels = self.relations.read();
        let guards: Vec<_> = rels.iter().map(|r| r.write()).collect();
        let watermark = self.wal.read().as_ref().map_or(0, |w| w.last_lsn());
        let refs: Vec<&Relation> = guards.iter().map(|g| &**g).collect();
        f(&refs, watermark)
    }

    /// Make the WAL durable through its latest record (fsync when
    /// file-backed). Called on transaction commit; a no-op without a WAL.
    pub fn sync_wal(&self) -> Result<()> {
        match self.wal.read().as_ref() {
            Some(wal) => wal.sync(),
            None => Ok(()),
        }
    }

    /// Arm a one-shot injected fault: the `ops`-th subsequent
    /// transactional operation (`0` = the very next one) fails with
    /// [`Error::Injected`] instead of running, then the knob disarms
    /// itself. Testing hook for the §5 error-abort path — engine-level
    /// maintenance reads/writes never tick the countdown.
    pub fn inject_fault_after(&self, ops: u64) {
        self.fault_after.store(ops as i64, Ordering::SeqCst);
    }

    /// Consume one fault-countdown tick (no-op while disarmed).
    pub(crate) fn check_fault(&self) -> Result<()> {
        if self.fault_after.load(Ordering::SeqCst) < 0 {
            return Ok(());
        }
        let prev = self.fault_after.fetch_sub(1, Ordering::SeqCst);
        match prev.cmp(&0) {
            std::cmp::Ordering::Equal => Err(Error::Injected("storage fault")),
            std::cmp::Ordering::Less => {
                // Another thread raced past zero between the load and the
                // decrement; restore the disarmed state.
                self.fault_after.store(-1, Ordering::SeqCst);
                Ok(())
            }
            std::cmp::Ordering::Greater => Ok(()),
        }
    }

    /// Enable simulated per-tuple I/O latency (see the field docs).
    pub fn set_io_cost_ns(&self, ns: u64) {
        self.io_cost_ns.store(ns, Ordering::Relaxed);
    }

    pub(crate) fn charge_io(&self, tuples: u64) {
        let ns = self.io_cost_ns.load(Ordering::Relaxed);
        if ns == 0 || tuples == 0 {
            return;
        }
        std::thread::sleep(std::time::Duration::from_nanos(ns * tuples));
    }

    /// Turn on write-ahead logging. Every subsequent relation creation,
    /// index creation (via the [`Database`]-level helpers) and tuple
    /// change is appended to the returned log; pair with
    /// [`crate::snapshot::save`] for checkpoint + replay recovery
    /// ([`crate::wal::recover`]).
    pub fn enable_wal(&self) -> Arc<Wal> {
        let wal = Arc::new(Wal::new());
        *self.wal.write() = Some(wal.clone());
        wal
    }

    /// The WAL handle, if logging is on (cloned out so relation latches
    /// are never held while taking the registry lock).
    fn wal_handle(&self) -> Option<Arc<Wal>> {
        self.wal.read().clone()
    }

    fn log(&self, rec: WalRecord) -> Result<()> {
        if let Some(wal) = self.wal.read().as_ref() {
            wal.append(&rec)?;
        }
        Ok(())
    }

    /// Create a hash index, logged to the WAL.
    pub fn create_hash_index(&self, rid: RelId, attr: usize) -> Result<()> {
        self.write(rid, |r| r.create_hash_index(attr))??;
        self.log(WalRecord::CreateHashIndex { rel: rid, attr })
    }

    /// Create an ordered index, logged to the WAL.
    pub fn create_ord_index(&self, rid: RelId, attr: usize) -> Result<()> {
        self.write(rid, |r| r.create_ord_index(attr))??;
        self.log(WalRecord::CreateOrdIndex { rel: rid, attr })
    }

    /// Shared operation counters for the whole database.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Observed selectivities maintained by the query executor
    /// (ANALYZE-style statistics, [`crate::analyze`]).
    pub fn analyze_registry(&self) -> &AnalyzeRegistry {
        &self.analyze
    }

    /// The 2PL lock manager shared by all transactions.
    pub fn lock_manager(&self) -> &LockManager {
        &self.locks
    }

    /// Begin a transaction (strict 2PL).
    pub fn begin(&self) -> Txn<'_> {
        Txn::new(self, self.txns.begin())
    }

    /// Create a relation; names must be unique.
    pub fn create_relation(&self, schema: Schema) -> Result<RelId> {
        let mut names = self.names.write();
        if names.contains_key(schema.name()) {
            return Err(Error::DuplicateRelation(schema.name().to_string()));
        }
        let mut rels = self.relations.write();
        let rid = RelId(rels.len() as u32);
        self.log(WalRecord::CreateRelation {
            name: schema.name().to_string(),
            attrs: schema.attrs().iter().map(|a| a.name.to_string()).collect(),
        })?;
        names.insert(schema.name().to_string(), rid);
        let relation = match &self.paged {
            Some(paged) => Relation::new_paged(rid, schema, self.stats.clone(), paged.pool.clone()),
            None => Relation::new(rid, schema, self.stats.clone()),
        };
        rels.push(Arc::new(RwLock::new(relation)));
        Ok(rid)
    }

    /// Resolve a relation name.
    pub fn rel_id(&self, name: &str) -> Result<RelId> {
        self.names
            .read()
            .get(name)
            .copied()
            .ok_or_else(|| Error::UnknownRelation(name.to_string()))
    }

    /// All relation names with their ids, in id order.
    pub fn relation_names(&self) -> Vec<(RelId, String)> {
        let rels = self.relations.read();
        rels.iter()
            .map(|r| {
                let r = r.read();
                (r.id(), r.name().to_string())
            })
            .collect()
    }

    /// Number of relations.
    pub fn relation_count(&self) -> usize {
        self.relations.read().len()
    }

    fn rel(&self, rid: RelId) -> Result<Arc<RwLock<Relation>>> {
        self.relations
            .read()
            .get(rid.index())
            .cloned()
            .ok_or(Error::BadRelId(rid))
    }

    /// Run a closure with shared access to a relation.
    pub fn read<R>(&self, rid: RelId, f: impl FnOnce(&Relation) -> R) -> Result<R> {
        let rel = self.rel(rid)?;
        let guard = rel.read();
        Ok(f(&guard))
    }

    /// Run a closure with exclusive access to a relation.
    pub fn write<R>(&self, rid: RelId, f: impl FnOnce(&mut Relation) -> R) -> Result<R> {
        let rel = self.rel(rid)?;
        let mut guard = rel.write();
        Ok(f(&mut guard))
    }

    /// Schema of a relation (cloned).
    pub fn schema(&self, rid: RelId) -> Result<Schema> {
        self.read(rid, |r| r.schema().clone())
    }

    /// Insert a tuple directly (no logical locking). The WAL record is
    /// appended before the page write, under the relation's write latch.
    pub fn insert(&self, rid: RelId, tuple: Tuple) -> Result<TupleId> {
        let wal = self.wal_handle();
        let tid = self.write(rid, |r| r.insert_logged(tuple, wal.as_deref()))??;
        self.charge_io(1);
        Ok(tid)
    }

    /// Delete a tuple directly (no logical locking). WAL-first, like
    /// [`Database::insert`].
    pub fn delete(&self, rid: RelId, tid: TupleId) -> Result<Tuple> {
        let wal = self.wal_handle();
        self.write(rid, |r| r.delete_logged(tid, wal.as_deref()))?
    }

    /// Delete the first tuple equal to `tuple` (OPS5 `remove` semantics).
    /// Returns the deleted tuple's id, or `None` when absent.
    pub fn delete_equal(&self, rid: RelId, tuple: &Tuple) -> Result<Option<TupleId>> {
        let wal = self.wal_handle();
        self.write(rid, |r| -> Result<Option<TupleId>> {
            match r.find_equal(tuple)? {
                Some(tid) => {
                    r.delete_logged(tid, wal.as_deref())?;
                    Ok(Some(tid))
                }
                None => Ok(None),
            }
        })?
    }

    /// Fetch a tuple by id (owned).
    pub fn get(&self, rid: RelId, tid: TupleId) -> Result<Tuple> {
        self.read(rid, |r| r.get(tid))?
    }

    /// Live tuple count of a relation; 0 when the id is invalid (planner
    /// convenience).
    pub fn relation_len(&self, rid: RelId) -> usize {
        self.read(rid, |r| r.len()).unwrap_or(0)
    }

    /// Select on one relation.
    pub fn select(&self, rid: RelId, restriction: &Restriction) -> Result<Vec<(TupleId, Tuple)>> {
        let rows = self.read(rid, |r| r.select(restriction))??;
        self.charge_io(rows.len() as u64 + 1);
        Ok(rows)
    }

    /// Total approximate bytes across all relations (space experiments).
    pub fn total_bytes(&self) -> usize {
        let rels = self.relations.read();
        rels.iter()
            .map(|r| r.read().approx_bytes().unwrap_or(0))
            .sum()
    }

    /// Total live tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        let rels = self.relations.read();
        rels.iter().map(|r| r.read().len()).sum()
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("relations", &self.relation_count())
            .field("tuples", &self.total_tuples())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn catalog_roundtrip() {
        let db = Database::new();
        let emp = db
            .create_relation(Schema::new("Emp", ["name", "age"]))
            .unwrap();
        let dept = db.create_relation(Schema::new("Dept", ["dno"])).unwrap();
        assert_eq!(db.rel_id("Emp").unwrap(), emp);
        assert_eq!(db.rel_id("Dept").unwrap(), dept);
        assert!(db.rel_id("Nope").is_err());
        assert!(matches!(
            db.create_relation(Schema::new("Emp", ["x"])),
            Err(Error::DuplicateRelation(_))
        ));
        assert_eq!(db.relation_count(), 2);
        assert_eq!(db.relation_names()[1].1, "Dept");
    }

    #[test]
    fn insert_get_delete_through_db() {
        let db = Database::new();
        let rid = db.create_relation(Schema::new("R", ["a"])).unwrap();
        let tid = db.insert(rid, tuple![1]).unwrap();
        assert_eq!(db.get(rid, tid).unwrap(), tuple![1]);
        assert_eq!(db.relation_len(rid), 1);
        db.delete(rid, tid).unwrap();
        assert_eq!(db.relation_len(rid), 0);
        assert!(db.get(rid, tid).is_err());
    }

    #[test]
    fn delete_equal_by_content() {
        let db = Database::new();
        let rid = db.create_relation(Schema::new("R", ["a", "b"])).unwrap();
        db.insert(rid, tuple![1, 2]).unwrap();
        assert!(db.delete_equal(rid, &tuple![1, 2]).unwrap().is_some());
        assert!(db.delete_equal(rid, &tuple![1, 2]).unwrap().is_none());
    }

    #[test]
    fn bad_rel_id() {
        let db = Database::new();
        assert!(matches!(
            db.insert(RelId(9), tuple![1]),
            Err(Error::BadRelId(_))
        ));
        assert_eq!(db.relation_len(RelId(9)), 0);
    }

    #[test]
    fn parallel_inserts_to_distinct_relations() {
        let db = Database::new();
        let a = db.create_relation(Schema::new("A", ["x"])).unwrap();
        let b = db.create_relation(Schema::new("B", ["x"])).unwrap();
        std::thread::scope(|s| {
            let db = &db;
            s.spawn(move || {
                for i in 0..500i64 {
                    db.insert(a, tuple![i]).unwrap();
                }
            });
            s.spawn(move || {
                for i in 0..500i64 {
                    db.insert(b, tuple![i]).unwrap();
                }
            });
        });
        assert_eq!(db.total_tuples(), 1000);
    }
}
