//! ANALYZE-style statistics: per-relation cardinality, per-attribute
//! distinct-count estimates, and *observed* selection/join/anti-join
//! selectivities.
//!
//! The paper stores working memory and COND relations in a DBMS precisely
//! so that "database technology" (§3.2) — statistics-driven access-path
//! selection — applies to production matching. This module supplies those
//! statistics. Observed selectivities are maintained incrementally by the
//! query executor as a side effect of normal matching (no extra scans);
//! [`analyze`] combines them with a catalog sweep into a snapshot that
//! sits alongside the operation counters ([`OpSnapshot`]).

use std::collections::HashMap;

use obs::json::{Arr, Obj};
use parking_lot::Mutex;

use crate::database::Database;
use crate::relation::Relation;
use crate::schema::RelId;
use crate::stats::OpSnapshot;

/// Operator counts observed on one relation by the query executor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObservedCounts {
    /// Tuples considered by pure selections (no bound join values).
    pub selection_in: u64,
    /// Tuples qualifying those selections.
    pub selection_out: u64,
    /// Tuples considered by join probes (restriction augmented with
    /// values bound earlier in the plan).
    pub join_in: u64,
    /// Tuples qualifying those probes.
    pub join_out: u64,
    /// Tuples considered by batch-executor whole-relation scans (hash
    /// join build/probe input under the term restriction only). Kept in
    /// a separate channel: these scans run once per plan step rather
    /// than once per binding, so folding them into the selection channel
    /// would let hash-join runs skew the selectivities the planner
    /// shares with the nested-loop executor.
    pub scan_in: u64,
    /// Tuples qualifying those scans.
    pub scan_out: u64,
    /// Negated-term (anti-join) probes executed.
    pub anti_probes: u64,
    /// Anti-join probes that found a blocking tuple.
    pub anti_blocked: u64,
}

impl ObservedCounts {
    /// Observed selection selectivity, when any selection ran.
    pub fn selection_selectivity(&self) -> Option<f64> {
        (self.selection_in > 0).then(|| self.selection_out as f64 / self.selection_in as f64)
    }

    /// Observed join-probe selectivity, when any probe ran.
    pub fn join_selectivity(&self) -> Option<f64> {
        (self.join_in > 0).then(|| self.join_out as f64 / self.join_in as f64)
    }

    /// Observed batch-scan selectivity, when any scan ran.
    pub fn scan_selectivity(&self) -> Option<f64> {
        (self.scan_in > 0).then(|| self.scan_out as f64 / self.scan_in as f64)
    }

    /// Fraction of anti-join probes that blocked a binding.
    pub fn anti_block_rate(&self) -> Option<f64> {
        (self.anti_probes > 0).then(|| self.anti_blocked as f64 / self.anti_probes as f64)
    }

    fn to_json(self) -> String {
        let mut o = Obj::new()
            .u64("selection_in", self.selection_in)
            .u64("selection_out", self.selection_out)
            .u64("join_in", self.join_in)
            .u64("join_out", self.join_out)
            .u64("scan_in", self.scan_in)
            .u64("scan_out", self.scan_out)
            .u64("anti_probes", self.anti_probes)
            .u64("anti_blocked", self.anti_blocked);
        if let Some(s) = self.selection_selectivity() {
            o = o.f64("selection_selectivity", s);
        }
        if let Some(s) = self.join_selectivity() {
            o = o.f64("join_selectivity", s);
        }
        if let Some(s) = self.scan_selectivity() {
            o = o.f64("scan_selectivity", s);
        }
        if let Some(s) = self.anti_block_rate() {
            o = o.f64("anti_block_rate", s);
        }
        o.finish()
    }
}

/// Incrementally maintained observation registry, one per [`Database`]
/// (shared via [`Database::analyze_registry`]).
#[derive(Debug, Default)]
pub struct AnalyzeRegistry {
    observed: Mutex<HashMap<u32, ObservedCounts>>,
    /// Memoized exact distinct counts: (relation, attr) → (write version
    /// the count was computed at, count). Invalidated by comparing against
    /// [`Relation::version`], so writers never have to notify the cache.
    distinct_cache: Mutex<HashMap<(u32, usize), (u64, usize)>>,
}

impl AnalyzeRegistry {
    /// Create a new, empty instance.
    pub fn new() -> Self {
        AnalyzeRegistry::default()
    }

    /// Record one selection (`joined == false`) or join probe
    /// (`joined == true`) over `rel`: `input` tuples considered,
    /// `output` qualifying.
    pub fn observe(&self, rel: RelId, joined: bool, input: u64, output: u64) {
        let mut map = self.observed.lock();
        let c = map.entry(rel.0).or_default();
        if joined {
            c.join_in += input;
            c.join_out += output;
        } else {
            c.selection_in += input;
            c.selection_out += output;
        }
    }

    /// Record one batch-executor whole-relation scan over `rel` (hash
    /// join build/probe input). Separate from [`AnalyzeRegistry::observe`]
    /// so these once-per-step scans don't distort the per-probe selection
    /// selectivity the planner's `term_cardinality` relies on.
    pub fn observe_scan(&self, rel: RelId, input: u64, output: u64) {
        let mut map = self.observed.lock();
        let c = map.entry(rel.0).or_default();
        c.scan_in += input;
        c.scan_out += output;
    }

    /// Record one anti-join (negated term) probe over `rel`.
    pub fn observe_anti(&self, rel: RelId, blocked: bool) {
        let mut map = self.observed.lock();
        let c = map.entry(rel.0).or_default();
        c.anti_probes += 1;
        c.anti_blocked += u64::from(blocked);
    }

    /// The counts observed so far on `rel` (zeros when never touched).
    pub fn observed(&self, rel: RelId) -> ObservedCounts {
        self.observed
            .lock()
            .get(&rel.0)
            .copied()
            .unwrap_or_default()
    }

    /// Exact distinct count of `attr` in `r`, memoized per
    /// (relation, attr) and recomputed only when the relation's write
    /// version has moved — repeated EXPLAIN/ANALYZE sweeps over a quiet
    /// relation cost O(1) instead of a full scan each.
    pub fn distinct_exact(&self, r: &Relation, attr: usize) -> usize {
        let key = (r.id().0, attr);
        let version = r.version();
        if let Some(&(ver, n)) = self.distinct_cache.lock().get(&key) {
            if ver == version {
                return n;
            }
        }
        // Diagnostic path: an unreadable page degrades to 0 distincts
        // rather than failing the sweep.
        let n = r.distinct_exact(attr).unwrap_or(0);
        self.distinct_cache.lock().insert(key, (version, n));
        n
    }

    /// Forget everything (between experiment runs).
    pub fn reset(&self) {
        self.observed.lock().clear();
        self.distinct_cache.lock().clear();
    }
}

/// Distinct-count estimate for one attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrStats {
    /// Attribute name.
    pub name: String,
    /// Estimated number of distinct values.
    pub distinct: usize,
}

/// Statistics for one relation.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationProfile {
    /// The relation.
    pub rel: RelId,
    /// Its name.
    pub name: String,
    /// Live tuple count.
    pub cardinality: usize,
    /// Approximate bytes.
    pub bytes: usize,
    /// Per-attribute distinct estimates, in schema order.
    pub attrs: Vec<AttrStats>,
    /// Selectivities observed by the executor.
    pub observed: ObservedCounts,
}

impl RelationProfile {
    fn to_json(&self) -> String {
        let mut attrs = Arr::new();
        for a in &self.attrs {
            attrs = attrs.raw(
                &Obj::new()
                    .str("name", &a.name)
                    .usize("distinct", a.distinct)
                    .finish(),
            );
        }
        Obj::new()
            .u64("rel", self.rel.0 as u64)
            .str("name", &self.name)
            .usize("cardinality", self.cardinality)
            .usize("bytes", self.bytes)
            .raw("attrs", &attrs.finish())
            .raw("observed", &self.observed.to_json())
            .finish()
    }
}

/// A point-in-time statistics snapshot of the whole database, pairing the
/// relation profiles with the logical-operation counters.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeSnapshot {
    /// One profile per relation, in id order.
    pub relations: Vec<RelationProfile>,
    /// The operation counters at snapshot time.
    pub ops: OpSnapshot,
}

impl AnalyzeSnapshot {
    /// Render as one JSON object (a `RunReport` section).
    pub fn to_json(&self) -> String {
        let mut rels = Arr::new();
        for r in &self.relations {
            rels = rels.raw(&r.to_json());
        }
        let ops = Obj::new()
            .u64("tuples_read", self.ops.tuples_read)
            .u64("tuples_inserted", self.ops.tuples_inserted)
            .u64("tuples_deleted", self.ops.tuples_deleted)
            .u64("index_probes", self.ops.index_probes)
            .u64("scans", self.ops.scans)
            .u64("pred_evals", self.ops.pred_evals)
            .u64("logical_io", self.ops.logical_io())
            .u64("page_reads", self.ops.page_reads)
            .u64("page_writes", self.ops.page_writes)
            .u64("pool_hits", self.ops.pool_hits)
            .u64("pool_evictions", self.ops.pool_evictions)
            .finish();
        Obj::new()
            .raw("relations", &rels.finish())
            .raw("ops", &ops)
            .finish()
    }
}

/// Sweep the catalog and combine it with the observed selectivities into
/// an [`AnalyzeSnapshot`] — the `ANALYZE` statement of this DBMS.
pub fn analyze(db: &Database) -> AnalyzeSnapshot {
    let registry = db.analyze_registry();
    let relations = db
        .relation_names()
        .into_iter()
        .map(|(rid, name)| {
            let (cardinality, bytes, attrs) = db
                .read(rid, |r| {
                    let attrs = r
                        .schema()
                        .attrs()
                        .iter()
                        .enumerate()
                        .map(|(i, a)| AttrStats {
                            name: a.name.to_string(),
                            distinct: registry.distinct_exact(r, i),
                        })
                        .collect();
                    (r.len(), r.approx_bytes().unwrap_or(0), attrs)
                })
                .expect("relation exists");
            RelationProfile {
                rel: rid,
                name,
                cardinality,
                bytes,
                attrs,
                observed: registry.observed(rid),
            }
        })
        .collect();
    AnalyzeSnapshot {
        relations,
        ops: db.stats().snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::{Restriction, Selection};
    use crate::query::{ConjunctiveQuery, JoinPred, QueryExecutor, QueryTerm};
    use crate::schema::Schema;
    use crate::tuple;

    fn demo_db() -> (Database, RelId, RelId) {
        let db = Database::new();
        let item = db.create_relation(Schema::new("Item", ["n", "v"])).unwrap();
        let done = db.create_relation(Schema::new("Done", ["n"])).unwrap();
        for i in 0..10i64 {
            db.insert(item, tuple![i, i % 3]).unwrap();
        }
        db.insert(done, tuple![0]).unwrap();
        (db, item, done)
    }

    #[test]
    fn profiles_cardinality_and_distinct_counts() {
        let (db, item, _) = demo_db();
        let snap = analyze(&db);
        assert_eq!(snap.relations.len(), 2);
        let ip = &snap.relations[item.index()];
        assert_eq!(ip.name, "Item");
        assert_eq!(ip.cardinality, 10);
        assert_eq!(ip.attrs[0].name, "n");
        assert_eq!(ip.attrs[0].distinct, 10);
        assert_eq!(ip.attrs[1].distinct, 3);
        assert!(snap.ops.tuples_inserted >= 11);
    }

    #[test]
    fn observed_selectivities_accumulate_and_reset() {
        let (db, item, done) = demo_db();
        let q = ConjunctiveQuery::new(
            vec![
                QueryTerm::new(item, Restriction::new(vec![Selection::eq(1, 0)])),
                QueryTerm::negated(done, Restriction::default()),
            ],
            vec![JoinPred::eq(0, 0, 1, 0)],
        );
        let res = QueryExecutor::new(&db).exec(&q, None).unwrap();
        assert_eq!(res.len(), 3, "n=0 is Done; n=3,6,9 survive");
        let obs = db.analyze_registry().observed(item);
        assert_eq!(obs.selection_in, 10);
        assert_eq!(obs.selection_out, 4, "v=0 for n in {{0,3,6,9}}");
        assert_eq!(obs.selection_selectivity(), Some(0.4));
        let done_obs = db.analyze_registry().observed(done);
        assert_eq!(done_obs.anti_probes, 4);
        assert_eq!(done_obs.anti_blocked, 1);
        db.analyze_registry().reset();
        assert_eq!(
            db.analyze_registry().observed(item),
            ObservedCounts::default()
        );
    }

    #[test]
    fn snapshot_renders_json() {
        let (db, _, _) = demo_db();
        let json = analyze(&db).to_json();
        assert!(json.starts_with("{\"relations\":["), "{json}");
        assert!(json.contains("\"name\":\"Item\""), "{json}");
        assert!(json.contains("\"distinct\":10"), "{json}");
        assert!(json.contains("\"ops\":{"), "{json}");
        assert!(json.contains("\"logical_io\":"), "{json}");
    }
}
