//! Selection predicates over single relations.
//!
//! These are the "one-input node" tests of the Rete network: conditions of
//! the form `attribute op constant` (§3.1 of the paper), plus conjunctions
//! of them (`Restriction`).

use std::fmt;

use crate::schema::AttrIdx;
use crate::tuple::Tuple;
use crate::value::Value;

/// Comparison operators supported by condition elements,
/// `op ∈ {<, >, <=, >=, =, <>}` as listed in §3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CompOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
}

impl CompOp {
    /// Apply the operator to two values using the total order on [`Value`].
    pub fn eval(self, left: &Value, right: &Value) -> bool {
        match self {
            CompOp::Eq => left == right,
            CompOp::Ne => left != right,
            CompOp::Lt => left < right,
            CompOp::Le => left <= right,
            CompOp::Gt => left > right,
            CompOp::Ge => left >= right,
        }
    }

    /// The operator with operand sides swapped: `a op b == b op.flip() a`.
    pub fn flip(self) -> CompOp {
        match self {
            CompOp::Eq => CompOp::Eq,
            CompOp::Ne => CompOp::Ne,
            CompOp::Lt => CompOp::Gt,
            CompOp::Le => CompOp::Ge,
            CompOp::Gt => CompOp::Lt,
            CompOp::Ge => CompOp::Le,
        }
    }

    /// Rough fraction of a domain satisfying the operator, for planning.
    pub fn default_selectivity(self) -> f64 {
        match self {
            CompOp::Eq => 0.05,
            CompOp::Ne => 0.95,
            _ => 0.33,
        }
    }
}

impl fmt::Display for CompOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompOp::Eq => "=",
            CompOp::Ne => "<>",
            CompOp::Lt => "<",
            CompOp::Le => "<=",
            CompOp::Gt => ">",
            CompOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A single-attribute test: `tuple[attr] op constant`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Selection {
    /// The attribute (column) index.
    pub attr: AttrIdx,
    /// The comparison operator.
    pub op: CompOp,
    /// The constant operand.
    pub value: Value,
}

impl Selection {
    /// Create a new, empty instance.
    pub fn new(attr: AttrIdx, op: CompOp, value: impl Into<Value>) -> Self {
        Selection {
            attr,
            op,
            value: value.into(),
        }
    }

    /// Equality shorthand — the overwhelmingly common case in OPS5 programs.
    pub fn eq(attr: AttrIdx, value: impl Into<Value>) -> Self {
        Selection::new(attr, CompOp::Eq, value)
    }

    /// Evaluate against a tuple. Out-of-range attributes never match.
    pub fn matches(&self, tuple: &Tuple) -> bool {
        tuple
            .get(self.attr)
            .is_some_and(|v| self.op.eval(v, &self.value))
    }
}

impl fmt::Display for Selection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} {}", self.attr, self.op, self.value)
    }
}

/// An intra-tuple test comparing two attributes of the same tuple:
/// `tuple[left] op tuple[right]`. OPS5 generates these when a variable
/// occurs twice inside one condition element, e.g.
/// `(Emp ^salary <S> ^budget {> <S>})`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AttrTest {
    /// Left attribute (compared against `right`).
    pub left: AttrIdx,
    /// The comparison operator.
    pub op: CompOp,
    /// Right attribute.
    pub right: AttrIdx,
}

impl AttrTest {
    /// Create a new, empty instance.
    pub fn new(left: AttrIdx, op: CompOp, right: AttrIdx) -> Self {
        AttrTest { left, op, right }
    }

    /// Evaluate against a tuple; out-of-range attributes never match.
    pub fn matches(&self, tuple: &Tuple) -> bool {
        match (tuple.get(self.left), tuple.get(self.right)) {
            (Some(a), Some(b)) => self.op.eval(a, b),
            _ => false,
        }
    }
}

impl fmt::Display for AttrTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} [{}]", self.left, self.op, self.right)
    }
}

/// A conjunction of selections — the variable-free part of one condition
/// element — plus optional intra-tuple attribute tests.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Restriction {
    /// Single-attribute tests (conjunctive).
    pub tests: Vec<Selection>,
    /// Intra-tuple attribute-vs-attribute tests.
    pub attr_tests: Vec<AttrTest>,
}

impl Restriction {
    /// Create a new, empty instance.
    pub fn new(tests: Vec<Selection>) -> Self {
        Restriction {
            tests,
            attr_tests: Vec::new(),
        }
    }

    /// Add intra-tuple attribute-vs-attribute tests.
    pub fn with_attr_tests(mut self, attr_tests: Vec<AttrTest>) -> Self {
        self.attr_tests = attr_tests;
        self
    }

    /// True when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.tests.is_empty() && self.attr_tests.is_empty()
    }

    /// Does the tuple satisfy every test of the conjunction?
    pub fn matches(&self, tuple: &Tuple) -> bool {
        self.tests.iter().all(|t| t.matches(tuple))
            && self.attr_tests.iter().all(|t| t.matches(tuple))
    }

    /// Combined selectivity estimate assuming independence.
    pub fn selectivity(&self) -> f64 {
        self.tests
            .iter()
            .map(|t| t.op.default_selectivity())
            .chain(self.attr_tests.iter().map(|t| t.op.default_selectivity()))
            .product()
    }

    /// The equality tests, which index lookups can serve.
    pub fn equalities(&self) -> impl Iterator<Item = &Selection> {
        self.tests.iter().filter(|t| t.op == CompOp::Eq)
    }
}

impl fmt::Display for Restriction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "true");
        }
        let mut first = true;
        for t in &self.tests {
            if !first {
                write!(f, " ∧ ")?;
            }
            first = false;
            write!(f, "{t}")?;
        }
        for t in &self.attr_tests {
            if !first {
                write!(f, " ∧ ")?;
            }
            first = false;
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn comp_op_eval() {
        let a = Value::Int(3);
        let b = Value::Int(5);
        assert!(CompOp::Lt.eval(&a, &b));
        assert!(CompOp::Le.eval(&a, &a));
        assert!(CompOp::Ne.eval(&a, &b));
        assert!(!CompOp::Eq.eval(&a, &b));
        assert!(CompOp::Gt.eval(&b, &a));
        assert!(CompOp::Ge.eval(&b, &b));
    }

    #[test]
    fn flip_is_involution_and_correct() {
        for op in [
            CompOp::Eq,
            CompOp::Ne,
            CompOp::Lt,
            CompOp::Le,
            CompOp::Gt,
            CompOp::Ge,
        ] {
            assert_eq!(op.flip().flip(), op);
            let a = Value::Int(1);
            let b = Value::Int(2);
            assert_eq!(op.eval(&a, &b), op.flip().eval(&b, &a));
        }
    }

    #[test]
    fn selection_matches() {
        let t = tuple!["Mike", 32, 5000];
        assert!(Selection::eq(0, "Mike").matches(&t));
        assert!(Selection::new(1, CompOp::Ge, 30).matches(&t));
        assert!(!Selection::new(2, CompOp::Lt, 5000).matches(&t));
        // out-of-range attribute
        assert!(!Selection::eq(7, 1).matches(&t));
    }

    #[test]
    fn restriction_conjunction() {
        let r = Restriction::new(vec![
            Selection::eq(0, "Dept"),
            Selection::new(1, CompOp::Gt, 10),
        ]);
        assert!(r.matches(&tuple!["Dept", 11]));
        assert!(!r.matches(&tuple!["Dept", 10]));
        assert!(!r.matches(&tuple!["Emp", 11]));
        assert!(Restriction::default().matches(&tuple![1]));
    }

    #[test]
    fn attr_tests_compare_within_tuple() {
        // salary < budget
        let r = Restriction::new(vec![]).with_attr_tests(vec![AttrTest::new(0, CompOp::Lt, 1)]);
        assert!(r.matches(&tuple![100, 200]));
        assert!(!r.matches(&tuple![300, 200]));
        assert!(!r.is_empty());
        assert_eq!(r.to_string(), "[0] < [1]");
        // out-of-range attr never matches
        let bad = Restriction::new(vec![]).with_attr_tests(vec![AttrTest::new(0, CompOp::Eq, 9)]);
        assert!(!bad.matches(&tuple![1, 2]));
    }

    #[test]
    fn display_forms() {
        let r = Restriction::new(vec![
            Selection::eq(2, "Toy"),
            Selection::new(3, CompOp::Le, 1),
        ]);
        assert_eq!(r.to_string(), "[2] = Toy ∧ [3] <= 1");
        assert_eq!(Restriction::default().to_string(), "true");
    }
}
