//! Relation schemas and catalog identifiers.

use std::fmt;
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::value::ValueType;

/// Identifier of a relation inside a [`crate::Database`] catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(pub u32);

impl RelId {
    /// The id as a catalog vector index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rel#{}", self.0)
    }
}

/// Position of an attribute within a schema (0-based column index).
pub type AttrIdx = usize;

/// One attribute: a name plus a declared type.
///
/// The storage layer is dynamically typed — OPS5 `literalize` declares
/// attribute *names* only — so `ValueType` here is advisory: it records the
/// dominant type for planning/statistics but tuples may store any value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// The source-level name.
    pub name: Arc<str>,
    /// Advisory declared type (storage stays dynamically typed).
    pub ty: Option<ValueType>,
}

impl Attribute {
    /// Create a new, empty instance.
    pub fn new(name: impl AsRef<str>) -> Self {
        Attribute {
            name: Arc::from(name.as_ref()),
            ty: None,
        }
    }

    /// An attribute with an advisory declared type.
    pub fn typed(name: impl AsRef<str>, ty: ValueType) -> Self {
        Attribute {
            name: Arc::from(name.as_ref()),
            ty: Some(ty),
        }
    }
}

/// The schema of a relation: its name and ordered attribute list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    name: Arc<str>,
    attrs: Vec<Attribute>,
}

impl Schema {
    /// Create a schema from a relation name and attribute names.
    ///
    /// This mirrors OPS5's `(literalize Emp name age salary dno)`.
    pub fn new<S: AsRef<str>>(
        name: impl AsRef<str>,
        attr_names: impl IntoIterator<Item = S>,
    ) -> Self {
        Schema {
            name: Arc::from(name.as_ref()),
            attrs: attr_names.into_iter().map(Attribute::new).collect(),
        }
    }

    /// Create a schema with explicit attributes.
    pub fn with_attrs(name: impl AsRef<str>, attrs: Vec<Attribute>) -> Self {
        Schema {
            name: Arc::from(name.as_ref()),
            attrs,
        }
    }

    /// The name of this item.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes (tuple arity).
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// The ordered attribute list.
    pub fn attrs(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Name of the attribute at `idx`.
    pub fn attr_name(&self, idx: AttrIdx) -> Result<&str> {
        self.attrs
            .get(idx)
            .map(|a| a.name.as_ref())
            .ok_or_else(|| Error::BadAttrIndex {
                relation: self.name.to_string(),
                index: idx,
            })
    }

    /// Resolve an attribute name (case sensitive) to its column index.
    pub fn attr_index(&self, name: &str) -> Result<AttrIdx> {
        self.attrs
            .iter()
            .position(|a| a.name.as_ref() == name)
            .ok_or_else(|| Error::UnknownAttribute {
                relation: self.name.to_string(),
                attribute: name.to_string(),
            })
    }

    /// True if the schema declares an attribute with this name.
    pub fn has_attr(&self, name: &str) -> bool {
        self.attrs.iter().any(|a| a.name.as_ref() == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literalize_style_schema() {
        let s = Schema::new("Emp", ["name", "age", "salary", "dno"]);
        assert_eq!(s.name(), "Emp");
        assert_eq!(s.arity(), 4);
        assert_eq!(s.attr_index("salary").unwrap(), 2);
        assert_eq!(s.attr_name(3).unwrap(), "dno");
        assert!(s.has_attr("age"));
        assert!(!s.has_attr("floor"));
    }

    #[test]
    fn unknown_attribute_errors() {
        let s = Schema::new("Dept", ["dno", "dname"]);
        let err = s.attr_index("floor").unwrap_err();
        assert!(matches!(err, Error::UnknownAttribute { .. }));
        assert!(s.attr_name(9).is_err());
    }
}
