//! Undo logging for transaction rollback.

use crate::schema::RelId;
use crate::tuple::{Tuple, TupleId};

/// One undoable physical action.
#[derive(Debug, Clone)]
pub enum Undo {
    /// The transaction inserted `tid` into `rel`; undo by deleting it.
    Insert { rel: RelId, tid: TupleId },
    /// The transaction deleted `tuple` from `rel`; undo by reinserting.
    ///
    /// Reinsertion may assign a different tuple id; that is acceptable
    /// because ids are never exposed across transaction boundaries (the
    /// conflict set stores matching patterns, not tuple ids — §5.1).
    Delete { rel: RelId, tuple: Tuple },
}

/// An in-memory undo log, applied last-in-first-out on abort.
#[derive(Debug, Default)]
pub struct UndoLog {
    records: Vec<Undo>,
}

impl UndoLog {
    /// Create a new, empty instance.
    pub fn new() -> Self {
        UndoLog::default()
    }

    /// Append an undo record.
    pub fn record(&mut self, undo: Undo) {
        self.records.push(undo);
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Drain records newest-first for rollback.
    pub fn drain_reverse(&mut self) -> impl Iterator<Item = Undo> + '_ {
        self.records.drain(..).rev()
    }

    /// Drop every record (on commit).
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn drain_reverse_is_lifo() {
        let mut log = UndoLog::new();
        log.record(Undo::Insert {
            rel: RelId(0),
            tid: TupleId::new(1, 0),
        });
        log.record(Undo::Delete {
            rel: RelId(1),
            tuple: tuple![1],
        });
        assert_eq!(log.len(), 2);
        let drained: Vec<_> = log.drain_reverse().collect();
        assert!(matches!(drained[0], Undo::Delete { .. }));
        assert!(matches!(drained[1], Undo::Insert { .. }));
        assert!(log.is_empty());
    }
}
