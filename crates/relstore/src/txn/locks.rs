//! Two-phase-locking lock manager.
//!
//! §5.2 of the paper requires read locks on retrieved WM tuples, write
//! locks for RHS updates, **relation-granularity** read locks for negated
//! condition elements (negative dependence), and write locks on the
//! relation for insertions (so negatively dependent transactions are
//! delayed). Two granularities are therefore supported; a relation-level
//! request conflicts with tuple-level locks of the same relation held by
//! other transactions (computed directly instead of via intention modes —
//! exact at our scale).
//!
//! Deadlocks — which §5.2 explicitly predicts ("this could lead to a
//! deadlock of the two transactions") — are detected on a waits-for graph;
//! the *requesting* transaction is the victim, which guarantees progress.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::time::{Duration, Instant};

use obs::Event;
use parking_lot::{Condvar, Mutex};

use crate::error::{Error, Result};
use crate::schema::RelId;
use crate::stats::Stats;
use crate::tuple::TupleId;
use crate::txn::TxnId;

/// What is being locked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockTarget {
    /// The whole relation (covers all its tuples).
    Relation(RelId),
    /// One specific tuple.
    Tuple(RelId, TupleId),
}

impl LockTarget {
    fn rel(&self) -> RelId {
        match self {
            LockTarget::Relation(r) | LockTarget::Tuple(r, _) => *r,
        }
    }

    /// Trace-friendly rendering ("rel3" or "rel3[t9]").
    fn describe(&self) -> String {
        match self {
            LockTarget::Relation(r) => format!("rel{}", r.0),
            LockTarget::Tuple(r, t) => format!("rel{}[{t}]", r.0),
        }
    }

    /// Do two targets overlap in the locking hierarchy? A relation-level
    /// target covers every tuple of that relation.
    fn overlaps(&self, other: &LockTarget) -> bool {
        if self.rel() != other.rel() {
            return false;
        }
        match (self, other) {
            (LockTarget::Tuple(_, ta), LockTarget::Tuple(_, tb)) => ta == tb,
            _ => true,
        }
    }
}

/// Lock mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Read lock (compatible with other reads).
    Shared,
    /// Write lock (conflicts with everything).
    Exclusive,
}

impl LockMode {
    fn compatible(self, other: LockMode) -> bool {
        matches!((self, other), (LockMode::Shared, LockMode::Shared))
    }

    fn as_str(self) -> &'static str {
        match self {
            LockMode::Shared => "shared",
            LockMode::Exclusive => "exclusive",
        }
    }
}

impl fmt::Display for LockMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[derive(Debug, Default)]
struct Tables {
    /// target → holders (txn → strongest mode held).
    holders: HashMap<LockTarget, HashMap<TxnId, LockMode>>,
    /// txn → targets it holds (for release_all).
    holdings: HashMap<TxnId, HashSet<LockTarget>>,
    /// txn → the request it is currently blocked on.
    waiting: HashMap<TxnId, (LockTarget, LockMode)>,
}

impl Tables {
    /// Transactions (other than `me`) whose held locks conflict with a
    /// request for (`target`, `mode`).
    fn conflicting_holders(&self, me: TxnId, target: LockTarget, mode: LockMode) -> Vec<TxnId> {
        let mut out = Vec::new();
        for (held_target, holders) in &self.holders {
            if !held_target.overlaps(&target) {
                continue;
            }
            for (&txn, &held_mode) in holders {
                if txn != me && !(mode.compatible(held_mode)) {
                    out.push(txn);
                }
            }
        }
        out
    }

    /// Would granting (`target`, `mode`) to `me` be allowed right now?
    fn grantable(&self, me: TxnId, target: LockTarget, mode: LockMode) -> bool {
        self.conflicting_holders(me, target, mode).is_empty()
    }

    /// Detect whether `start` participates in a waits-for cycle.
    fn in_cycle(&self, start: TxnId) -> bool {
        // Edges: waiter → conflicting holders of its blocked request.
        let mut queue = VecDeque::new();
        let mut seen = HashSet::new();
        // Seed with everyone `start` waits on.
        if let Some(&(target, mode)) = self.waiting.get(&start) {
            for h in self.conflicting_holders(start, target, mode) {
                queue.push_back(h);
            }
        }
        while let Some(t) = queue.pop_front() {
            if t == start {
                return true;
            }
            if !seen.insert(t) {
                continue;
            }
            if let Some(&(target, mode)) = self.waiting.get(&t) {
                for h in self.conflicting_holders(t, target, mode) {
                    queue.push_back(h);
                }
            }
        }
        false
    }

    /// Render the waits-for graph as "; "-joined edges, one per
    /// (waiter, conflicting holder) pair:
    /// `t<waiter>->t<holder> <mode> <target>`. Edges are sorted so the
    /// snapshot is stable regardless of hash iteration order.
    fn wait_for_edges(&self) -> String {
        let mut edges = Vec::new();
        for (&waiter, &(target, mode)) in &self.waiting {
            for holder in self.conflicting_holders(waiter, target, mode) {
                edges.push(format!(
                    "t{}->t{} {} {}",
                    waiter.0,
                    holder.0,
                    mode.as_str(),
                    target.describe()
                ));
            }
        }
        edges.sort();
        edges.join("; ")
    }

    fn grant(&mut self, me: TxnId, target: LockTarget, mode: LockMode) {
        let entry = self.holders.entry(target).or_default();
        let slot = entry.entry(me).or_insert(mode);
        if mode == LockMode::Exclusive {
            *slot = LockMode::Exclusive; // upgrade
        }
        self.holdings.entry(me).or_default().insert(target);
    }
}

/// The lock manager. Shared by all transactions of a database.
#[derive(Debug)]
pub struct LockManager {
    tables: Mutex<Tables>,
    cv: Condvar,
    stats: Stats,
    /// Contention tracing. Only consulted on the blocking path, so the
    /// uncontended fast path costs nothing extra.
    tracer: Mutex<obs::Tracer>,
}

impl LockManager {
    /// Create a new, empty instance.
    pub fn new(stats: Stats) -> Self {
        LockManager {
            tables: Mutex::new(Tables::default()),
            cv: Condvar::new(),
            stats,
            tracer: Mutex::new(obs::Tracer::disabled()),
        }
    }

    /// Install a tracing handle; lock waits, grants after a wait, and
    /// deadlock victims are emitted through it.
    pub fn set_tracer(&self, tracer: obs::Tracer) {
        *self.tracer.lock() = tracer;
    }

    /// Acquire a lock, blocking until granted or until this transaction is
    /// chosen as a deadlock victim (in which case the caller must abort).
    pub fn acquire(&self, txn: TxnId, target: LockTarget, mode: LockMode) -> Result<()> {
        let mut tables = self.tables.lock();
        // Fast path: already holding a sufficient lock.
        if let Some(holders) = tables.holders.get(&target) {
            if let Some(&held) = holders.get(&txn) {
                if held == LockMode::Exclusive || mode == LockMode::Shared {
                    return Ok(());
                }
            }
        }
        // Wait bookkeeping starts lazily: `blocked_since` is only set (and
        // the tracer only consulted) once the request actually blocks.
        let mut blocked_since: Option<(Instant, obs::Tracer)> = None;
        loop {
            if tables.grantable(txn, target, mode) {
                tables.grant(txn, target, mode);
                tables.waiting.remove(&txn);
                self.stats.lock_acquired();
                if let Some((start, tracer)) = blocked_since {
                    let wait_ns = start.elapsed().as_nanos() as u64;
                    self.stats.lock_waited(wait_ns);
                    tracer.emit(|| Event::LockAcquire {
                        txn: txn.0,
                        target: target.describe(),
                        mode: mode.as_str(),
                        wait_ns,
                    });
                    if let Some(m) = tracer.metrics() {
                        m.record_lock_wait(wait_ns);
                    }
                }
                return Ok(());
            }
            if blocked_since.is_none() {
                let tracer = self.tracer.lock().clone();
                tracer.emit(|| Event::LockWait {
                    txn: txn.0,
                    target: target.describe(),
                    mode: mode.as_str(),
                });
                blocked_since = Some((Instant::now(), tracer));
            }
            tables.waiting.insert(txn, (target, mode));
            if tables.in_cycle(txn) {
                // Snapshot the waits-for graph *before* removing the victim
                // from the wait table, so the cycle it closed is visible.
                let edges = tables.wait_for_edges();
                tables.waiting.remove(&txn);
                self.stats.abort();
                if let Some((start, tracer)) = blocked_since {
                    let wait_ns = start.elapsed().as_nanos() as u64;
                    self.stats.lock_waited(wait_ns);
                    if let Some(m) = tracer.metrics() {
                        m.record_lock_wait(wait_ns);
                        m.record_deadlock();
                    }
                    tracer.emit(|| Event::DeadlockGraph {
                        victim: txn.0,
                        edges: edges.clone(),
                    });
                    tracer.emit(|| Event::DeadlockVictim { txn: txn.0 });
                }
                return Err(Error::Deadlock(txn));
            }
            // Re-check periodically: a competing waiter may have formed a
            // cycle after we went to sleep.
            self.cv.wait_for(&mut tables, Duration::from_millis(10));
        }
    }

    /// Try to acquire without blocking.
    pub fn try_acquire(&self, txn: TxnId, target: LockTarget, mode: LockMode) -> bool {
        let mut tables = self.tables.lock();
        if tables.grantable(txn, target, mode) {
            tables.grant(txn, target, mode);
            self.stats.lock_acquired();
            true
        } else {
            false
        }
    }

    /// Does `txn` hold (at least) `mode` on `target`?
    pub fn holds(&self, txn: TxnId, target: LockTarget, mode: LockMode) -> bool {
        let tables = self.tables.lock();
        tables
            .holders
            .get(&target)
            .and_then(|h| h.get(&txn))
            .is_some_and(|&held| held == LockMode::Exclusive || mode == LockMode::Shared)
    }

    /// Release every lock held by `txn` (commit or abort — strict 2PL).
    pub fn release_all(&self, txn: TxnId) {
        let mut tables = self.tables.lock();
        tables.waiting.remove(&txn);
        if let Some(targets) = tables.holdings.remove(&txn) {
            for t in targets {
                if let Some(holders) = tables.holders.get_mut(&t) {
                    holders.remove(&txn);
                    if holders.is_empty() {
                        tables.holders.remove(&t);
                    }
                }
            }
        }
        self.cv.notify_all();
    }

    /// Number of currently held (txn, target) lock pairs.
    pub fn held_count(&self) -> usize {
        self.tables.lock().holdings.values().map(HashSet::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(n: u32) -> TupleId {
        TupleId::new(n, 0)
    }

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::new(Stats::new());
        let t = LockTarget::Tuple(RelId(0), tid(1));
        lm.acquire(TxnId(1), t, LockMode::Shared).unwrap();
        lm.acquire(TxnId(2), t, LockMode::Shared).unwrap();
        assert!(lm.holds(TxnId(1), t, LockMode::Shared));
        assert!(lm.holds(TxnId(2), t, LockMode::Shared));
    }

    #[test]
    fn exclusive_blocks_try_acquire() {
        let lm = LockManager::new(Stats::new());
        let t = LockTarget::Tuple(RelId(0), tid(1));
        lm.acquire(TxnId(1), t, LockMode::Exclusive).unwrap();
        assert!(!lm.try_acquire(TxnId(2), t, LockMode::Shared));
        lm.release_all(TxnId(1));
        assert!(lm.try_acquire(TxnId(2), t, LockMode::Shared));
    }

    #[test]
    fn relation_lock_covers_tuples() {
        let lm = LockManager::new(Stats::new());
        lm.acquire(
            TxnId(1),
            LockTarget::Relation(RelId(3)),
            LockMode::Exclusive,
        )
        .unwrap();
        assert!(!lm.try_acquire(
            TxnId(2),
            LockTarget::Tuple(RelId(3), tid(9)),
            LockMode::Shared
        ));
        // A different relation is unaffected.
        assert!(lm.try_acquire(
            TxnId(2),
            LockTarget::Tuple(RelId(4), tid(9)),
            LockMode::Shared
        ));
    }

    #[test]
    fn tuple_lock_blocks_relation_lock() {
        let lm = LockManager::new(Stats::new());
        lm.acquire(
            TxnId(1),
            LockTarget::Tuple(RelId(3), tid(1)),
            LockMode::Exclusive,
        )
        .unwrap();
        assert!(!lm.try_acquire(TxnId(2), LockTarget::Relation(RelId(3)), LockMode::Shared));
    }

    #[test]
    fn shared_relation_and_shared_tuple_coexist() {
        let lm = LockManager::new(Stats::new());
        lm.acquire(TxnId(1), LockTarget::Relation(RelId(3)), LockMode::Shared)
            .unwrap();
        assert!(lm.try_acquire(
            TxnId(2),
            LockTarget::Tuple(RelId(3), tid(1)),
            LockMode::Shared
        ));
    }

    #[test]
    fn upgrade_when_sole_holder() {
        let lm = LockManager::new(Stats::new());
        let t = LockTarget::Tuple(RelId(0), tid(1));
        lm.acquire(TxnId(1), t, LockMode::Shared).unwrap();
        lm.acquire(TxnId(1), t, LockMode::Exclusive).unwrap();
        assert!(lm.holds(TxnId(1), t, LockMode::Exclusive));
        assert!(!lm.try_acquire(TxnId(2), t, LockMode::Shared));
    }

    #[test]
    fn reacquire_held_lock_is_noop() {
        let lm = LockManager::new(Stats::new());
        let t = LockTarget::Relation(RelId(0));
        lm.acquire(TxnId(1), t, LockMode::Exclusive).unwrap();
        lm.acquire(TxnId(1), t, LockMode::Shared).unwrap();
        lm.acquire(TxnId(1), t, LockMode::Exclusive).unwrap();
        lm.release_all(TxnId(1));
        assert_eq!(lm.held_count(), 0);
    }

    #[test]
    fn deadlock_detected() {
        let lm = std::sync::Arc::new(LockManager::new(Stats::new()));
        let a = LockTarget::Tuple(RelId(0), tid(1));
        let b = LockTarget::Tuple(RelId(0), tid(2));
        lm.acquire(TxnId(1), a, LockMode::Exclusive).unwrap();
        lm.acquire(TxnId(2), b, LockMode::Exclusive).unwrap();

        let lm2 = lm.clone();
        let h = std::thread::spawn(move || {
            // Txn 2 blocks waiting for `a`.
            let res = lm2.acquire(TxnId(2), a, LockMode::Exclusive);
            lm2.release_all(TxnId(2));
            res
        });
        std::thread::sleep(Duration::from_millis(30));
        // Txn 1 requesting `b` closes the cycle; one of the two must abort.
        let r1 = lm.acquire(TxnId(1), b, LockMode::Exclusive);
        lm.release_all(TxnId(1));
        let r2 = h.join().unwrap();
        assert!(
            r1.is_err() || r2.is_err(),
            "at least one transaction must be a deadlock victim"
        );
        assert!(
            r1.is_ok() || r2.is_ok(),
            "at most one transaction should be aborted in a two-cycle"
        );
    }

    #[test]
    fn deadlock_emits_wait_for_graph() {
        let lm = std::sync::Arc::new(LockManager::new(Stats::new()));
        let tracer = obs::Tracer::new(obs::Sink::ring(256));
        lm.set_tracer(tracer.clone());
        let a = LockTarget::Tuple(RelId(0), tid(1));
        let b = LockTarget::Tuple(RelId(0), tid(2));
        lm.acquire(TxnId(1), a, LockMode::Exclusive).unwrap();
        lm.acquire(TxnId(2), b, LockMode::Exclusive).unwrap();
        let lm2 = lm.clone();
        let h = std::thread::spawn(move || {
            let res = lm2.acquire(TxnId(2), a, LockMode::Exclusive);
            lm2.release_all(TxnId(2));
            res
        });
        std::thread::sleep(Duration::from_millis(30));
        let r1 = lm.acquire(TxnId(1), b, LockMode::Exclusive);
        lm.release_all(TxnId(1));
        let r2 = h.join().unwrap();
        assert!(r1.is_err() || r2.is_err());
        let events = tracer.ring_events().unwrap();
        let graph = events
            .iter()
            .find_map(|e| match e {
                Event::DeadlockGraph { victim, edges } => Some((*victim, edges.clone())),
                _ => None,
            })
            .expect("a DeadlockGraph snapshot accompanies the victim choice");
        let (victim, edges) = graph;
        assert!(victim == 1 || victim == 2);
        // Both directions of the two-cycle are captured.
        assert!(edges.contains("t1->t2"), "{edges}");
        assert!(edges.contains("t2->t1"), "{edges}");
        assert!(edges.contains("exclusive rel0["), "{edges}");
        // The victim event still follows the graph snapshot.
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::DeadlockVictim { .. })));
    }

    #[test]
    fn blocked_waiter_wakes_after_release() {
        let lm = std::sync::Arc::new(LockManager::new(Stats::new()));
        let t = LockTarget::Tuple(RelId(0), tid(1));
        lm.acquire(TxnId(1), t, LockMode::Exclusive).unwrap();
        let lm2 = lm.clone();
        let h = std::thread::spawn(move || {
            lm2.acquire(TxnId(2), t, LockMode::Shared).unwrap();
            lm2.release_all(TxnId(2));
            true
        });
        std::thread::sleep(Duration::from_millis(20));
        lm.release_all(TxnId(1));
        assert!(h.join().unwrap());
    }
}
