//! Two-phase-locking lock manager, sharded by relation.
//!
//! §5.2 of the paper requires read locks on retrieved WM tuples, write
//! locks for RHS updates, **relation-granularity** read locks for negated
//! condition elements (negative dependence), and write locks on the
//! relation for insertions (so negatively dependent transactions are
//! delayed). Two granularities are therefore supported; a relation-level
//! request conflicts with tuple-level locks of the same relation held by
//! other transactions (computed directly instead of via intention modes —
//! exact at our scale).
//!
//! **Sharding.** The lock table is partitioned: relations hash onto
//! [`LockManager::shard_count`] shards, each with its own mutex, condvar,
//! and contention counters, so worker transactions that touch disjoint
//! relations never serialize on one table. Within a shard, holders are
//! bucketed **per relation** — a tuple-level request examines only its
//! relation's entries (the relation-level holders plus that one tuple's),
//! never every held lock in the database, so conflict checking no longer
//! degrades as O(total held locks) per request. A transaction whose LHS
//! joins across shards simply acquires in several shards — cross-shard
//! strict 2PL with no extra protocol.
//!
//! Deadlocks — which §5.2 explicitly predicts ("this could lead to a
//! deadlock of the two transactions") — are detected on a waits-for graph
//! **merged across shards**: every blocked waiter computes its outgoing
//! edges under its shard's mutex and publishes them into one shared
//! [`WaitGraph`]; cycle detection and victim self-removal run atomically
//! under the graph mutex, so a two-cycle aborts exactly one victim even
//! when its edges live in different shards. Lock order is always shard
//! mutex → graph mutex, and the graph is a leaf: no path re-enters a
//! shard while holding it.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use obs::Event;
use parking_lot::{Condvar, Mutex};

use crate::error::{Error, Result};
use crate::schema::RelId;
use crate::stats::Stats;
use crate::tuple::TupleId;
use crate::txn::TxnId;

/// Default lock-table shard count for a new [`LockManager`].
pub const DEFAULT_LOCK_SHARDS: usize = 16;

/// What is being locked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockTarget {
    /// The whole relation (covers all its tuples).
    Relation(RelId),
    /// One specific tuple.
    Tuple(RelId, TupleId),
}

impl LockTarget {
    fn rel(&self) -> RelId {
        match self {
            LockTarget::Relation(r) | LockTarget::Tuple(r, _) => *r,
        }
    }

    /// Trace-friendly rendering ("rel3" or "rel3[t9]").
    fn describe(&self) -> String {
        match self {
            LockTarget::Relation(r) => format!("rel{}", r.0),
            LockTarget::Tuple(r, t) => format!("rel{}[{t}]", r.0),
        }
    }
}

/// Lock mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Read lock (compatible with other reads).
    Shared,
    /// Write lock (conflicts with everything).
    Exclusive,
}

impl LockMode {
    fn compatible(self, other: LockMode) -> bool {
        matches!((self, other), (LockMode::Shared, LockMode::Shared))
    }

    fn as_str(self) -> &'static str {
        match self {
            LockMode::Shared => "shared",
            LockMode::Exclusive => "exclusive",
        }
    }
}

impl fmt::Display for LockMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// All locks held on one relation: the relation-level holders plus the
/// tuple-level holders keyed by tuple id. A conflict check for this
/// relation looks at this bucket and nothing else.
#[derive(Debug, Default)]
struct RelBucket {
    rel_holders: HashMap<TxnId, LockMode>,
    tuple_holders: HashMap<TupleId, HashMap<TxnId, LockMode>>,
}

impl RelBucket {
    fn is_empty(&self) -> bool {
        self.rel_holders.is_empty() && self.tuple_holders.is_empty()
    }
}

#[derive(Debug, Default)]
struct Tables {
    /// relation → its lock bucket. Only relations of this shard appear.
    buckets: HashMap<RelId, RelBucket>,
    /// txn → targets it holds in this shard (for release_all).
    holdings: HashMap<TxnId, HashSet<LockTarget>>,
}

impl Tables {
    /// The mode `txn` holds on exactly `target`, if any.
    fn held(&self, txn: TxnId, target: &LockTarget) -> Option<LockMode> {
        let bucket = self.buckets.get(&target.rel())?;
        match target {
            LockTarget::Relation(_) => bucket.rel_holders.get(&txn).copied(),
            LockTarget::Tuple(_, t) => bucket.tuple_holders.get(t)?.get(&txn).copied(),
        }
    }

    /// Transactions (other than `me`) whose held locks conflict with a
    /// request for (`target`, `mode`). Examines only `target`'s relation
    /// bucket: a tuple request checks the relation-level holders plus
    /// that single tuple's holders; a relation request checks the
    /// relation-level holders plus every tuple holder *of that relation*.
    fn conflicting_holders(&self, me: TxnId, target: LockTarget, mode: LockMode) -> Vec<TxnId> {
        let mut out = Vec::new();
        let Some(bucket) = self.buckets.get(&target.rel()) else {
            return out;
        };
        let mut sweep = |holders: &HashMap<TxnId, LockMode>| {
            for (&txn, &held_mode) in holders {
                if txn != me && !(mode.compatible(held_mode)) {
                    out.push(txn);
                }
            }
        };
        sweep(&bucket.rel_holders);
        match target {
            LockTarget::Tuple(_, t) => {
                if let Some(holders) = bucket.tuple_holders.get(&t) {
                    sweep(holders);
                }
            }
            LockTarget::Relation(_) => {
                for holders in bucket.tuple_holders.values() {
                    sweep(holders);
                }
            }
        }
        out
    }

    fn grant(&mut self, me: TxnId, target: LockTarget, mode: LockMode) {
        let bucket = self.buckets.entry(target.rel()).or_default();
        let entry = match target {
            LockTarget::Relation(_) => &mut bucket.rel_holders,
            LockTarget::Tuple(_, t) => bucket.tuple_holders.entry(t).or_default(),
        };
        let slot = entry.entry(me).or_insert(mode);
        if mode == LockMode::Exclusive {
            *slot = LockMode::Exclusive; // upgrade
        }
        self.holdings.entry(me).or_default().insert(target);
    }

    /// Drop every lock `txn` holds in this shard. Returns whether
    /// anything was released (a waiter might be unblocked).
    fn release(&mut self, txn: TxnId) -> bool {
        let Some(targets) = self.holdings.remove(&txn) else {
            return false;
        };
        let released = !targets.is_empty();
        for target in targets {
            let Some(bucket) = self.buckets.get_mut(&target.rel()) else {
                continue;
            };
            match target {
                LockTarget::Relation(_) => {
                    bucket.rel_holders.remove(&txn);
                }
                LockTarget::Tuple(_, t) => {
                    if let Some(holders) = bucket.tuple_holders.get_mut(&t) {
                        holders.remove(&txn);
                        if holders.is_empty() {
                            bucket.tuple_holders.remove(&t);
                        }
                    }
                }
            }
            if bucket.is_empty() {
                self.buckets.remove(&target.rel());
            }
        }
        released
    }
}

/// The published waits-for graph, merged across every shard: each blocked
/// waiter's outgoing edges, keyed by waiter. Writers hold their shard
/// mutex while publishing, so an entry is always a consistent snapshot of
/// one waiter's blocked request.
#[derive(Debug, Default)]
struct WaitGraph {
    edges: HashMap<TxnId, Vec<(TxnId, LockMode, LockTarget)>>,
}

impl WaitGraph {
    /// Replace `waiter`'s outgoing edges with its current conflict set.
    fn publish(&mut self, waiter: TxnId, holders: &[TxnId], mode: LockMode, target: LockTarget) {
        self.edges
            .insert(waiter, holders.iter().map(|&h| (h, mode, target)).collect());
    }

    /// Remove every edge out of `txn` (granted, aborted, or released).
    fn clear(&mut self, txn: TxnId) {
        self.edges.remove(&txn);
    }

    /// Does `start` participate in a cycle of published edges?
    fn in_cycle(&self, start: TxnId) -> bool {
        let mut queue: VecDeque<TxnId> = self
            .edges
            .get(&start)
            .into_iter()
            .flatten()
            .map(|&(h, ..)| h)
            .collect();
        let mut seen = HashSet::new();
        while let Some(t) = queue.pop_front() {
            if t == start {
                return true;
            }
            if !seen.insert(t) {
                continue;
            }
            if let Some(out) = self.edges.get(&t) {
                queue.extend(out.iter().map(|&(h, ..)| h));
            }
        }
        false
    }

    /// Render the merged graph as "; "-joined edges, one per
    /// (waiter, conflicting holder) pair:
    /// `t<waiter>->t<holder> <mode> <target>`. Edges are sorted so the
    /// snapshot is stable regardless of hash iteration order.
    fn render(&self) -> String {
        let mut edges = Vec::new();
        for (&waiter, out) in &self.edges {
            for &(holder, mode, target) in out {
                edges.push(format!(
                    "t{}->t{} {} {}",
                    waiter.0,
                    holder.0,
                    mode.as_str(),
                    target.describe()
                ));
            }
        }
        edges.sort();
        edges.join("; ")
    }
}

/// One lock-table shard: its own tables, wakeup channel, and contention
/// counters.
#[derive(Debug)]
struct Shard {
    tables: Mutex<Tables>,
    cv: Condvar,
    acquired: AtomicU64,
    waits: AtomicU64,
    wait_ns: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            tables: Mutex::new(Tables::default()),
            cv: Condvar::new(),
            acquired: AtomicU64::new(0),
            waits: AtomicU64::new(0),
            wait_ns: AtomicU64::new(0),
        }
    }
}

/// Per-shard contention counters ([`LockManager::shard_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockShardStats {
    /// Locks granted by this shard.
    pub acquired: u64,
    /// Lock requests that blocked in this shard.
    pub waits: u64,
    /// Total nanoseconds requests spent blocked in this shard.
    pub wait_ns: u64,
}

/// The lock manager. Shared by all transactions of a database.
#[derive(Debug)]
pub struct LockManager {
    shards: Vec<Shard>,
    /// The merged cross-shard waits-for graph. Leaf lock: taken only
    /// while a shard mutex is held, never the other way around.
    graph: Mutex<WaitGraph>,
    stats: Stats,
    /// Contention tracing. Only consulted on the blocking path, so the
    /// uncontended fast path costs nothing extra.
    tracer: Mutex<obs::Tracer>,
}

impl LockManager {
    /// Create a new instance with [`DEFAULT_LOCK_SHARDS`] shards.
    pub fn new(stats: Stats) -> Self {
        Self::with_shards(stats, DEFAULT_LOCK_SHARDS)
    }

    /// Create a new instance with `shards` lock-table shards (min 1).
    pub fn with_shards(stats: Stats, shards: usize) -> Self {
        LockManager {
            shards: (0..shards.max(1)).map(|_| Shard::new()).collect(),
            graph: Mutex::new(WaitGraph::default()),
            stats,
            tracer: Mutex::new(obs::Tracer::disabled()),
        }
    }

    /// Number of lock-table shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a relation's locks live in.
    pub fn shard_of(&self, rel: RelId) -> usize {
        rel.0 as usize % self.shards.len()
    }

    /// Per-shard contention counters, indexed by shard.
    pub fn shard_stats(&self) -> Vec<LockShardStats> {
        self.shards
            .iter()
            .map(|s| LockShardStats {
                acquired: s.acquired.load(Ordering::Relaxed),
                waits: s.waits.load(Ordering::Relaxed),
                wait_ns: s.wait_ns.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Install a tracing handle; lock waits, grants after a wait, and
    /// deadlock victims are emitted through it.
    pub fn set_tracer(&self, tracer: obs::Tracer) {
        *self.tracer.lock() = tracer;
    }

    /// Acquire a lock, blocking until granted or until this transaction is
    /// chosen as a deadlock victim (in which case the caller must abort).
    pub fn acquire(&self, txn: TxnId, target: LockTarget, mode: LockMode) -> Result<()> {
        let shard = &self.shards[self.shard_of(target.rel())];
        let mut tables = shard.tables.lock();
        // Fast path: already holding a sufficient lock.
        if let Some(held) = tables.held(txn, &target) {
            if held == LockMode::Exclusive || mode == LockMode::Shared {
                return Ok(());
            }
        }
        // Wait bookkeeping starts lazily: `blocked_since` is only set (and
        // the tracer only consulted) once the request actually blocks.
        let mut blocked_since: Option<(Instant, obs::Tracer)> = None;
        loop {
            let conflicts = tables.conflicting_holders(txn, target, mode);
            if conflicts.is_empty() {
                tables.grant(txn, target, mode);
                shard.acquired.fetch_add(1, Ordering::Relaxed);
                self.stats.lock_acquired();
                if let Some((start, tracer)) = blocked_since {
                    // Retract the published edges before returning.
                    self.graph.lock().clear(txn);
                    let wait_ns = start.elapsed().as_nanos() as u64;
                    self.stats.lock_waited(wait_ns);
                    shard.waits.fetch_add(1, Ordering::Relaxed);
                    shard.wait_ns.fetch_add(wait_ns, Ordering::Relaxed);
                    tracer.emit(|| Event::LockAcquire {
                        txn: txn.0,
                        target: target.describe(),
                        mode: mode.as_str(),
                        wait_ns,
                    });
                    if let Some(m) = tracer.metrics() {
                        m.record_lock_wait(wait_ns);
                    }
                }
                return Ok(());
            }
            if blocked_since.is_none() {
                let tracer = self.tracer.lock().clone();
                tracer.emit(|| Event::LockWait {
                    txn: txn.0,
                    target: target.describe(),
                    mode: mode.as_str(),
                });
                blocked_since = Some((Instant::now(), tracer));
            }
            // Publish this waiter's edges into the merged graph and check
            // for a cycle, atomically under the graph mutex. A victim
            // removes its own edges in the same critical section, so a
            // two-cycle — even one spanning shards — aborts exactly one
            // of the two: the second detector no longer sees the cycle.
            let deadlocked = {
                let mut graph = self.graph.lock();
                graph.publish(txn, &conflicts, mode, target);
                if graph.in_cycle(txn) {
                    // Snapshot the merged waits-for graph *before* removing
                    // the victim, so the cycle it closed is visible.
                    let edges = graph.render();
                    graph.clear(txn);
                    Some(edges)
                } else {
                    None
                }
            };
            if let Some(edges) = deadlocked {
                self.stats.abort();
                if let Some((start, tracer)) = blocked_since {
                    let wait_ns = start.elapsed().as_nanos() as u64;
                    self.stats.lock_waited(wait_ns);
                    shard.waits.fetch_add(1, Ordering::Relaxed);
                    shard.wait_ns.fetch_add(wait_ns, Ordering::Relaxed);
                    if let Some(m) = tracer.metrics() {
                        m.record_lock_wait(wait_ns);
                        m.record_deadlock();
                    }
                    tracer.emit(|| Event::DeadlockGraph {
                        victim: txn.0,
                        edges: edges.clone(),
                    });
                    tracer.emit(|| Event::DeadlockVictim { txn: txn.0 });
                }
                return Err(Error::Deadlock(txn));
            }
            // Re-check periodically: a competing waiter in another shard
            // may have published the edge that closes our cycle after we
            // went to sleep, and its shard's condvar can't wake us.
            shard.cv.wait_for(&mut tables, Duration::from_millis(10));
        }
    }

    /// Try to acquire without blocking.
    pub fn try_acquire(&self, txn: TxnId, target: LockTarget, mode: LockMode) -> bool {
        let shard = &self.shards[self.shard_of(target.rel())];
        let mut tables = shard.tables.lock();
        if tables.conflicting_holders(txn, target, mode).is_empty() {
            tables.grant(txn, target, mode);
            shard.acquired.fetch_add(1, Ordering::Relaxed);
            self.stats.lock_acquired();
            true
        } else {
            false
        }
    }

    /// Does `txn` hold (at least) `mode` on `target`?
    pub fn holds(&self, txn: TxnId, target: LockTarget, mode: LockMode) -> bool {
        let shard = &self.shards[self.shard_of(target.rel())];
        let tables = shard.tables.lock();
        tables
            .held(txn, &target)
            .is_some_and(|held| held == LockMode::Exclusive || mode == LockMode::Shared)
    }

    /// Release every lock held by `txn` (commit or abort — strict 2PL).
    /// Spans shards: each shard the transaction holds locks in is drained
    /// and its waiters woken.
    pub fn release_all(&self, txn: TxnId) {
        for shard in &self.shards {
            let released = shard.tables.lock().release(txn);
            if released {
                shard.cv.notify_all();
            }
        }
        // Belt and braces: a finished transaction owns no graph edges
        // (grant and victim paths clear them), but make it invariant.
        self.graph.lock().clear(txn);
    }

    /// Number of currently held (txn, target) lock pairs, over all shards.
    pub fn held_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.tables
                    .lock()
                    .holdings
                    .values()
                    .map(HashSet::len)
                    .sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(n: u32) -> TupleId {
        TupleId::new(n, 0)
    }

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::new(Stats::new());
        let t = LockTarget::Tuple(RelId(0), tid(1));
        lm.acquire(TxnId(1), t, LockMode::Shared).unwrap();
        lm.acquire(TxnId(2), t, LockMode::Shared).unwrap();
        assert!(lm.holds(TxnId(1), t, LockMode::Shared));
        assert!(lm.holds(TxnId(2), t, LockMode::Shared));
    }

    #[test]
    fn exclusive_blocks_try_acquire() {
        let lm = LockManager::new(Stats::new());
        let t = LockTarget::Tuple(RelId(0), tid(1));
        lm.acquire(TxnId(1), t, LockMode::Exclusive).unwrap();
        assert!(!lm.try_acquire(TxnId(2), t, LockMode::Shared));
        lm.release_all(TxnId(1));
        assert!(lm.try_acquire(TxnId(2), t, LockMode::Shared));
    }

    #[test]
    fn relation_lock_covers_tuples() {
        let lm = LockManager::new(Stats::new());
        lm.acquire(
            TxnId(1),
            LockTarget::Relation(RelId(3)),
            LockMode::Exclusive,
        )
        .unwrap();
        assert!(!lm.try_acquire(
            TxnId(2),
            LockTarget::Tuple(RelId(3), tid(9)),
            LockMode::Shared
        ));
        // A different relation is unaffected.
        assert!(lm.try_acquire(
            TxnId(2),
            LockTarget::Tuple(RelId(4), tid(9)),
            LockMode::Shared
        ));
    }

    #[test]
    fn tuple_lock_blocks_relation_lock() {
        let lm = LockManager::new(Stats::new());
        lm.acquire(
            TxnId(1),
            LockTarget::Tuple(RelId(3), tid(1)),
            LockMode::Exclusive,
        )
        .unwrap();
        assert!(!lm.try_acquire(TxnId(2), LockTarget::Relation(RelId(3)), LockMode::Shared));
    }

    #[test]
    fn shared_relation_and_shared_tuple_coexist() {
        let lm = LockManager::new(Stats::new());
        lm.acquire(TxnId(1), LockTarget::Relation(RelId(3)), LockMode::Shared)
            .unwrap();
        assert!(lm.try_acquire(
            TxnId(2),
            LockTarget::Tuple(RelId(3), tid(1)),
            LockMode::Shared
        ));
    }

    #[test]
    fn upgrade_when_sole_holder() {
        let lm = LockManager::new(Stats::new());
        let t = LockTarget::Tuple(RelId(0), tid(1));
        lm.acquire(TxnId(1), t, LockMode::Shared).unwrap();
        lm.acquire(TxnId(1), t, LockMode::Exclusive).unwrap();
        assert!(lm.holds(TxnId(1), t, LockMode::Exclusive));
        assert!(!lm.try_acquire(TxnId(2), t, LockMode::Shared));
    }

    #[test]
    fn reacquire_held_lock_is_noop() {
        let lm = LockManager::new(Stats::new());
        let t = LockTarget::Relation(RelId(0));
        lm.acquire(TxnId(1), t, LockMode::Exclusive).unwrap();
        lm.acquire(TxnId(1), t, LockMode::Shared).unwrap();
        lm.acquire(TxnId(1), t, LockMode::Exclusive).unwrap();
        lm.release_all(TxnId(1));
        assert_eq!(lm.held_count(), 0);
    }

    #[test]
    fn conflict_check_is_per_relation_bucket() {
        // Load one shard with many held locks of *other* relations: a
        // request for an uninvolved relation in the same shard must still
        // be grantable immediately (its bucket is empty) — the check no
        // longer sweeps every held lock.
        let lm = LockManager::with_shards(Stats::new(), 1);
        for rel in 0..64u32 {
            for t in 0..16 {
                lm.acquire(
                    TxnId(u64::from(rel)),
                    LockTarget::Tuple(RelId(rel), tid(t)),
                    LockMode::Exclusive,
                )
                .unwrap();
            }
        }
        assert!(lm.try_acquire(
            TxnId(999),
            LockTarget::Tuple(RelId(64), tid(0)),
            LockMode::Exclusive
        ));
        assert!(lm.try_acquire(
            TxnId(999),
            LockTarget::Relation(RelId(65)),
            LockMode::Exclusive
        ));
        // And a conflicting request in a *populated* bucket still blocks.
        assert!(!lm.try_acquire(
            TxnId(999),
            LockTarget::Tuple(RelId(0), tid(0)),
            LockMode::Shared
        ));
    }

    #[test]
    fn shard_routing_and_counters() {
        let lm = LockManager::with_shards(Stats::new(), 4);
        assert_eq!(lm.shard_count(), 4);
        assert_eq!(lm.shard_of(RelId(0)), 0);
        assert_eq!(lm.shard_of(RelId(5)), 1);
        lm.acquire(TxnId(1), LockTarget::Relation(RelId(0)), LockMode::Shared)
            .unwrap();
        lm.acquire(TxnId(1), LockTarget::Relation(RelId(1)), LockMode::Shared)
            .unwrap();
        let stats = lm.shard_stats();
        assert_eq!(stats.len(), 4);
        assert_eq!(stats[0].acquired, 1);
        assert_eq!(stats[1].acquired, 1);
        assert_eq!(stats[2].acquired + stats[3].acquired, 0);
        lm.release_all(TxnId(1));
        assert_eq!(lm.held_count(), 0);
    }

    #[test]
    fn deadlock_detected() {
        let lm = std::sync::Arc::new(LockManager::new(Stats::new()));
        let a = LockTarget::Tuple(RelId(0), tid(1));
        let b = LockTarget::Tuple(RelId(0), tid(2));
        lm.acquire(TxnId(1), a, LockMode::Exclusive).unwrap();
        lm.acquire(TxnId(2), b, LockMode::Exclusive).unwrap();

        let lm2 = lm.clone();
        let h = std::thread::spawn(move || {
            // Txn 2 blocks waiting for `a`.
            let res = lm2.acquire(TxnId(2), a, LockMode::Exclusive);
            lm2.release_all(TxnId(2));
            res
        });
        std::thread::sleep(Duration::from_millis(30));
        // Txn 1 requesting `b` closes the cycle; one of the two must abort.
        let r1 = lm.acquire(TxnId(1), b, LockMode::Exclusive);
        lm.release_all(TxnId(1));
        let r2 = h.join().unwrap();
        assert!(
            r1.is_err() || r2.is_err(),
            "at least one transaction must be a deadlock victim"
        );
        assert!(
            r1.is_ok() || r2.is_ok(),
            "at most one transaction should be aborted in a two-cycle"
        );
    }

    #[test]
    fn deadlock_emits_wait_for_graph() {
        let lm = std::sync::Arc::new(LockManager::new(Stats::new()));
        let tracer = obs::Tracer::new(obs::Sink::ring(256));
        lm.set_tracer(tracer.clone());
        let a = LockTarget::Tuple(RelId(0), tid(1));
        let b = LockTarget::Tuple(RelId(0), tid(2));
        lm.acquire(TxnId(1), a, LockMode::Exclusive).unwrap();
        lm.acquire(TxnId(2), b, LockMode::Exclusive).unwrap();
        let lm2 = lm.clone();
        let h = std::thread::spawn(move || {
            let res = lm2.acquire(TxnId(2), a, LockMode::Exclusive);
            lm2.release_all(TxnId(2));
            res
        });
        std::thread::sleep(Duration::from_millis(30));
        let r1 = lm.acquire(TxnId(1), b, LockMode::Exclusive);
        lm.release_all(TxnId(1));
        let r2 = h.join().unwrap();
        assert!(r1.is_err() || r2.is_err());
        let events = tracer.ring_events().unwrap();
        let graph = events
            .iter()
            .find_map(|e| match e {
                Event::DeadlockGraph { victim, edges } => Some((*victim, edges.clone())),
                _ => None,
            })
            .expect("a DeadlockGraph snapshot accompanies the victim choice");
        let (victim, edges) = graph;
        assert!(victim == 1 || victim == 2);
        // Both directions of the two-cycle are captured.
        assert!(edges.contains("t1->t2"), "{edges}");
        assert!(edges.contains("t2->t1"), "{edges}");
        assert!(edges.contains("exclusive rel0["), "{edges}");
        // The victim event still follows the graph snapshot.
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::DeadlockVictim { .. })));
    }

    /// Regression for the sharded detector: a cycle whose two edges live
    /// in *different* shard lock managers (t1 holds in shard A and waits
    /// in shard B, t2 the reverse) is only visible on the merged graph.
    /// It must be detected, journaled with both edges, and abort exactly
    /// one victim.
    #[test]
    fn cross_shard_deadlock_aborts_exactly_one_victim() {
        let lm = std::sync::Arc::new(LockManager::with_shards(Stats::new(), 2));
        // rel0 → shard 0, rel1 → shard 1.
        assert_ne!(lm.shard_of(RelId(0)), lm.shard_of(RelId(1)));
        let tracer = obs::Tracer::new(obs::Sink::ring(256));
        lm.set_tracer(tracer.clone());
        let a = LockTarget::Tuple(RelId(0), tid(1));
        let b = LockTarget::Tuple(RelId(1), tid(1));
        lm.acquire(TxnId(1), a, LockMode::Exclusive).unwrap();
        lm.acquire(TxnId(2), b, LockMode::Exclusive).unwrap();
        let lm2 = lm.clone();
        let h = std::thread::spawn(move || {
            // Txn 2 blocks in shard 0, waiting on txn 1's lock.
            let res = lm2.acquire(TxnId(2), a, LockMode::Exclusive);
            lm2.release_all(TxnId(2));
            res
        });
        std::thread::sleep(Duration::from_millis(30));
        // Txn 1 requesting `b` (shard 1) closes the cross-shard cycle.
        let r1 = lm.acquire(TxnId(1), b, LockMode::Exclusive);
        lm.release_all(TxnId(1));
        let r2 = h.join().unwrap();
        assert!(
            r1.is_err() || r2.is_err(),
            "the cross-shard cycle must be detected"
        );
        assert!(
            r1.is_ok() || r2.is_ok(),
            "exactly one of the two transactions aborts"
        );
        assert_eq!(lm.held_count(), 0, "both sides released across shards");
        // The journaled DeadlockGraph snapshot merged both shards' edges.
        let edges = tracer
            .ring_events()
            .unwrap()
            .iter()
            .find_map(|e| match e {
                Event::DeadlockGraph { edges, .. } => Some(edges.clone()),
                _ => None,
            })
            .expect("DeadlockGraph journaled for the cross-shard cycle");
        assert!(edges.contains("t1->t2"), "{edges}");
        assert!(edges.contains("t2->t1"), "{edges}");
        assert!(edges.contains("rel0["), "{edges}");
        assert!(edges.contains("rel1["), "{edges}");
    }

    #[test]
    fn blocked_waiter_wakes_after_release() {
        let lm = std::sync::Arc::new(LockManager::new(Stats::new()));
        let t = LockTarget::Tuple(RelId(0), tid(1));
        lm.acquire(TxnId(1), t, LockMode::Exclusive).unwrap();
        let lm2 = lm.clone();
        let h = std::thread::spawn(move || {
            lm2.acquire(TxnId(2), t, LockMode::Shared).unwrap();
            lm2.release_all(TxnId(2));
            true
        });
        std::thread::sleep(Duration::from_millis(20));
        lm.release_all(TxnId(1));
        assert!(h.join().unwrap());
    }
}
